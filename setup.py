"""Legacy setup shim: this offline environment lacks the `wheel` package,
so editable installs must go through `setup.py develop` (--no-use-pep517).
All real metadata lives in pyproject.toml."""

from setuptools import setup

setup()
