"""Packaging for the IISWC'25 computational-statistics reproduction.

Metadata lives here (not pyproject.toml) because this offline
environment lacks the `wheel` package, so editable installs must go
through `setup.py develop` (--no-use-pep517).
"""

import os

from setuptools import find_packages, setup


_HERE = os.path.dirname(os.path.abspath(__file__))


def _readme() -> str:
    path = os.path.join(_HERE, "README.md")
    if os.path.exists(path):
        with open(path, encoding="utf-8") as f:
            return f.read()
    return ""


def _version() -> str:
    """Single source of truth: __version__ in src/repro/__init__.py."""
    with open(os.path.join(_HERE, "src", "repro", "__init__.py"),
              encoding="utf-8") as f:
        for line in f:
            if line.startswith("__version__"):
                return line.split('"')[1]
    raise RuntimeError("__version__ not found in src/repro/__init__.py")


setup(
    name="repro-iiswc-xucr25",
    version=_version(),
    description=("Reproduction of 'Design and accuracy trade-offs in "
                 "Computational Statistics' (Xu, Cox, Rixner; IISWC 2025): "
                 "binary64 vs log-space vs posit arithmetic for "
                 "probabilities far below 2**-1074"),
    long_description=_readme(),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    packages=find_packages("src"),
    package_dir={"": "src"},
    python_requires=">=3.9",
    install_requires=[
        "numpy>=1.22",
    ],
    extras_require={
        # The optional JIT tier (repro.engine.compiled); everything
        # works without it via the NumPy lean kernels.
        "compiled": ["numba>=0.57"],
        "bench": ["pytest", "pytest-benchmark>=4.0"],
        "test": ["pytest", "hypothesis", "scipy"],
        "dev": ["pytest", "pytest-benchmark>=4.0", "pytest-cov",
                "hypothesis", "scipy", "ruff"],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering :: Mathematics",
    ],
)
