"""``FArray``: a format-tagged array over the registry + ExecPlan plane.

An :class:`FArray` is the NumPy-style front end of the execution plane
built in PRs 1-3: it pairs a scalar :class:`~repro.arith.Backend` (the
*format*: binary64, log-space, posit, LNS, the BigFloat oracle) with an
array of that format's values and dispatches every operation the way
the plan and the format registry allow:

* **vectorized** — when the active :class:`~repro.engine.plan.ExecPlan`
  has ``batch=True`` and the registry pairs the format with a batch
  mirror, ``_data`` holds the mirror's *packed code representation*
  (float64 values/logs, int64 LNS codes, uint64 posit patterns) and
  ``+``/``*``/reductions run through the mirror's certified array
  kernels — the canonical path;
* **scalar fallback** — otherwise (the BigFloat oracle, a serial plan,
  a reduction-certified requirement the mirror cannot meet), ``_data``
  is an object array of scalar backend values and every op loops
  through the scalar backend — the reference path.

The two representations hold *the same values* (that is the registry's
certification), so an expression's result never depends on which one
ran — only its speed does.  Every registry mirror implements the full
elementwise op set natively (``+ - * /`` plus the fused
:func:`multiply_add`), so a vectorized array never drops into a
per-element decode loop; the scalar loop survives only for the
object-array representation (the oracle, serial plans, uncertified
reductions).

Certification tiers (``certified=`` on the constructors) mirror
:meth:`repro.arith.registry.FormatRegistry.batch_for`: the default
``certified=False`` asks only for elementwise exactness, so log-space's
default ``nary`` sum mode stays vectorized (its batched n-ary LSE is
ulp-close to the scalar fold — the documented array-API contract since
PR 1).  ``certified=True`` demands bit/element-identical *reductions*
too; formats that cannot certify that (n-ary log-space) then take the
scalar representation, which is how the B=1 scalar app views guarantee
their results never change.

Values are immutable by convention: no ``__setitem__``; build new
arrays with expressions, ``concatenate``, or ``where`` you write
yourself from masks.
"""

from __future__ import annotations

import numbers
from typing import List, Optional, Sequence

import numpy as np

from .. import telemetry as _tele
from ..arith.backend import Backend
from ..arith.registry import REGISTRY
from ..bigfloat import BigFloat, DEFAULT_PRECISION
from ..engine.plan import ExecPlan, resolve_plan
from .context import _resolve_format

__all__ = [
    "FArray",
    "amax",
    "argmax",
    "asarray",
    "broadcast_to",
    "concatenate",
    "dot",
    "fused_dot",
    "fused_sum",
    "full",
    "logsumexp",
    "maximum",
    "multiply_add",
    "ones",
    "ones_like",
    "stack",
    "sum",
    "take_along_axis",
    "wrap",
    "zeros",
    "zeros_like",
]


def _tally_nd(op: str, fmt: str, plane: str, data) -> None:
    """Count ``n`` result elements under ``nd.{op}.{fmt}.{plane}``.

    Callers guard with ``telemetry.current() is not None`` so the
    disabled path never builds the key string."""
    _tele.count(f"nd.{op}.{fmt}.{plane}", int(np.asarray(data).size))


def _mirror(backend: Backend, plan: ExecPlan, certified: bool):
    """The batch mirror the plan + certification tier select (or None
    for the scalar representation).  Thin view over
    :func:`repro.engine.plan_batch_backend` — the one place the
    scalar-vs-vectorized decision lives (imported lazily: the engine
    package's kernels import this module at call time)."""
    from ..engine import plan_batch_backend
    return plan_batch_backend(backend, plan, certified=certified)


def _same_numerics(a: Backend, b: Backend) -> bool:
    """Whether two scalar backends define the same arithmetic.

    Name equality is not enough: log-space's ``sum_mode`` changes the
    reduction fold and posit's ``underflow`` mode changes rounding,
    neither appearing in the format name; and two backends of one name
    must also be the same implementation class.  Backends passing this
    test may share arrays freely (their code spaces and op results
    coincide).
    """
    if a is b:
        return True
    return (type(a) is type(b) and a.name == b.name
            and getattr(a, "sum_mode", None) == getattr(b, "sum_mode", None)
            and getattr(getattr(a, "env", None), "underflow", None)
            == getattr(getattr(b, "env", None), "underflow", None))


def _exact(value) -> BigFloat:
    """One input as an exact BigFloat (the paper's input-side
    methodology: operands are exact, rounding happens on format entry)."""
    if isinstance(value, BigFloat):
        return value
    if isinstance(value, numbers.Integral):
        return BigFloat.from_int(int(value))
    if isinstance(value, numbers.Real):
        return BigFloat.from_float(float(value))
    raise TypeError(f"cannot convert {type(value).__name__} to a "
                    f"probability value")


class FArray:
    """A format-tagged N-dimensional array of probabilities.

    Build with :func:`asarray` / :func:`zeros` / :func:`ones` /
    :func:`wrap`; combine with ``+ - * / @``, slicing, and the
    reductions in this module.  ``item``/``tolist``/``to_bigfloats``
    exit back to scalar-backend values.
    """

    __slots__ = ("_backend", "_bb", "_data")
    #: NumPy must not try to handle ``ndarray <op> FArray`` itself.
    __array_ufunc__ = None
    __array_priority__ = 1000

    def __init__(self, data: np.ndarray, backend: Backend, bb=None):
        self._backend = backend
        self._bb = bb
        self._data = data

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def format(self) -> str:
        """The registry format name this array is tagged with."""
        return self._backend.name

    @property
    def backend(self) -> Backend:
        """The scalar backend defining this array's numerics."""
        return self._backend

    @property
    def batch(self) -> bool:
        """True when backed by the vectorized batch mirror (packed
        codes); False on the scalar-fallback representation."""
        return self._bb is not None

    @property
    def data(self) -> np.ndarray:
        """The raw storage: packed codes (batch) or scalar backend
        values in an object array (fallback)."""
        return self._data

    @property
    def shape(self):
        return self._data.shape

    @property
    def ndim(self) -> int:
        return self._data.ndim

    @property
    def size(self) -> int:
        return self._data.size

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self):
        mode = "batch" if self._bb is not None else "scalar"
        return (f"<FArray {self.format} shape={self.shape} {mode}>")

    # ------------------------------------------------------------------
    # Shape manipulation (never touches values)
    # ------------------------------------------------------------------
    def __getitem__(self, key) -> "FArray":
        if isinstance(key, FArray):
            key = key._data
        out = self._data[key]
        if not isinstance(out, np.ndarray):  # full index -> 0-d view
            out = np.asarray(out, dtype=self._data.dtype)
        return FArray(out, self._backend, self._bb)

    @property
    def T(self) -> "FArray":
        return FArray(self._data.T, self._backend, self._bb)

    def reshape(self, *shape) -> "FArray":
        return FArray(self._data.reshape(*shape), self._backend, self._bb)

    def ravel(self) -> "FArray":
        return FArray(self._data.ravel(), self._backend, self._bb)

    # ------------------------------------------------------------------
    # Exits (scalar values / exact values / floats)
    # ------------------------------------------------------------------
    def item(self, index=()):
        """One element as a scalar-backend value (for scoring, ratio
        tests, ``backend.to_bigfloat`` ...)."""
        if self._bb is not None:
            return self._bb.item(self._data, index)
        return self._data[index]

    def tolist(self):
        """Nested lists of scalar-backend values (row-major)."""
        if self._bb is None:
            return self._data.tolist()
        out = np.empty(self.shape, dtype=object)
        for idx in np.ndindex(*self.shape):
            out[idx] = self._bb.item(self._data, idx)
        return out.tolist()

    def to_bigfloats(self) -> List[BigFloat]:
        """Exact (or correctly rounded) values, flattened row-major."""
        if self._bb is not None:
            return self._bb.to_bigfloats(self._data)
        return [self._backend.to_bigfloat(v) for v in self._data.ravel()]

    def to_floats(self) -> np.ndarray:
        """Lossy float64 readout (underflows below 2**-1074 — which is
        often the point).  Raises where an element has no value (NaR)."""
        return np.array([bf.to_float() for bf in self.to_bigfloats()],
                        dtype=np.float64).reshape(self.shape)

    def is_zero(self) -> np.ndarray:
        """Boolean mask of exactly-zero probabilities."""
        if self._bb is not None:
            return np.asarray(self._bb.is_zero(self._data), dtype=bool)
        out = np.frompyfunc(self._backend.is_zero, 1, 1)(self._data)
        return np.asarray(out, dtype=bool)

    # ------------------------------------------------------------------
    # Representation plumbing
    # ------------------------------------------------------------------
    def _items_flat(self) -> list:
        """Every element as a scalar-backend value, row-major."""
        if self._bb is None:
            return list(self._data.ravel())
        flat = self._data.ravel()
        return [self._bb.item(flat, i) for i in range(flat.size)]

    def _as_mode(self, bb) -> "FArray":
        """This array re-encoded for another representation (same
        format, so values are preserved exactly)."""
        if bb is self._bb:
            return self
        if bb is not None and self._bb is not None:
            # Two mirrors of one format share the code space; retag.
            return FArray(self._data, self._backend, bb)
        items = self._items_flat()
        if bb is None:
            out = np.empty(self.shape, dtype=object)
            out.reshape(-1)[:] = items
            return FArray(out, self._backend, None)
        return FArray(bb.from_items(items, self.shape), self._backend, bb)

    def _coerce(self, other) -> Optional["FArray"]:
        """``other`` as an FArray in this array's format and
        representation (None when the type is not coercible)."""
        if isinstance(other, FArray):
            if not _same_numerics(self._backend, other._backend):
                raise TypeError(
                    f"format mismatch: {self.format} vs {other.format} "
                    f"(or differing backend modes, e.g. log sum_mode); "
                    f"convert explicitly with astype()")
            return other._as_mode(self._bb)
        if isinstance(other, (BigFloat, numbers.Number)):
            bf = _exact(other)
            if self._bb is not None:
                return FArray(self._bb.from_bigfloats([bf]).reshape(()),
                              self._backend, self._bb)
            out = np.empty((), dtype=object)
            out[()] = self._backend.from_bigfloat(bf)
            return FArray(out, self._backend, None)
        if isinstance(other, (list, tuple, np.ndarray)):
            return _convert(other, self._backend, self._bb)
        return None

    # ------------------------------------------------------------------
    # Arithmetic (dispatch: batch mirror op -> scalar fallback)
    # ------------------------------------------------------------------
    def _binary(self, other, op: str, reflected: bool = False):
        rhs = self._coerce(other)
        if rhs is None:
            return NotImplemented
        a, b = (rhs, self) if reflected else (self, rhs)
        if self._bb is not None:
            # Every registry mirror implements the full op set natively
            # (``BatchBackend.sub``/``div`` raise for exotic mirrors
            # without one — there is no silent per-element fallback on
            # the vectorized representation).
            fn = getattr(self._bb, op)
            out = fn(a._data, b._data)
            if _tele.current() is not None:
                _tally_nd(op, self.format, "batch", out)
            return FArray(out, self._backend, self._bb)
        return self._scalar_binary(a, b, op)

    def _scalar_binary(self, a: "FArray", b: "FArray", op: str) -> "FArray":
        """Elementwise op through the scalar backend (the object-array
        representation's path)."""
        fn = getattr(self._backend, op)
        out = np.frompyfunc(fn, 2, 1)(a._data, b._data)
        if _tele.current() is not None:
            _tally_nd(op, self._backend.name, "scalar", out)
        return FArray(np.asarray(out, dtype=object), self._backend, None)

    def __add__(self, other):
        return self._binary(other, "add")

    def __radd__(self, other):
        return self._binary(other, "add", reflected=True)

    def __mul__(self, other):
        return self._binary(other, "mul")

    def __rmul__(self, other):
        return self._binary(other, "mul", reflected=True)

    def __sub__(self, other):
        return self._binary(other, "sub")

    def __rsub__(self, other):
        return self._binary(other, "sub", reflected=True)

    def __truediv__(self, other):
        return self._binary(other, "div")

    def __rtruediv__(self, other):
        return self._binary(other, "div", reflected=True)

    def maximum(self, other) -> "FArray":
        """Elementwise larger probability (first operand on ties).

        Exact by construction on every representation: the batch
        mirrors compare monotone code arrays (float values/logs, posit
        patterns as two's-complement, LNS codes), the scalar fallback
        uses the backend's representation-native ``gt`` — the same
        total order, so the max semirings decide identically on both
        planes.
        """
        out = self._binary(other, "maximum")
        if out is NotImplemented:
            raise TypeError(f"cannot take maximum of an FArray and "
                            f"{type(other).__name__}")
        return out

    def __matmul__(self, other):
        rhs = self._coerce(other)
        if rhs is None:
            return NotImplemented
        return _matmul(self, rhs)

    def __rmatmul__(self, other):
        lhs = self._coerce(other)
        if lhs is None:
            return NotImplemented
        return _matmul(lhs, self)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[int] = None) -> "FArray":
        """Reduce along ``axis`` (or everything) in index order with the
        format's ``sum`` fold — vectorized through the batch mirror,
        scalar backend fold otherwise (n-ary LSE for n-ary log-space).
        """
        if axis is None:
            return self.ravel().sum(axis=0)
        if self._bb is not None:
            out = self._bb.sum(self._data, axis=axis)
            if _tele.current() is not None:
                _tally_nd("sum", self.format, "batch", out)
            return FArray(np.asarray(out), self._backend, self._bb)
        moved = np.moveaxis(self._data, axis, -1)
        out = np.empty(moved.shape[:-1], dtype=object)
        for idx in np.ndindex(*out.shape):
            out[idx] = self._backend.sum(list(moved[idx]))
        if _tele.current() is not None:
            _tally_nd("sum", self.format, "scalar", out)
        return FArray(out, self._backend, None)

    def dot(self, other, axis: int = -1) -> "FArray":
        """Sum of elementwise products along ``axis`` (mul then the
        ``sum`` fold — the forward algorithm's inner kernel).

        On the vectorized representation this dispatches to the batch
        mirror's ``dot``, which mirrors with a decoded plane (posit)
        override with a fused kernel: each operand is decoded once per
        call instead of once per elementwise op, with every
        intermediate still rounded op-for-op like the fold.
        """
        rhs = self._coerce(other)
        if rhs is None:
            raise TypeError(f"cannot dot {type(other).__name__} with an "
                            f"FArray")
        if self._bb is not None:
            out = self._bb.dot(self._data, rhs._data, axis=axis)
            if _tele.current() is not None:
                _tally_nd("dot", self.format, "batch", out)
            return FArray(np.asarray(out), self._backend, self._bb)
        return (self * rhs).sum(axis=axis)

    def max(self, axis: Optional[int] = None) -> "FArray":
        """Largest probability along ``axis`` (or of everything).

        The max fold is associative and exact in every format (no
        rounding — one of the inputs *is* the result), so unlike
        ``sum`` there is no certification tier: batch and scalar
        representations always agree (ties resolve to the first
        index, as :meth:`argmax` reports).
        """
        if axis is None:
            return self.ravel().max(axis=0)
        if self._bb is not None:
            out = self._bb.amax(self._data, axis=axis)
            if _tele.current() is not None:
                _tally_nd("amax", self.format, "batch", out)
            return FArray(np.asarray(out), self._backend, self._bb)
        moved = np.moveaxis(self._data, axis, -1)
        out = np.empty(moved.shape[:-1], dtype=object)
        for idx in np.ndindex(*out.shape):
            acc = moved[idx][0]
            for v in moved[idx][1:]:
                acc = self._backend.maximum(acc, v)
            out[idx] = acc
        if _tele.current() is not None:
            _tally_nd("amax", self.format, "scalar", out)
        return FArray(out, self._backend, None)

    def argmax(self, axis: int = -1) -> np.ndarray:
        """Index of the largest probability along ``axis`` (first index
        on ties — ``np.argmax``'s rule), as a plain integer ndarray.

        This is the Viterbi back-pointer primitive; batch and scalar
        representations decide identically (same total order, same
        tie-break), which is what makes traceback paths plan-invariant.
        """
        if self._bb is not None:
            out = self._bb.argmax(self._data, axis=axis)
            if _tele.current() is not None:
                _tally_nd("argmax", self.format, "batch", out)
            return np.asarray(out, dtype=np.intp)
        moved = np.moveaxis(self._data, axis, -1)
        out = np.empty(moved.shape[:-1], dtype=np.intp)
        for idx in np.ndindex(*out.shape):
            best, best_i = moved[idx][0], 0
            for i, v in enumerate(moved[idx][1:], start=1):
                if self._backend.gt(v, best):
                    best, best_i = v, i
            out[idx] = best_i
        if _tele.current() is not None:
            _tally_nd("argmax", self.format, "scalar", out)
        return out

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    def astype(self, format, *, plan: Optional[ExecPlan] = None,
               certified: bool = False, **format_kwargs) -> "FArray":
        """This array's values rounded into another registry format.

        Conversion is exact on the way out (``to_bigfloat``) and
        correctly rounded on the way in (``from_bigfloat``) — the same
        input-side methodology every app uses, so ``astype`` composes
        with the registry's exactness classes: converting *into* the
        oracle is exact, converting between finite formats rounds once.
        """
        target = _resolve_format(format, **format_kwargs)
        plan = resolve_plan(plan, where="FArray.astype")
        bb = _mirror(target, plan, certified)
        if _same_numerics(target, self._backend):
            if (self._bb is None) == (bb is None):
                return self
            return self._as_mode(bb)
        if _tele.current() is not None:
            _tele.count(f"nd.astype.{self.format}->{target.name}",
                        self.size)
        return _from_bigfloats(self.to_bigfloats(), self.shape, target, bb)


# ----------------------------------------------------------------------
# Constructors
# ----------------------------------------------------------------------
def _from_bigfloats(values: Sequence[BigFloat], shape, backend: Backend,
                    bb) -> FArray:
    if bb is not None:
        return FArray(bb.from_bigfloats(values).reshape(shape), backend, bb)
    out = np.empty(shape, dtype=object)
    out.reshape(-1)[:] = [backend.from_bigfloat(v) for v in values]
    return FArray(out, backend, None)


def _convert(values, backend: Backend, bb) -> FArray:
    """Nested numbers/BigFloats into an FArray with the given
    representation."""
    if bb is not None and isinstance(values, np.ndarray) \
            and np.issubdtype(values.dtype, np.floating) \
            and np.isfinite(values).all():
        # Finite float tensors skip the per-element BigFloat round-trip:
        # ``from_floats`` is scalar ``from_float`` per element (itself
        # defined as ``from_bigfloat(BigFloat.from_float(x))``), so the
        # result is bit-identical by construction — pinned by
        # tests/test_nd.py against the exact path.  Non-finite entries
        # fall through so they raise the same error as scalar inputs.
        return FArray(bb.from_floats(values), backend, bb)
    src = np.asarray(values, dtype=object)
    flat = [_exact(v) for v in src.ravel()]
    return _from_bigfloats(flat, src.shape, backend, bb)


def asarray(values, format=None, *, plan: Optional[ExecPlan] = None,
            certified: bool = False, **format_kwargs) -> FArray:
    """``values`` (numbers, BigFloats, nested lists, NumPy arrays, or
    an FArray) as an :class:`FArray` in the given format.

    ``format`` is a registry name or scalar backend; omitted, the
    ambient :func:`~repro.nd.use_format` format applies.  ``plan``
    (default: the ambient :func:`~repro.nd.use_plan` plan) and
    ``certified`` select the representation — see the module docstring
    for the certification tiers.  Conversion is input-side and exact:
    every element becomes an exact BigFloat first, then rounds once
    into the format.
    """
    backend = _resolve_format(format, **format_kwargs)
    plan = resolve_plan(plan, where="nd.asarray")
    bb = _mirror(backend, plan, certified)
    if isinstance(values, FArray):
        if _same_numerics(values._backend, backend):
            if (values._bb is None) == (bb is None):
                return values
            return values._as_mode(bb)
        return values.astype(backend, plan=plan, certified=certified)
    return _convert(values, backend, bb)


array = asarray


def wrap(data, format=None, *, bb=None) -> FArray:
    """An :class:`FArray` over *already-encoded* storage (no value
    conversion): ``bb`` + a packed code array for the vectorized
    representation, or a format + an object array of scalar backend
    values.  This is the kernel-facing constructor; most callers want
    :func:`asarray`.
    """
    if bb is not None:
        return FArray(np.asarray(data, dtype=bb.dtype), bb.scalar, bb)
    backend = _resolve_format(format)
    return FArray(np.asarray(data, dtype=object), backend, None)


def _fill(shape, method: str, backend: Backend, bb) -> FArray:
    """The shared identity-array body: ``method`` is "zeros"/"ones"."""
    if bb is not None:
        return FArray(getattr(bb, method)(shape), backend, bb)
    out = np.empty(shape, dtype=object)
    out[...] = getattr(backend, "zero" if method == "zeros" else "one")()
    return FArray(out, backend, None)


def _filled(shape, method: str, format, plan, certified,
            format_kwargs) -> FArray:
    backend = _resolve_format(format, **format_kwargs)
    plan = resolve_plan(plan, where=f"nd.{method}")
    return _fill(shape, method, backend, _mirror(backend, plan, certified))


def zeros(shape, format=None, *, plan: Optional[ExecPlan] = None,
          certified: bool = False, **format_kwargs) -> FArray:
    """An array of the additive identity (probability 0)."""
    return _filled(shape, "zeros", format, plan, certified, format_kwargs)


def ones(shape, format=None, *, plan: Optional[ExecPlan] = None,
         certified: bool = False, **format_kwargs) -> FArray:
    """An array of the multiplicative identity (probability 1)."""
    return _filled(shape, "ones", format, plan, certified, format_kwargs)


def full(shape, value, format=None, *, plan: Optional[ExecPlan] = None,
         certified: bool = False, **format_kwargs) -> FArray:
    """An array with every element the given probability value."""
    scalar = asarray([value], format, plan=plan, certified=certified,
                     **format_kwargs)
    data = np.broadcast_to(scalar._data.reshape(()), shape)
    return FArray(data, scalar._backend, scalar._bb)


def _like(x: FArray, method: str, shape) -> FArray:
    return _fill(x.shape if shape is None else shape, method,
                 x._backend, x._bb)


def zeros_like(x: FArray, shape=None) -> FArray:
    """Probability-0 array in ``x``'s format *and* representation."""
    return _like(x, "zeros", shape)


def ones_like(x: FArray, shape=None) -> FArray:
    """Probability-1 array in ``x``'s format *and* representation."""
    return _like(x, "ones", shape)


# ----------------------------------------------------------------------
# Structural ops
# ----------------------------------------------------------------------
def _common(arrays: Sequence[FArray]) -> Sequence[FArray]:
    if not arrays:
        raise ValueError("need at least one FArray")
    first = arrays[0]
    if not isinstance(first, FArray):
        raise TypeError("nd structural ops take FArrays; build with "
                        "nd.asarray first")
    return [first] + [first._coerce(a) for a in arrays[1:]]


def concatenate(arrays: Sequence[FArray], axis: int = 0) -> FArray:
    arrays = _common(arrays)
    data = np.concatenate([a._data for a in arrays], axis=axis)
    return FArray(data, arrays[0]._backend, arrays[0]._bb)


def stack(arrays: Sequence[FArray], axis: int = 0) -> FArray:
    arrays = _common(arrays)
    data = np.stack([a._data for a in arrays], axis=axis)
    return FArray(data, arrays[0]._backend, arrays[0]._bb)


def broadcast_to(x: FArray, shape) -> FArray:
    return FArray(np.broadcast_to(x._data, shape), x._backend, x._bb)


def take_along_axis(x: FArray, indices: np.ndarray, axis: int) -> FArray:
    data = np.take_along_axis(x._data, np.asarray(indices), axis=axis)
    return FArray(data, x._backend, x._bb)


# ----------------------------------------------------------------------
# Reductions (module-level spellings)
# ----------------------------------------------------------------------
def sum(x: FArray, axis: Optional[int] = None) -> FArray:  # noqa: A001
    """Index-order probability sum along ``axis`` (see
    :meth:`FArray.sum`)."""
    return x.sum(axis=axis)


def dot(x: FArray, y, axis: int = -1) -> FArray:
    """Sum of elementwise products along ``axis``."""
    return x.dot(y, axis=axis)


def maximum(x: FArray, y) -> FArray:
    """Elementwise larger probability (see :meth:`FArray.maximum`)."""
    return x.maximum(y)


def amax(x: FArray, axis: Optional[int] = None) -> FArray:
    """Largest probability along ``axis`` (see :meth:`FArray.max`)."""
    return x.max(axis=axis)


def argmax(x: FArray, axis: int = -1) -> np.ndarray:
    """First index of the largest probability along ``axis`` (see
    :meth:`FArray.argmax`)."""
    return x.argmax(axis=axis)


def multiply_add(x: FArray, y, z) -> FArray:
    """Fused ``x*y + z`` — identical results to the spelled-out
    expression (both intermediate roundings preserved), but routed
    through the batch mirror's ``axpy`` so decoded-plane mirrors
    (posit) decode each operand once (the PBD recurrence's inner
    step)."""
    ry = x._coerce(y)
    rz = x._coerce(z)
    if ry is None or rz is None:
        raise TypeError("multiply_add operands must be coercible to "
                        "the FArray's format")
    if x._bb is not None:
        out = x._bb.axpy(x._data, ry._data, rz._data)
        if _tele.current() is not None:
            _tally_nd("axpy", x.format, "batch", out)
        return FArray(out, x._backend, x._bb)
    return x * ry + rz


def _matmul(a: FArray, b: FArray) -> FArray:
    """NumPy ``@`` semantics built from mul + the ``sum`` fold (so the
    contraction is certified exactly like every other reduction)."""
    if a.ndim == 0 or b.ndim == 0:
        raise ValueError("matmul needs at least 1-d operands")
    if a.ndim == 1 and b.ndim == 1:
        return (a * b).sum(axis=0)
    if b.ndim == 1:
        return (a * b).sum(axis=-1)
    if a.ndim == 1:
        return (a[:, None] * b).sum(axis=-2)
    return (a[..., :, None] * b[..., None, :, :]).sum(axis=-2)


def logsumexp(x: FArray, axis: Optional[int] = None,
              prec: int = DEFAULT_PRECISION) -> np.ndarray:
    """Natural log of the probability sum along ``axis``, as float64.

    For the ``log`` format this is exactly the code array of
    :func:`sum` (the LSE dataflow the format's fold already *is* —
    sequential Equation-2 folds or the n-ary Equation-3 reduction,
    per the backend's ``sum_mode``).  Other formats sum in their own
    arithmetic, then take the log through the exact BigFloat plane
    (``-inf`` for exact zeros).
    """
    total = x.sum(axis=axis)
    if x.format == "log":
        if total._bb is not None:
            return np.asarray(total._data, dtype=np.float64)
        return np.array(total._data.tolist(),
                        dtype=np.float64).reshape(total.shape)
    from ..bigfloat import functions as bf
    out = np.empty(total.shape, dtype=np.float64)
    flat = out.reshape(-1)
    for i, value in enumerate(total.to_bigfloats()):
        flat[i] = -np.inf if value.is_zero() else \
            bf.log(value, prec).to_float()
    return out


# ----------------------------------------------------------------------
# Fused ops (registry-certified)
# ----------------------------------------------------------------------
def _require_fused(x: FArray, op: str):
    caps = REGISTRY.capabilities(x.format)
    if op not in caps.fused_ops:
        raise ValueError(
            f"format {x.format!r} does not certify {op!r} "
            f"(registry fused_ops: {caps.fused_ops or '()'})")


def fused_sum(x: FArray, axis: Optional[int] = None, *,
              max_limbs: int = 1024) -> FArray:
    """Exact (quire) accumulation along ``axis``, rounded once per
    output element.  Only formats whose registry entry certifies
    ``quire_fused_sum`` (posits) accept this; others raise.
    ``max_limbs`` bounds the accumulator width (large-ES posits need
    multi-thousand-limb quires; raise the bound to force them).
    """
    _require_fused(x, "quire_fused_sum")
    if axis is None:
        return fused_sum(x.ravel(), axis=0, max_limbs=max_limbs)
    env = x.backend.env
    if x._bb is not None:
        from ..engine.quire_batch import fused_sum_batch
        return FArray(fused_sum_batch(env, x._data, axis=axis,
                                      max_limbs=max_limbs),
                      x._backend, x._bb)
    moved = np.moveaxis(x._data, axis, -1)
    out = np.empty(moved.shape[:-1], dtype=object)
    for idx in np.ndindex(*out.shape):
        out[idx] = env.fused_sum(list(moved[idx]))
    return FArray(out, x._backend, None)


def fused_dot(x: FArray, y, axis: int = -1, *,
              max_limbs: int = 1024) -> FArray:
    """Correctly rounded dot product along ``axis`` through the quire
    (one rounding total per output element).  Registry-gated like
    :func:`fused_sum`."""
    _require_fused(x, "quire_fused_dot")
    rhs = x._coerce(y)
    env = x.backend.env
    if x._bb is not None:
        from ..engine.quire_batch import fused_dot_product_batch
        return FArray(fused_dot_product_batch(env, x._data, rhs._data,
                                              axis=axis,
                                              max_limbs=max_limbs),
                      x._backend, x._bb)
    from ..formats.quire import fused_dot_product
    da, db = np.broadcast_arrays(x._data, rhs._data)
    moved_a = np.moveaxis(da, axis, -1)
    moved_b = np.moveaxis(db, axis, -1)
    out = np.empty(moved_a.shape[:-1], dtype=object)
    for idx in np.ndindex(*out.shape):
        out[idx] = fused_dot_product(env, list(moved_a[idx]),
                                     list(moved_b[idx]))
    return FArray(out, x._backend, None)
