"""``repro.nd`` — NumPy-style format-tagged arrays over the execution
plane.

PRs 1-3 built the plane (scalar backends, certified batch mirrors, the
format registry, :class:`~repro.engine.plan.ExecPlan`); this package is
its public front end.  A new numeric experiment is array math, not a
new kernel::

    import repro.nd as nd
    from repro.engine import ExecPlan

    with nd.use_format("posit(32,2)"), nd.use_plan(ExecPlan()):
        p = nd.asarray([0.5, 0.25, 0.125])      # rounds once, exactly
        q = 1 - p                               # scalar broadcasting
        joint = nd.sum(p * q)                   # certified reduction
        print(joint.to_floats())

Dispatch per op: ``FArray op -> registry capability lookup -> batch
kernel (canonical) or scalar fallback`` — see :mod:`repro.nd.farray`
for the representation rules and certification tiers, and
:mod:`repro.nd.context` for the ambient ``use_format``/``use_plan``
state that replaces positional ``(backend, plan)`` threading.

Like :mod:`repro.engine`, the package needs NumPy; it raises on import
where the engine's ``HAVE_NUMPY`` gate is off (the scalar stack in
:mod:`repro.arith` keeps working there).
"""

from .context import current_backend, current_plan, use_format, use_plan
from .farray import (
    FArray,
    amax,
    argmax,
    array,
    asarray,
    broadcast_to,
    concatenate,
    dot,
    fused_dot,
    fused_sum,
    full,
    logsumexp,
    maximum,
    multiply_add,
    ones,
    ones_like,
    stack,
    sum,
    take_along_axis,
    wrap,
    zeros,
    zeros_like,
)

__all__ = [
    "FArray",
    "amax",
    "argmax",
    "array",
    "asarray",
    "broadcast_to",
    "concatenate",
    "current_backend",
    "current_plan",
    "dot",
    "fused_dot",
    "fused_sum",
    "full",
    "logsumexp",
    "maximum",
    "multiply_add",
    "ones",
    "ones_like",
    "stack",
    "sum",
    "take_along_axis",
    "use_format",
    "use_plan",
    "wrap",
    "zeros",
    "zeros_like",
]
