"""Ambient execution context for :mod:`repro.nd`.

Two context managers remove the ``(backend, plan)`` pair that every
pre-``nd`` call site had to thread positionally:

* :func:`use_format` installs an ambient *format* (a scalar
  :class:`~repro.arith.Backend`, built from a registry name on the
  fly), picked up by :func:`repro.nd.asarray` and friends when no
  explicit ``format=`` is passed;
* :func:`use_plan` (re-exported from :mod:`repro.engine.plan`)
  installs an ambient :class:`~repro.engine.plan.ExecPlan`, picked up
  by *every* plan-aware entry point — ``nd`` constructors and the app
  layer alike — when no explicit ``plan=`` is passed.

Both use :mod:`contextvars`, so the ambient state is task- and
thread-local and nests (innermost wins)::

    with nd.use_format("posit(32,2)"), nd.use_plan(ExecPlan(n_workers=4)):
        x = nd.asarray([0.5, 0.25, 0.125])
        total = nd.sum(x * x)
"""

from __future__ import annotations

import contextlib
import contextvars
import functools
from typing import Iterator, Optional, Union

from ..arith.backend import Backend
from ..arith.registry import REGISTRY
from ..engine.plan import current_plan, use_plan  # noqa: F401  (re-export)

_AMBIENT_FORMAT: contextvars.ContextVar[Optional[Backend]] = \
    contextvars.ContextVar("repro_ambient_format", default=None)


def current_backend() -> Optional[Backend]:
    """The ambient scalar backend (innermost :func:`use_format` block),
    or ``None`` outside any block."""
    return _AMBIENT_FORMAT.get()


@contextlib.contextmanager
def use_format(format: Union[str, Backend], **kwargs) -> Iterator[Backend]:
    """Install a format as the ambient default for the enclosed block.

    ``format`` is a registry name (``"binary64"``, ``"log"``,
    ``"posit(32,2)"``, ``"lns(12,50)"``, ``"bigfloat256"``; ``kwargs``
    reach the factory, e.g. ``sum_mode="sequential"`` for log-space) or
    an already-built scalar :class:`~repro.arith.Backend`.  Yields the
    backend so ``with nd.use_format("log") as backend: ...`` works.
    """
    backend = _resolve_format(format, **kwargs)
    token = _AMBIENT_FORMAT.set(backend)
    try:
        yield backend
    finally:
        _AMBIENT_FORMAT.reset(token)


def _resolve_format(format: Union[str, Backend, None] = None,
                    **kwargs) -> Backend:
    """One scalar backend from a name / instance / the ambient context."""
    if format is None:
        backend = current_backend()
        if backend is None:
            raise TypeError(
                "no format given and no ambient format installed; pass "
                "format=<name or Backend> or enter `with nd.use_format(...)`")
        if kwargs:
            raise TypeError("format kwargs require an explicit format name")
        return backend
    if isinstance(format, Backend):
        if kwargs:
            raise TypeError("format kwargs require a format *name*, not an "
                            "already-built backend")
        return format
    if isinstance(format, str):
        if not kwargs:
            return _default_backend(format)
        return REGISTRY.create(format, **kwargs)
    raise TypeError(f"format must be a registry name or Backend, "
                    f"got {type(format).__name__}")


@functools.lru_cache(maxsize=64)
def _default_backend(name: str) -> Backend:
    """One shared default-constructed backend per format name.

    Repeated ``nd.asarray(values, "lns(12,50)")`` calls must reuse one
    backend instance so the registry's weak-keyed mirror memoization
    holds (BatchLNS's exact Gaussian-log table in particular survives
    across calls instead of restarting cold).  Kwarg-customized
    backends are deliberately not cached — their numerics differ.
    """
    return REGISTRY.create(name)


__all__ = [
    "current_backend",
    "current_plan",
    "use_format",
    "use_plan",
]
