"""Table III: resource use of forward-algorithm units (model vs paper)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..hw.forward_unit import ForwardUnit
from ..hw.pe import LOG, POSIT
from ..hw.resources import reduction_pct
from ..report.tables import render_table

H_VALUES = (13, 32, 64, 128)


@dataclass
class Table3Row:
    style: str
    h: int
    model: dict
    paper: Optional[dict]


def run() -> List[Table3Row]:
    rows = []
    for h in H_VALUES:
        for style in (LOG, POSIT):
            unit = ForwardUnit(style, h)
            r = unit.resources()
            model = {"CLB": unit.clb(), "LUT": r.lut, "Register": r.register,
                     "DSP": r.dsp, "SRAM": r.sram}
            rows.append(Table3Row(style, h, model, unit.paper_reported()))
    return rows


def reduction_rows(rows: List[Table3Row]) -> List[dict]:
    by_key = {(r.style, r.h): r for r in rows}
    out = []
    for h in H_VALUES:
        log_row = by_key[(LOG, h)].model
        posit_row = by_key[(POSIT, h)].model
        out.append({
            "H": h,
            "LUT reduction %": reduction_pct(log_row["LUT"], posit_row["LUT"]),
            "Register reduction %": reduction_pct(log_row["Register"],
                                                  posit_row["Register"]),
            "DSP reduction %": reduction_pct(log_row["DSP"], posit_row["DSP"]),
        })
    return out


def render(rows: List[Table3Row]) -> str:
    table = []
    for r in rows:
        row = {"style": "posit(64,18)" if r.style == POSIT else "Logarithm",
               "H": r.h}
        row.update({f"model {k}": v for k, v in r.model.items()})
        if r.paper:
            row["paper LUT"] = r.paper["LUT"]
            row["paper Register"] = r.paper["Register"]
        table.append(row)
    parts = [render_table(table, title="Table III: Resource Use of Forward "
                                       "Algorithm Units (model vs paper)"),
             "",
             render_table(reduction_rows(rows),
                          title="posit(64,18) reductions vs log "
                                "(paper: ~60% LUT, ~39-48% Register/DSP)")]
    return "\n".join(parts)
