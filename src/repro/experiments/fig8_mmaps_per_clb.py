"""Figure 8: performance per resource unit (MMAPS per CLB) of log vs
posit column units across the D0-D7 dataset shapes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..hw.column_unit import ColumnUnit, paper_scale_shapes
from ..hw.pe import LOG, POSIT
from ..report.tables import render_table


@dataclass
class Fig8Row:
    dataset: str
    posit_mmaps_per_clb: float
    log_mmaps_per_clb: float

    @property
    def ratio(self) -> float:
        return self.posit_mmaps_per_clb / self.log_mmaps_per_clb


def run(seed: int = 0, n_datasets: int = 8) -> List[Fig8Row]:
    posit_unit = ColumnUnit(POSIT)
    log_unit = ColumnUnit(LOG)
    rows = []
    for shape in paper_scale_shapes(seed=seed, n_datasets=n_datasets):
        rows.append(Fig8Row(shape.name,
                            posit_unit.mmaps_per_clb(shape),
                            log_unit.mmaps_per_clb(shape)))
    return rows


def render(rows: List[Fig8Row]) -> str:
    table = [{
        "dataset": r.dataset,
        "posit MMAPS/CLB": r.posit_mmaps_per_clb,
        "log MMAPS/CLB": r.log_mmaps_per_clb,
        "ratio": r.ratio,
    } for r in rows]
    return (render_table(table, title="Figure 8: MMAPS per CLB unit")
            + "\nPaper claim: posit column units deliver ~2x MMAPS per CLB.")
