"""On-disk result cache for the experiment runner.

Re-running a figure with unchanged inputs should be a no-op: the cache
key is a blake2b digest of **code + params** —

* the source bytes of every ``repro`` module (hashed once per process),
  so *any* code change invalidates every entry, conservatively;
* the experiment id and the run parameters (scale, batch, workers, ...).

Entries live under ``.repro-cache/`` (override with ``cache_dir`` or
``$REPRO_CACHE_DIR``) as ``<experiment>-<digest>.json`` files holding
the rendered report plus metadata.  Invalidation is therefore automatic
on code or parameter changes; to force a recomputation by hand, delete
the directory (or pass ``--refresh`` to the CLI).

Only the rendered text is cached — result objects hold BigFloats and
backend values whose round-trip fidelity is not worth guaranteeing
here; the runner re-renders from text on a hit and skips ``run``.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import time
from typing import Optional

from .. import faults as _faults
from .. import telemetry as _tele

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"


def cache_directory(cache_dir: Optional[str] = None) -> str:
    if cache_dir is not None:
        return cache_dir
    return os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)


@functools.lru_cache(maxsize=1)
def code_digest() -> str:
    """blake2b over every ``repro`` source file (path + bytes, sorted).

    Hashing the whole package is deliberate: experiments reach through
    apps, formats and the engine, so a narrower hash would risk stale
    hits after a dependency-module change.  The tree is ~100 small
    files; one pass per process is negligible next to any experiment.
    """
    import repro
    root = os.path.dirname(os.path.abspath(repro.__file__))
    digest = hashlib.blake2b(digest_size=16)
    for dirpath, dirnames, filenames in sorted(os.walk(root)):
        dirnames.sort()
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            digest.update(os.path.relpath(path, root).encode())
            with open(path, "rb") as f:
                digest.update(f.read())
    return digest.hexdigest()


def params_key(experiment_id: str, params: dict) -> str:
    """Deterministic digest of one run's identity: code + id + params."""
    payload = json.dumps({"code": code_digest(), "experiment": experiment_id,
                          "params": params}, sort_keys=True)
    return hashlib.blake2b(payload.encode(), digest_size=16).hexdigest()


def _entry_path(directory: str, experiment_id: str, key: str) -> str:
    return os.path.join(directory, f"{experiment_id}-{key}.json")


def text_checksum(text: str) -> str:
    """Content checksum stored inside every entry (integrity check)."""
    return hashlib.blake2b(text.encode(), digest_size=16).hexdigest()


def _corrupt_miss(path: str) -> None:
    """A torn/corrupt entry: signal it, delete it, count the miss.

    Before PR 10 a torn entry was silently a miss forever (the file
    stayed, failing every load); now it is deleted so the next store
    rewrites it, and ``cache.corrupt`` makes the damage observable.
    """
    _tele.event("cache.corrupt")
    _tele.count("cache.miss")
    try:
        os.remove(path)
    except OSError:
        pass


def load(experiment_id: str, params: dict,
         cache_dir: Optional[str] = None) -> Optional[dict]:
    """The cached entry for this (code, experiment, params), or None.

    A missing file is a plain miss; an unreadable, truncated, or
    checksum-failing entry is corruption — counted as a
    ``cache.corrupt`` event, deleted, and treated as a miss.  The
    ``cache.read`` fault site can truncate the raw bytes (``corrupt``
    mode) or fail the read (``error`` mode) to exercise exactly that
    path.
    """
    directory = cache_directory(cache_dir)
    path = _entry_path(directory, experiment_id, params_key(experiment_id,
                                                            params))
    try:
        with open(path, "rb") as f:
            raw = f.read()
    except OSError:
        _tele.count("cache.miss")
        return None
    try:
        if _faults.fire("cache.read",
                        key=os.path.basename(path)) == "corrupt":
            raw = raw[:len(raw) // 2]
    except _faults.InjectedFault:
        _corrupt_miss(path)
        return None
    try:
        entry = json.loads(raw.decode())
        if not isinstance(entry, dict):
            raise ValueError("entry is not an object")
    except (UnicodeDecodeError, ValueError):
        _corrupt_miss(path)
        return None
    if entry.get("checksum") != text_checksum(entry.get("text") or ""):
        _corrupt_miss(path)
        return None
    if entry.get("experiment") != experiment_id:
        _tele.count("cache.miss")
        return None
    _tele.count("cache.hit")
    _tele.count("cache.hit_bytes", len(entry.get("text") or ""))
    return entry


def store(experiment_id: str, params: dict, text: str,
          cache_dir: Optional[str] = None,
          elapsed_seconds: Optional[float] = None) -> str:
    """Persist one rendered report; returns the entry path."""
    directory = cache_directory(cache_dir)
    os.makedirs(directory, exist_ok=True)
    key = params_key(experiment_id, params)
    entry = {
        "experiment": experiment_id,
        "params": params,
        "code_digest": code_digest(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "elapsed_seconds": elapsed_seconds,
        "checksum": text_checksum(text),
        "text": text,
    }
    path = _entry_path(directory, experiment_id, key)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as f:
        json.dump(entry, f, indent=1)
    os.replace(tmp, path)  # atomic: concurrent runners can't tear entries
    _tele.count("cache.store")
    _tele.count("cache.store_bytes", len(text))
    return path


def clear(cache_dir: Optional[str] = None) -> int:
    """Delete every cache entry; returns the number removed."""
    directory = cache_directory(cache_dir)
    removed = 0
    try:
        names = os.listdir(directory)
    except OSError:
        return 0
    for name in names:
        if name.endswith(".json"):
            os.remove(os.path.join(directory, name))
            removed += 1
    return removed
