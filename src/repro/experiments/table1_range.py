"""Table I: dynamic range and precision of binary64 and posit(64,ES)."""

from __future__ import annotations

from typing import List

from ..core.rangetable import RangeRow, table1_rows
from ..report.tables import render_table


def run() -> List[RangeRow]:
    return table1_rows()


def render(rows: List[RangeRow]) -> str:
    return render_table([r.render() for r in rows],
                        title="Table I: Dynamic Range and Precision")
