"""Figure 3: accuracy of individual add/mul operations by result
magnitude, for binary64 / log / posit(64,{9,12,18}).

The paper measures 1,000,000 additions and 550,000 multiplications with
results spanning 2**-10000..1; the scaled presets keep every bin
populated with enough samples for stable percentiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..arith.backends import standard_backends
from ..core.analysis import SweepResult, run_op_sweep
from ..engine.plan import ExecPlan, resolve_plan
from ..core.sweep import FIG3_BINS, bin_label
from ..report.boxplot import axis_bounds, render_box_panel
from ..report.tables import render_table

#: samples per (op, bin).  The paper's totals are ~111k adds/bin and
#: ~61k muls/bin; percentiles stabilize far earlier.
SCALES = {"test": 25, "bench": 250, "full": 2_000}


@dataclass
class Fig3Result:
    add: SweepResult
    mul: SweepResult
    per_bin: int


def run(scale: str = "bench", seed: int = 0,
        backends: Optional[Dict] = None,
        plan: Optional[ExecPlan] = None) -> Fig3Result:
    """Run the Figure 3 sweep.

    The canonical path measures through the vectorized engine backends
    (identical results); ``plan.n_workers`` distributes bins across
    worker processes via :mod:`repro.engine.runner` — the path for
    ``full`` scale runs, where a serial loop dominates wall-clock.
    """
    plan = resolve_plan(plan, where="fig3_op_accuracy.run")
    per_bin = SCALES[scale]
    if backends is None:
        backends = standard_backends()
    add = run_op_sweep("add", backends, per_bin=per_bin, seed=seed,
                       plan=plan)
    mul = run_op_sweep("mul", backends, per_bin=per_bin, seed=seed + 1,
                       plan=plan)
    return Fig3Result(add, mul, per_bin)


def _panel_rows(sweep: SweepResult) -> list:
    rows = []
    for bin_range in FIG3_BINS:
        cell = sweep.boxes[bin_range]
        row = {"result exponent": bin_label(bin_range)}
        for fmt in ("binary64", "log", "posit(64,9)", "posit(64,12)",
                    "posit(64,18)"):
            stats = cell.get(fmt)
            row[fmt] = (None if stats is None or stats.median is None
                        else round(stats.median, 2))
        rows.append(row)
    return rows


def _box_rows(sweep: SweepResult, bin_range) -> list:
    rows = []
    for fmt in ("binary64", "log", "posit(64,9)", "posit(64,12)",
                "posit(64,18)"):
        stats = sweep.boxes[bin_range].get(fmt)
        if stats is None or stats.median is None:
            rows.append({"label": fmt, "p5": None, "p25": None,
                         "median": None, "p75": None, "p95": None})
        else:
            rows.append({"label": fmt, "p5": stats.p5, "p25": stats.p25,
                         "median": stats.median, "p75": stats.p75,
                         "p95": stats.p95})
    return rows


def _box_panels(sweep: SweepResult, op_name: str) -> str:
    panels = []
    for bin_range in (FIG3_BINS[0], FIG3_BINS[-1]):
        rows = _box_rows(sweep, bin_range)
        lo, hi = axis_bounds(rows)
        panels.append(render_box_panel(
            rows, lo, hi,
            title=f"{op_name} accuracy boxes, result exponent "
                  f"{bin_label(bin_range)} (log10 rel err axis)"))
    return "\n\n".join(panels)


def render(result: Fig3Result) -> str:
    parts = [
        render_table(_panel_rows(result.add),
                     title=f"Figure 3(a): median log10 relative error, "
                           f"addition (n={result.per_bin}/bin)"),
        "",
        render_table(_panel_rows(result.mul),
                     title=f"Figure 3(b): median log10 relative error, "
                           f"multiplication (n={result.per_bin}/bin)"),
        "",
        _box_panels(result.add, "Addition"),
        "",
        "Paper claims: log worse than binary64 inside the normal range and",
        "degrading as numbers shrink; posits beat log outside the range",
        "except posit(64,9) in the deepest bins; posit(64,18) steadiest.",
    ]
    return "\n".join(parts)
