"""Persistence for experiment outputs: plain-text reports and structured
JSON (so downstream tooling can diff runs without parsing tables)."""

from __future__ import annotations

import dataclasses
import json
import os
import time
from typing import Any, Optional


def _jsonable(obj: Any):
    """Best-effort conversion of experiment result objects to JSON."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: _jsonable(getattr(obj, f.name))
                for f in dataclasses.fields(obj)}
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if hasattr(obj, "rows") and callable(obj.rows):
        return _jsonable(obj.rows())
    if hasattr(obj, "render") and callable(obj.render):
        return _jsonable(obj.render())
    return repr(obj)


def save_report(directory: str, experiment_id: str, text: str,
                result: Optional[Any] = None, scale: str = "bench") -> dict:
    """Write ``<id>.txt`` (the rendered report) and ``<id>.json``
    (structured result + metadata).  Returns the paths written."""
    os.makedirs(directory, exist_ok=True)
    txt_path = os.path.join(directory, f"{experiment_id}.txt")
    with open(txt_path, "w") as f:
        f.write(text)
        if not text.endswith("\n"):
            f.write("\n")
    paths = {"txt": txt_path}
    if result is not None:
        payload = {
            "experiment": experiment_id,
            "scale": scale,
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "result": _jsonable(result),
        }
        json_path = os.path.join(directory, f"{experiment_id}.json")
        with open(json_path, "w") as f:
            json.dump(payload, f, indent=1, default=repr)
        paths["json"] = json_path
    return paths


def load_report(directory: str, experiment_id: str) -> dict:
    """Load a previously saved JSON result."""
    with open(os.path.join(directory, f"{experiment_id}.json")) as f:
        return json.load(f)
