"""Table IV: resource use of column units (model vs paper) and the SLR
floor-planning consequence (Section VI.C)."""

from __future__ import annotations

from ..hw.column_unit import ColumnUnit
from ..hw.floorplan import replication_speedup, units_per_slr
from ..hw.pe import LOG, POSIT
from ..hw.resources import reduction_row
from ..report.tables import render_table


def run() -> dict:
    log_unit = ColumnUnit(LOG)
    posit_unit = ColumnUnit(POSIT)
    out = {"rows": [], "reduction": None, "floorplan": None}
    for name, unit in (("Logarithm", log_unit), ("posit(64,12)", posit_unit)):
        r = unit.resources()
        paper = unit.paper_reported()
        out["rows"].append({
            "unit": name, "# of PEs": unit.n_pes,
            "model CLB": unit.clb(), "model LUT": r.lut,
            "model Register": r.register, "model DSP": r.dsp,
            "paper LUT": paper["LUT"], "paper Register": paper["Register"],
            "paper DSP": paper["DSP"],
        })
    out["reduction"] = reduction_row(log_unit.resources(),
                                     posit_unit.resources())
    out["floorplan"] = {
        "log_per_slr": units_per_slr(log_unit.resources()),
        "posit_per_slr": units_per_slr(posit_unit.resources()),
        "replication": replication_speedup(log_unit.resources(),
                                           posit_unit.resources(),
                                           single_unit_speedup=1.2),
    }
    return out


def render(result: dict) -> str:
    parts = [render_table(result["rows"],
                          title="Table IV: Resource Use of Column Units")]
    red = result["reduction"]
    parts.append(f"posit reductions: LUT {red['LUT']:.1f}%, "
                 f"Register {red['Register']:.1f}%, DSP {red['DSP']:.1f}% "
                 f"(paper: 64.1% / 50.3% / 60.4%)")
    fp = result["floorplan"]
    parts.append(f"SLR fit: {fp['log_per_slr'].units_per_slr} log units vs "
                 f"{fp['posit_per_slr'].units_per_slr} posit units per SLR "
                 f"(paper: 4 vs 10); whole-FPGA speedup "
                 f"{fp['replication']['whole_fpga_speedup']:.1f}x")
    return "\n".join(parts)
