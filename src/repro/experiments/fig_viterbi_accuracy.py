"""Viterbi decoding accuracy vs the BigFloat oracle, per format.

Two things can degrade under a finite format: the best path's *score*
(rounds like any product chain — measured as log10 relative error
against the oracle score) and the decoded *path itself* (rounded
scores can reorder candidates at an argmax, flipping a decision —
measured as the fraction of sequences whose full path matches the
oracle's).  Max itself is exact in every format, so any path
divergence is attributable to the × chain's rounding, never to the
recombination — the cleanest view of format-induced decision error
the repo has.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..arith.backends import BigFloatBackend
from ..core.accuracy import UNDERFLOW, score_value
from ..data.dirichlet import sample_hmm
from ..engine.plan import ExecPlan, resolve_plan
from ..report.tables import render_table
from ..workloads.viterbi import viterbi_batch

#: (number of sequences, sequence length).
SCALES = {"test": (6, 12), "bench": (24, 40), "full": (96, 120)}

FORMATS = ("binary64", "log", "posit(64,9)", "posit(64,12)",
           "lns(12,50)")

N_STATES = 4
N_SYMBOLS = 5


@dataclass
class ViterbiAccuracyResult:
    n_seqs: int
    length: int
    #: format -> list of log10 relative errors of best-path scores.
    errors: Dict[str, List[float]]
    #: format -> count of sequences whose score underflowed to zero.
    underflows: Dict[str, int]
    #: format -> fraction of sequences with the oracle's exact path.
    path_agreement: Dict[str, float]

    def rows(self) -> List[dict]:
        out = []
        for fmt in FORMATS:
            errs = self.errors[fmt]
            out.append({
                "format": fmt,
                "median log10 err": round(float(np.median(errs)), 2)
                if errs else None,
                "path agreement": round(self.path_agreement[fmt], 2),
                "underflow": self.underflows[fmt],
            })
        return out


def run(scale: str = "bench", seed: int = 0,
        plan: Optional[ExecPlan] = None) -> ViterbiAccuracyResult:
    """Decode a batch of random sequences under one sampled model in
    every format and against the oracle (identical results for every
    plan — max/argmax are plan-invariant and the × chain follows the
    registry's certification)."""
    plan = resolve_plan(plan, where="fig_viterbi_accuracy.run")
    n_seqs, length = SCALES[scale]
    hmm = sample_hmm(N_STATES, N_SYMBOLS, length, seed=seed)
    rng = np.random.default_rng(seed + 1)
    obs = rng.integers(0, N_SYMBOLS, size=(n_seqs, length))
    oracle = BigFloatBackend(256)
    truth = viterbi_batch(hmm, oracle, obs, plan=plan)
    errors: Dict[str, List[float]] = {}
    underflows: Dict[str, int] = {}
    agreement: Dict[str, float] = {}
    for fmt in FORMATS:
        decoded = viterbi_batch(hmm, fmt, obs, plan=plan)
        from ..nd.context import _resolve_format
        backend = _resolve_format(fmt)
        errs: List[float] = []
        n_uf = 0
        n_match = 0
        for got, ref in zip(decoded, truth):
            if list(got.path) == list(ref.path):
                n_match += 1
            res = score_value(backend, got.score,
                              oracle.to_bigfloat(ref.score))
            if res.status == UNDERFLOW:
                n_uf += 1
            elif res.ok:
                errs.append(res.log10_error)
        errors[fmt] = errs
        underflows[fmt] = n_uf
        agreement[fmt] = n_match / n_seqs
    return ViterbiAccuracyResult(n_seqs, length, errors, underflows,
                                 agreement)


def render(result: ViterbiAccuracyResult) -> str:
    return render_table(
        result.rows(),
        title=f"Viterbi decoding accuracy vs oracle "
              f"(n={result.n_seqs} sequences, T={result.length}; "
              f"path agreement = fraction decoding the oracle's path)")
