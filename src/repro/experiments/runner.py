"""Experiment registry and CLI entry point.

Usage::

    python -m repro.experiments                   # list experiments
    python -m repro.experiments --formats         # format registry table
    python -m repro.experiments fig3              # run one (bench scale)
    python -m repro.experiments --all --scale test
    python -m repro.experiments fig3 --workers 4
    python -m repro.experiments fig10 --serial    # legacy scalar loops
    python -m repro.experiments fig6 --measure    # software MMAPS columns
    python -m repro.experiments --all --refresh   # ignore cached results

(``python -m repro.experiments.runner`` still works.)

The CLI flags assemble one :class:`~repro.engine.plan.ExecPlan` that is
threaded through every plan-aware experiment: the vectorized engine is
the default execution plane, ``--serial`` forces the legacy scalar
loops (results are identical — that is the certification), and
``--workers`` fans supported sweeps across processes.  Rendered reports
are cached under ``.repro-cache/`` keyed on code + params
(:mod:`repro.experiments.cache`), so re-running a figure with unchanged
inputs performs no recomputation; ``--no-cache`` bypasses the cache
entirely and ``--refresh`` recomputes and overwrites.

Dispatch itself goes through the typed entry-layer contract of
:mod:`repro.service`: each target becomes a
``WorkloadRequest(kind="experiment", ...)`` executed by the same
single-request dispatcher the evaluation server uses, so the CLI and
the service cannot drift apart.
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time
from typing import Callable, Dict, NamedTuple, Optional

from .. import telemetry
from ..engine.plan import DEFAULT_PLAN, ExecPlan, resolve_plan
from . import cache as result_cache

from . import (
    bitbudget_curves,
    fig1_alpha_exponent,
    fig3_op_accuracy,
    fig6_forward_perf,
    fig7_column_perf,
    fig8_mmaps_per_clb,
    fig9_pvalue_accuracy,
    fig10_vicar_cdf,
    fig11_lofreq_cdf,
    fig_kalman_accuracy,
    fig_pairhmm_accuracy,
    fig_viterbi_accuracy,
    scorecard,
    table1_range,
    table2_units,
    table3_forward_resources,
    table4_column_resources,
)
from .io import save_report


class Experiment(NamedTuple):
    experiment_id: str
    description: str
    run: Callable
    render: Callable
    scalable: bool  # whether run() takes a scale argument
    #: True when plan.measure adds wall-clock measurements to the
    #: result (fig6's software MMAPS columns): such runs are never
    #: cached, since replaying a stale timing would masquerade as a
    #: fresh one.
    measures_wallclock: bool = False


REGISTRY: Dict[str, Experiment] = {
    "fig1": Experiment("fig1", "alpha exponent vs iteration",
                       fig1_alpha_exponent.run, fig1_alpha_exponent.render, True),
    "table1": Experiment("table1", "dynamic range and precision",
                         table1_range.run, table1_range.render, False),
    "fig3": Experiment("fig3", "individual op accuracy by magnitude",
                       fig3_op_accuracy.run, fig3_op_accuracy.render, True),
    "table2": Experiment("table2", "arithmetic unit resources",
                         table2_units.run, table2_units.render, False),
    "fig6": Experiment("fig6", "forward unit performance",
                       fig6_forward_perf.run, fig6_forward_perf.render, False,
                       measures_wallclock=True),
    "fig7": Experiment("fig7", "column unit performance",
                       fig7_column_perf.run, fig7_column_perf.render, False),
    "fig8": Experiment("fig8", "MMAPS per CLB",
                       fig8_mmaps_per_clb.run, fig8_mmaps_per_clb.render, False),
    "table3": Experiment("table3", "forward unit resources",
                         table3_forward_resources.run,
                         table3_forward_resources.render, False),
    "table4": Experiment("table4", "column unit resources",
                         table4_column_resources.run,
                         table4_column_resources.render, False),
    "fig9": Experiment("fig9", "p-value accuracy by magnitude",
                       fig9_pvalue_accuracy.run, fig9_pvalue_accuracy.render, True),
    "fig10": Experiment("fig10", "VICAR likelihood accuracy CDFs",
                        fig10_vicar_cdf.run, fig10_vicar_cdf.render, True),
    "fig11": Experiment("fig11", "LoFreq p-value accuracy CDFs",
                        fig11_lofreq_cdf.run, fig11_lofreq_cdf.render, True),
    "viterbi": Experiment("viterbi",
                          "Viterbi decoding accuracy and path agreement",
                          fig_viterbi_accuracy.run,
                          fig_viterbi_accuracy.render, True),
    "pairhmm": Experiment("pairhmm",
                          "pair-HMM alignment likelihood accuracy",
                          fig_pairhmm_accuracy.run,
                          fig_pairhmm_accuracy.render, True),
    "kalman": Experiment("kalman",
                         "Kalman filter cancellation accuracy",
                         fig_kalman_accuracy.run,
                         fig_kalman_accuracy.render, True),
    "bitbudget": Experiment("bitbudget",
                            "bit-budget analysis (Section II.C/III)",
                            bitbudget_curves.run, bitbudget_curves.render,
                            False),
    "scorecard": Experiment("scorecard",
                            "headline-claim reproduction scorecard",
                            scorecard.run, scorecard.render, False),
}


def _cache_params(exp: Experiment, scale: str) -> dict:
    """The parameter dict a run's cache entry is keyed on.

    Only result-affecting inputs belong here: ``scale`` for scalable
    experiments.  The :class:`ExecPlan` is deliberately excluded — the
    execution plane's contract is that batching, group width and worker
    count cannot change a result (wall-clock-*measuring* runs are never
    cached at all).
    """
    params: dict = {}
    if exp.scalable:
        params["scale"] = scale
    return params


def run_experiment(experiment_id: str, scale: str = "bench",
                   out_dir: Optional[str] = None,
                   plan: Optional[ExecPlan] = None,
                   use_cache: bool = False,
                   cache_dir: Optional[str] = None,
                   refresh: bool = False) -> str:
    """Run one experiment and return its rendered report; optionally
    persist text + JSON under ``out_dir``.

    The ``plan`` is forwarded to experiments whose ``run`` accepts one
    and ignored elsewhere.  With ``use_cache=True`` the rendered report
    is looked up in / stored to the on-disk result cache
    (:mod:`repro.experiments.cache`); a hit skips ``run`` entirely.
    The plan's cache policy refines that: ``"off"`` disables the cache,
    ``"refresh"`` (or ``refresh=True``) recomputes and overwrites the
    entry.  Two situations always recompute: ``out_dir`` (the
    structured JSON report needs the live result object, which is not
    cached) and wall-clock-measuring runs (fig6 with ``plan.measure`` —
    a replayed timing would masquerade as a fresh measurement).
    """
    plan = resolve_plan(plan, where="run_experiment")
    text, _hit = _run_experiment(experiment_id, scale, out_dir, plan,
                                 use_cache, cache_dir, refresh)
    return text


def _run_experiment(experiment_id, scale, out_dir, plan,
                    use_cache, cache_dir, refresh):
    """(rendered text, served-from-cache) for one experiment run."""
    exp = REGISTRY[experiment_id]
    if plan is None:
        plan = DEFAULT_PLAN
    kwargs = {}
    if "plan" in inspect.signature(exp.run).parameters:
        kwargs["plan"] = plan
    if plan.cache == "off":
        use_cache = False
    refresh = refresh or plan.cache == "refresh"
    if out_dir is not None or (exp.measures_wallclock and plan.measure):
        use_cache = False
    key_params = _cache_params(exp, scale)
    if use_cache and not refresh:
        entry = result_cache.load(experiment_id, key_params,
                                  cache_dir=cache_dir)
        if entry is not None:
            return entry["text"], True
    start = time.perf_counter()
    result = exp.run(scale, **kwargs) if exp.scalable else exp.run(**kwargs)
    text = exp.render(result)
    if use_cache:
        result_cache.store(experiment_id, key_params, text,
                           cache_dir=cache_dir,
                           elapsed_seconds=time.perf_counter() - start)
    if out_dir is not None:
        save_report(out_dir, experiment_id, text, result, scale)
    return text, False


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Reproduce tables/figures from 'Design and accuracy "
                    "trade-offs in Computational Statistics' (IISWC 2025)")
    parser.add_argument("experiment", nargs="?", default=None,
                        help="experiment id (e.g. fig3) or 'all'")
    parser.add_argument("--all", action="store_true", dest="run_all",
                        help="run every figure/table (same as the 'all' "
                             "positional)")
    parser.add_argument("--formats", action="store_true",
                        help="print the format registry table "
                             "(exactness class, batch mirror, fused ops) "
                             "and exit")
    parser.add_argument("--scale", default="bench",
                        choices=("test", "bench", "full"))
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="also write <id>.txt and <id>.json here")
    parser.add_argument("--serial", action="store_true",
                        help="force the legacy scalar loops instead of the "
                             "vectorized repro.engine kernels (identical "
                             "results; the throughput baseline)")
    parser.add_argument("--measure", action="store_true",
                        help="collect software wall-clock measurements "
                             "where supported (fig6's MMAPS columns)")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="fan supported sweeps across N worker "
                             "processes (implies chunked generation)")
    parser.add_argument("--batch-size", type=int, default=None, metavar="B",
                        help="cap the number of elements per vectorized "
                             "kernel call (default: one pass)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="result cache location (default .repro-cache, "
                             "or $REPRO_CACHE_DIR)")
    parser.add_argument("--no-cache", action="store_true",
                        help="neither read nor write the result cache")
    parser.add_argument("--refresh", action="store_true",
                        help="recompute even on a cache hit, overwriting "
                             "the entry")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="collect telemetry and write a JSONL span "
                             "trace (one line per closed span plus a "
                             "final summary line) to PATH")
    parser.add_argument("--stats", action="store_true",
                        help="collect telemetry and print the aggregate "
                             "counter/span/event table after the run")
    args = parser.parse_args(argv)
    if args.formats:
        from ..arith.registry import REGISTRY as FORMATS
        print(FORMATS.describe())
        return 0
    if args.run_all and args.experiment not in (None, "all"):
        parser.error(f"--all conflicts with the named experiment "
                     f"{args.experiment!r}; pass one or the other")
    if args.experiment is None and not args.run_all:
        print("Available experiments:")
        for exp in REGISTRY.values():
            print(f"  {exp.experiment_id:8s} {exp.description}")
        return 0
    if args.run_all or args.experiment == "all":
        targets = list(REGISTRY)
    else:
        targets = [args.experiment]
    plan = ExecPlan(
        batch=not args.serial,
        batch_size=args.batch_size,
        n_workers=args.workers,
        measure=args.measure,
        cache="off" if args.no_cache
              else ("refresh" if args.refresh else "auto"))
    for target in targets:
        if target not in REGISTRY:
            print(f"unknown experiment {target!r}", file=sys.stderr)
            return 2
    # The CLI speaks the same typed entry-layer contract as the
    # evaluation server: each target becomes a WorkloadRequest routed
    # through repro.service's single-request dispatcher, so there is
    # exactly one experiment dispatch path in the codebase.
    from ..service.api import ServiceError, WorkloadRequest
    from ..service.workloads import execute as execute_workload
    collecting = args.trace is not None or args.stats
    scope = telemetry.collect(trace=args.trace) if collecting else None
    collector = scope.__enter__() if scope is not None else None
    try:
        for target in targets:
            start = time.perf_counter()
            print(f"\n===== {target} =====")
            request = WorkloadRequest(
                kind="experiment",
                payload={"experiment_id": target, "scale": args.scale,
                         "out_dir": args.out,
                         "use_cache": not args.no_cache,
                         "cache_dir": args.cache_dir,
                         "refresh": args.refresh},
                plan=plan, request_id=f"cli-{target}")
            try:
                with telemetry.span(f"experiment.{target}"):
                    result = execute_workload(request)
            except ServiceError as exc:
                print(f"{target}: {exc}", file=sys.stderr)
                return 2
            print(result.values[0])
            note = " (cached)" if result.stats.get("cached") else ""
            print(f"[{target} finished in "
                  f"{time.perf_counter() - start:.1f}s{note}]")
    finally:
        if scope is not None:
            scope.__exit__(None, None, None)
    if collector is not None and args.stats:
        print("\n===== telemetry =====")
        print(collector.report())
    if collector is not None and args.trace is not None:
        print(f"[telemetry trace written to {args.trace}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
