"""Figure 11: CDFs of p-value relative error in LoFreq, split into
critical (p < 2**-200) and non-critical columns, for log and the three
posit configurations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..apps.lofreq import LoFreqResult, run_lofreq
from ..arith.backends import standard_backends
from ..data.genome import synth_dataset
from ..engine.plan import ExecPlan, resolve_plan
from ..report.cdf import CDF, cdf_table
from ..report.tables import render_table

#: columns per synthetic dataset pass.
SCALES = {"test": 10, "bench": 40, "full": 120}

FORMATS = ("log", "posit(64,9)", "posit(64,12)", "posit(64,18)")


@dataclass
class Fig11Result:
    lofreq: LoFreqResult

    def cdfs(self, critical: bool) -> Dict[str, CDF]:
        return {fmt: CDF.from_samples(
            fmt, self.lofreq.errors(fmt, critical=critical,
                                    include_extreme=False))
            for fmt in FORMATS}


def run(scale: str = "bench", seed: int = 0,
        plan: Optional[ExecPlan] = None) -> Fig11Result:
    """Column p-values flow through the batched engine (identical
    results for every plan; see ``repro.apps.lofreq``)."""
    plan = resolve_plan(plan, where="fig11_lofreq_cdf.run")
    n_columns = SCALES[scale]
    dataset = synth_dataset("fig11", n_columns, seed=seed,
                            critical_fraction=0.5, deep_fraction=0.15)
    backends = {f: b for f, b in
                standard_backends(underflow="flush").items() if f in FORMATS}
    return Fig11Result(run_lofreq(dataset.columns, backends, plan=plan))


def render(result: Fig11Result) -> str:
    parts = []
    for critical, label in ((True, "critical p < 2^-200"),
                            (False, "non-critical p >= 2^-200")):
        cdfs = result.cdfs(critical)
        parts.append(render_table(
            cdf_table(cdfs),
            title=f"Figure 11 ({label}): CDF of p-value relative error"))
        parts.append("")
    parts.append("Paper claims: 99% of posit(64,12) critical results < 1e-10 "
                 "vs 60% for log; posit(64,9) best on non-critical values.")
    return "\n".join(parts)
