"""Reproduction scorecard: every headline claim of the paper evaluated
quickly, with a pass/fail verdict — the repo's one-page summary.

Runs in a few seconds (scaled workloads); the full evidence lives in the
individual experiments and the benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

import numpy as np

from ..report.tables import render_table


@dataclass
class Claim:
    claim_id: str
    statement: str  # the paper's claim
    measured: str  # what we observed
    holds: bool


def _claim_table1() -> Claim:
    from ..core.rangetable import posit_row
    ok = (posit_row(9).smallest_scale == -31_744
          and posit_row(18).smallest_scale == -16_252_928)
    return Claim("table1", "posit(64,ES) ranges per Table I",
                 "minpos scales computed from the codec match all 6 rows",
                 ok)


def _claim_log_precision_loss() -> Claim:
    from ..arith.backends import Binary64Backend, LogSpaceBackend
    from ..core.accuracy import measure_op
    from ..formats.real import Real
    x = Real(0, (1 << 70) + 987_654_321_987_654_321, -600 - 70)
    y = Real(0, (1 << 70) + 123_456_789_123_456_789, -601 - 70)
    log_err = measure_op(LogSpaceBackend(), "add", x, y).log10_error
    b64_err = measure_op(Binary64Backend(), "add", x, y).log10_error
    return Claim("fig3-inrange",
                 "log is less accurate than binary64 inside its range",
                 f"at 2^-600: log {log_err:.1f} vs binary64 {b64_err:.1f}",
                 log_err > b64_err)


def _claim_posit_beats_log_outside() -> Claim:
    from ..arith.backends import LogSpaceBackend, PositBackend
    from ..core.accuracy import measure_op
    from ..formats.posit import PositEnv
    from ..formats.real import Real
    x = Real(0, (1 << 70) + 987_654_321_987_654_321, -9_000 - 70)
    y = Real(0, (1 << 70) + 123_456_789_123_456_789, -9_001 - 70)
    log_err = measure_op(LogSpaceBackend(), "add", x, y).log10_error
    p_err = measure_op(PositBackend(PositEnv(64, 12)), "add", x, y).log10_error
    return Claim("fig3-outside",
                 "posit beats log outside binary64's range",
                 f"at 2^-9000: posit(64,12) {p_err:.1f} vs log {log_err:.1f}",
                 p_err < log_err)


def _claim_lse_cost() -> Claim:
    from ..hw.units import software_op_cost_model
    model = software_op_cost_model()
    ok = 10.0 < model["ratio"] < 11.0 and 7.0 < model["lut_ratio"] < 8.5
    return Claim("table2", "log add ~10x slower, ~8x LUTs vs binary64 add",
                 f"{model['ratio']:.1f}x cycles, {model['lut_ratio']:.1f}x LUTs",
                 ok)


def _claim_forward_unit_speedup() -> Claim:
    from ..hw.forward_unit import ForwardUnit
    from ..hw.pe import LOG, POSIT
    imp = []
    for h in (13, 32, 64, 128):
        log_t = ForwardUnit(LOG, h).seconds(500_000)
        posit_t = ForwardUnit(POSIT, h).seconds(500_000)
        imp.append(100 * (log_t - posit_t) / log_t)
    return Claim("fig6", "posit forward units 15-33% faster",
                 f"improvements {', '.join(f'{i:.0f}%' for i in imp)} "
                 f"for H=13/32/64/128",
                 max(imp) > 28 and min(imp) > 5)


def _claim_resource_reduction() -> Claim:
    from ..hw.column_unit import ColumnUnit
    from ..hw.pe import LOG, POSIT
    from ..hw.resources import reduction_pct
    log_r = ColumnUnit(LOG).resources()
    posit_r = ColumnUnit(POSIT).resources()
    lut_red = reduction_pct(log_r.lut, posit_r.lut)
    return Claim("table4", "up to ~60% lower resource use",
                 f"column unit LUT reduction {lut_red:.1f}%",
                 60.0 < lut_red < 68.0)


def _claim_perf_per_resource() -> Claim:
    from ..hw.column_unit import ColumnUnit, paper_scale_shapes
    from ..hw.pe import LOG, POSIT
    ratios = [ColumnUnit(POSIT).mmaps_per_clb(s) /
              ColumnUnit(LOG).mmaps_per_clb(s)
              for s in paper_scale_shapes(n_datasets=3)]
    return Claim("fig8", "~2x performance per resource unit",
                 f"MMAPS/CLB ratios {', '.join(f'{r:.2f}' for r in ratios)}",
                 all(1.6 < r < 2.6 for r in ratios))


def _claim_app_accuracy() -> Claim:
    from ..apps.vicar import VicarConfig, run_vicar
    from ..arith.backends import LogSpaceBackend, PositBackend
    from ..formats.posit import PositEnv
    config = VicarConfig(length=150, h_values=(5,), matrices_per_h=2,
                         bits_per_step=3_900.0, seed=3)
    result = run_vicar(config, {
        "log": LogSpaceBackend(),
        "posit(64,18)": PositBackend(PositEnv(64, 18))})
    gap = (np.median(result.log10_errors("log"))
           - np.median(result.log10_errors("posit(64,18)")))
    return Claim("fig10", "posit final results ~2 orders more accurate",
                 f"VICAR median gap {gap:.1f} decades (scaled run)",
                 gap > 1.0)


def _claim_underflow_motivation() -> Claim:
    from ..apps.mcmc import run_chain
    from ..arith.backends import Binary64Backend, LogSpaceBackend
    b64 = run_chain(Binary64Backend(), steps=8, seed=2)
    log = run_chain(LogSpaceBackend(), steps=8, seed=2)
    return Claim("motivation",
                 "underflow prevents convergence (MCMC/VI)",
                 f"binary64 chain stuck {b64.stuck}/8; log stuck {log.stuck}/8",
                 b64.stuck == 8 and log.stuck == 0)


CLAIM_FUNCS: List[Callable[[], Claim]] = [
    _claim_table1, _claim_log_precision_loss, _claim_posit_beats_log_outside,
    _claim_lse_cost, _claim_forward_unit_speedup, _claim_resource_reduction,
    _claim_perf_per_resource, _claim_app_accuracy,
    _claim_underflow_motivation,
]


def run() -> List[Claim]:
    return [f() for f in CLAIM_FUNCS]


def render(claims: List[Claim]) -> str:
    rows = [{
        "id": c.claim_id,
        "paper claim": c.statement,
        "measured": c.measured,
        "holds": "YES" if c.holds else "NO",
    } for c in claims]
    n_ok = sum(1 for c in claims if c.holds)
    footer = f"\n{n_ok}/{len(claims)} headline claims reproduce."
    return render_table(rows, title="Reproduction scorecard") + footer
