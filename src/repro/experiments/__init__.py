"""One module per table/figure in the paper's evaluation, plus a CLI
runner (``python -m repro.experiments.runner``).  See DESIGN.md's
per-experiment index for the mapping."""

from . import (  # noqa: F401
    bitbudget_curves,
    scorecard,
    fig1_alpha_exponent,
    fig3_op_accuracy,
    fig6_forward_perf,
    fig7_column_perf,
    fig8_mmaps_per_clb,
    fig9_pvalue_accuracy,
    fig10_vicar_cdf,
    fig11_lofreq_cdf,
    table1_range,
    table2_units,
    table3_forward_resources,
    table4_column_resources,
)

__all__ = [
    "fig1_alpha_exponent", "table1_range", "fig3_op_accuracy",
    "table2_units", "fig6_forward_perf", "fig7_column_perf",
    "fig8_mmaps_per_clb", "table3_forward_resources",
    "table4_column_resources", "fig9_pvalue_accuracy",
    "fig10_vicar_cdf", "fig11_lofreq_cdf", "bitbudget_curves", "scorecard",
]
