"""Pair-HMM alignment likelihood accuracy vs the BigFloat oracle.

The HaplotypeCaller kernel chains R×L small probabilities per read —
the same deep-underflow territory as the forward algorithm, but with
the max/sum hybrid recombination (max inside the recurrence, sum over
where the read ends).  Every format runs the identical recurrence
under the identical semiring, so the log10 relative error against the
oracle isolates format rounding exactly as Figure 9 does for LoFreq
p-values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..arith.backends import BigFloatBackend
from ..core.accuracy import UNDERFLOW, score_value
from ..engine.plan import ExecPlan, resolve_plan
from ..nd.context import _resolve_format
from ..report.tables import render_table
from ..workloads.pairhmm import PairHMMParams, pairhmm_batch

#: (number of reads, read length, haplotype length).
SCALES = {"test": (6, 6, 12), "bench": (24, 12, 40),
          "full": (96, 25, 120)}

FORMATS = ("binary64", "log", "posit(64,9)", "posit(64,12)",
           "lns(12,50)")

N_ALPHABET = 4

#: The characteristic semiring (the HaplotypeCaller hybrid).
SEMIRING = "pairhmm-max"


@dataclass
class PairHMMAccuracyResult:
    n_reads: int
    read_len: int
    hap_len: int
    errors: Dict[str, List[float]]
    underflows: Dict[str, int]

    def rows(self) -> List[dict]:
        out = []
        for fmt in FORMATS:
            errs = self.errors[fmt]
            out.append({
                "format": fmt,
                "median log10 err": round(float(np.median(errs)), 2)
                if errs else None,
                "worst log10 err": round(float(np.max(errs)), 2)
                if errs else None,
                "underflow": self.underflows[fmt],
            })
        return out


def run(scale: str = "bench", seed: int = 0,
        plan: Optional[ExecPlan] = None) -> PairHMMAccuracyResult:
    """Align a batch of random reads against one random haplotype in
    every format and against the oracle, under the max/sum hybrid
    semiring."""
    plan = resolve_plan(plan, where="fig_pairhmm_accuracy.run")
    n_reads, read_len, hap_len = SCALES[scale]
    rng = np.random.default_rng(seed)
    hap = rng.integers(0, N_ALPHABET, hap_len)
    reads = rng.integers(0, N_ALPHABET, (n_reads, read_len))
    params = PairHMMParams()
    oracle = BigFloatBackend(256)
    truth = pairhmm_batch(hap, reads, oracle, params=params, plan=plan,
                          semiring=SEMIRING)
    errors: Dict[str, List[float]] = {}
    underflows: Dict[str, int] = {}
    for fmt in FORMATS:
        backend = _resolve_format(fmt)
        got = pairhmm_batch(hap, reads, backend, params=params,
                            plan=plan, semiring=SEMIRING)
        errs: List[float] = []
        n_uf = 0
        for value, ref in zip(got, truth):
            res = score_value(backend, value, oracle.to_bigfloat(ref))
            if res.status == UNDERFLOW:
                n_uf += 1
            elif res.ok:
                errs.append(res.log10_error)
        errors[fmt] = errs
        underflows[fmt] = n_uf
    return PairHMMAccuracyResult(n_reads, read_len, hap_len, errors,
                                 underflows)


def render(result: PairHMMAccuracyResult) -> str:
    return render_table(
        result.rows(),
        title=f"Pair-HMM alignment likelihood accuracy vs oracle "
              f"(n={result.n_reads} reads of length {result.read_len} "
              f"vs an L={result.hap_len} haplotype, {SEMIRING})")
