"""Kalman filter accuracy vs the BigFloat oracle: the cancellation
figure.

The filter's one subtraction, ``1 - k``, cancels catastrophically
precisely when the gain saturates (predicted variance ≫ measurement
noise) — a failure mode the sum/product-only kernels never exercise.
Each format runs the identical convex-combination recurrence; the
log10 relative error of the final state estimate ``x`` and variance
``p`` against the oracle shows how the formats' precision profiles
(binary64's fixed 53 bits, posit's tapered regime, LNS's flat
fraction) survive repeated near-1 cancellations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..arith.backends import BigFloatBackend
from ..core.accuracy import score_value
from ..engine.plan import ExecPlan, resolve_plan
from ..nd.context import _resolve_format
from ..report.tables import render_table
from ..workloads.kalman import KalmanParams, kalman_batch, sample_tracks

#: (number of tracks, track length).
SCALES = {"test": (6, 10), "bench": (24, 50), "full": (96, 200)}

FORMATS = ("binary64", "log", "posit(64,9)", "posit(64,12)",
           "lns(12,50)")

#: Small measurement noise against a large initial variance drives the
#: gain toward 1 — the cancellation regime.
PARAMS = KalmanParams(a=0.9, q=1e-4, r=1e-6, x0=0.5, p0=0.25)


@dataclass
class KalmanAccuracyResult:
    n_tracks: int
    length: int
    #: format -> (x errors, p errors) as log10 relative error lists.
    errors: Dict[str, Tuple[List[float], List[float]]]

    def rows(self) -> List[dict]:
        out = []
        for fmt in FORMATS:
            x_errs, p_errs = self.errors[fmt]
            out.append({
                "format": fmt,
                "median log10 err (x)":
                    round(float(np.median(x_errs)), 2) if x_errs else None,
                "worst log10 err (x)":
                    round(float(np.max(x_errs)), 2) if x_errs else None,
                "median log10 err (p)":
                    round(float(np.median(p_errs)), 2) if p_errs else None,
            })
        return out


def run(scale: str = "bench", seed: int = 0,
        plan: Optional[ExecPlan] = None) -> KalmanAccuracyResult:
    """Filter a batch of synthetic tracks in every format and against
    the oracle (near-saturated gain: r ≪ p0)."""
    plan = resolve_plan(plan, where="fig_kalman_accuracy.run")
    n_tracks, length = SCALES[scale]
    zs, _latent = sample_tracks(n_tracks, length, seed=seed,
                                params=PARAMS)
    oracle = BigFloatBackend(256)
    truth = kalman_batch(zs, oracle, params=PARAMS, plan=plan)
    errors: Dict[str, Tuple[List[float], List[float]]] = {}
    for fmt in FORMATS:
        backend = _resolve_format(fmt)
        got = kalman_batch(zs, backend, params=PARAMS, plan=plan)
        x_errs: List[float] = []
        p_errs: List[float] = []
        for est, ref in zip(got, truth):
            res_x = score_value(backend, est.x, oracle.to_bigfloat(ref.x))
            res_p = score_value(backend, est.p, oracle.to_bigfloat(ref.p))
            if res_x.ok:
                x_errs.append(res_x.log10_error)
            if res_p.ok:
                p_errs.append(res_p.log10_error)
        errors[fmt] = (x_errs, p_errs)
    return KalmanAccuracyResult(n_tracks, length, errors)


def render(result: KalmanAccuracyResult) -> str:
    return render_table(
        result.rows(),
        title=f"Kalman filter accuracy vs oracle "
              f"(n={result.n_tracks} tracks, T={result.length}, "
              f"gain saturated: r={PARAMS.r} vs p0={PARAMS.p0})")
