"""Figure 6: forward-algorithm unit wall-clock time and relative
improvement, H in {13, 32, 64, 128}, T = 500,000, 300 MHz."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..hw.forward_unit import ForwardUnit
from ..hw.pe import LOG, POSIT
from ..report.tables import render_table

H_VALUES = (13, 32, 64, 128)
T = 500_000


@dataclass
class Fig6Row:
    h: int
    posit_seconds: float
    log_seconds: float
    paper_posit: float
    paper_log: float

    @property
    def improvement_pct(self) -> float:
        return 100.0 * (self.log_seconds - self.posit_seconds) / self.log_seconds

    @property
    def paper_improvement_pct(self) -> float:
        return 100.0 * (self.paper_log - self.paper_posit) / self.paper_log


def run(t: int = T) -> List[Fig6Row]:
    rows = []
    for h in H_VALUES:
        posit = ForwardUnit(POSIT, h)
        log = ForwardUnit(LOG, h)
        rows.append(Fig6Row(h, posit.seconds(t), log.seconds(t),
                            posit.paper_seconds(t), log.paper_seconds(t)))
    return rows


def render(rows: List[Fig6Row]) -> str:
    table = [{
        "H": r.h,
        "posit (s)": r.posit_seconds,
        "log (s)": r.log_seconds,
        "improvement %": r.improvement_pct,
        "paper posit (s)": r.paper_posit,
        "paper log (s)": r.paper_log,
        "paper improvement %": r.paper_improvement_pct,
    } for r in rows]
    return render_table(table, title=f"Figure 6: forward unit wall-clock "
                                     f"time (T={T:,}, 300 MHz)")
