"""Figure 6: forward-algorithm unit wall-clock time and relative
improvement, H in {13, 32, 64, 128}, T = 500,000, 300 MHz.

``plan.measure`` additionally measures a *software* log-space forward
baseline on this machine — the scalar backend loop vs the vectorized
:mod:`repro.engine` kernel — in millions of alpha-updates per second
(one update = one mul-add of the ``H x H`` recurrence), quantifying the
gap the paper's accelerators close versus software emulation.  (The
legacy ``batch=True`` kwarg is gone; use ``measure``.)
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

from ..engine.plan import ExecPlan, resolve_plan
from ..hw.forward_unit import ForwardUnit
from ..hw.pe import LOG, POSIT
from ..report.tables import render_table

H_VALUES = (13, 32, 64, 128)
T = 500_000

#: Software-baseline measurement sizes (kept small: the scalar loop is
#: the slow side being quantified).
SW_T = 200
SW_BATCH = 16


@dataclass
class Fig6Row:
    h: int
    posit_seconds: float
    log_seconds: float
    paper_posit: float
    paper_log: float
    #: Measured software log-space forward throughput (batch=True only).
    sw_scalar_mmaps: Optional[float] = None
    sw_batch_mmaps: Optional[float] = None

    @property
    def improvement_pct(self) -> float:
        return 100.0 * (self.log_seconds - self.posit_seconds) / self.log_seconds

    @property
    def paper_improvement_pct(self) -> float:
        return 100.0 * (self.paper_log - self.paper_posit) / self.paper_log


def _software_mmaps(h: int, t: int = SW_T, n_batch: int = SW_BATCH) -> tuple:
    """(scalar, batched) log-space forward throughput in millions of
    alpha-updates (H*H mul-adds per step) per second."""
    import numpy as np

    from ..apps.hmm import forward, forward_batch
    from ..arith.backends import LogSpaceBackend
    from ..data.dirichlet import sample_hmm

    backend = LogSpaceBackend(sum_mode="sequential")
    hmm = sample_hmm(h, 8, t, seed=h)
    obs = np.random.default_rng(h).integers(0, 8, size=(n_batch, t))
    updates = h * h * (t - 1)

    start = time.perf_counter()
    # The measured baseline is the legacy scalar recurrence, so pin the
    # serial plan (the default forward() is itself the batched kernel).
    forward(hmm, backend, plan=ExecPlan.serial())
    scalar_rate = updates / (time.perf_counter() - start) / 1e6

    start = time.perf_counter()
    forward_batch(hmm, backend, obs)
    batch_rate = n_batch * updates / (time.perf_counter() - start) / 1e6
    return scalar_rate, batch_rate


def run(t: int = T, plan: Optional[ExecPlan] = None) -> List[Fig6Row]:
    plan = resolve_plan(plan, where="fig6_forward_perf.run")
    rows = []
    for h in H_VALUES:
        posit = ForwardUnit(POSIT, h)
        log = ForwardUnit(LOG, h)
        row = Fig6Row(h, posit.seconds(t), log.seconds(t),
                      posit.paper_seconds(t), log.paper_seconds(t))
        if plan.measure:
            row.sw_scalar_mmaps, row.sw_batch_mmaps = _software_mmaps(h)
        rows.append(row)
    return rows


def render(rows: List[Fig6Row]) -> str:
    measured = any(r.sw_batch_mmaps is not None for r in rows)
    table = [{
        "H": r.h,
        "posit (s)": r.posit_seconds,
        "log (s)": r.log_seconds,
        "improvement %": r.improvement_pct,
        "paper posit (s)": r.paper_posit,
        "paper log (s)": r.paper_log,
        "paper improvement %": r.paper_improvement_pct,
        **({"sw scalar MMAPS": r.sw_scalar_mmaps,
            "sw batch MMAPS": r.sw_batch_mmaps} if measured else {}),
    } for r in rows]
    return render_table(table, title=f"Figure 6: forward unit wall-clock "
                                     f"time (T={T:,}, 300 MHz)")
