"""``python -m repro.experiments`` — the figure/table runner CLI."""

import sys

from .runner import main

if __name__ == "__main__":
    sys.exit(main())
