"""Table II: resource utilization and latency of individual arithmetic
units (calibration data + derived-component self-checks)."""

from __future__ import annotations

from ..hw.units import lse_component_check, software_op_cost_model, table2_rows
from ..report.tables import render_table


def run() -> dict:
    return {
        "rows": table2_rows(),
        "lse_check": lse_component_check(),
        "cost_model": software_op_cost_model(),
    }


def render(result: dict) -> str:
    lines = [render_table(result["rows"],
                          title="Table II: Resource Utilization of "
                                "Individual Arithmetic Units")]
    check = result["lse_check"]
    lines.append(f"LSE component self-check: derived components sum to "
                 f"{check['lut']} LUTs / {check['dsp']} DSPs "
                 f"(Table II: {check['lut_expected']} / {check['dsp_expected']})")
    model = result["cost_model"]
    lines.append(f"log add vs binary64 add: {model['ratio']:.1f}x cycles, "
                 f"{model['lut_ratio']:.1f}x LUTs, "
                 f"{model['register_ratio']:.1f}x registers "
                 f"(paper Section I: ~10x slower, ~8x LUTs/FFs)")
    return "\n".join(lines)
