"""Figure 7: column-unit wall-clock time and relative improvement over
the eight SARS-CoV-2-scale dataset shapes D0-D7."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..hw.column_unit import ColumnUnit, paper_scale_shapes
from ..hw.pe import LOG, POSIT
from ..report.tables import render_table


@dataclass
class Fig7Row:
    dataset: str
    posit_seconds: float
    log_seconds: float
    mean_k: float
    total_ops: int

    @property
    def improvement_pct(self) -> float:
        return 100.0 * (self.log_seconds - self.posit_seconds) / self.log_seconds


def run(seed: int = 0, n_datasets: int = 8) -> List[Fig7Row]:
    rows = []
    for shape in paper_scale_shapes(seed=seed, n_datasets=n_datasets):
        posit_t = ColumnUnit(POSIT).dataset_seconds(shape)
        log_t = ColumnUnit(LOG).dataset_seconds(shape)
        rows.append(Fig7Row(shape.name, posit_t, log_t, shape.mean_k,
                            shape.total_ops))
    return rows


def render(rows: List[Fig7Row]) -> str:
    table = [{
        "dataset": r.dataset,
        "posit (s)": round(r.posit_seconds),
        "log (s)": round(r.log_seconds),
        "improvement %": r.improvement_pct,
        "mean K": round(r.mean_k),
        "N*K ops": f"{r.total_ops:.2e}",
    } for r in rows]
    notes = ("Paper band: wall-clock 2,269-25,020 s; single-unit "
             "improvements ~5-25% depending on each dataset's K mix.")
    return render_table(table, title="Figure 7: column unit performance "
                                     "(8 PEs, 300 MHz)") + "\n" + notes
