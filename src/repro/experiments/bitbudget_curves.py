"""Section II.C / III quantified: effective fraction bits per format as
a function of value magnitude — the analysis that *predicts* Figure 3.

Not a numbered figure in the paper, but the paper's central argument
("the fraction bits are effectively used to encode both the fraction and
the exponent") rendered as data, plus the predicted-vs-measured closure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.bitbudget import budget_curves, predicted_log10_error
from ..report.tables import render_table

#: Representative magnitudes spanning Figure 3's axis.
DEFAULT_SCALES = (-10_000, -6_000, -2_000, -1_022, -500, -100, -10)


@dataclass
class BitBudgetResult:
    scales: tuple
    curves: dict  # format -> [(scale, bits-or-None)]

    def rows(self) -> List[dict]:
        out = []
        for i, scale in enumerate(self.scales):
            row = {"value magnitude": f"2^{scale}"}
            for fmt, series in self.curves.items():
                row[fmt] = series[i][1]
            out.append(row)
        return out

    def predicted_error_rows(self) -> List[dict]:
        out = []
        for i, scale in enumerate(self.scales):
            row = {"value magnitude": f"2^{scale}"}
            for fmt, series in self.curves.items():
                row[fmt] = predicted_log10_error(series[i][1])
            out.append(row)
        return out


def run(scales=DEFAULT_SCALES) -> BitBudgetResult:
    return BitBudgetResult(tuple(scales), budget_curves(scales))


def render(result: BitBudgetResult) -> str:
    parts = [
        render_table(result.rows(),
                     title="Effective fraction bits by magnitude "
                           "(Section II.C / III bit-budget analysis)"),
        "",
        render_table(result.predicted_error_rows(),
                     title="Predicted median log10 relative error "
                           "(compare with the measured Figure 3)"),
        "",
        "Reading: log-space loses bits steadily from 2^-10 on;",
        "binary64 is flat then dies; each posit ES trades a flat tax",
        "(wider exponent field) for slower regime growth.",
    ]
    return "\n".join(parts)
