"""Figure 9: accuracy of final LoFreq p-values by magnitude bin, for
log / posit(64,{9,12,18}) (binary64 is absent — every deep p-value
underflows; extreme >= 1 relative errors are excluded from the boxes and
counted separately, as in the paper)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..apps.lofreq import LoFreqResult, run_lofreq
from ..arith.backends import standard_backends
from ..core.sweep import bin_label
from ..data.genome import FIG9_BINS, stratified_columns
from ..engine.plan import ExecPlan, resolve_plan
from ..report.tables import render_table

#: columns per magnitude bin.
SCALES = {"test": 1, "bench": 4, "full": 12}

FORMATS = ("log", "posit(64,9)", "posit(64,12)", "posit(64,18)")


@dataclass
class Fig9Result:
    lofreq: LoFreqResult
    per_bin: int

    def median_rows(self) -> List[dict]:
        rows = []
        grouped: Dict[str, dict] = {
            fmt: self.lofreq.errors_by_bin(fmt, FIG9_BINS) for fmt in FORMATS}
        for bin_range in FIG9_BINS:
            row = {"p-value exponent": bin_label(bin_range)}
            for fmt in FORMATS:
                errs = grouped[fmt][bin_range]
                row[fmt] = round(float(np.median(errs)), 2) if errs else None
            rows.append(row)
        return rows

    def failure_rows(self) -> List[dict]:
        return [{
            "format": fmt,
            "underflow": self.lofreq.underflow_count(fmt),
            "extreme (err >= 1)": self.lofreq.extreme_error_count(fmt),
        } for fmt in FORMATS]


def run(scale: str = "bench", seed: int = 0,
        plan: Optional[ExecPlan] = None) -> Fig9Result:
    """Column p-values flow through the batched engine (grouped by
    depth and alt count; identical results for every plan)."""
    plan = resolve_plan(plan, where="fig9_pvalue_accuracy.run")
    per_bin = SCALES[scale]
    columns = stratified_columns(per_bin=per_bin, seed=seed)
    backends = {f: b for f, b in
                standard_backends(underflow="flush").items()
                if f in FORMATS}
    return Fig9Result(run_lofreq(columns, backends, plan=plan), per_bin)


def render(result: Fig9Result) -> str:
    parts = [
        render_table(result.median_rows(),
                     title=f"Figure 9: median log10 relative error of final "
                           f"p-values (n={result.per_bin}/bin, flush mode)"),
        "",
        render_table(result.failure_rows(),
                     title="Underflow / extreme-error counts (paper: "
                           "posit(64,9)=132 uf, posit(64,12)=2 uf, "
                           "posit(64,18)=0 at 222k columns)"),
    ]
    return "\n".join(parts)
