"""Figure 1: base-2 exponent of ``alpha`` over forward-algorithm
iterations, tracked in arbitrary-precision arithmetic.

The paper runs 5,000 iterations and shows the exponent falling linearly
to about -30,000 (~6 bits/iteration), crossing binary64's 2**-1074 floor
after a few hundred iterations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..apps.hmm import alpha_scale_series
from ..data.dirichlet import sample_hmm
from ..formats.ieee import BINARY64
from ..report.tables import render_table

#: Scale presets: (iterations, states, symbols).
SCALES = {
    "test": (200, 6, 64),
    "bench": (2_000, 8, 64),
    "full": (5_000, 13, 64),  # the paper's iteration count
}


@dataclass
class Fig1Result:
    scales: List[int]
    underflow_iteration: int  # first t where alpha < 2**-1074
    slope_bits_per_iter: float

    def checkpoints(self, every: int = 0) -> List[dict]:
        n = len(self.scales)
        step = every or max(1, n // 10)
        return ([{"t": t, "alpha_exponent": self.scales[t]}
                 for t in range(0, n, step)]
                + [{"t": n - 1, "alpha_exponent": self.scales[-1]}])


def run(scale: str = "bench", seed: int = 0) -> Fig1Result:
    length, h, m = SCALES[scale]
    hmm = sample_hmm(h, m, length, seed=seed)
    scales = alpha_scale_series(hmm)
    floor = BINARY64.smallest_positive_scale()
    underflow_at = next((t for t, s in enumerate(scales) if s < floor),
                        len(scales))
    slope = (scales[-1] - scales[0]) / max(1, len(scales) - 1)
    return Fig1Result(scales, underflow_at, slope)


def render(result: Fig1Result) -> str:
    lines = [render_table(result.checkpoints(),
                          title="Figure 1: alpha exponent vs iteration")]
    lines.append(f"slope: {result.slope_bits_per_iter:.2f} bits/iteration "
                 f"(paper: ~-6 at 5,000 iterations reaching ~-30,000)")
    lines.append(f"binary64 would underflow at t={result.underflow_iteration} "
                 f"of {len(result.scales)}")
    return "\n".join(lines)
