"""Figure 10: CDFs of final-likelihood relative error in VICAR, log vs
posit(64,18), at the T=100,000 and T=500,000 magnitude regimes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..apps.vicar import VicarConfig, VicarResult, run_vicar
from ..arith.backends import LogSpaceBackend, PositBackend
from ..engine.plan import ExecPlan, resolve_plan
from ..formats.posit import PositEnv
from ..report.cdf import CDF, cdf_table, orders_of_magnitude_gap
from ..report.tables import render_table

#: (length, matrices_per_h, h_values) per scale.
SCALES = {
    "test": (120, 2, (5,)),
    "bench": (400, 4, (8, 13)),
    "full": (500, 16, (13, 32)),
}

#: Magnitude regimes matching the paper's two panels: the paper's
#: T=100k runs reach ~2**-590,000 and T=500k ~2**-2,900,000.
PANELS = {"T=100k": 580_000.0, "T=500k": 2_900_000.0}


@dataclass
class Fig10Result:
    panels: Dict[str, VicarResult]

    def cdfs(self, panel: str) -> Dict[str, CDF]:
        res = self.panels[panel]
        return {fmt: CDF.from_samples(fmt, res.log10_errors(fmt))
                for fmt in res.scores}


def run(scale: str = "bench", seed: int = 0,
        plan: Optional[ExecPlan] = None) -> Fig10Result:
    """Format likelihoods flow through the vectorized multi-model
    forward kernel wherever certified exact; ``plan.n_workers`` fans
    the oracle reference pass across processes.  Results are identical
    for every plan (see :func:`repro.apps.vicar.run_vicar`)."""
    plan = resolve_plan(plan, where="fig10_vicar_cdf.run")
    length, per_h, h_values = SCALES[scale]
    backends = {
        "log": LogSpaceBackend(),
        "posit(64,18)": PositBackend(PositEnv(64, 18)),
    }
    panels = {}
    for name, total_bits in PANELS.items():
        config = VicarConfig(length=length, h_values=h_values,
                             matrices_per_h=per_h,
                             bits_per_step=total_bits / length, seed=seed)
        panels[name] = run_vicar(config, backends, plan=plan)
    return Fig10Result(panels)


def render(result: Fig10Result) -> str:
    parts = []
    for panel in result.panels:
        cdfs = result.cdfs(panel)
        parts.append(render_table(
            cdf_table(cdfs),
            title=f"Figure 10 ({panel} magnitude regime): CDF of final "
                  f"likelihood relative error"))
        gap = orders_of_magnitude_gap(cdfs["posit(64,18)"], cdfs["log"])
        parts.append(f"posit(64,18) median accuracy advantage: "
                     f"{gap:.1f} orders of magnitude "
                     f"(paper: ~2 orders; 100% posit < 1e-8 vs 2.4% log)")
        parts.append("")
    return "\n".join(parts)
