"""Plain-text rendering of experiment outputs: tables, CDFs, box stats."""

from .tables import format_cell, render_comparison, render_table
from .cdf import CDF, cdf_table, dominance, orders_of_magnitude_gap
from .boxplot import axis_bounds, render_box_line, render_box_panel

__all__ = [
    "render_table",
    "render_comparison",
    "format_cell",
    "CDF",
    "cdf_table",
    "dominance",
    "orders_of_magnitude_gap",
    "render_box_line",
    "render_box_panel",
    "axis_bounds",
]
