"""ASCII box-and-whisker rendering for the Figure 3 / Figure 9 style
results — whiskers at p5/p95, box at p25/p75, median marker, exactly the
paper's plot convention, drawn in text."""

from __future__ import annotations

from typing import Sequence


def render_box_line(p5: float, p25: float, median: float, p75: float,
                    p95: float, lo: float, hi: float, width: int = 60) -> str:
    """One box on a fixed [lo, hi] axis."""
    if hi <= lo:
        raise ValueError("need hi > lo")
    span = hi - lo

    def col(v: float) -> int:
        clamped = min(max(v, lo), hi)
        return min(width - 1, int((clamped - lo) / span * (width - 1)))

    cells = [" "] * width
    for i in range(col(p5), col(p95) + 1):
        cells[i] = "-"
    for i in range(col(p25), col(p75) + 1):
        cells[i] = "="
    cells[col(p5)] = "|"
    cells[col(p95)] = "|"
    cells[col(median)] = "#"
    return "".join(cells)


def render_box_panel(rows: Sequence[dict], lo: float, hi: float,
                     width: int = 60, title: str = "",
                     label_key: str = "label") -> str:
    """Render many boxes on a shared axis.

    Each row needs keys ``label, p5, p25, median, p75, p95`` (any
    missing/None statistics render as an empty line with a dash).
    """
    lines = []
    if title:
        lines.append(title)
    label_width = max((len(str(r.get(label_key, ""))) for r in rows),
                      default=5)
    axis = f"{'':{label_width}}  {lo:<8.4g}{'':{max(0, width - 16)}}{hi:>8.4g}"
    lines.append(axis)
    for row in rows:
        label = str(row.get(label_key, ""))
        stats = [row.get(k) for k in ("p5", "p25", "median", "p75", "p95")]
        if any(s is None for s in stats):
            lines.append(f"{label:{label_width}}  (not measured)")
            continue
        box = render_box_line(*stats, lo=lo, hi=hi, width=width)
        lines.append(f"{label:{label_width}}  {box}")
    lines.append(f"{'':{label_width}}  legend: |--|=whiskers p5/p95, "
                 f"===box p25/p75, #=median")
    return "\n".join(lines)


def axis_bounds(rows: Sequence[dict], pad: float = 0.5) -> tuple:
    """A [lo, hi] covering every box with padding."""
    los, his = [], []
    for row in rows:
        if row.get("p5") is not None:
            los.append(row["p5"])
        if row.get("p95") is not None:
            his.append(row["p95"])
    if not los:
        raise ValueError("no measurable rows")
    return min(los) - pad, max(his) + pad
