"""Plain-text table rendering for experiment outputs.

Every benchmark prints its table/figure in the same row layout the paper
uses, via these helpers — no plotting dependencies needed offline.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


def format_cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0.0):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(rows: Sequence[dict], columns: Optional[List[str]] = None,
                 title: str = "") -> str:
    """Render a list of dicts as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[format_cell(row.get(c)) for c in columns] for row in rows]
    widths = [max(len(c), *(len(r[i]) for r in cells))
              for i, c in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(c.ljust(w) for c, w in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for r in cells:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def render_comparison(rows: Sequence[dict], key: str, model_col: str,
                      paper_col: str, title: str = "") -> str:
    """Table with an extra model-vs-paper deviation column."""
    out = []
    for row in rows:
        row = dict(row)
        model, paper = row.get(model_col), row.get(paper_col)
        if (isinstance(model, (int, float))
                and isinstance(paper, (int, float)) and paper):
            row["deviation"] = f"{100.0 * (model - paper) / paper:+.1f}%"
        else:
            row["deviation"] = "-"
        out.append(row)
    return render_table(out, title=title)
