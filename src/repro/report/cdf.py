"""Empirical CDFs over log10-error samples (Figures 10 and 11)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np


@dataclass(frozen=True)
class CDF:
    """One empirical distribution of log10 relative errors."""

    name: str
    samples: tuple

    @classmethod
    def from_samples(cls, name: str, samples: Sequence[float]) -> "CDF":
        return cls(name, tuple(sorted(samples)))

    def fraction_below(self, threshold: float) -> float:
        """P(error < 10**threshold) — the paper's CDF readouts."""
        if not self.samples:
            return 0.0
        return float(np.searchsorted(self.samples, threshold, side="left")
                     / len(self.samples))

    def quantile(self, q: float) -> float:
        if not self.samples:
            raise ValueError("empty CDF")
        return float(np.quantile(np.asarray(self.samples), q))

    @property
    def median(self) -> float:
        return self.quantile(0.5)


def cdf_table(cdfs: Dict[str, CDF],
              thresholds: Sequence[float] = (-12, -10, -8, -6, -4)) -> List[dict]:
    """Rows of 'fraction with error < 1e-X' per format — a textual
    rendering of the Figure 10/11 curves."""
    rows = []
    for name, cdf in cdfs.items():
        row = {"format": name, "n": len(cdf.samples)}
        for t in thresholds:
            row[f"<1e{int(t)}"] = cdf.fraction_below(float(t))
        if cdf.samples:
            row["median(log10)"] = cdf.median
        rows.append(row)
    return rows


def dominance(better: CDF, worse: CDF,
              thresholds: Sequence[float] = (-12, -10, -8, -6)) -> bool:
    """True when `better`'s curve lies left of (or on) `worse`'s at every
    probed threshold — the visual 'more skewed towards the left' claim."""
    return all(better.fraction_below(t) >= worse.fraction_below(t)
               for t in thresholds)


def orders_of_magnitude_gap(better: CDF, worse: CDF, q: float = 0.5) -> float:
    """How many decades separate the two CDFs at quantile ``q`` (the
    paper's 'two orders of magnitude higher accuracy')."""
    return worse.quantile(q) - better.quantile(q)
