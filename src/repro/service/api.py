"""``repro.service.api`` — the versioned, typed entry-layer contract.

Every way into the execution plane that crosses a process or module
boundary speaks the same three dataclasses:

* :class:`WorkloadRequest` — one unit of work: a ``kind`` (``forward``,
  ``pbd``, ``op``, ``astype``, ``experiment``), a registry format name,
  a kind-specific ``payload`` dict, an optional
  :class:`~repro.engine.plan.ExecPlan`, and a scheduling ``priority``;
* :class:`WorkloadResult` — the per-request answer: exact wire-encoded
  values (see :func:`encode_value`), plus execution stats (coalesced
  batch size, wait time, cache hits);
* :class:`ErrorInfo` — a machine-readable failure with a stable
  ``code`` that maps back onto a :class:`ServiceError` subclass.

The server (:mod:`repro.service.server`), the client
(:mod:`repro.service.client`), and the :mod:`repro.experiments` CLI
runner all construct/consume *these objects* — there is no second
ad-hoc dispatch path.

All three types round-trip through ``to_json``/``from_json``.
Deserialization is *strict*: unknown fields raise a
:class:`ProtocolError` whose message names the schema version on both
sides (the api_redesign contract — a newer client must fail loudly, not
silently drop fields), and payloads tagged with a newer ``api_version``
are rejected outright.

**Exact value encoding.**  Numeric results cross the wire as the exact
BigFloat triple ``[sign, "<hex mantissa>", exponent]`` of the backend
value (every backend's ``to_bigfloat`` is exact), so bit-identity
between a coalesced and a solo execution can be asserted end to end —
a float rendering would destroy exactly the low-order bits the paper
is about.

This module stays import-light (stdlib + :mod:`repro.bigfloat` +
:mod:`repro.engine.plan`): constructing and validating requests must
work even where NumPy and the vectorized engine cannot.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional

from ..arith.backend import Backend
from ..bigfloat import BigFloat
from ..engine.plan import ExecPlan

#: Version of the service wire schema; bumped on incompatible changes.
API_VERSION = 1

#: The workload kinds the entry layer defines.  (The executable handler
#: table lives in :mod:`repro.service.workloads`; this tuple is the
#: *contract* side so the light api module can validate without
#: importing the NumPy-side handlers.)
WORKLOAD_KINDS = ("forward", "pbd", "op", "astype", "experiment",
                  "viterbi", "pairhmm", "kalman")


# ----------------------------------------------------------------------
# Errors
# ----------------------------------------------------------------------
class ServiceError(Exception):
    """A workload-level failure with a stable wire representation.

    Subclasses fix ``code`` (the machine-readable discriminator an
    :class:`ErrorInfo` carries) and ``http_status`` (what the server
    answers with).
    """

    code = "service-error"
    http_status = 500

    def __init__(self, message: str, *, details: Optional[dict] = None):
        super().__init__(message)
        self.details = dict(details or {})

    def to_error_info(self) -> "ErrorInfo":
        return ErrorInfo(code=self.code, message=str(self),
                         details=self.details)


class ProtocolError(ServiceError):
    """Malformed or incompatible request framing/fields (HTTP 400)."""

    code = "bad-request"
    http_status = 400


class UnknownKind(ProtocolError):
    """The request names a workload kind this build does not serve."""

    code = "unknown-kind"


class InvalidRequest(ProtocolError):
    """Well-formed request whose payload fails kind validation."""

    code = "invalid-request"


class Overloaded(ServiceError):
    """Backpressure: the bounded request queue is full (HTTP 429)."""

    code = "overloaded"
    http_status = 429


class ShuttingDown(ServiceError):
    """The server is stopping; in-flight requests are drained/failed."""

    code = "shutting-down"
    http_status = 503


class WorkloadFailed(ServiceError):
    """The kernel raised while executing an accepted request."""

    code = "workload-failed"
    http_status = 500


class DeadlineExceeded(ServiceError):
    """The request aged past its deadline while queued (HTTP 503).

    The scheduler sheds such entries *before* spending a kernel call
    on them — an answer nobody is still waiting for is pure waste.
    Safe to retry (nothing executed)."""

    code = "deadline-exceeded"
    http_status = 503


class TransportError(ServiceError):
    """Client-side transport failure: the connection dropped or timed
    out before a complete response arrived (never sent by a server).

    Safe to retry against this service: results are deterministic and
    the server dedupes on :meth:`WorkloadRequest.cache_identity`, so a
    retried request coalesces/dedupes rather than recomputing."""

    code = "transport-error"
    http_status = 503


#: code -> exception class, for rebuilding a typed error client-side.
ERROR_CODES = {cls.code: cls for cls in
               (ServiceError, ProtocolError, UnknownKind, InvalidRequest,
                Overloaded, ShuttingDown, WorkloadFailed,
                DeadlineExceeded, TransportError)}


def error_from_info(info: "ErrorInfo") -> ServiceError:
    """The :class:`ServiceError` (subclass) an :class:`ErrorInfo`
    describes — what the client raises on a non-2xx response."""
    cls = ERROR_CODES.get(info.code, ServiceError)
    return cls(info.message, details=info.details)


# ----------------------------------------------------------------------
# Strict (de)serialization helper
# ----------------------------------------------------------------------
def _strict_fields(cls, data, *, rename: str) -> dict:
    """``data`` narrowed to ``cls``'s dataclass fields, rejecting
    unknown keys and newer ``api_version`` tags with versioned
    :class:`ProtocolError` messages."""
    if not isinstance(data, dict):
        raise ProtocolError(
            f"{rename} (api v{API_VERSION}) must be a JSON object, "
            f"got {type(data).__name__}")
    data = dict(data)
    version = data.get("api_version", API_VERSION)
    if not isinstance(version, int) or isinstance(version, bool) \
            or version < 1:
        raise ProtocolError(
            f"{rename}: api_version must be a positive integer, got "
            f"{version!r} (this build speaks api v{API_VERSION})")
    if version > API_VERSION:
        raise ProtocolError(
            f"{rename} carries api v{version}, newer than this build's "
            f"v{API_VERSION}; upgrade the server or send a "
            f"v{API_VERSION} request")
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ProtocolError(
            f"{rename} (api v{API_VERSION}) does not define field(s) "
            f"{', '.join(map(repr, unknown))}; known fields: "
            f"{', '.join(sorted(known))}")
    return data


# ----------------------------------------------------------------------
# The three wire types
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ErrorInfo:
    """One failure, machine-readable: stable code + human message."""

    code: str
    message: str
    details: Dict[str, Any] = field(default_factory=dict)
    api_version: int = API_VERSION

    def to_json(self) -> dict:
        return {"api_version": self.api_version, "code": self.code,
                "message": self.message, "details": dict(self.details)}

    @classmethod
    def from_json(cls, data) -> "ErrorInfo":
        data = _strict_fields(cls, data, rename="ErrorInfo")
        if not isinstance(data.get("code"), str) or \
                not isinstance(data.get("message"), str):
            raise ProtocolError("ErrorInfo needs string 'code' and "
                                "'message' fields")
        details = data.get("details", {})
        if not isinstance(details, dict):
            raise ProtocolError("ErrorInfo 'details' must be an object")
        return cls(code=data["code"], message=data["message"],
                   details=details,
                   api_version=data.get("api_version", API_VERSION))


@dataclass(frozen=True)
class WorkloadRequest:
    """One unit of work submitted to the evaluation service.

    ``payload`` is kind-specific (validated by the handler in
    :mod:`repro.service.workloads`); ``format`` is a registry name
    (``"binary64"``, ``"posit(64,12)"``, ...), unused by the
    ``experiment`` kind; ``plan`` travels as ExecPlan JSON and governs
    cache policy (execution-plane results are plan-invariant by the
    registry's certification, so the *server's* plan runs the batch);
    ``priority`` orders ready microbatches (higher first).
    """

    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)
    format: Optional[str] = None
    plan: Optional[ExecPlan] = None
    priority: int = 0
    request_id: Optional[str] = None
    api_version: int = API_VERSION

    def __post_init__(self):
        if not isinstance(self.kind, str) or not self.kind:
            raise InvalidRequest("request kind must be a non-empty string")
        if not isinstance(self.payload, dict):
            raise InvalidRequest("request payload must be a dict")
        if self.format is not None and not isinstance(self.format, str):
            raise InvalidRequest("request format must be a registry name "
                                 "string (or None)")
        if self.plan is not None and not isinstance(self.plan, ExecPlan):
            raise InvalidRequest("request plan must be an ExecPlan "
                                 "(or None)")
        if not isinstance(self.priority, int) or \
                isinstance(self.priority, bool):
            raise InvalidRequest("request priority must be an int")

    def to_json(self) -> dict:
        return {
            "api_version": self.api_version,
            "kind": self.kind,
            "format": self.format,
            "payload": self.payload,
            "plan": self.plan.to_json() if self.plan is not None else None,
            "priority": self.priority,
            "request_id": self.request_id,
        }

    @classmethod
    def from_json(cls, data) -> "WorkloadRequest":
        data = _strict_fields(cls, data, rename="WorkloadRequest")
        if "kind" not in data:
            raise ProtocolError(
                f"WorkloadRequest (api v{API_VERSION}) needs a 'kind' "
                f"field (one of: {', '.join(WORKLOAD_KINDS)})")
        plan = data.get("plan")
        if plan is not None and not isinstance(plan, ExecPlan):
            try:
                plan = ExecPlan.from_json(plan)
            except ValueError as exc:
                raise ProtocolError(f"WorkloadRequest plan invalid: "
                                    f"{exc}") from exc
        try:
            return cls(kind=data["kind"],
                       payload=data.get("payload") or {},
                       format=data.get("format"),
                       plan=plan,
                       priority=data.get("priority", 0),
                       request_id=data.get("request_id"),
                       api_version=data.get("api_version", API_VERSION))
        except TypeError as exc:
            raise ProtocolError(f"WorkloadRequest rejected: {exc}") from exc

    def cache_identity(self) -> dict:
        """The result-determining part of the request — what the
        ``.repro-cache`` dedupe keys on.  Excludes ``request_id``,
        ``priority`` and the plan's scheduling knobs: none of them may
        change a result (plan-invariance is the execution plane's
        certification).  ``plan.compiled`` *is* part of the identity:
        the compiled tier is certified bit-identical today, but keying
        on it keeps compiled and uncompiled results from ever
        cross-contaminating a cache that outlives that certification
        (new tiers, new formats, a JIT toolchain bump)."""
        return {"api_version": self.api_version, "kind": self.kind,
                "format": self.format, "payload": self.payload,
                "compiled": bool(self.plan.compiled)
                if self.plan is not None else False}


@dataclass(frozen=True)
class WorkloadResult:
    """The per-request answer: exact values + execution stats."""

    kind: str
    values: List[Any] = field(default_factory=list)
    request_id: Optional[str] = None
    stats: Dict[str, Any] = field(default_factory=dict)
    telemetry: Optional[Dict[str, Any]] = None
    api_version: int = API_VERSION

    def to_json(self) -> dict:
        return {
            "api_version": self.api_version,
            "kind": self.kind,
            "values": self.values,
            "request_id": self.request_id,
            "stats": self.stats,
            "telemetry": self.telemetry,
        }

    @classmethod
    def from_json(cls, data) -> "WorkloadResult":
        data = _strict_fields(cls, data, rename="WorkloadResult")
        if not isinstance(data.get("kind"), str):
            raise ProtocolError("WorkloadResult needs a string 'kind'")
        values = data.get("values", [])
        if not isinstance(values, list):
            raise ProtocolError("WorkloadResult 'values' must be a list")
        stats = data.get("stats", {})
        if not isinstance(stats, dict):
            raise ProtocolError("WorkloadResult 'stats' must be an object")
        telemetry = data.get("telemetry")
        if telemetry is not None and not isinstance(telemetry, dict):
            raise ProtocolError("WorkloadResult 'telemetry' must be an "
                                "object or null")
        return cls(kind=data["kind"], values=values,
                   request_id=data.get("request_id"), stats=stats,
                   telemetry=telemetry,
                   api_version=data.get("api_version", API_VERSION))

    def bigfloats(self) -> List[BigFloat]:
        """The numeric values decoded back to exact BigFloats."""
        return [decode_bigfloat(v) for v in self.values]


# ----------------------------------------------------------------------
# Exact numeric wire encoding
# ----------------------------------------------------------------------
def encode_bigfloat(x: BigFloat) -> list:
    """``[sign, "<hex mantissa>", exponent]`` — exact and compact even
    for oracle-precision mantissas."""
    return [x.sign, format(x.mantissa, "x"), x.exponent]


def decode_bigfloat(encoded) -> BigFloat:
    """Inverse of :func:`encode_bigfloat` (strict)."""
    if (not isinstance(encoded, (list, tuple)) or len(encoded) != 3
            or not isinstance(encoded[1], str)):
        raise ProtocolError(
            f"expected an exact value triple [sign, hex-mantissa, "
            f"exponent], got {encoded!r}")
    sign, mantissa_hex, exponent = encoded
    try:
        return BigFloat(int(sign), int(mantissa_hex, 16), int(exponent))
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"bad value triple {encoded!r}: "
                            f"{exc}") from exc


def encode_value(backend: Backend, value) -> list:
    """One backend value in exact wire form (through ``to_bigfloat``,
    which is exact for every registered backend)."""
    return encode_bigfloat(backend.to_bigfloat(value))


__all__ = [
    "API_VERSION",
    "DeadlineExceeded",
    "ERROR_CODES",
    "TransportError",
    "WORKLOAD_KINDS",
    "ErrorInfo",
    "InvalidRequest",
    "Overloaded",
    "ProtocolError",
    "ServiceError",
    "ShuttingDown",
    "UnknownKind",
    "WorkloadFailed",
    "WorkloadRequest",
    "WorkloadResult",
    "decode_bigfloat",
    "encode_bigfloat",
    "encode_value",
    "error_from_info",
]
