"""``repro.service`` — arithmetic-as-a-service over the execution plane.

The ROADMAP's serving tier: a stdlib-only asyncio evaluation server
(:class:`EvalServer`) that accepts typed workload requests — HMM
forwards, PBD p-values, elementwise op sweeps, ``astype`` conversions,
registered experiments — from many concurrent clients and *coalesces*
same-shaped requests into single batched kernel calls, so the measured
11-37x batch speedups collapse per-request cost under load.

Layers (each its own module):

* :mod:`repro.service.api` — the versioned, typed request/response
  contract (``WorkloadRequest``/``WorkloadResult``/``ErrorInfo`` with
  strict ``to_json``/``from_json``) and the exact BigFloat value codec;
* :mod:`repro.service.workloads` — one handler per kind: validation,
  coalesce keys, batched execution with bit-identical scatter;
  :func:`execute` is the in-process single-request dispatcher the CLI
  runner shares with the server;
* :mod:`repro.service.scheduler` — the :class:`Microbatcher`: hold
  windows, flush-on-full, priorities, bounded-queue backpressure;
* :mod:`repro.service.server` / :mod:`repro.service.client` — HTTP/JSON
  over asyncio streams, both ends;
* :mod:`repro.service.loadgen` — the synthetic closed-loop load
  harness behind ``BENCH_service.json``.

Quickstart::

    PYTHONPATH=src python -m repro.service serve --port 8421
    PYTHONPATH=src python -m repro.service ping --port 8421
    PYTHONPATH=src python -m repro.service loadtest
"""

from .api import (
    API_VERSION,
    DeadlineExceeded,
    ErrorInfo,
    InvalidRequest,
    Overloaded,
    ProtocolError,
    ServiceError,
    ShuttingDown,
    TransportError,
    UnknownKind,
    WorkloadFailed,
    WorkloadRequest,
    WorkloadResult,
)
from .client import ServiceClient, call
from .scheduler import Microbatcher
from .server import EvalServer
from .workloads import execute, handler_for

__all__ = [
    "API_VERSION",
    "DeadlineExceeded",
    "ErrorInfo",
    "EvalServer",
    "InvalidRequest",
    "Microbatcher",
    "Overloaded",
    "ProtocolError",
    "ServiceClient",
    "ServiceError",
    "ShuttingDown",
    "TransportError",
    "UnknownKind",
    "WorkloadFailed",
    "WorkloadRequest",
    "WorkloadResult",
    "call",
    "execute",
    "handler_for",
]
