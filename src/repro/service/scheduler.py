"""The microbatch scheduler: cross-request coalescing with backpressure.

The throughput story of the whole service lives here.  The execution
plane's batch mirrors are 11-37x faster than per-element scalar loops
(BENCH_batch.json / BENCH_apps.json), but a request carries one model
or a handful of sites — far too little work to amortize a kernel
dispatch.  The :class:`Microbatcher` closes that gap: requests whose
handler reports the same **coalesce key** (same format and shape) and
that arrive within one ``window_s`` hold window are gathered into one
group and executed as ONE ``run_batch`` call, so N concurrent clients
pay roughly one kernel dispatch between them.

Scheduling rules:

* a group flushes when it reaches ``max_batch`` requests (flush-on-full,
  which also makes tests deterministic) or when its window timer fires,
  whichever is first;
* requests whose key is ``None`` (ragged shapes, experiments) bypass
  coalescing entirely — a singleton group goes straight to the ready
  heap;
* ready groups are drained in **priority order** (highest request
  priority in the group first, FIFO within a priority);
* admission is bounded: once ``max_queue`` requests are in flight,
  :meth:`submit` raises :class:`~repro.service.api.Overloaded` — the
  429 path.  Load-shedding at admission keeps the hold window honest
  (queueing more than we can drain would stretch every latency);
* with a ``deadline_s``, members that aged past it while queued are
  shed with :class:`~repro.service.api.DeadlineExceeded` (503) at
  drain time, *before* the group's kernel call — an answer nobody is
  still waiting for is pure waste.

Execution happens in a thread-pool executor so the event loop keeps
accepting requests mid-kernel.  ``loop.run_in_executor`` does *not*
propagate contextvars, so the executor thread enters its own
``telemetry.collect(collector=child)`` scope explicitly and the child
is merged into the server-level collector back on the loop — the same
picklable-merge contract the multi-process sweep runner uses.

If a *coalesced* batch raises, every member request is retried solo:
one malformed-at-runtime request must not poison its batchmates.
"""

from __future__ import annotations

import asyncio
import heapq
import time
from typing import List, Optional

from .. import faults as _faults
from .. import telemetry as _tele
from ..engine.plan import ExecPlan
from ..telemetry import Collector
from .api import (
    DeadlineExceeded,
    Overloaded,
    ServiceError,
    ShuttingDown,
    WorkloadFailed,
)
from .workloads import WorkloadHandler, WorkloadRequest


class _Group:
    """One pending/ready microbatch: same handler, same coalesce key."""

    __slots__ = ("handler", "requests", "futures", "submitted_at",
                 "timer", "generation")

    def __init__(self, handler: WorkloadHandler):
        self.handler = handler
        self.requests: List[WorkloadRequest] = []
        self.futures: List[asyncio.Future] = []
        self.submitted_at: List[float] = []
        self.timer = None
        self.generation = 0

    @property
    def priority(self) -> int:
        return max(r.priority for r in self.requests)


class Microbatcher:
    """Coalesce, prioritize, bound, and execute workload requests.

    ``window_s`` — how long the first request of a group waits for
    batchmates; ``max_batch`` — flush-on-full group size (``1``
    disables coalescing: the baseline configuration the load harness
    measures against); ``max_queue`` — admission bound on in-flight
    requests; ``workers`` — concurrent executor drains (1 keeps batch
    execution strictly ordered); ``plan`` — the server's
    :class:`ExecPlan` for kernel calls; ``collector`` — the server
    collector that per-batch telemetry children merge into.
    """

    def __init__(self, *, window_s: float = 0.002, max_batch: int = 64,
                 max_queue: int = 1024, workers: int = 1,
                 plan: Optional[ExecPlan] = None,
                 collector: Optional[Collector] = None,
                 deadline_s: Optional[float] = None):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if window_s < 0:
            raise ValueError(f"window_s must be >= 0, got {window_s}")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError(f"deadline_s must be > 0, got {deadline_s}")
        self.deadline_s = deadline_s
        self.window_s = window_s
        self.max_batch = max_batch
        self.max_queue = max_queue
        self.plan = plan
        self.collector = collector
        self._pending: dict = {}          # coalesce key -> _Group
        self._ready: list = []            # heap of (-priority, seq, group)
        self._seq = 0
        self._in_flight = 0
        self._woken: Optional[asyncio.Event] = None
        self._workers: List[asyncio.Task] = []
        self._n_workers = workers
        self._stopping = False

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    async def submit(self, handler: WorkloadHandler,
                     request: WorkloadRequest) -> tuple:
        """Queue one *validated* request; returns its ``(values, stats)``
        once its group has executed.  Raises :class:`Overloaded` at the
        admission bound and :class:`ShuttingDown` during drain."""
        self._ensure_workers()
        if self._stopping:
            raise ShuttingDown("scheduler is stopping")
        if self._in_flight >= self.max_queue:
            if self.collector is not None:
                self.collector.count("service.rejected")
            raise Overloaded(
                f"request queue is full ({self.max_queue} in flight); "
                f"retry with backoff")
        self._in_flight += 1
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        try:
            self._enqueue(handler, request, future, loop)
        except BaseException:
            self._in_flight -= 1
            raise
        try:
            return await future
        finally:
            self._in_flight -= 1

    def _enqueue(self, handler, request, future, loop) -> None:
        key = handler.coalesce_key(request)
        now = time.perf_counter()
        if key is None or self.max_batch == 1 or self.window_s == 0:
            group = _Group(handler)
            group.requests.append(request)
            group.futures.append(future)
            group.submitted_at.append(now)
            self._push_ready(group)
            return
        group = self._pending.get(key)
        if group is None:
            group = _Group(handler)
            self._pending[key] = group
            generation = group.generation
            group.timer = loop.call_later(
                self.window_s, self._flush_window, key, generation)
        group.requests.append(request)
        group.futures.append(future)
        group.submitted_at.append(now)
        if len(group.requests) >= self.max_batch:
            self._flush_now(key, group)

    def _flush_window(self, key, generation) -> None:
        group = self._pending.get(key)
        if group is None or group.generation != generation:
            return  # already flushed-on-full; a newer group owns the key
        self._flush_now(key, group)

    def _flush_now(self, key, group: "_Group") -> None:
        if group.timer is not None:
            group.timer.cancel()
            group.timer = None
        del self._pending[key]
        group.generation += 1
        self._push_ready(group)

    def _push_ready(self, group: "_Group") -> None:
        heapq.heappush(self._ready, (-group.priority, self._seq, group))
        self._seq += 1
        if self._woken is not None:
            self._woken.set()

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    def _ensure_workers(self) -> None:
        if self._workers or self._stopping:
            return
        self._woken = asyncio.Event()
        loop = asyncio.get_running_loop()
        self._workers = [loop.create_task(self._drain())
                         for _ in range(self._n_workers)]

    async def _drain(self) -> None:
        while True:
            while not self._ready:
                self._woken.clear()
                await self._woken.wait()
            _neg_priority, _seq, group = heapq.heappop(self._ready)
            await self._execute(group)

    def _shed_expired(self, group: "_Group", now: float) -> "_Group":
        """Drop members whose queue wait exceeded the deadline —
        answered 503 *before* a kernel call is spent on them.

        Returns the group of survivors (possibly empty).  Server-side
        deadline enforcement complements the client's per-request
        deadline: a stalled batch ahead in the queue (the
        ``service.batch`` site's ``delay`` mode) ages everything
        behind it, and work nobody is waiting for anymore is waste.
        """
        if self.deadline_s is None:
            return group
        survivors = _Group(group.handler)
        for request, future, t0 in zip(group.requests, group.futures,
                                       group.submitted_at):
            if now - t0 > self.deadline_s:
                if self.collector is not None:
                    self.collector.count("service.shed")
                if not future.done():
                    future.set_exception(DeadlineExceeded(
                        f"request waited {now - t0:.3f}s in queue, past "
                        f"the {self.deadline_s}s deadline; shed unrun"))
            else:
                survivors.requests.append(request)
                survivors.futures.append(future)
                survivors.submitted_at.append(t0)
        return survivors

    async def _execute(self, group: "_Group") -> None:
        loop = asyncio.get_running_loop()
        started = time.perf_counter()
        group = self._shed_expired(group, started)
        if not group.requests:
            return
        child = Collector()
        try:
            outputs = await loop.run_in_executor(
                None, self._run_batch_in_thread, group, child)
        except ServiceError as exc:
            self._fail_group(group, exc)
            return
        except Exception as exc:
            if len(group.requests) > 1:
                # One request's runtime failure must not poison its
                # batchmates: fall back to solo execution per member.
                await self._execute_solo(group, child)
                self._merge(child, group, started)
                return
            self._fail_group(group, WorkloadFailed(
                f"{group.requests[0].kind} workload raised "
                f"{type(exc).__name__}: {exc}"))
            self._merge(child, group, started)
            return
        self._merge(child, group, started)
        n = len(group.requests)
        for i, future in enumerate(group.futures):
            if future.done():
                continue
            values, stats = outputs[i]
            stats = dict(stats, batch_size=n, coalesced=n > 1,
                         wait_ms=(started - group.submitted_at[i]) * 1e3)
            future.set_result((values, stats))

    def _run_batch_in_thread(self, group: "_Group", child: Collector):
        # Executor threads do not inherit the loop's contextvars, so the
        # telemetry scope is entered here, inside the thread.  The
        # ``service.batch`` fault site fires before the kernel call:
        # ``error`` poisons the batch (coalesced groups fall back to
        # solo members), ``delay`` stalls it (aging the queue past
        # server deadlines).
        with _tele.collect(collector=child):
            with child.span(f"service.batch.{group.requests[0].kind}"):
                _faults.fire("service.batch")
                return group.handler.run_batch(group.requests,
                                               plan=self.plan)

    async def _execute_solo(self, group: "_Group", child: Collector) -> None:
        loop = asyncio.get_running_loop()

        def solo(request):
            with _tele.collect(collector=child):
                (out,) = group.handler.run_batch([request],
                                                 plan=self.plan)
                return out

        for request, future, t0 in zip(group.requests, group.futures,
                                       group.submitted_at):
            if future.done():
                continue
            try:
                values, stats = await loop.run_in_executor(
                    None, solo, request)
            except ServiceError as exc:
                future.set_exception(exc)
            except Exception as exc:
                future.set_exception(WorkloadFailed(
                    f"{request.kind} workload raised "
                    f"{type(exc).__name__}: {exc}"))
            else:
                stats = dict(stats, batch_size=1, coalesced=False,
                             wait_ms=(time.perf_counter() - t0) * 1e3)
                future.set_result((values, stats))

    def _merge(self, child: Collector, group: "_Group",
               started: float) -> None:
        n = len(group.requests)
        if self.collector is None:
            return
        self.collector.merge(child)
        self.collector.count("service.batches")
        self.collector.count("service.batched_requests", n)
        if n > 1:
            self.collector.count("service.coalesced_requests", n)
        agg = self.collector.spans.setdefault(
            "service.batch_wait", [0, 0.0, float("inf"), 0.0])
        for t0 in group.submitted_at:
            wait = started - t0
            agg[0] += 1
            agg[1] += wait
            agg[2] = min(agg[2], wait)
            agg[3] = max(agg[3], wait)

    def _fail_group(self, group: "_Group", exc: ServiceError) -> None:
        for future in group.futures:
            if not future.done():
                future.set_exception(exc)

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    async def stop(self) -> None:
        """Stop accepting work, fail everything queued, kill drains."""
        self._stopping = True
        for key, group in list(self._pending.items()):
            if group.timer is not None:
                group.timer.cancel()
            self._fail_group(group, ShuttingDown(
                "server is shutting down; request was never executed"))
        self._pending.clear()
        while self._ready:
            _p, _s, group = heapq.heappop(self._ready)
            self._fail_group(group, ShuttingDown(
                "server is shutting down; request was never executed"))
        for task in self._workers:
            task.cancel()
        for task in self._workers:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._workers = []


__all__ = ["Microbatcher"]
