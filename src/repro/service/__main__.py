"""CLI for the evaluation service: ``python -m repro.service ...``.

Three subcommands:

* ``serve`` — run an :class:`~repro.service.server.EvalServer` in the
  foreground (Ctrl-C to stop; ``--stats-every`` prints live stats);
* ``ping`` — health-check a running server and print its stats;
* ``loadtest`` — run the synthetic coalescing-vs-solo load harness
  against in-process servers and write ``BENCH_service.json``; with
  ``--chaos``, run the fault-injection harness instead (exit 1 unless
  every response was exact-or-typed).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from ..engine.plan import ExecPlan
from .server import EvalServer


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Arithmetic-as-a-service over the repro execution "
                    "plane.")
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the evaluation server")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8421)
    serve.add_argument("--window-ms", type=float, default=2.0,
                       help="microbatch hold window (default: 2ms)")
    serve.add_argument("--max-batch", type=int, default=64,
                       help="flush-on-full group size (1 disables "
                            "coalescing)")
    serve.add_argument("--max-queue", type=int, default=1024,
                       help="admission bound before 429s")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the .repro-cache request dedupe")
    serve.add_argument("--cache-dir", default=None)
    serve.add_argument("--serial", action="store_true",
                       help="run kernels through the scalar baseline "
                            "plan")
    serve.add_argument("--stats-every", type=float, default=0.0,
                       metavar="SECONDS",
                       help="print live stats at this interval")

    ping = sub.add_parser("ping", help="health-check a running server")
    ping.add_argument("--host", default="127.0.0.1")
    ping.add_argument("--port", type=int, default=8421)
    ping.add_argument("--stats", action="store_true",
                      help="also print the server's /v1/stats payload")

    load = sub.add_parser("loadtest",
                          help="run the coalescing load harness "
                               "(in-process servers)")
    load.add_argument("--scale", type=float, default=1.0,
                      help="traffic scale factor (clients x requests)")
    load.add_argument("--format", default="binary64")
    load.add_argument("--shape", type=int, nargs=3, default=(8, 8, 96),
                      metavar=("H", "M", "T"))
    load.add_argument("--window-ms", type=float, default=5.0)
    load.add_argument("--max-batch", type=int, default=64)
    load.add_argument("--chaos", action="store_true",
                      help="run the fault-injection chaos harness "
                           "instead of the coalescing comparison; "
                           "exits 1 if any response was neither the "
                           "exact fault-free values nor a typed error")
    load.add_argument("--chaos-seed", type=int, default=1234,
                      help="fault-plan seed (same seed, same schedule)")
    load.add_argument("--out", default=None,
                      help="where to write the payload ('-' for stdout "
                           "only; default BENCH_service.json, or "
                           "BENCH_chaos_smoke.json with --chaos)")
    return parser


async def _serve(args) -> int:
    plan = ExecPlan.serial() if args.serial else ExecPlan()
    server = EvalServer(
        args.host, args.port, window_s=args.window_ms / 1e3,
        max_batch=args.max_batch, max_queue=args.max_queue, plan=plan,
        cache="off" if args.no_cache else "auto",
        cache_dir=args.cache_dir)
    await server.start()
    print(f"serving on {server.address} "
          f"(window {args.window_ms}ms, max_batch {args.max_batch})")

    async def stats_loop():
        while True:
            await asyncio.sleep(args.stats_every)
            s = server.stats()
            print(f"requests={s['requests']} errors={s['errors']} "
                  f"p50={s['latency_ms']['p50']:.2f}ms "
                  f"p99={s['latency_ms']['p99']:.2f}ms "
                  f"coalescing={s['coalescing']['factor']:.2f}")

    ticker = (asyncio.get_running_loop().create_task(stats_loop())
              if args.stats_every > 0 else None)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        if ticker is not None:
            ticker.cancel()
        await server.stop()
    return 0


async def _ping(args) -> int:
    from .client import ServiceClient
    # Patient connect budget (~15s of backoff): `serve & ping` in a CI
    # step works without a sleep-poll loop around the ping.
    async with ServiceClient(args.host, args.port, timeout_s=10.0,
                             connect_retries=30, backoff_s=0.1,
                             backoff_max_s=1.0) as client:
        health = await client.healthz()
        print(json.dumps(health))
        if args.stats:
            print(json.dumps(await client.stats(), indent=1))
    return 0 if health.get("ok") else 1


def _chaos(args) -> int:
    from .loadgen import run_chaos
    h, m, t = args.shape
    scale = max(args.scale, 0.125)
    payload = asyncio.run(run_chaos(
        clients=max(4, int(round(8 * scale))),
        requests_per_client=max(3, int(round(6 * scale))),
        format=args.format, h=h, m=m, t=t,
        window_s=args.window_ms / 1e3, max_batch=args.max_batch,
        chaos_seed=args.chaos_seed))
    report = payload["results"]["chaos"]
    print(f"chaos: {report['requests']} requests -> "
          f"{report['ok']} ok, "
          f"{sum(report['typed_errors'].values())} typed errors "
          f"{report['typed_errors']}, "
          f"{report['mismatches']} mismatches, "
          f"{sum(report['untyped_errors'].values())} untyped")
    print(f"injected: {report['injected']} "
          f"(dropped {report['dropped_connections']} connections, "
          f"shed {report['shed']})")
    out = args.out if args.out is not None else "BENCH_chaos_smoke.json"
    if out != "-":
        with open(out, "w") as f:
            json.dump(payload, f, indent=1)
        print(f"wrote {out}")
    if not report["invariant_ok"]:
        print("chaos invariant VIOLATED: some response was neither the "
              "exact fault-free values nor a typed error",
              file=sys.stderr)
        return 1
    print("chaos invariant held: every response was exact-or-typed")
    return 0


def _loadtest(args) -> int:
    from .loadgen import compare_coalescing
    if args.chaos:
        return _chaos(args)
    h, m, t = args.shape
    payload = compare_coalescing(scale=args.scale, format=args.format,
                                 h=h, m=m, t=t,
                                 window_s=args.window_ms / 1e3,
                                 max_batch=args.max_batch)
    headline = payload["results"]["forward_coalescing"]
    print(f"solo:      {headline['solo']['throughput_rps']:9.1f} req/s "
          f"(p50 {headline['solo']['p50_ms']:.2f}ms, "
          f"p99 {headline['solo']['p99_ms']:.2f}ms)")
    print(f"coalesced: "
          f"{headline['coalesced']['throughput_rps']:9.1f} req/s "
          f"(p50 {headline['coalesced']['p50_ms']:.2f}ms, "
          f"p99 {headline['coalesced']['p99_ms']:.2f}ms, "
          f"factor {headline['coalesced']['coalescing_factor']:.1f})")
    print(f"speedup:   {headline['speedup']:.2f}x")
    out = args.out if args.out is not None else "BENCH_service.json"
    if out != "-":
        with open(out, "w") as f:
            json.dump(payload, f, indent=1)
        print(f"wrote {out}")
    return 0


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "serve":
        try:
            return asyncio.run(_serve(args))
        except KeyboardInterrupt:
            return 0
    if args.command == "ping":
        from .api import ServiceError
        try:
            return asyncio.run(_ping(args))
        except (ServiceError, OSError, asyncio.TimeoutError) as exc:
            print(f"ping failed: {exc}", file=sys.stderr)
            return 1
    return _loadtest(args)


if __name__ == "__main__":
    sys.exit(main())
