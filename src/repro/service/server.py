"""``EvalServer``: the asyncio HTTP front end over the microbatcher.

Stdlib only — the wire protocol is hand-framed HTTP/1.1 over
``asyncio.start_server`` streams (request line + headers +
``Content-Length`` body, keep-alive by default), JSON bodies both ways:

* ``POST /v1/workload`` — one :class:`~repro.service.api.WorkloadRequest`
  in, one :class:`~repro.service.api.WorkloadResult` out (HTTP 200), or
  ``{"error": <ErrorInfo>}`` with the :class:`ServiceError` subclass's
  status (400 bad request, 429 overloaded, 503 shutting down, 500
  workload failure);
* ``GET /v1/stats`` — live server statistics: request/latency
  aggregates (p50/p99), coalescing factor, and the merged server-level
  telemetry collector;
* ``GET /v1/healthz`` — liveness.

Layering per request: the connection task parses and validates (so
protocol errors answer immediately, without queueing), consults the
``.repro-cache`` content-hash dedupe (same key machinery the experiment
runner uses, under a ``svc-<kind>`` namespace — byte-identical repeat
requests skip the kernels entirely), then awaits
:meth:`Microbatcher.submit`.  Each request runs inside its own
telemetry ``collect`` scope; the per-request child collectors and the
scheduler's per-batch children all merge into one server-level
:class:`~repro.telemetry.Collector` that ``/v1/stats`` reports.
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import deque
from typing import Optional

from .. import faults as _faults
from .. import telemetry as _tele
from ..engine.plan import ExecPlan
from ..telemetry import Collector
from .api import (
    API_VERSION,
    ProtocolError,
    ServiceError,
    WorkloadRequest,
    WorkloadResult,
)
from .scheduler import Microbatcher
from .workloads import handler_for

#: Service-level cache entries are namespaced away from the experiment
#: runner's (same directory, distinct ``experiment_id`` prefix).
_CACHE_NAMESPACE = "svc"


def _percentile(sorted_values, q: float) -> float:
    """Nearest-rank percentile of an ascending list (0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[rank]


class EvalServer:
    """The arithmetic-as-a-service endpoint.

    ``window_s``/``max_batch``/``max_queue``/``workers`` parameterize
    the :class:`Microbatcher` (``max_batch=1`` is the no-coalescing
    baseline the load harness measures against); ``plan`` is the
    execution plan every kernel call runs under; ``cache`` is the
    *server-side* dedupe switch (``"auto"`` honors each request plan's
    cache policy, ``"off"`` disables dedupe entirely).

    Usage::

        async with EvalServer(port=0) as server:
            ...  # server.port is bound; fire ServiceClient requests
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 window_s: float = 0.002, max_batch: int = 64,
                 max_queue: int = 1024, workers: int = 1,
                 plan: Optional[ExecPlan] = None, cache: str = "auto",
                 cache_dir: Optional[str] = None,
                 max_body: int = 32 * 1024 * 1024,
                 deadline_s: Optional[float] = None):
        if cache not in ("auto", "off"):
            raise ValueError(f"server cache must be 'auto' or 'off', "
                             f"got {cache!r}")
        self.host = host
        self.port = port
        self.plan = plan if plan is not None else ExecPlan()
        self.cache = cache
        self.cache_dir = cache_dir
        self.max_body = max_body
        self.collector = Collector()
        self.batcher = Microbatcher(window_s=window_s, max_batch=max_batch,
                                    max_queue=max_queue, workers=workers,
                                    plan=self.plan,
                                    collector=self.collector,
                                    deadline_s=deadline_s)
        self._server: Optional[asyncio.AbstractServer] = None
        self._started = time.perf_counter()
        self._latencies_s: deque = deque(maxlen=10000)
        self._requests = 0
        self._errors = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "EvalServer":
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._started = time.perf_counter()
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.batcher.stop()

    async def __aenter__(self) -> "EvalServer":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # The workload path
    # ------------------------------------------------------------------
    async def handle_request(self, request: WorkloadRequest) -> WorkloadResult:
        """Validate -> dedupe -> microbatch one request (the transport-
        independent core; the HTTP route and in-process callers share
        it)."""
        handler = handler_for(request.kind)
        handler.validate(request)
        policy = self._cache_policy(request)
        params = request.cache_identity() if policy != "off" else None
        if policy == "auto":
            hit = self._cache_load(request, params)
            if hit is not None:
                return hit
        values, stats = await self.batcher.submit(handler, request)
        if policy in ("auto", "refresh"):
            self._cache_store(request, params, values, stats)
        return WorkloadResult(kind=request.kind, values=values,
                              request_id=request.request_id, stats=stats)

    def _cache_policy(self, request: WorkloadRequest) -> str:
        # The experiment runner does its own caching under its own keys.
        if self.cache == "off" or request.kind == "experiment":
            return "off"
        return request.plan.cache if request.plan is not None else "auto"

    def _cache_load(self, request, params) -> Optional[WorkloadResult]:
        from ..experiments import cache as _cache
        entry = _cache.load(f"{_CACHE_NAMESPACE}-{request.kind}", params,
                            cache_dir=self.cache_dir)
        if entry is None:
            return None
        try:
            payload = json.loads(entry["text"])
            values, stats = payload["values"], payload["stats"]
        except (KeyError, TypeError, ValueError):
            return None
        stats = dict(stats, cached=True)
        return WorkloadResult(kind=request.kind, values=values,
                              request_id=request.request_id, stats=stats)

    def _cache_store(self, request, params, values, stats) -> None:
        from ..experiments import cache as _cache
        _cache.store(f"{_CACHE_NAMESPACE}-{request.kind}", params,
                     json.dumps({"values": values, "stats": stats}),
                     cache_dir=self.cache_dir)

    # ------------------------------------------------------------------
    # HTTP framing
    # ------------------------------------------------------------------
    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                head = await self._read_head(reader)
                if head is None:
                    break
                method, path, headers = head
                framing_ok = True
                try:
                    body = await self._read_body(reader, headers)
                    status, payload = await self._route(method, path, body)
                except ServiceError as exc:
                    # A framing failure leaves unread body bytes on the
                    # stream; answer, then drop the connection.
                    framing_ok = False
                    status = exc.http_status
                    payload = {"error": exc.to_error_info().to_json()}
                # The ``service.connection`` fault site: drop the
                # connection *after* the work, before the answer — the
                # worst-timed failure a client can see.  Retried
                # requests dedupe/coalesce rather than recompute.
                try:
                    _faults.fire("service.connection")
                except _faults.InjectedFault:
                    self.collector.count("service.dropped_connections")
                    break
                keep_alive = framing_ok and \
                    headers.get("connection", "").lower() != "close"
                data = json.dumps(payload).encode()
                writer.write(
                    f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                    f"Content-Type: application/json\r\n"
                    f"Content-Length: {len(data)}\r\n"
                    f"Connection: "
                    f"{'keep-alive' if keep_alive else 'close'}\r\n"
                    f"\r\n".encode() + data)
                await writer.drain()
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_head(self, reader):
        try:
            line = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError):
            return None
        if not line or not line.strip():
            return None
        try:
            method, path, _version = line.decode("latin-1").split(None, 2)
        except ValueError:
            return None
        headers = {}
        while True:
            line = await reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return method.upper(), path, headers

    async def _read_body(self, reader, headers) -> bytes:
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise ProtocolError("Content-Length must be an integer") \
                from None
        if length <= 0:
            return b""
        if length > self.max_body:
            raise ProtocolError(f"request body of {length} bytes exceeds "
                                f"the {self.max_body}-byte limit")
        return await reader.readexactly(length)

    async def _route(self, method: str, path: str, body: bytes):
        path = path.split("?", 1)[0]
        if method == "POST" and path == "/v1/workload":
            return await self._route_workload(body)
        if method == "GET" and path == "/v1/stats":
            return 200, self.stats()
        if method == "GET" and path == "/v1/healthz":
            return 200, {"ok": True, "api_version": API_VERSION}
        info = ProtocolError(f"no route for {method} {path}; this server "
                             f"speaks POST /v1/workload, GET /v1/stats, "
                             f"GET /v1/healthz").to_error_info()
        return 404, {"error": info.to_json()}

    async def _route_workload(self, body: bytes):
        t0 = time.perf_counter()
        child = Collector()
        self._requests += 1
        try:
            with _tele.collect(collector=child):
                _tele.count("service.http.requests")
                _tele.count("service.http.request_bytes", len(body))
                try:
                    data = json.loads(body.decode())
                except (UnicodeDecodeError, ValueError) as exc:
                    raise ProtocolError(f"request body is not valid "
                                        f"JSON: {exc}") from exc
                request = WorkloadRequest.from_json(data)
                result = await self.handle_request(request)
            status, payload = 200, result.to_json()
        except ServiceError as exc:
            self._errors += 1
            child.count(f"service.errors.{exc.code}")
            status, payload = exc.http_status, {"error":
                                                exc.to_error_info().to_json()}
        self._latencies_s.append(time.perf_counter() - t0)
        self.collector.merge(child)
        return status, payload

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Live server statistics (the ``/v1/stats`` payload)."""
        latencies = sorted(self._latencies_s)
        counters = self.collector.counters
        batches = counters.get("service.batches", 0)
        batched = counters.get("service.batched_requests", 0)
        return {
            "api_version": API_VERSION,
            "uptime_s": time.perf_counter() - self._started,
            "requests": self._requests,
            "errors": self._errors,
            "in_flight": self.batcher._in_flight,
            "latency_ms": {
                "p50": _percentile(latencies, 0.50) * 1e3,
                "p99": _percentile(latencies, 0.99) * 1e3,
                "window": len(latencies),
            },
            "coalescing": {
                "batches": batches,
                "batched_requests": batched,
                "factor": (batched / batches) if batches else 0.0,
            },
            "config": {
                "window_s": self.batcher.window_s,
                "max_batch": self.batcher.max_batch,
                "max_queue": self.batcher.max_queue,
                "deadline_s": self.batcher.deadline_s,
                "cache": self.cache,
                "plan": self.plan.to_json(),
            },
            "telemetry": self.collector.to_json(),
        }


_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            429: "Too Many Requests", 500: "Internal Server Error",
            503: "Service Unavailable"}


__all__ = ["EvalServer"]
