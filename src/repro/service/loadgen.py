"""Synthetic load harness for the evaluation service.

Models the service's design-point traffic: many concurrent closed-loop
clients (one keep-alive connection each), every request a small
same-shape HMM ``forward`` workload — exactly the traffic microbatching
exists for.  Each client fires its requests back to back over a real
socket to an in-process :class:`~repro.service.server.EvalServer`, so
the measured path includes HTTP framing, JSON, validation, scheduling,
kernel execution, and result scatter.

:func:`run_load` measures one configuration (throughput, p50/p99
latency, coalescing factor); :func:`compare_coalescing` runs the *same*
traffic against a no-coalescing server (``max_batch=1`` — every request
its own kernel call) and a coalescing one, and reports the throughput
ratio.  That ratio is the service's reason to exist — the ROADMAP's
11-37x batch speedups converted into request throughput — and is
recorded in ``BENCH_service.json`` and gate-enforced at >= 3x
(``REPRO_SERVICE_SPEEDUP_FLOOR``).

Clients use *distinct* models (distinct seeds) and the server cache is
off, so nothing here measures dedupe — only genuine coalescing.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import List, Optional

from ..engine.plan import ExecPlan
from .api import ServiceError, WorkloadRequest
from .client import ServiceClient
from .server import EvalServer


def model_json(h: int, m: int, t: int, seed: int) -> dict:
    """One synthetic HMM as a ``forward`` payload model object."""
    from ..data.dirichlet import sample_hmm
    hmm = sample_hmm(h, m, t, seed=seed)
    a, b, pi, obs = hmm.as_float_arrays()
    return {"transition": a.tolist(), "emission": b.tolist(),
            "initial": pi.tolist(),
            "observations": [int(o) for o in obs]}


def forward_request(format: str, h: int, m: int, t: int, seed: int, *,
                    priority: int = 0,
                    request_id: Optional[str] = None) -> WorkloadRequest:
    """One single-model ``forward`` request over a sampled HMM."""
    return WorkloadRequest(kind="forward",
                           payload={"models": [model_json(h, m, t, seed)]},
                           format=format, priority=priority,
                           request_id=request_id)


@dataclass(frozen=True)
class LoadResult:
    """One load-run's measurements."""

    requests: int
    errors: int
    elapsed_s: float
    throughput_rps: float
    p50_ms: float
    p99_ms: float
    coalescing_factor: float
    batches: int

    def to_json(self) -> dict:
        return {"requests": self.requests, "errors": self.errors,
                "elapsed_s": self.elapsed_s,
                "throughput_rps": self.throughput_rps,
                "p50_ms": self.p50_ms, "p99_ms": self.p99_ms,
                "coalescing_factor": self.coalescing_factor,
                "batches": self.batches}


async def run_load(*, clients: int = 32, requests_per_client: int = 12,
                   format: str = "binary64", h: int = 8, m: int = 8,
                   t: int = 96, window_s: float = 0.005,
                   max_batch: int = 64, max_queue: int = 8192,
                   plan: Optional[ExecPlan] = None,
                   seed: int = 0) -> LoadResult:
    """Run one closed-loop load test against a fresh in-process server.

    ``max_batch=1`` gives the no-coalescing baseline; anything larger
    lets same-shape requests from concurrent clients share kernel
    calls.  All clients send the same ``(h, m, t)`` shape but distinct
    models, so every speedup measured is coalescing, not caching.
    """
    # One payload per client, built before the clock starts.
    payloads = [forward_request(format, h, m, t, seed + i).to_json()
                for i in range(clients)]
    latencies_s: List[float] = []
    errors = [0]

    async with EvalServer(port=0, window_s=window_s, max_batch=max_batch,
                          max_queue=max_queue, plan=plan,
                          cache="off") as server:

        async def one_client(index: int) -> None:
            payload = payloads[index]
            async with ServiceClient("127.0.0.1", server.port) as client:
                for j in range(requests_per_client):
                    request = WorkloadRequest.from_json(
                        dict(payload, request_id=f"c{index}-r{j}"))
                    t0 = time.perf_counter()
                    try:
                        await client.submit(request)
                    except ServiceError:
                        errors[0] += 1
                    latencies_s.append(time.perf_counter() - t0)

        started = time.perf_counter()
        await asyncio.gather(*(one_client(i) for i in range(clients)))
        elapsed = time.perf_counter() - started
        stats = server.stats()

    latencies_s.sort()

    def pct(q: float) -> float:
        if not latencies_s:
            return 0.0
        rank = min(len(latencies_s) - 1,
                   int(round(q * (len(latencies_s) - 1))))
        return latencies_s[rank] * 1e3

    total = clients * requests_per_client
    return LoadResult(
        requests=total, errors=errors[0], elapsed_s=elapsed,
        throughput_rps=total / elapsed if elapsed > 0 else 0.0,
        p50_ms=pct(0.50), p99_ms=pct(0.99),
        coalescing_factor=stats["coalescing"]["factor"],
        batches=stats["coalescing"]["batches"])


def compare_coalescing(*, scale: float = 1.0, format: str = "binary64",
                       h: int = 8, m: int = 8, t: int = 96,
                       window_s: float = 0.005,
                       max_batch: int = 64, seed: int = 0) -> dict:
    """Identical traffic against a no-coalescing and a coalescing
    server; returns the ``BENCH_service.json`` payload (the headline
    ``speedup`` is the coalesced/solo throughput ratio)."""
    clients = max(4, int(round(32 * scale)))
    requests_per_client = max(3, int(round(12 * scale)))

    def run(batch: int) -> LoadResult:
        return asyncio.run(run_load(
            clients=clients, requests_per_client=requests_per_client,
            format=format, h=h, m=m, t=t, window_s=window_s,
            max_batch=batch, seed=seed))

    solo = run(1)
    coalesced = run(max_batch)
    speedup = (coalesced.throughput_rps / solo.throughput_rps
               if solo.throughput_rps > 0 else 0.0)
    return {
        "benchmark": "service_load",
        "params": {"clients": clients,
                   "requests_per_client": requests_per_client,
                   "format": format, "shape": [h, m, t],
                   "window_s": window_s, "max_batch": max_batch},
        "results": {
            "forward_coalescing": {
                "speedup": speedup,
                "solo": solo.to_json(),
                "coalesced": coalesced.to_json(),
            },
        },
    }


__all__ = ["LoadResult", "compare_coalescing", "forward_request",
           "model_json", "run_load"]
