"""Synthetic load harness for the evaluation service.

Models the service's design-point traffic: many concurrent closed-loop
clients (one keep-alive connection each), every request a small
same-shape HMM ``forward`` workload — exactly the traffic microbatching
exists for.  Each client fires its requests back to back over a real
socket to an in-process :class:`~repro.service.server.EvalServer`, so
the measured path includes HTTP framing, JSON, validation, scheduling,
kernel execution, and result scatter.

:func:`run_load` measures one configuration (throughput, p50/p99
latency, coalescing factor); :func:`compare_coalescing` runs the *same*
traffic against a no-coalescing server (``max_batch=1`` — every request
its own kernel call) and a coalescing one, and reports the throughput
ratio.  That ratio is the service's reason to exist — the ROADMAP's
11-37x batch speedups converted into request throughput — and is
recorded in ``BENCH_service.json`` and gate-enforced at >= 3x
(``REPRO_SERVICE_SPEEDUP_FLOOR``).

Clients use *distinct* models (distinct seeds) and the server cache is
off, so nothing here measures dedupe — only genuine coalescing.

:func:`run_chaos` (PR 10) is the resilience counterpart: the same
closed-loop traffic with a globally-injected :class:`~repro.faults.
FaultPlan` poisoning batches, stalling the scheduler past its deadline,
and dropping connections mid-response — while retrying clients hammer
on.  Its invariant is the service's whole robustness claim: **every**
response is either a bit-exact wire triple (equal to the fault-free
answer computed up front) or a *typed* :class:`~repro.service.api.
ServiceError` — never a wrong value, never an untyped exception.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from collections import Counter
from dataclasses import dataclass
from typing import List, Optional

from .. import faults as _faults
from ..engine.plan import ExecPlan
from .api import ServiceError, WorkloadRequest
from .client import ServiceClient
from .server import EvalServer


def model_json(h: int, m: int, t: int, seed: int) -> dict:
    """One synthetic HMM as a ``forward`` payload model object."""
    from ..data.dirichlet import sample_hmm
    hmm = sample_hmm(h, m, t, seed=seed)
    a, b, pi, obs = hmm.as_float_arrays()
    return {"transition": a.tolist(), "emission": b.tolist(),
            "initial": pi.tolist(),
            "observations": [int(o) for o in obs]}


def forward_request(format: str, h: int, m: int, t: int, seed: int, *,
                    priority: int = 0,
                    request_id: Optional[str] = None) -> WorkloadRequest:
    """One single-model ``forward`` request over a sampled HMM."""
    return WorkloadRequest(kind="forward",
                           payload={"models": [model_json(h, m, t, seed)]},
                           format=format, priority=priority,
                           request_id=request_id)


@dataclass(frozen=True)
class LoadResult:
    """One load-run's measurements."""

    requests: int
    errors: int
    elapsed_s: float
    throughput_rps: float
    p50_ms: float
    p99_ms: float
    coalescing_factor: float
    batches: int

    def to_json(self) -> dict:
        return {"requests": self.requests, "errors": self.errors,
                "elapsed_s": self.elapsed_s,
                "throughput_rps": self.throughput_rps,
                "p50_ms": self.p50_ms, "p99_ms": self.p99_ms,
                "coalescing_factor": self.coalescing_factor,
                "batches": self.batches}


async def run_load(*, clients: int = 32, requests_per_client: int = 12,
                   format: str = "binary64", h: int = 8, m: int = 8,
                   t: int = 96, window_s: float = 0.005,
                   max_batch: int = 64, max_queue: int = 8192,
                   plan: Optional[ExecPlan] = None,
                   seed: int = 0) -> LoadResult:
    """Run one closed-loop load test against a fresh in-process server.

    ``max_batch=1`` gives the no-coalescing baseline; anything larger
    lets same-shape requests from concurrent clients share kernel
    calls.  All clients send the same ``(h, m, t)`` shape but distinct
    models, so every speedup measured is coalescing, not caching.
    """
    # One payload per client, built before the clock starts.
    payloads = [forward_request(format, h, m, t, seed + i).to_json()
                for i in range(clients)]
    latencies_s: List[float] = []
    errors = [0]

    async with EvalServer(port=0, window_s=window_s, max_batch=max_batch,
                          max_queue=max_queue, plan=plan,
                          cache="off") as server:

        async def one_client(index: int) -> None:
            payload = payloads[index]
            async with ServiceClient("127.0.0.1", server.port) as client:
                for j in range(requests_per_client):
                    request = WorkloadRequest.from_json(
                        dict(payload, request_id=f"c{index}-r{j}"))
                    t0 = time.perf_counter()
                    try:
                        await client.submit(request)
                    except ServiceError:
                        errors[0] += 1
                    latencies_s.append(time.perf_counter() - t0)

        started = time.perf_counter()
        await asyncio.gather(*(one_client(i) for i in range(clients)))
        elapsed = time.perf_counter() - started
        stats = server.stats()

    latencies_s.sort()

    def pct(q: float) -> float:
        if not latencies_s:
            return 0.0
        rank = min(len(latencies_s) - 1,
                   int(round(q * (len(latencies_s) - 1))))
        return latencies_s[rank] * 1e3

    total = clients * requests_per_client
    return LoadResult(
        requests=total, errors=errors[0], elapsed_s=elapsed,
        throughput_rps=total / elapsed if elapsed > 0 else 0.0,
        p50_ms=pct(0.50), p99_ms=pct(0.99),
        coalescing_factor=stats["coalescing"]["factor"],
        batches=stats["coalescing"]["batches"])


def compare_coalescing(*, scale: float = 1.0, format: str = "binary64",
                       h: int = 8, m: int = 8, t: int = 96,
                       window_s: float = 0.005,
                       max_batch: int = 64, seed: int = 0) -> dict:
    """Identical traffic against a no-coalescing and a coalescing
    server; returns the ``BENCH_service.json`` payload (the headline
    ``speedup`` is the coalesced/solo throughput ratio)."""
    clients = max(4, int(round(32 * scale)))
    requests_per_client = max(3, int(round(12 * scale)))

    def run(batch: int) -> LoadResult:
        return asyncio.run(run_load(
            clients=clients, requests_per_client=requests_per_client,
            format=format, h=h, m=m, t=t, window_s=window_s,
            max_batch=batch, seed=seed))

    solo = run(1)
    coalesced = run(max_batch)
    speedup = (coalesced.throughput_rps / solo.throughput_rps
               if solo.throughput_rps > 0 else 0.0)
    return {
        "benchmark": "service_load",
        "params": {"clients": clients,
                   "requests_per_client": requests_per_client,
                   "format": format, "shape": [h, m, t],
                   "window_s": window_s, "max_batch": max_batch},
        "results": {
            "forward_coalescing": {
                "speedup": speedup,
                "solo": solo.to_json(),
                "coalesced": coalesced.to_json(),
            },
        },
    }


async def run_chaos(*, clients: int = 8, requests_per_client: int = 6,
                    format: str = "binary64", h: int = 6, m: int = 6,
                    t: int = 48, window_s: float = 0.003,
                    max_batch: int = 32, max_queue: int = 4096,
                    deadline_s: float = 2.0, seed: int = 0,
                    chaos_seed: int = 1234,
                    batch_error_p: float = 0.25,
                    batch_delay_p: float = 0.10,
                    delay_s: float = 0.05,
                    drop_p: float = 0.20) -> dict:
    """Closed-loop load under an injected fault storm.

    The fault-free answer for every client's model is computed up
    front through :func:`~repro.service.workloads.execute` (the same
    dispatcher the server uses), then the *same* requests are driven
    through a real server with ``service.batch`` error/delay rules and
    a ``service.connection`` drop rule installed process-wide.
    Clients retry with backoff; the server sheds queue entries aged
    past ``deadline_s``.

    Returns a report whose ``invariant_ok`` is True iff every response
    was either exactly the fault-free wire values or a typed
    :class:`ServiceError` — the chaos-mode acceptance criterion.
    """
    from .workloads import execute

    payloads = [forward_request(format, h, m, t, seed + i).to_json()
                for i in range(clients)]
    # Fault-free oracle: exact wire values per client, computed before
    # any plan is installed.  json round-trip normalizes containers the
    # same way the socket path does.
    expected = [
        json.loads(json.dumps(
            execute(WorkloadRequest.from_json(dict(p))).values))
        for p in payloads]

    plan = _faults.FaultPlan([
        _faults.FaultRule("service.batch", mode="error", p=batch_error_p),
        _faults.FaultRule("service.batch", mode="delay", p=batch_delay_p,
                          delay_s=delay_s),
        _faults.FaultRule("service.connection", mode="error", p=drop_p),
    ], seed=chaos_seed)

    ok = [0]
    mismatches = [0]
    typed_errors: Counter = Counter()
    untyped_errors: Counter = Counter()

    with _faults.inject(plan, globally=True):
        async with EvalServer(port=0, window_s=window_s,
                              max_batch=max_batch, max_queue=max_queue,
                              deadline_s=deadline_s,
                              cache="off") as server:

            async def one_client(index: int) -> None:
                payload = payloads[index]
                client = ServiceClient(
                    "127.0.0.1", server.port, retries=6,
                    backoff_s=0.01, backoff_max_s=0.25,
                    rng=random.Random(f"{chaos_seed}:{index}"))
                async with client:
                    for j in range(requests_per_client):
                        request = WorkloadRequest.from_json(
                            dict(payload, request_id=f"c{index}-r{j}"))
                        try:
                            result = await client.submit(request)
                        except ServiceError as exc:
                            typed_errors[exc.code] += 1
                        except Exception as exc:  # invariant violation
                            untyped_errors[type(exc).__name__] += 1
                        else:
                            if result.values == expected[index]:
                                ok[0] += 1
                            else:
                                mismatches[0] += 1

            started = time.perf_counter()
            await asyncio.gather(*(one_client(i) for i in range(clients)))
            elapsed = time.perf_counter() - started
            stats = server.stats()

    injected = Counter(site for site, _token, _mode in plan.fired)
    total = clients * requests_per_client
    return {
        "benchmark": "service_chaos",
        "params": {"clients": clients,
                   "requests_per_client": requests_per_client,
                   "format": format, "shape": [h, m, t],
                   "window_s": window_s, "max_batch": max_batch,
                   "deadline_s": deadline_s, "chaos_seed": chaos_seed,
                   "batch_error_p": batch_error_p,
                   "batch_delay_p": batch_delay_p, "drop_p": drop_p},
        "results": {"chaos": {
            "requests": total,
            "ok": ok[0],
            "mismatches": mismatches[0],
            "typed_errors": dict(typed_errors),
            "untyped_errors": dict(untyped_errors),
            "injected": dict(injected),
            "dropped_connections": stats["telemetry"]["counters"].get(
                "service.dropped_connections", 0),
            "shed": stats["telemetry"]["counters"].get("service.shed", 0),
            "elapsed_s": elapsed,
            "invariant_ok": (mismatches[0] == 0
                             and not untyped_errors
                             and ok[0] + sum(typed_errors.values())
                             + mismatches[0] == total),
        }},
    }


__all__ = ["LoadResult", "compare_coalescing", "forward_request",
           "model_json", "run_chaos", "run_load"]
