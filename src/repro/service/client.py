"""``ServiceClient``: the in-process client for an :class:`EvalServer`.

Speaks the same hand-framed HTTP/1.1-over-asyncio-streams protocol as
the server (stdlib only), holding one keep-alive connection per client
instance — the load harness runs hundreds of these concurrently, each
modelling one closed-loop user.

:meth:`submit` takes a typed :class:`~repro.service.api.WorkloadRequest`
and returns a typed :class:`~repro.service.api.WorkloadResult`; non-2xx
responses raise the :class:`~repro.service.api.ServiceError` subclass
the body's :class:`~repro.service.api.ErrorInfo` names (``Overloaded``
for 429, ``ProtocolError`` for 400, ...), so callers handle failures by
exception type, never by status-code arithmetic.

**Retry semantics** (PR 10): transient failures — a dropped connection
or missing response (:class:`~repro.service.api.TransportError`),
backpressure (:class:`~repro.service.api.Overloaded`), a queue-shed
request (:class:`~repro.service.api.DeadlineExceeded`) — are retried up
to ``retries`` times with exponential backoff and **full jitter**
(``sleep ~ U(0, min(cap, base * 2**attempt))``), bounded by a
``deadline_s`` budget per request.  Retrying is safe against this
service by construction: every workload is deterministic and the
server dedupes on ``cache_identity()``, so a replay coalesces or hits
cache instead of recomputing.  Typed application errors (400s,
``WorkloadFailed``, ``ShuttingDown``) are never retried.

:meth:`connect` retries refused connections the same way (a server
still binding its socket answers ``ECONNREFUSED`` for a beat — the
race every serve-then-ping script used to lose).

:func:`call` is the one-shot synchronous convenience wrapper (connect,
submit, disconnect) for scripts and the CLI ``ping`` path.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from typing import Optional

from .. import telemetry as _tele
from .api import (
    DeadlineExceeded,
    ErrorInfo,
    Overloaded,
    ProtocolError,
    ServiceError,
    TransportError,
    WorkloadRequest,
    WorkloadResult,
    error_from_info,
)

#: Errors worth a retry: nothing (or nothing useful) executed.
RETRYABLE = (TransportError, Overloaded, DeadlineExceeded)


class ServiceClient:
    """One keep-alive connection to an evaluation server.

    ``retries`` — transient-failure retry budget per request (0
    disables); ``backoff_s``/``backoff_max_s`` — the exponential
    backoff base and cap, with full jitter; ``deadline_s`` — total
    per-request time budget across retries (None = unbounded);
    ``connect_retries`` — extra attempts while the server's socket is
    still refusing; ``rng`` — the jitter source (seed one for
    reproducible schedules).

    Usage::

        async with ServiceClient("127.0.0.1", server.port) as client:
            result = await client.submit(request)
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8421, *,
                 timeout_s: Optional[float] = 60.0,
                 retries: int = 2, backoff_s: float = 0.05,
                 backoff_max_s: float = 2.0,
                 deadline_s: Optional[float] = None,
                 connect_retries: int = 5,
                 rng: Optional[random.Random] = None):
        if retries < 0 or connect_retries < 0:
            raise ValueError("retries/connect_retries must be >= 0")
        if backoff_s < 0 or backoff_max_s < 0:
            raise ValueError("backoff_s/backoff_max_s must be >= 0")
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self.backoff_max_s = backoff_max_s
        self.deadline_s = deadline_s
        self.connect_retries = connect_retries
        self._rng = rng if rng is not None else random.Random()
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    # ------------------------------------------------------------------
    # Connection lifecycle
    # ------------------------------------------------------------------
    def _backoff(self, attempt: int) -> float:
        """Full-jitter exponential backoff for one retry."""
        cap = min(self.backoff_max_s, self.backoff_s * (2 ** attempt))
        return self._rng.uniform(0.0, cap)

    async def connect(self) -> "ServiceClient":
        """Open the connection, retrying refused/unreachable sockets
        with backoff (the serve-then-connect startup window)."""
        if self._writer is not None:
            return self
        attempt = 0
        while True:
            try:
                self._reader, self._writer = await asyncio.open_connection(
                    self.host, self.port)
                return self
            except (ConnectionError, OSError):
                if attempt >= self.connect_retries:
                    raise
                _tele.count("client.connect_retries")
                await asyncio.sleep(self._backoff(attempt))
                attempt += 1

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "ServiceClient":
        return await self.connect()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    async def submit(self, request: WorkloadRequest, *,
                     deadline_s: Optional[float] = None) -> WorkloadResult:
        """One workload round trip; raises the typed
        :class:`ServiceError` on a non-2xx answer.

        Transient failures (:data:`RETRYABLE`) are retried with
        backoff until the ``retries`` budget or the per-request
        deadline (``deadline_s`` here, else the client default) runs
        out; the last error is re-raised.
        """
        deadline = deadline_s if deadline_s is not None else self.deadline_s
        start = time.monotonic()
        attempt = 0
        while True:
            try:
                return await self._submit_once(request)
            except RETRYABLE:
                if attempt >= self.retries:
                    raise
                delay = self._backoff(attempt)
                if deadline is not None and \
                        time.monotonic() - start + delay > deadline:
                    raise
                _tele.count("client.retries")
                await asyncio.sleep(delay)
                attempt += 1

    async def _submit_once(self, request: WorkloadRequest) -> WorkloadResult:
        status, payload = await self._round_trip(
            "POST", "/v1/workload", request.to_json())
        if status == 200:
            return WorkloadResult.from_json(payload)
        raise self._error(status, payload)

    async def stats(self) -> dict:
        status, payload = await self._round_trip("GET", "/v1/stats", None)
        if status != 200:
            raise self._error(status, payload)
        return payload

    async def healthz(self) -> dict:
        status, payload = await self._round_trip("GET", "/v1/healthz", None)
        if status != 200:
            raise self._error(status, payload)
        return payload

    @staticmethod
    def _error(status: int, payload) -> ServiceError:
        info = payload.get("error") if isinstance(payload, dict) else None
        if info is not None:
            try:
                return error_from_info(ErrorInfo.from_json(info))
            except ProtocolError:
                pass
        return ServiceError(f"server answered HTTP {status} with an "
                            f"unrecognized error body: {payload!r}")

    async def _round_trip(self, method: str, path: str, payload):
        await self.connect()
        body = b"" if payload is None else json.dumps(payload).encode()
        head = (f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"\r\n")
        self._writer.write(head.encode() + body)
        try:
            await self._writer.drain()
            response = await asyncio.wait_for(self._read_response(),
                                              self.timeout_s)
        except (asyncio.IncompleteReadError, ConnectionError) as exc:
            await self.close()
            raise TransportError(f"connection to {self.host}:{self.port} "
                                 f"dropped mid-request: "
                                 f"{type(exc).__name__}") from exc
        except asyncio.TimeoutError:
            await self.close()
            raise TransportError(f"no response from {self.host}:"
                                 f"{self.port} within "
                                 f"{self.timeout_s}s") from None
        return response

    async def _read_response(self):
        line = await self._reader.readline()
        if not line:
            raise ConnectionResetError("server closed the connection")
        parts = line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ServiceError(f"malformed status line {line!r}")
        status = int(parts[1])
        length = 0
        keep_alive = True
        while True:
            line = await self._reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            name = name.strip().lower()
            if name == "content-length":
                length = int(value.strip())
            elif name == "connection" and value.strip().lower() == "close":
                keep_alive = False
        body = await self._reader.readexactly(length) if length else b""
        if not keep_alive:
            await self.close()
        try:
            payload = json.loads(body.decode()) if body else None
        except (UnicodeDecodeError, ValueError) as exc:
            raise ServiceError(f"server sent a non-JSON body: "
                               f"{exc}") from exc
        return status, payload


def call(request: WorkloadRequest, host: str = "127.0.0.1",
         port: int = 8421, *,
         timeout_s: Optional[float] = 60.0) -> WorkloadResult:
    """Synchronous one-shot convenience: connect, submit, disconnect."""

    async def _run():
        async with ServiceClient(host, port, timeout_s=timeout_s) as client:
            return await client.submit(request)

    return asyncio.run(_run())


__all__ = ["RETRYABLE", "ServiceClient", "call"]
