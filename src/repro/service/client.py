"""``ServiceClient``: the in-process client for an :class:`EvalServer`.

Speaks the same hand-framed HTTP/1.1-over-asyncio-streams protocol as
the server (stdlib only), holding one keep-alive connection per client
instance — the load harness runs hundreds of these concurrently, each
modelling one closed-loop user.

:meth:`submit` takes a typed :class:`~repro.service.api.WorkloadRequest`
and returns a typed :class:`~repro.service.api.WorkloadResult`; non-2xx
responses raise the :class:`~repro.service.api.ServiceError` subclass
the body's :class:`~repro.service.api.ErrorInfo` names (``Overloaded``
for 429, ``ProtocolError`` for 400, ...), so callers handle failures by
exception type, never by status-code arithmetic.

:func:`call` is the one-shot synchronous convenience wrapper (connect,
submit, disconnect) for scripts and the CLI ``ping`` path.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

from .api import (
    ErrorInfo,
    ProtocolError,
    ServiceError,
    WorkloadRequest,
    WorkloadResult,
    error_from_info,
)


class ServiceClient:
    """One keep-alive connection to an evaluation server.

    Usage::

        async with ServiceClient("127.0.0.1", server.port) as client:
            result = await client.submit(request)
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8421, *,
                 timeout_s: Optional[float] = 60.0):
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    # ------------------------------------------------------------------
    # Connection lifecycle
    # ------------------------------------------------------------------
    async def connect(self) -> "ServiceClient":
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port)
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "ServiceClient":
        return await self.connect()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    async def submit(self, request: WorkloadRequest) -> WorkloadResult:
        """One workload round trip; raises the typed
        :class:`ServiceError` on a non-2xx answer."""
        status, payload = await self._round_trip(
            "POST", "/v1/workload", request.to_json())
        if status == 200:
            return WorkloadResult.from_json(payload)
        raise self._error(status, payload)

    async def stats(self) -> dict:
        status, payload = await self._round_trip("GET", "/v1/stats", None)
        if status != 200:
            raise self._error(status, payload)
        return payload

    async def healthz(self) -> dict:
        status, payload = await self._round_trip("GET", "/v1/healthz", None)
        if status != 200:
            raise self._error(status, payload)
        return payload

    @staticmethod
    def _error(status: int, payload) -> ServiceError:
        info = payload.get("error") if isinstance(payload, dict) else None
        if info is not None:
            try:
                return error_from_info(ErrorInfo.from_json(info))
            except ProtocolError:
                pass
        return ServiceError(f"server answered HTTP {status} with an "
                            f"unrecognized error body: {payload!r}")

    async def _round_trip(self, method: str, path: str, payload):
        await self.connect()
        body = b"" if payload is None else json.dumps(payload).encode()
        head = (f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"\r\n")
        self._writer.write(head.encode() + body)
        try:
            await self._writer.drain()
            response = await asyncio.wait_for(self._read_response(),
                                              self.timeout_s)
        except (asyncio.IncompleteReadError, ConnectionError) as exc:
            await self.close()
            raise ServiceError(f"connection to {self.host}:{self.port} "
                               f"dropped mid-request: "
                               f"{type(exc).__name__}") from exc
        except asyncio.TimeoutError:
            await self.close()
            raise ServiceError(f"no response from {self.host}:{self.port} "
                               f"within {self.timeout_s}s") from None
        return response

    async def _read_response(self):
        line = await self._reader.readline()
        if not line:
            raise ConnectionResetError("server closed the connection")
        parts = line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ServiceError(f"malformed status line {line!r}")
        status = int(parts[1])
        length = 0
        keep_alive = True
        while True:
            line = await self._reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            name = name.strip().lower()
            if name == "content-length":
                length = int(value.strip())
            elif name == "connection" and value.strip().lower() == "close":
                keep_alive = False
        body = await self._reader.readexactly(length) if length else b""
        if not keep_alive:
            await self.close()
        try:
            payload = json.loads(body.decode()) if body else None
        except (UnicodeDecodeError, ValueError) as exc:
            raise ServiceError(f"server sent a non-JSON body: "
                               f"{exc}") from exc
        return status, payload


def call(request: WorkloadRequest, host: str = "127.0.0.1",
         port: int = 8421, *,
         timeout_s: Optional[float] = 60.0) -> WorkloadResult:
    """Synchronous one-shot convenience: connect, submit, disconnect."""

    async def _run():
        async with ServiceClient(host, port, timeout_s=timeout_s) as client:
            return await client.submit(request)

    return asyncio.run(_run())


__all__ = ["ServiceClient", "call"]
