"""Workload handlers: the executable side of the service contract.

One :class:`WorkloadHandler` per request ``kind`` knows how to

* **validate** a :class:`~repro.service.api.WorkloadRequest` payload
  (raising :class:`~repro.service.api.InvalidRequest` with a message
  that names the offending field),
* produce a **coalesce key** — requests with equal keys arriving within
  the scheduler's window are executed as ONE batched kernel call
  (``None`` means "never coalesce": the ragged/odd-shaped case), and
* **run a batch** of same-key requests through the execution plane,
  scattering per-request results back in order.

Coalescing leans entirely on certifications the execution plane already
proves: ``forward`` runs through
:func:`repro.apps.hmm.forward_models_batch` with ``certified=True``
(reduction-certified mirrors only, so a coalesced likelihood is
*guaranteed* bit-identical to a solo :func:`repro.apps.hmm.forward`
call), and ``pbd``/``op``/``astype`` are elementwise workloads where
batching over the request axis is value-preserving by construction.
That is why the scatter can promise bit-identity without the scheduler
knowing any numerics.

:func:`execute` is the single-request entry point — the in-process
dispatcher the CLI runner and the tests share with the server (the
server's scheduler calls ``run_batch`` directly).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .. import telemetry as _tele
from ..arith.registry import REGISTRY
from ..bigfloat import BigFloat
from ..engine.plan import ExecPlan, resolve_plan
from .api import (
    InvalidRequest,
    UnknownKind,
    WorkloadRequest,
    WorkloadResult,
    encode_bigfloat,
    encode_value,
)

#: ``(values, stats)`` for one request — what ``run_batch`` yields.
RequestOutput = Tuple[list, dict]


def _backend(format_name: Optional[str]):
    """The shared scalar backend for a registry format name (shared so
    the registry's weak-keyed mirror memoization holds across
    requests — LNS tables in particular must survive)."""
    from ..nd.context import _default_backend
    if not isinstance(format_name, str) or not format_name:
        raise InvalidRequest("this workload kind needs a registry "
                             "format name in the request's 'format' "
                             "field (e.g. \"binary64\", \"posit(64,12)\")")
    try:
        return _default_backend(format_name)
    except (KeyError, ValueError) as exc:
        raise InvalidRequest(f"unknown format {format_name!r}: "
                             f"{exc}") from exc


def _check_format(format_name) -> str:
    """Registry-validate a format name at request-validation time
    (cheap: no backend construction on the rejection path)."""
    if not isinstance(format_name, str) or not format_name:
        raise InvalidRequest("this workload kind needs a registry "
                             "format name in the request's 'format' "
                             "field (e.g. \"binary64\", \"posit(64,12)\")")
    try:
        REGISTRY.spec(format_name)
    except KeyError as exc:
        raise InvalidRequest(str(exc.args[0]) if exc.args else
                             f"unknown format {format_name!r}") from exc
    return format_name


def _probability(value, *, where: str) -> BigFloat:
    """One JSON number as an exact BigFloat probability operand."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise InvalidRequest(f"{where} must be numbers, got "
                             f"{type(value).__name__}")
    try:
        return BigFloat.from_float(float(value))
    except (OverflowError, ValueError) as exc:
        raise InvalidRequest(f"{where}: {exc}") from exc


def _number_list(values, *, where: str) -> List[BigFloat]:
    if not isinstance(values, (list, tuple)) or not values:
        raise InvalidRequest(f"{where} must be a non-empty list of "
                             f"numbers")
    return [_probability(v, where=where) for v in values]


def _memo(request: WorkloadRequest, attr: str, compute):
    """Parse each request's payload exactly once.

    Every request is parsed at three layers (validation, coalesce-key,
    batch execution); the parsed form is stashed on the (frozen)
    request instance so layers two and three are free — under load the
    triple parse costs more than the coalesced kernel itself.
    """
    cached = request.__dict__.get(attr)
    if cached is None:
        cached = compute()
        object.__setattr__(request, attr, cached)
    return cached


class WorkloadHandler:
    """Base class: one executable workload kind."""

    kind: str = ""

    def validate(self, request: WorkloadRequest) -> None:
        """Raise :class:`InvalidRequest` unless the payload is
        well-formed for this kind.  Called once, before queueing."""
        raise NotImplementedError

    def coalesce_key(self, request: WorkloadRequest) -> Optional[tuple]:
        """The microbatch identity of a *validated* request, or ``None``
        when the request must run solo."""
        return None

    def run_batch(self, requests: Sequence[WorkloadRequest],
                  plan: Optional[ExecPlan] = None) -> List[RequestOutput]:
        """Execute same-key requests as one kernel call; one
        ``(values, stats)`` per request, input order."""
        raise NotImplementedError


# ----------------------------------------------------------------------
# forward — HMM forward likelihoods (single- and multi-model)
# ----------------------------------------------------------------------
def _model_from_json(model, *, where: str):
    """One JSON model object as an exact :class:`HMMData`."""
    from ..data.dirichlet import HMMData
    if not isinstance(model, dict):
        raise InvalidRequest(f"{where} must be an object with "
                             f"'transition', 'emission', 'initial', "
                             f"'observations'")
    missing = [k for k in ("transition", "emission", "initial",
                           "observations") if k not in model]
    if missing:
        raise InvalidRequest(f"{where} is missing field(s) "
                             f"{', '.join(missing)}")
    unknown = sorted(set(model) - {"transition", "emission", "initial",
                                   "observations"})
    if unknown:
        raise InvalidRequest(f"{where} has unknown field(s) "
                             f"{', '.join(unknown)}")

    def matrix(name, rows):
        if not isinstance(rows, (list, tuple)) or not rows:
            raise InvalidRequest(f"{where}.{name} must be a non-empty "
                                 f"list of rows")
        width = None
        out = []
        for row in rows:
            bf_row = tuple(_number_list(row, where=f"{where}.{name} rows"))
            if width is None:
                width = len(bf_row)
            elif len(bf_row) != width:
                raise InvalidRequest(f"{where}.{name} rows must share "
                                     f"one length")
            out.append(bf_row)
        return tuple(out)

    transition = matrix("transition", model["transition"])
    emission = matrix("emission", model["emission"])
    initial = tuple(_number_list(model["initial"],
                                 where=f"{where}.initial"))
    if len(transition) != len(transition[0]) or \
            len(transition) != len(emission) or \
            len(transition) != len(initial):
        raise InvalidRequest(f"{where}: transition must be (H, H) with "
                             f"emission (H, M) and initial (H,)")
    obs = model["observations"]
    if not isinstance(obs, (list, tuple)) or not obs:
        raise InvalidRequest(f"{where}.observations must be a non-empty "
                             f"list of symbol indices")
    n_symbols = len(emission[0])
    observations = []
    for o in obs:
        if isinstance(o, bool) or not isinstance(o, int) \
                or not 0 <= o < n_symbols:
            raise InvalidRequest(f"{where}.observations must be ints in "
                                 f"[0, {n_symbols})")
        observations.append(o)
    return HMMData(transition, emission, initial, tuple(observations))


class ForwardHandler(WorkloadHandler):
    """``forward``: likelihoods for one or many HMMs.

    Payload: ``{"models": [<model>, ...]}`` where each model carries
    ``transition``/``emission``/``initial`` probability matrices (JSON
    numbers — exact, the doubles the data layer samples) and an integer
    ``observations`` sequence.  One likelihood per model comes back.

    Requests whose models all share one ``(H, M, T)`` shape coalesce by
    ``(format, H, M, T)``; a mixed-shape multi-model request runs solo
    (``forward_models_batch`` still groups internally).  Execution is
    ``certified=True``: coalesced results are bit-identical to solo
    ``forward()`` by the registry's reduction certification.
    """

    kind = "forward"

    def _models(self, request: WorkloadRequest) -> list:
        return _memo(request, "_parsed_models",
                     lambda: self._parse_models(request))

    def _parse_models(self, request: WorkloadRequest) -> list:
        payload = request.payload
        unknown = sorted(set(payload) - {"models"})
        if unknown:
            raise InvalidRequest(f"forward payload has unknown field(s) "
                                 f"{', '.join(unknown)}; expected "
                                 f"{{'models': [...]}}")
        models = payload.get("models")
        if not isinstance(models, (list, tuple)) or not models:
            raise InvalidRequest("forward payload needs a non-empty "
                                 "'models' list")
        return [_model_from_json(m, where=f"models[{i}]")
                for i, m in enumerate(models)]

    def validate(self, request: WorkloadRequest) -> None:
        _check_format(request.format)
        self._models(request)

    def coalesce_key(self, request: WorkloadRequest) -> Optional[tuple]:
        models = self._models(request)
        shapes = {(m.n_states, m.n_symbols, m.length) for m in models}
        if len(shapes) != 1:
            return None  # ragged multi-model request: runs solo
        h, m, t = shapes.pop()
        return ("forward", request.format, h, m, t)

    def run_batch(self, requests, plan=None) -> List[RequestOutput]:
        from ..apps.hmm import forward_models_batch
        plan = resolve_plan(plan, where="ForwardHandler.run_batch")
        per_request = [self._models(r) for r in requests]
        flat = [m for models in per_request for m in models]
        backend = _backend(requests[0].format)
        _tele.count("service.forward.models", len(flat))
        likes = forward_models_batch(flat, backend, plan, certified=True)
        out: List[RequestOutput] = []
        lo = 0
        for models in per_request:
            hi = lo + len(models)
            values = [encode_value(backend, v) for v in likes[lo:hi]]
            out.append((values, {"models": len(models)}))
            lo = hi
        return out


# ----------------------------------------------------------------------
# pbd — Poisson Binomial p-values
# ----------------------------------------------------------------------
class PbdHandler(WorkloadHandler):
    """``pbd``: P(X >= k) per site.

    Payload: ``{"sites": [[p, ...], ...], "k": K}`` — equal-length rows
    of success probabilities.  Coalesces by
    ``(format, n_trials, k)``; the PBD recurrence is add/mul only
    (elementwise certification tier), so batching over the site axis is
    value-preserving for every format.
    """

    kind = "pbd"

    def _sites(self, request: WorkloadRequest):
        return _memo(request, "_parsed_sites",
                     lambda: self._parse_sites(request))

    def _parse_sites(self, request: WorkloadRequest):
        payload = request.payload
        unknown = sorted(set(payload) - {"sites", "k"})
        if unknown:
            raise InvalidRequest(f"pbd payload has unknown field(s) "
                                 f"{', '.join(unknown)}; expected "
                                 f"{{'sites': [...], 'k': K}}")
        k = payload.get("k")
        if isinstance(k, bool) or not isinstance(k, int) or k < 1:
            raise InvalidRequest("pbd payload needs an integer k >= 1")
        rows = payload.get("sites")
        if not isinstance(rows, (list, tuple)) or not rows:
            raise InvalidRequest("pbd payload needs a non-empty 'sites' "
                                 "list of probability rows")
        sites = [_number_list(row, where=f"sites[{i}]")
                 for i, row in enumerate(rows)]
        n_trials = len(sites[0])
        if any(len(row) != n_trials for row in sites):
            raise InvalidRequest("pbd sites must share one trial count")
        if n_trials < k:
            raise InvalidRequest(f"pbd sites need at least k={k} trials, "
                                 f"got {n_trials}")
        return sites, k

    def validate(self, request: WorkloadRequest) -> None:
        _check_format(request.format)
        sites, _k = self._sites(request)
        from ..apps.pbd import complement
        for i, row in enumerate(sites):
            for p in row:
                try:
                    complement(p)
                except ValueError as exc:
                    raise InvalidRequest(f"sites[{i}]: {exc}") from exc

    def coalesce_key(self, request: WorkloadRequest) -> Optional[tuple]:
        sites, k = self._sites(request)
        return ("pbd", request.format, len(sites[0]), k)

    def run_batch(self, requests, plan=None) -> List[RequestOutput]:
        from ..apps.pbd import pbd_pvalue_batch
        plan = resolve_plan(plan, where="PbdHandler.run_batch")
        parsed = [self._sites(r) for r in requests]
        k = parsed[0][1]
        flat = [row for sites, _ in parsed for row in sites]
        backend = _backend(requests[0].format)
        _tele.count("service.pbd.sites", len(flat))
        pvalues = pbd_pvalue_batch(flat, k, backend, plan)
        out: List[RequestOutput] = []
        lo = 0
        for sites, _ in parsed:
            hi = lo + len(sites)
            values = [encode_value(backend, v) for v in pvalues[lo:hi]]
            out.append((values, {"sites": len(sites)}))
            lo = hi
        return out


# ----------------------------------------------------------------------
# op — elementwise arithmetic sweeps
# ----------------------------------------------------------------------
_OPS = ("add", "sub", "mul", "div")


class OpHandler(WorkloadHandler):
    """``op``: one elementwise op over operand vectors.

    Payload: ``{"op": "add"|"sub"|"mul"|"div", "a": [...], "b": [...]}``.
    Coalesces by ``(format, op)`` — operand vectors of *different
    lengths* still coalesce (they concatenate along the flat element
    axis; elementwise ops carry no cross-element state).
    """

    kind = "op"

    def _operands(self, request: WorkloadRequest):
        return _memo(request, "_parsed_operands",
                     lambda: self._parse_operands(request))

    def _parse_operands(self, request: WorkloadRequest):
        payload = request.payload
        unknown = sorted(set(payload) - {"op", "a", "b"})
        if unknown:
            raise InvalidRequest(f"op payload has unknown field(s) "
                                 f"{', '.join(unknown)}; expected "
                                 f"{{'op': ..., 'a': [...], 'b': [...]}}")
        op = payload.get("op")
        if op not in _OPS:
            raise InvalidRequest(f"op payload needs 'op' in "
                                 f"{_OPS}, got {op!r}")
        a = _number_list(payload.get("a"), where="op operand 'a'")
        b = _number_list(payload.get("b"), where="op operand 'b'")
        if len(a) != len(b):
            raise InvalidRequest(f"op operands must pair up: len(a)="
                                 f"{len(a)} vs len(b)={len(b)}")
        return op, a, b

    def validate(self, request: WorkloadRequest) -> None:
        _check_format(request.format)
        self._operands(request)

    def coalesce_key(self, request: WorkloadRequest) -> Optional[tuple]:
        op, _a, _b = self._operands(request)
        return ("op", request.format, op)

    def run_batch(self, requests, plan=None) -> List[RequestOutput]:
        from .. import nd
        plan = resolve_plan(plan, where="OpHandler.run_batch")
        parsed = [self._operands(r) for r in requests]
        op = parsed[0][0]
        backend = _backend(requests[0].format)
        a = nd.asarray([x for _, xs, _ in parsed for x in xs],
                       backend, plan=plan)
        b = nd.asarray([y for _, _, ys in parsed for y in ys],
                       backend, plan=plan)
        _tele.count(f"service.op.{op}", a.size)
        result = {"add": lambda: a + b, "sub": lambda: a - b,
                  "mul": lambda: a * b, "div": lambda: a / b}[op]()
        out: List[RequestOutput] = []
        lo = 0
        for _, xs, _ in parsed:
            hi = lo + len(xs)
            values = [encode_value(backend, result.item(i))
                      for i in range(lo, hi)]
            out.append((values, {"elements": len(xs)}))
            lo = hi
        return out


# ----------------------------------------------------------------------
# astype — exact-plane format conversion
# ----------------------------------------------------------------------
class AstypeHandler(WorkloadHandler):
    """``astype``: values rounded from the request format into another.

    Payload: ``{"to": "<format>", "values": [...]}``.  Coalesces by
    ``(src format, target format)``; conversion goes through the exact
    BigFloat plane per element, so batching is value-preserving.
    """

    kind = "astype"

    def _parsed(self, request: WorkloadRequest):
        return _memo(request, "_parsed_astype",
                     lambda: self._parse_astype(request))

    def _parse_astype(self, request: WorkloadRequest):
        payload = request.payload
        unknown = sorted(set(payload) - {"to", "values"})
        if unknown:
            raise InvalidRequest(f"astype payload has unknown field(s) "
                                 f"{', '.join(unknown)}; expected "
                                 f"{{'to': ..., 'values': [...]}}")
        to = payload.get("to")
        if not isinstance(to, str) or not to:
            raise InvalidRequest("astype payload needs a 'to' registry "
                                 "format name")
        _check_format(to)
        values = _number_list(payload.get("values"),
                              where="astype 'values'")
        return to, values

    def validate(self, request: WorkloadRequest) -> None:
        _check_format(request.format)
        self._parsed(request)

    def coalesce_key(self, request: WorkloadRequest) -> Optional[tuple]:
        to, _values = self._parsed(request)
        return ("astype", request.format, to)

    def run_batch(self, requests, plan=None) -> List[RequestOutput]:
        from .. import nd
        plan = resolve_plan(plan, where="AstypeHandler.run_batch")
        parsed = [self._parsed(r) for r in requests]
        to = parsed[0][0]
        backend = _backend(requests[0].format)
        src = nd.asarray([v for _, vs in parsed for v in vs],
                         backend, plan=plan)
        _tele.count(f"service.astype.{requests[0].format}->{to}", src.size)
        converted = src.astype(_backend(to), plan=plan).to_bigfloats()
        out: List[RequestOutput] = []
        lo = 0
        for _, vs in parsed:
            hi = lo + len(vs)
            values = [encode_bigfloat(bf) for bf in converted[lo:hi]]
            out.append((values, {"elements": len(vs)}))
            lo = hi
        return out


# ----------------------------------------------------------------------
# viterbi / pairhmm / kalman — the registered recurrence workloads
# ----------------------------------------------------------------------
def _canonical_json(obj) -> str:
    """A deterministic hashable rendering of a JSON payload fragment
    (for coalesce keys over structured inputs like a shared model)."""
    import json
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _int_rows(rows, *, where: str, width: Optional[int] = None,
              bound: Optional[int] = None) -> list:
    """A non-empty list of equal-length integer rows."""
    if not isinstance(rows, (list, tuple)) or not rows:
        raise InvalidRequest(f"{where} must be a non-empty list of "
                             f"integer rows")
    out = []
    for i, row in enumerate(rows):
        if not isinstance(row, (list, tuple)) or not row:
            raise InvalidRequest(f"{where}[{i}] must be a non-empty "
                                 f"list of ints")
        vals = []
        for v in row:
            if isinstance(v, bool) or not isinstance(v, int) or v < 0 \
                    or (bound is not None and v >= bound):
                hi = f" in [0, {bound})" if bound is not None else " >= 0"
                raise InvalidRequest(f"{where}[{i}] must be ints{hi}")
            vals.append(v)
        if width is None:
            width = len(vals)
        elif len(vals) != width:
            raise InvalidRequest(f"{where} rows must share one length")
        out.append(vals)
    return out


class ViterbiHandler(WorkloadHandler):
    """``viterbi``: most probable state paths under one HMM.

    Payload: ``{"model": <model>, "sequences": [[...], ...]}`` — the
    same model object as ``forward`` (its ``observations`` field is the
    default when ``sequences`` is omitted).  Per sequence the result is
    ``{"score": <triple>, "path": [state, ...]}``.

    Requests sharing the identical model and sequence length coalesce
    (sequences concatenate along the batch axis into one
    :func:`repro.workloads.viterbi.viterbi_batch` call) — safe without
    any certification tier because max/argmax decisions are exact and
    plan-invariant in every format.
    """

    kind = "viterbi"

    def _parsed(self, request: WorkloadRequest):
        return _memo(request, "_parsed_viterbi",
                     lambda: self._parse(request))

    def _parse(self, request: WorkloadRequest):
        payload = request.payload
        unknown = sorted(set(payload) - {"model", "sequences"})
        if unknown:
            raise InvalidRequest(f"viterbi payload has unknown field(s) "
                                 f"{', '.join(unknown)}; expected "
                                 f"{{'model': ..., 'sequences': [...]}}")
        hmm = _model_from_json(payload.get("model"), where="model")
        sequences = payload.get("sequences")
        if sequences is None:
            seqs = [list(hmm.observations)]
        else:
            seqs = _int_rows(sequences, where="sequences",
                             bound=hmm.n_symbols)
        return hmm, seqs

    def validate(self, request: WorkloadRequest) -> None:
        _check_format(request.format)
        self._parsed(request)

    def coalesce_key(self, request: WorkloadRequest) -> Optional[tuple]:
        _hmm, seqs = self._parsed(request)
        return ("viterbi", request.format,
                _canonical_json(request.payload.get("model")),
                len(seqs[0]))

    def run_batch(self, requests, plan=None) -> List[RequestOutput]:
        from ..workloads.viterbi import viterbi_batch
        plan = resolve_plan(plan, where="ViterbiHandler.run_batch")
        parsed = [self._parsed(r) for r in requests]
        hmm = parsed[0][0]
        flat = [s for _, seqs in parsed for s in seqs]
        backend = _backend(requests[0].format)
        _tele.count("service.viterbi.sequences", len(flat))
        decoded = viterbi_batch(hmm, backend, flat, plan=plan)
        out: List[RequestOutput] = []
        lo = 0
        for _, seqs in parsed:
            hi = lo + len(seqs)
            values = [{"score": encode_value(backend, d.score),
                       "path": d.states()} for d in decoded[lo:hi]]
            out.append((values, {"sequences": len(seqs)}))
            lo = hi
        return out


class PairhmmHandler(WorkloadHandler):
    """``pairhmm``: read-vs-haplotype alignment likelihoods.

    Payload: ``{"haplotype": [...], "reads": [[...], ...]}`` plus
    optional ``gap_open``/``gap_extend``/``mismatch`` (floats) and
    ``semiring`` (a registered name; default the HaplotypeCaller
    ``"pairhmm-max"`` hybrid).  One likelihood triple per read.

    Requests sharing ``(format, haplotype, read length, parameters,
    semiring)`` coalesce — reads concatenate along the batch axis into
    one kernel call, which is value-preserving because the recurrence
    never mixes batch lanes.
    """

    kind = "pairhmm"

    _PARAM_FIELDS = ("gap_open", "gap_extend", "mismatch")

    def _parsed(self, request: WorkloadRequest):
        return _memo(request, "_parsed_pairhmm",
                     lambda: self._parse(request))

    def _parse(self, request: WorkloadRequest):
        from ..workloads.pairhmm import PairHMMParams
        from ..workloads.semiring import SEMIRINGS
        payload = request.payload
        known = {"haplotype", "reads", "semiring", *self._PARAM_FIELDS}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise InvalidRequest(f"pairhmm payload has unknown field(s) "
                                 f"{', '.join(unknown)}; known: "
                                 f"{', '.join(sorted(known))}")
        hap = payload.get("haplotype")
        if not isinstance(hap, (list, tuple)) or not hap or \
                any(isinstance(v, bool) or not isinstance(v, int) or v < 0
                    for v in hap):
            raise InvalidRequest("pairhmm payload needs a non-empty "
                                 "'haplotype' list of ints >= 0")
        reads = _int_rows(payload.get("reads"), where="reads")
        kwargs = {}
        for name in self._PARAM_FIELDS:
            if name in payload:
                value = payload[name]
                if isinstance(value, bool) or \
                        not isinstance(value, (int, float)) or \
                        not 0.0 < float(value) < 0.5:
                    raise InvalidRequest(f"pairhmm {name} must be a "
                                         f"number in (0, 0.5)")
                kwargs[name] = float(value)
        params = PairHMMParams(**kwargs)
        semiring = payload.get("semiring", "pairhmm-max")
        if semiring not in SEMIRINGS:
            raise InvalidRequest(f"unknown semiring {semiring!r} "
                                 f"(one of {sorted(SEMIRINGS)})")
        return list(hap), reads, params, semiring

    def validate(self, request: WorkloadRequest) -> None:
        _check_format(request.format)
        self._parsed(request)

    def coalesce_key(self, request: WorkloadRequest) -> Optional[tuple]:
        hap, reads, params, semiring = self._parsed(request)
        return ("pairhmm", request.format, tuple(hap), len(reads[0]),
                params.gap_open, params.gap_extend, params.mismatch,
                semiring)

    def run_batch(self, requests, plan=None) -> List[RequestOutput]:
        from ..workloads.pairhmm import pairhmm_batch
        plan = resolve_plan(plan, where="PairhmmHandler.run_batch")
        parsed = [self._parsed(r) for r in requests]
        hap, _reads, params, semiring = parsed[0]
        flat = [row for _, reads, _, _ in parsed for row in reads]
        backend = _backend(requests[0].format)
        _tele.count("service.pairhmm.reads", len(flat))
        likes = pairhmm_batch(hap, flat, backend, params=params,
                              plan=plan, semiring=semiring)
        out: List[RequestOutput] = []
        lo = 0
        for _, reads, _, _ in parsed:
            hi = lo + len(reads)
            values = [encode_value(backend, v) for v in likes[lo:hi]]
            out.append((values, {"reads": len(reads)}))
            lo = hi
        return out


class KalmanHandler(WorkloadHandler):
    """``kalman``: filtered state estimates for measurement tracks.

    Payload: ``{"tracks": [[z, ...], ...]}`` (strictly positive
    measurements) plus optional ``a``/``q``/``r``/``x0``/``p0`` filter
    constants.  Per track the result is ``{"x": <triple>,
    "p": <triple>}`` — the final state estimate and variance.

    Requests sharing ``(format, track length, constants)`` coalesce:
    tracks concatenate along the batch axis (the recurrence is
    elementwise across tracks, so batching is value-preserving by the
    registry's elementwise certification).
    """

    kind = "kalman"

    _PARAM_FIELDS = ("a", "q", "r", "x0", "p0")

    def _parsed(self, request: WorkloadRequest):
        return _memo(request, "_parsed_kalman",
                     lambda: self._parse(request))

    def _parse(self, request: WorkloadRequest):
        from ..workloads.kalman import KalmanParams
        payload = request.payload
        known = {"tracks", *self._PARAM_FIELDS}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise InvalidRequest(f"kalman payload has unknown field(s) "
                                 f"{', '.join(unknown)}; known: "
                                 f"{', '.join(sorted(known))}")
        rows = payload.get("tracks")
        if not isinstance(rows, (list, tuple)) or not rows:
            raise InvalidRequest("kalman payload needs a non-empty "
                                 "'tracks' list of measurement rows")
        length = None
        tracks = []
        for i, row in enumerate(rows):
            values = _number_list(row, where=f"tracks[{i}]")
            for v, bf in zip(row, values):
                if float(v) <= 0.0:
                    raise InvalidRequest(f"tracks[{i}] must be strictly "
                                         f"positive measurements")
            if length is None:
                length = len(values)
            elif len(values) != length:
                raise InvalidRequest("kalman tracks must share one "
                                     "length")
            tracks.append([float(v) for v in row])
        kwargs = {}
        for name in self._PARAM_FIELDS:
            if name in payload:
                value = payload[name]
                if isinstance(value, bool) or \
                        not isinstance(value, (int, float)) or \
                        not float(value) > 0.0:
                    raise InvalidRequest(f"kalman {name} must be a "
                                         f"positive number")
                kwargs[name] = float(value)
        if "a" in kwargs and kwargs["a"] > 1.0:
            raise InvalidRequest("kalman a must be in (0, 1]")
        return tracks, KalmanParams(**kwargs)

    def validate(self, request: WorkloadRequest) -> None:
        _check_format(request.format)
        self._parsed(request)

    def coalesce_key(self, request: WorkloadRequest) -> Optional[tuple]:
        tracks, params = self._parsed(request)
        return ("kalman", request.format, len(tracks[0]), params.a,
                params.q, params.r, params.x0, params.p0)

    def run_batch(self, requests, plan=None) -> List[RequestOutput]:
        from ..workloads.kalman import kalman_batch
        plan = resolve_plan(plan, where="KalmanHandler.run_batch")
        parsed = [self._parsed(r) for r in requests]
        params = parsed[0][1]
        flat = [row for tracks, _ in parsed for row in tracks]
        backend = _backend(requests[0].format)
        _tele.count("service.kalman.tracks", len(flat))
        estimates = kalman_batch(flat, backend, params=params, plan=plan)
        out: List[RequestOutput] = []
        lo = 0
        for tracks, _ in parsed:
            hi = lo + len(tracks)
            values = [{"x": encode_value(backend, e.x),
                       "p": encode_value(backend, e.p)}
                      for e in estimates[lo:hi]]
            out.append((values, {"tracks": len(tracks)}))
            lo = hi
        return out


# ----------------------------------------------------------------------
# experiment — the CLI runner's figures/tables, as service requests
# ----------------------------------------------------------------------
class ExperimentHandler(WorkloadHandler):
    """``experiment``: one registered figure/table experiment.

    Payload: ``{"experiment_id": ..., "scale": ..., "out_dir": ...,
    "use_cache": ..., "cache_dir": ..., "refresh": ...}`` (everything
    but the id optional).  Never coalesces — experiments are
    coarse-grained and internally batched already.  ``values`` holds the
    rendered report text; ``stats["cached"]`` says whether the
    ``.repro-cache`` served it.
    """

    kind = "experiment"

    _FIELDS = ("experiment_id", "scale", "out_dir", "use_cache",
               "cache_dir", "refresh")

    def validate(self, request: WorkloadRequest) -> None:
        from ..experiments.runner import REGISTRY as EXPERIMENTS
        payload = request.payload
        unknown = sorted(set(payload) - set(self._FIELDS))
        if unknown:
            raise InvalidRequest(f"experiment payload has unknown "
                                 f"field(s) {', '.join(unknown)}; known: "
                                 f"{', '.join(self._FIELDS)}")
        experiment_id = payload.get("experiment_id")
        if experiment_id not in EXPERIMENTS:
            known = ", ".join(sorted(EXPERIMENTS))
            raise InvalidRequest(f"unknown experiment "
                                 f"{experiment_id!r}; known: {known}")
        scale = payload.get("scale", "bench")
        if scale not in ("test", "bench", "full"):
            raise InvalidRequest(f"experiment scale must be 'test', "
                                 f"'bench' or 'full', got {scale!r}")

    def run_batch(self, requests, plan=None) -> List[RequestOutput]:
        from ..experiments.runner import _run_experiment
        out: List[RequestOutput] = []
        for request in requests:
            payload = request.payload
            run_plan = resolve_plan(request.plan if request.plan is not None
                                    else plan,
                                    where="ExperimentHandler.run_batch")
            text, hit = _run_experiment(
                payload["experiment_id"],
                scale=payload.get("scale", "bench"),
                out_dir=payload.get("out_dir"),
                plan=run_plan,
                use_cache=bool(payload.get("use_cache", True)),
                cache_dir=payload.get("cache_dir"),
                refresh=bool(payload.get("refresh", False)))
            out.append(([text], {"cached": hit}))
        return out


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------
HANDLERS: Dict[str, WorkloadHandler] = {
    handler.kind: handler
    for handler in (ForwardHandler(), PbdHandler(), OpHandler(),
                    AstypeHandler(), ExperimentHandler(),
                    ViterbiHandler(), PairhmmHandler(), KalmanHandler())
}


def handler_for(kind: str) -> WorkloadHandler:
    """The handler serving ``kind`` (:class:`UnknownKind` otherwise)."""
    try:
        return HANDLERS[kind]
    except KeyError:
        known = ", ".join(sorted(HANDLERS))
        raise UnknownKind(f"unknown workload kind {kind!r}; this build "
                          f"serves: {known}") from None


def execute(request: WorkloadRequest,
            plan: Optional[ExecPlan] = None) -> WorkloadResult:
    """Run one request in-process — the solo (batch-of-one) path.

    The CLI runner, the tests, and the server's non-coalescing fallback
    all come through here, so a coalesced batch and a solo call share
    every line of workload code below the scatter/gather.
    """
    handler = handler_for(request.kind)
    handler.validate(request)
    plan = request.plan if request.plan is not None else plan
    with _tele.span(f"service.execute.{request.kind}"):
        _tele.count(f"service.requests.{request.kind}")
        (values, stats), = handler.run_batch([request], plan=plan)
    stats = dict(stats, batch_size=1, coalesced=False)
    return WorkloadResult(kind=request.kind, values=values,
                          request_id=request.request_id, stats=stats)


__all__ = [
    "HANDLERS",
    "AstypeHandler",
    "ExperimentHandler",
    "ForwardHandler",
    "KalmanHandler",
    "OpHandler",
    "PairhmmHandler",
    "PbdHandler",
    "ViterbiHandler",
    "WorkloadHandler",
    "execute",
    "handler_for",
]
