"""Synthetic HMM parameter generation (the paper's 'synthetic HMM data':
transition/emission matrices from the Dirichlet distribution, uniformly
sampled observations)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..bigfloat import BigFloat


@dataclass(frozen=True)
class HMMData:
    """One synthetic HMM instance with an observation sequence.

    Probabilities are kept as exact BigFloats (converted exactly from the
    sampled doubles) so every backend receives identical inputs — the
    paper converts inputs from MPFR into each format the same way.
    """

    transition: tuple  # H x H rows of BigFloat
    emission: tuple  # H x M rows of BigFloat
    initial: tuple  # H BigFloats
    observations: tuple  # T ints in [0, M)

    @property
    def n_states(self) -> int:
        return len(self.transition)

    @property
    def n_symbols(self) -> int:
        return len(self.emission[0])

    @property
    def length(self) -> int:
        return len(self.observations)

    def as_float_arrays(self):
        """(A, B, pi, O) as numpy arrays for the fast float/log paths."""
        a = np.array([[x.to_float() for x in row] for row in self.transition])
        b = np.array([[x.to_float() for x in row] for row in self.emission])
        pi = np.array([x.to_float() for x in self.initial])
        return a, b, pi, np.asarray(self.observations)


def _to_bigfloat_rows(matrix: np.ndarray) -> tuple:
    return tuple(tuple(BigFloat.from_float(float(v)) for v in row) for row in matrix)


def sample_stochastic_matrix(rng: np.random.Generator, rows: int, cols: int,
                             concentration: float = 1.0) -> np.ndarray:
    """Row-stochastic matrix with Dirichlet(concentration) rows."""
    return rng.dirichlet(np.full(cols, concentration), size=rows)


def sample_hmm(n_states: int, n_symbols: int, length: int, seed: int = 0,
               concentration: float = 1.0) -> HMMData:
    """A synthetic HMM in the paper's style.

    With ``n_symbols`` symbols the per-step likelihood shrink is about
    ``log2(n_symbols)`` bits, so alpha's exponent decreases roughly
    linearly with t — the Figure 1 trajectory.
    """
    rng = np.random.default_rng(seed)
    a = sample_stochastic_matrix(rng, n_states, n_states, concentration)
    b = sample_stochastic_matrix(rng, n_states, n_symbols, concentration)
    pi = rng.dirichlet(np.full(n_states, concentration))
    obs = rng.integers(0, n_symbols, size=length)
    return HMMData(_to_bigfloat_rows(a), _to_bigfloat_rows(b),
                   tuple(BigFloat.from_float(float(v)) for v in pi),
                   tuple(int(o) for o in obs))


def sample_hcg_like_hmm(n_states: int, length: int, seed: int = 0,
                        bits_per_step: float = 295.0) -> HMMData:
    """A scaled stand-in for the paper's Human-Chimp-Gorilla VICAR runs.

    The real workload reaches likelihoods ~2**-2_900_000 after 500,000
    sites (~5.8 bits of shrink per site).  Pure-Python arithmetic cannot
    run 500k sites per matrix, so this generator *compresses the
    magnitude axis*: emission probabilities are drawn log-uniformly
    around 2**-bits_per_step, giving the same final likelihood exponent
    after ``length`` sites as the paper reaches after 500k.  Transition
    structure stays a proper Dirichlet-stochastic matrix, so the
    accumulation pattern (the error driver) is unchanged; only the
    per-step magnitude drop is rescaled.  DESIGN.md records this
    substitution.
    """
    rng = np.random.default_rng(seed)
    a = sample_stochastic_matrix(rng, n_states, n_states)
    pi = rng.dirichlet(np.ones(n_states))
    n_symbols = 4  # genome alphabet
    # Emission probabilities ~ 2**-(bits_per_step +- jitter).
    exponents = bits_per_step + rng.uniform(-8.0, 8.0, size=(n_states, n_symbols))
    mantissas = rng.uniform(1.0, 2.0, size=(n_states, n_symbols))
    emission_rows: List[tuple] = []
    for i in range(n_states):
        row = []
        for j in range(n_symbols):
            e_int = int(np.floor(exponents[i, j]))
            frac = float(exponents[i, j] - e_int)
            m = BigFloat.from_float(mantissas[i, j] * 2.0 ** (-frac))
            row.append(m.mul_pow2(-e_int))
        emission_rows.append(tuple(row))
    obs = rng.integers(0, n_symbols, size=length)
    return HMMData(_to_bigfloat_rows(a), tuple(emission_rows),
                   tuple(BigFloat.from_float(float(v)) for v in pi),
                   tuple(int(o) for o in obs))
