"""Synthetic genome-alignment pileup columns (the LoFreq workload).

The paper evaluates on eight SARS-CoV-2 alignment datasets (222,131
columns, average depth N ~ 309,189; p-values from 1 down to 2**-434,916).
We cannot ship those reads, and pure-Python arithmetic cannot process
O(N*K) ~ 10^13 operations — so this module generates *magnitude-faithful*
synthetic columns: each column has a depth N, per-read success (error)
probabilities from a Phred-style quality model, and an observed alt count
K chosen so the resulting PBD p-values land in requested exponent bins.

Scaling substitution (documented in DESIGN.md): to reach the paper's
extreme p-value exponents (down to -434,916) with tractable N*K, columns
targeting deep bins use a *compressed quality scale* — fewer, far less
probable errors with the same total log-magnitude — which exercises the
identical arithmetic regimes (operand exponents, LSE inputs, posit regime
lengths) at a fraction of the operation count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..bigfloat import BigFloat

#: Figure 9's p-value exponent bins, [lo, hi) in base-2 exponent.
FIG9_BINS: tuple = (
    (-440_000, -100_000),
    (-100_000, -31_744),
    (-31_744, -16_000),
    (-16_000, -4_096),
    (-4_096, -1_022),
    (-1_022, -500),
    (-500, -200),
    (-200, 1),
)

#: LoFreq's significance threshold: a column is a variant call when its
#: p-value is below 2**-200 (Section V.A).
CALL_THRESHOLD_SCALE = -200


@dataclass(frozen=True)
class Column:
    """One pileup column: N trials with given success probs, K observed."""

    success_probs: Tuple[BigFloat, ...]
    k: int
    label: str = ""

    @property
    def depth(self) -> int:
        return len(self.success_probs)


@dataclass(frozen=True)
class Dataset:
    """A named collection of columns (one of the paper's D0-D7)."""

    name: str
    columns: Tuple[Column, ...]

    @property
    def total_ops(self) -> int:
        """Multiply-and-add operations a column unit performs: sum of
        N*K (line 4 of Listing 2) — the numerator of the paper's MMAPS
        metric."""
        return sum(c.depth * c.k for c in self.columns)


def phred_error_prob(quality: float) -> float:
    """Phred quality q -> error probability 10**(-q/10)."""
    return 10.0 ** (-quality / 10.0)


def _probs_to_bigfloat(probs: Sequence[float]) -> Tuple[BigFloat, ...]:
    return tuple(BigFloat.from_float(float(p)) for p in probs)


def synth_column(rng: np.random.Generator, depth: int, k: int,
                 mean_quality: float = 30.0, sd_quality: float = 4.0,
                 label: str = "") -> Column:
    """A realistic-quality column: per-read error probs from a normal
    Phred distribution (mean ~Q30, i.e. p ~ 1e-3)."""
    qualities = rng.normal(mean_quality, sd_quality, size=depth).clip(2.0, None)
    probs = [phred_error_prob(q) for q in qualities]
    return Column(_probs_to_bigfloat(probs), k, label)


def column_for_target_scale(rng: np.random.Generator, target_scale: int,
                            k: Optional[int] = None,
                            depth_factor: float = 2.0,
                            label: str = "") -> Column:
    """Construct a column whose PBD p-value's base-2 exponent is close to
    ``target_scale``.

    The p-value is dominated by ``C(N, K) * p^K`` for homogeneous error
    probability p, so ``log2(pvalue) ~ K*log2(p) + log2(C(N,K))``; we
    pick K, solve for p, and jitter per-read qualities around it.  The
    landing accuracy is within a few percent of the target, more than
    enough to stratify into Figure 9's wide bins.
    """
    if target_scale >= 0:
        raise ValueError("target_scale must be negative")
    if k is None:
        k = int(rng.integers(8, 40))
    depth = max(k + 4, int(k * depth_factor))
    # Account for the combinatorial term when solving for log2(p).
    log2_comb = (math.lgamma(depth + 1) - math.lgamma(k + 1)
                 - math.lgamma(depth - k + 1))
    log2_comb /= math.log(2)
    log2_p = (target_scale - log2_comb) / k
    if log2_p >= -1.0:
        log2_p = -1.0  # keep probs < 0.5
    jitter = rng.uniform(-1.0, 1.0, size=depth)
    probs = []
    for j in jitter:
        e = log2_p + float(j)
        e_int = int(math.floor(e))
        frac = e - e_int
        probs.append(BigFloat.from_float(2.0 ** frac).mul_pow2(e_int))
    return Column(tuple(probs), k, label)


def stratified_columns(per_bin: int, seed: int = 0,
                       bins: Sequence[tuple] = FIG9_BINS) -> List[Column]:
    """Columns whose p-values cover every Figure 9 exponent bin."""
    rng = np.random.default_rng(seed)
    columns: List[Column] = []
    for lo, hi in bins:
        for i in range(per_bin):
            target = int(rng.integers(lo, min(hi, -8)))
            columns.append(column_for_target_scale(
                rng, target, label=f"bin[{lo},{hi})#{i}"))
    return columns


def synth_dataset(name: str, n_columns: int, seed: int,
                  critical_fraction: float = 0.073,
                  deep_fraction: float = 0.03,
                  k_range: Tuple[int, int] = (6, 48)) -> Dataset:
    """One SARS-CoV-2-like dataset.

    The paper's eight datasets have 222,131 columns total of which 7.3%
    are critical (p < 2**-200); 40% of critical columns fall below
    2**-1074 and 5% below 2**-10000.  The synthetic datasets reproduce
    those fractions at reduced column counts, with N and K 'diversely
    distributed, unlike T and H in VICAR' (Section VI.A).
    """
    rng = np.random.default_rng(seed)
    columns: List[Column] = []
    n_critical = max(1, int(round(n_columns * critical_fraction)))
    n_deep = max(1, int(round(n_columns * deep_fraction)))
    for i in range(n_columns):
        k = int(rng.integers(*k_range))
        if i < n_deep:
            target = int(rng.integers(-40_000, -10_000))
            columns.append(column_for_target_scale(rng, target, k=k,
                                                   label=f"{name}/deep{i}"))
        elif i < n_critical:
            target = int(rng.integers(-10_000, -200))
            columns.append(column_for_target_scale(rng, target, k=k,
                                                   label=f"{name}/crit{i}"))
        else:
            target = int(rng.integers(-180, -10))
            columns.append(column_for_target_scale(rng, target, k=k,
                                                   label=f"{name}/bg{i}"))
    return Dataset(name, tuple(columns))


def paper_like_datasets(n_datasets: int = 8, columns_per_dataset: int = 24,
                        seed: int = 0) -> List[Dataset]:
    """The D0-D7 stand-ins used by the Figure 7/8 and 11 experiments."""
    return [synth_dataset(f"D{i}", columns_per_dataset, seed + 101 * i)
            for i in range(n_datasets)]


def dataset_shape_stats(datasets: Sequence[Dataset]) -> List[dict]:
    """Per-dataset N/K distribution summary (for the hardware timing
    model, which needs the N and K mix per dataset)."""
    out = []
    for ds in datasets:
        depths = [c.depth for c in ds.columns]
        ks = [c.k for c in ds.columns]
        out.append({
            "name": ds.name,
            "columns": len(ds.columns),
            "mean_depth": float(np.mean(depths)),
            "mean_k": float(np.mean(ks)),
            "total_ops": ds.total_ops,
        })
    return out
