"""Synthetic workload generators: Dirichlet HMMs (VICAR stand-in) and
pileup-column datasets (LoFreq / SARS-CoV-2 stand-in)."""

from .dirichlet import HMMData, sample_hcg_like_hmm, sample_hmm, sample_stochastic_matrix
from .genome import (
    CALL_THRESHOLD_SCALE,
    FIG9_BINS,
    Column,
    Dataset,
    column_for_target_scale,
    dataset_shape_stats,
    paper_like_datasets,
    phred_error_prob,
    stratified_columns,
    synth_column,
    synth_dataset,
)

__all__ = [
    "HMMData", "sample_hmm", "sample_hcg_like_hmm", "sample_stochastic_matrix",
    "Column", "Dataset", "FIG9_BINS", "CALL_THRESHOLD_SCALE",
    "phred_error_prob", "synth_column", "column_for_target_scale",
    "stratified_columns", "synth_dataset", "paper_like_datasets",
    "dataset_shape_stats",
]
