"""The format registry: one execution-plane entry point per number
format.

Before this module the knowledge of "which formats exist, how to build
their scalar backends, which batch backend mirrors each one, and what
each mirror guarantees" was scattered across six modules
(``standard_backends`` here, ``standard_batch_backends`` and
``batch_backend_for`` in :mod:`repro.engine`, plus ad-hoc pairing calls
inside the apps).  The registry owns all three concerns:

* **construction** — :meth:`FormatRegistry.create` builds a scalar
  backend from a format *name* (``"binary64"``, ``"log"``,
  ``"posit(64,9)"``, ``"lns(12,50)"``, ``"bigfloat256"``; posit/LNS
  names parse generically, so ``"posit(32,6)"`` works too);
* **pairing** — :meth:`FormatRegistry.batch_for` maps a scalar backend
  *instance* to the batch backend mirroring it (or ``None``), with an
  explicit ``reductions=True`` tier for callers whose kernel performs
  reductions (the forward algorithm's ``sum``) and therefore needs the
  stronger certification;
* **capabilities** — :meth:`FormatRegistry.capabilities` reports each
  format's exactness class, fused ops, and maximum datapath width, so
  callers can branch on *declared* guarantees instead of
  ``isinstance`` checks.

Exactness classes (the scalar<->batch agreement contract, enforced by
the equivalence suites):

* ``bit-identical`` — the batch mirror reproduces the scalar backend
  bit for bit (binary64; log-space elementwise ops always, reductions
  only in ``sequential`` sum mode);
* ``element-exact`` — batch values decode to exactly the scalar values
  (posit, LNS, and the quire accumulators);
* ``oracle`` — arbitrary-precision reference; no array implementation,
  every caller keeps the scalar loop.

The registry deliberately does not import :mod:`repro.engine` at module
load: pairing factories resolve lazily so the scalar stack stays usable
on NumPy-less installs (every pairing then reports ``None``).
"""

from __future__ import annotations

import re
import weakref
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from .backend import Backend

#: Exactness classes.
BIT_IDENTICAL = "bit-identical"
ELEMENT_EXACT = "element-exact"
ORACLE = "oracle"

#: The five formats of Figure 3, in table order.
STANDARD_FORMATS = ("binary64", "log", "posit(64,9)", "posit(64,12)",
                    "posit(64,18)")

#: The native vectorized op set every registered batch mirror provides
#: (sub/div landed with the decoded-plane/Gaussian-log kernels; axpy is
#: the fused ``a*x + y``; maximum/amax/argmax are the max-semiring order
#: ops — exact by construction on every mirror's monotone code space).
FULL_BATCH_OPS = ("add", "sub", "mul", "div", "sum", "dot", "axpy",
                  "maximum", "amax", "argmax")

_POSIT_NAME = re.compile(r"^posit\((\d+),(\d+)\)$")
_LNS_NAME = re.compile(r"^lns\((\d+),(\d+)\)$")
_BIGFLOAT_NAME = re.compile(r"^bigfloat(\d+)$")


@dataclass(frozen=True)
class FormatCapabilities:
    """Declared guarantees of one format's execution plane."""

    #: Scalar<->batch agreement class (module docstring).
    exactness: str
    #: Whether a vectorized array backend exists at all.
    batch: bool
    #: Whether the *default-constructed* backend's batch reductions
    #: reproduce the scalar ``sum`` fold exactly.  Log-space is the one
    #: format where this is mode-dependent (``sequential`` yes,
    #: ``nary`` no); instance-level certification lives in
    #: :meth:`FormatRegistry.batch_for`.
    reductions_certified: bool
    #: Fused operations beyond add/mul the format's stack offers.
    fused_ops: Tuple[str, ...] = ()
    #: Widest datapath in bits (None for the unbounded oracle).
    max_width: Optional[int] = None
    #: Elementwise ops the batch mirror implements natively (vectorized,
    #: certified against the scalar backend); empty for scalar-only
    #: formats, whose callers keep the per-element loop.
    batch_ops: Tuple[str, ...] = ()
    #: Whether a compiled kernel tier exists (whole-recurrence fusion
    #: over the resident decoded plane, :mod:`repro.engine.compiled`),
    #: selected by ``ExecPlan(compiled=True)``.  Compiled kernels are
    #: bit-identical to the batch tier, so plans may set the flag for
    #: any format — formats without the tier silently keep the batch
    #: path.
    compiled: bool = False
    #: Whole recurrences the compiled tier fuses (empty when
    #: ``compiled`` is False).
    compiled_ops: Tuple[str, ...] = ()

    def __repr__(self):
        parts = [self.exactness,
                 "batched" if self.batch else "scalar-only"]
        if self.reductions_certified:
            parts.append("reductions-certified")
        if self.batch_ops:
            parts.append(f"ops={','.join(self.batch_ops)}")
        if self.fused_ops:
            parts.append(f"fused={','.join(self.fused_ops)}")
        if self.compiled:
            parts.append(f"compiled={','.join(self.compiled_ops) or 'yes'}")
        if self.max_width is not None:
            parts.append(f"width<={self.max_width}")
        return f"<caps {' '.join(parts)}>"


@dataclass(frozen=True)
class FormatSpec:
    """One registered format: name, scalar factory, capabilities."""

    name: str
    factory: Callable[..., Backend]
    caps: FormatCapabilities
    #: Part of the standard Figure 3 comparison set?
    standard: bool = False

    def __repr__(self):
        star = " standard" if self.standard else ""
        return f"<FormatSpec {self.name}{star} {self.caps!r}>"


@dataclass(frozen=True)
class BatchPairing:
    """How to mirror one scalar-backend class onto its batch backend."""

    scalar_cls: type
    #: ``factory(backend) -> BatchBackend`` (called lazily, NumPy-side).
    factory: Callable[[Backend], Any]
    #: Per-instance certification that batch *reductions* reproduce the
    #: scalar fold exactly (elementwise ops are exact for every
    #: registered pairing).
    reductions_certified: Callable[[Backend], bool] = lambda backend: True


@dataclass(frozen=True)
class CompiledPairing:
    """How to build one batch backend's compiled kernel tier.

    The third tier of the plane (scalar -> batch -> compiled): keyed on
    the *batch mirror's* class, because the compiled kernels fuse whole
    recurrences over the mirror's vectorized representation rather than
    re-deriving one from the scalar backend.  The factory's product
    must be bit-identical to the mirror — that contract is what lets
    ``ExecPlan(compiled=True)`` fall back silently everywhere else.
    """

    #: The mirror class, or a zero-arg callable resolving to it (the
    #: lazy form keeps :mod:`repro.engine` unimported at registry load,
    #: like the pairing factories).
    batch_cls: Any
    #: ``factory(batch_backend) -> kernels`` (called lazily; the
    #: product exposes the fused recurrences named in ``ops``).
    factory: Callable[[Any], Any]
    #: Recurrences the tier fuses (mirrors ``caps.compiled_ops``).
    ops: Tuple[str, ...] = ()


class FormatRegistry:
    """Registry of arithmetic formats and their batch pairings."""

    def __init__(self):
        self._specs: Dict[str, FormatSpec] = {}
        self._pairings: List[BatchPairing] = []
        self._compiled: List[CompiledPairing] = []
        # One batch mirror per scalar backend instance: mirrors carry
        # useful state (BatchLNS memoizes its exact Gaussian-log table
        # per distinct gap), so repeated pairing calls must not start
        # it cold.  Weak keys let backends be garbage collected.
        self._mirrors = weakref.WeakKeyDictionary()
        # Likewise one compiled-kernel instance per batch mirror (the
        # Numba tier caches its specializations per environment).
        self._compiled_kernels = weakref.WeakKeyDictionary()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, spec: FormatSpec) -> FormatSpec:
        if spec.name in self._specs:
            raise ValueError(f"format {spec.name!r} already registered")
        self._specs[spec.name] = spec
        return spec

    def register_pairing(self, pairing: BatchPairing) -> BatchPairing:
        self._pairings.append(pairing)
        return pairing

    def register_compiled(self, pairing: CompiledPairing) -> CompiledPairing:
        self._compiled.append(pairing)
        return pairing

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        return list(self._specs)

    def standard_names(self) -> List[str]:
        return [n for n, s in self._specs.items() if s.standard]

    def spec(self, name: str) -> FormatSpec:
        found = self._specs.get(name) or self._parse_dynamic(name)
        if found is None:
            known = ", ".join(self._specs)
            raise KeyError(f"unknown format {name!r} (registered: {known})")
        return found

    def capabilities(self, name: str) -> FormatCapabilities:
        return self.spec(name).caps

    def describe(self) -> str:
        """The registry as an aligned text table (one row per
        registered format): exactness class, batch mirror, reduction
        certification, fused ops, datapath width.  This is what
        ``python -m repro.experiments --formats`` prints."""
        from ..report.tables import render_table
        rows = []
        for name in self.names():
            spec = self._specs[name]
            caps = spec.caps
            rows.append({
                "format": name,
                "exactness": caps.exactness,
                "batch": "yes" if caps.batch else "-",
                "batch ops": ", ".join(caps.batch_ops) or "-",
                "reductions": "certified" if caps.reductions_certified
                              else ("mode-dependent" if caps.batch else "-"),
                "fused ops": ", ".join(caps.fused_ops) or "-",
                "compiled": ", ".join(caps.compiled_ops) or
                            ("yes" if caps.compiled else "-"),
                "width": caps.max_width if caps.max_width is not None
                         else "unbounded",
                "fig3 set": "*" if spec.standard else "",
            })
        return render_table(
            rows, title="Registered formats (dynamic names — "
                        "posit(N,ES), lns(I,F), bigfloatP — parse too)")

    def __repr__(self):
        return (f"<FormatRegistry {len(self._specs)} formats, "
                f"{len(self._pairings)} batch pairings, "
                f"{len(self._compiled)} compiled tiers>")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def create(self, name: str, **kwargs) -> Backend:
        """Build the named format's scalar backend.

        ``kwargs`` reach the factory (``underflow=`` for posits,
        ``sum_mode=``/``prec=`` for log-space, ...).
        """
        return self.spec(name).factory(**kwargs)

    def create_pair(self, name: str, **kwargs):
        """(scalar backend, batch mirror or None) for one format name."""
        backend = self.create(name, **kwargs)
        return backend, self.batch_for(backend)

    def standard(self, underflow: str = "saturate") -> Dict[str, Backend]:
        """The five scalar backends of Figure 3, keyed by name."""
        kwargs: Dict[str, Dict] = {
            name: {"underflow": underflow} if name.startswith("posit") else {}
            for name in STANDARD_FORMATS}
        return {name: self.create(name, **kwargs[name])
                for name in STANDARD_FORMATS}

    def standard_batch(self, underflow: str = "saturate"):
        """Batch mirrors of :meth:`standard`, keyed by name."""
        return {name: self.batch_for(backend)
                for name, backend in self.standard(underflow).items()}

    # ------------------------------------------------------------------
    # Pairing
    # ------------------------------------------------------------------
    def batch_for(self, backend: Backend, *, reductions: bool = False):
        """The batch backend mirroring a scalar backend instance, or
        ``None`` when no (sufficiently exact) mirror exists.

        With ``reductions=False`` the mirror only has to be elementwise
        exact — enough for kernels built from ``add``/``mul`` alone
        (the PBD recurrence, the Figure 3 op sweep).  ``reductions=True``
        additionally requires the batch ``sum`` fold to be certified
        against the scalar one — what the forward-algorithm kernels
        need.  Log-space in the default ``nary`` sum mode passes the
        first tier but not the second (NumPy's SIMD ``exp`` is not
        libm's); the oracle passes neither.
        """
        if not _have_numpy():
            return None
        for pairing in self._pairings:
            if isinstance(backend, pairing.scalar_cls):
                if reductions and not pairing.reductions_certified(backend):
                    return None
                try:
                    mirror = self._mirrors.get(backend)
                except TypeError:  # unhashable/unweakrefable backend
                    return pairing.factory(backend)
                if mirror is None:
                    mirror = pairing.factory(backend)
                    self._mirrors[backend] = mirror
                return mirror
        return None

    def compiled_for(self, batch_backend):
        """The compiled kernel tier fused over a batch mirror instance,
        or ``None`` when the format registers none.

        This is the routing half of ``ExecPlan(compiled=True)``: the
        nd expressions ask for the tier and silently keep the batch
        path on ``None`` (the tier is bit-identical, so the fallback
        can never change results).  Memoized per mirror — the Numba
        tier caches its compiled specializations.
        """
        if batch_backend is None:
            return None
        for pairing in self._compiled:
            cls = pairing.batch_cls
            if not isinstance(cls, type):
                cls = cls()
            if isinstance(batch_backend, cls):
                try:
                    kernels = self._compiled_kernels.get(batch_backend)
                except TypeError:  # unweakrefable mirror
                    return pairing.factory(batch_backend)
                if kernels is None:
                    kernels = pairing.factory(batch_backend)
                    self._compiled_kernels[batch_backend] = kernels
                return kernels
        return None

    # ------------------------------------------------------------------
    # Dynamic (pattern) formats: posit(N,ES), lns(I,F), bigfloatP
    # ------------------------------------------------------------------
    def _parse_dynamic(self, name: str) -> Optional[FormatSpec]:
        m = _POSIT_NAME.match(name)
        if m:
            nbits, es = int(m.group(1)), int(m.group(2))
            return _posit_spec(nbits, es)
        m = _LNS_NAME.match(name)
        if m:
            int_bits, frac_bits = int(m.group(1)), int(m.group(2))
            return _lns_spec(int_bits, frac_bits)
        m = _BIGFLOAT_NAME.match(name)
        if m:
            return _bigfloat_spec(int(m.group(1)))
        return None


def _have_numpy() -> bool:
    from ..engine import HAVE_NUMPY
    return HAVE_NUMPY


# ----------------------------------------------------------------------
# Spec factories (shared by static registration and dynamic parsing)
# ----------------------------------------------------------------------
def _posit_spec(nbits: int, es: int, standard: bool = False) -> FormatSpec:
    def factory(underflow: str = "saturate"):
        from ..formats.posit import PositEnv
        from .backends import PositBackend
        return PositBackend(PositEnv(nbits, es, underflow))

    return FormatSpec(
        name=f"posit({nbits},{es})",
        factory=factory,
        caps=FormatCapabilities(
            exactness=ELEMENT_EXACT, batch=True, reductions_certified=True,
            fused_ops=("quire_fused_sum", "quire_fused_dot"),
            max_width=nbits, batch_ops=FULL_BATCH_OPS,
            compiled=True,
            compiled_ops=("forward", "forward_trace", "pbd")),
        standard=standard)


def _lns_spec(int_bits: int, frac_bits: int) -> FormatSpec:
    def factory():
        from ..formats.lns import LNSEnv
        from .backends import LNSBackend
        return LNSBackend(LNSEnv(int_bits, frac_bits))

    return FormatSpec(
        name=f"lns({int_bits},{frac_bits})",
        factory=factory,
        caps=FormatCapabilities(
            exactness=ELEMENT_EXACT, batch=True, reductions_certified=True,
            fused_ops=("exact_mul",),
            # sign + zero flag + integer + fraction bits of the code.
            max_width=2 + int_bits + frac_bits,
            batch_ops=FULL_BATCH_OPS),
        standard=False)


def _bigfloat_spec(prec: int) -> FormatSpec:
    def factory():
        from .backends import BigFloatBackend
        return BigFloatBackend(prec)

    return FormatSpec(
        name=f"bigfloat{prec}",
        factory=factory,
        caps=FormatCapabilities(
            exactness=ORACLE, batch=False, reductions_certified=False,
            fused_ops=(), max_width=None),
        standard=False)


def _binary64_spec() -> FormatSpec:
    def factory():
        from .backends import Binary64Backend
        return Binary64Backend()

    return FormatSpec(
        name="binary64",
        factory=factory,
        caps=FormatCapabilities(
            exactness=BIT_IDENTICAL, batch=True, reductions_certified=True,
            fused_ops=(), max_width=64, batch_ops=FULL_BATCH_OPS),
        standard=True)


def _log_spec() -> FormatSpec:
    def factory(**kwargs):
        from .backends import LogSpaceBackend
        return LogSpaceBackend(**kwargs)

    return FormatSpec(
        name="log",
        factory=factory,
        caps=FormatCapabilities(
            exactness=BIT_IDENTICAL, batch=True,
            # The default backend sums in "nary" mode, whose batch
            # reduction is ulp-close, not bit-exact; sequential-mode
            # instances are certified per-instance in batch_for().
            reductions_certified=False,
            fused_ops=("lse_nary",), max_width=64,
            batch_ops=FULL_BATCH_OPS),
        standard=True)


def _default_registry() -> FormatRegistry:
    registry = FormatRegistry()
    registry.register(_binary64_spec())
    registry.register(_log_spec())
    for es in (9, 12, 18):
        registry.register(_posit_spec(64, es, standard=True))
    registry.register(_lns_spec(12, 50))
    registry.register(_bigfloat_spec(256))

    from .backends import (
        Binary64Backend,
        LNSBackend,
        LogSpaceBackend,
        PositBackend,
    )

    def _batch_binary64(backend):
        from ..engine.batch import BatchBinary64
        return BatchBinary64(scalar=backend)

    def _batch_log(backend):
        from ..engine.batch import BatchLogSpace
        return BatchLogSpace(scalar=backend)

    def _batch_posit(backend):
        from ..engine.posit_batch import BatchPosit
        return BatchPosit(backend.env, scalar=backend)

    def _batch_lns(backend):
        from ..engine.lns_batch import BatchLNS
        return BatchLNS(scalar=backend)

    registry.register_pairing(BatchPairing(Binary64Backend, _batch_binary64))
    registry.register_pairing(BatchPairing(
        LogSpaceBackend, _batch_log,
        reductions_certified=lambda b: b.sum_mode == "sequential"))
    registry.register_pairing(BatchPairing(PositBackend, _batch_posit))
    registry.register_pairing(BatchPairing(LNSBackend, _batch_lns))

    def _compiled_posit(batch_backend):
        from ..engine.compiled import PositPlaneKernels
        return PositPlaneKernels(batch_backend)

    def _posit_batch_cls():
        from ..engine.posit_batch import BatchPosit
        return BatchPosit

    registry.register_compiled(CompiledPairing(
        _posit_batch_cls, _compiled_posit,
        ops=("forward", "forward_trace", "pbd")))
    return registry


#: The process-wide registry every app and experiment consults.
REGISTRY = _default_registry()


__all__ = [
    "BIT_IDENTICAL",
    "FULL_BATCH_OPS",
    "ELEMENT_EXACT",
    "ORACLE",
    "STANDARD_FORMATS",
    "BatchPairing",
    "CompiledPairing",
    "FormatCapabilities",
    "FormatRegistry",
    "FormatSpec",
    "REGISTRY",
]
