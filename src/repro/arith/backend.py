"""Format-generic arithmetic backend protocol.

The paper evaluates the *same* algorithms (forward algorithm, Poisson-
binomial recurrence) under binary64, log-space and posit arithmetic.  The
applications in :mod:`repro.apps` are therefore written once against this
small protocol and instantiated per format, exactly mirroring how the
paper swaps arithmetic units inside otherwise-identical accelerators.
"""

from __future__ import annotations

import abc
from typing import Any, Iterable

from ..bigfloat import BigFloat


class Backend(abc.ABC):
    """Arithmetic over probabilities in one number representation.

    Values are opaque to callers (floats, posit bit patterns, BigFloats,
    ...).  Inputs enter through :meth:`from_bigfloat` — the paper's
    methodology converts exact MPFR operands into each format — and
    results leave through :meth:`to_bigfloat` for accuracy scoring.
    """

    #: Short identifier used in result tables ("binary64", "log", ...).
    name: str = "abstract"

    @abc.abstractmethod
    def from_bigfloat(self, x: BigFloat) -> Any:
        """Round an exact value into this representation."""

    @abc.abstractmethod
    def to_bigfloat(self, value: Any) -> BigFloat:
        """Exact (or correctly rounded, for log-space) value of ``value``."""

    @abc.abstractmethod
    def add(self, a: Any, b: Any) -> Any:
        """Probability addition (LSE in log-space)."""

    @abc.abstractmethod
    def mul(self, a: Any, b: Any) -> Any:
        """Probability multiplication (addition in log-space)."""

    @abc.abstractmethod
    def zero(self) -> Any:
        """The additive identity (probability 0)."""

    @abc.abstractmethod
    def one(self) -> Any:
        """The multiplicative identity (probability 1)."""

    @abc.abstractmethod
    def is_zero(self, value: Any) -> bool:
        """True if ``value`` represents exactly zero probability
        (i.e. the computation has underflowed or started from zero)."""

    def from_float(self, x: float) -> Any:
        return self.from_bigfloat(BigFloat.from_float(x))

    def sub(self, a: Any, b: Any) -> Any:
        """Probability subtraction ``a - b`` (log-diff-exp in log-space).

        Needed by complement-forming algorithms; backends without a
        native subtract may leave the default, which raises.
        """
        raise NotImplementedError(f"{self.name} does not support subtraction")

    def div(self, a: Any, b: Any) -> Any:
        """Probability division (subtraction in log-space).

        Needed only by normalizing algorithms (Baum-Welch); backends
        without a native divide may leave the default, which raises.
        """
        raise NotImplementedError(f"{self.name} does not support division")

    def gt(self, a: Any, b: Any) -> bool:
        """Strict value order ``a > b``.

        Probabilities are totally ordered, so every format can compare;
        the default goes through the exact plane (``to_bigfloat``).
        Backends whose ``to_bigfloat`` is only correctly rounded
        (log-space) or whose codes carry non-values (posit NaR) override
        with a representation-native comparison — the same order their
        batch mirror's monotone code arrays realize, which is what keeps
        max-semiring decisions identical across representations.
        """
        return self.to_bigfloat(a) > self.to_bigfloat(b)

    def maximum(self, a: Any, b: Any) -> Any:
        """The larger probability (``a`` on ties — the first-operand
        tie-break every argmax/traceback in :mod:`repro.workloads`
        relies on, matching ``np.maximum``/``np.argmax`` on the batch
        mirrors' monotone code arrays)."""
        return b if self.gt(b, a) else a

    def sum(self, values: Iterable[Any]) -> Any:
        """Accumulate many probabilities.

        The default folds :meth:`add` left-to-right (sequential
        accumulation, as in Listing 1 line 8).  Backends with a cheaper
        n-ary primitive (log-space's Equation-3 LSE) override this.
        """
        acc = self.zero()
        for v in values:
            acc = self.add(acc, v)
        return acc

    def dot(self, xs: Iterable[Any], ys: Iterable[Any]) -> Any:
        """Sum of products — the forward algorithm's inner kernel."""
        return self.sum(self.mul(x, y) for x, y in zip(xs, ys))

    def __repr__(self):
        return f"<{type(self).__name__} {self.name}>"
