"""Format-generic arithmetic backends (binary64 / log-space / posit /
LNS / BigFloat oracle) shared by all applications and experiments.

The public surface is the :class:`Backend` protocol, the concrete
backends, and the format registry — the execution plane's single source
of truth for scalar construction, batch pairing, and capability flags.
"""

from .backend import Backend
from .backends import (
    BigFloatBackend,
    Binary64Backend,
    LNSBackend,
    LogSpaceBackend,
    PositBackend,
    standard_backends,
)
from .registry import (
    BIT_IDENTICAL,
    ELEMENT_EXACT,
    ORACLE,
    REGISTRY,
    STANDARD_FORMATS,
    BatchPairing,
    FormatCapabilities,
    FormatRegistry,
    FormatSpec,
)

__all__ = [
    # protocol + concrete backends
    "Backend",
    "Binary64Backend",
    "LogSpaceBackend",
    "PositBackend",
    "LNSBackend",
    "BigFloatBackend",
    "standard_backends",
    # registry (the execution plane's format table)
    "REGISTRY",
    "FormatRegistry",
    "FormatSpec",
    "FormatCapabilities",
    "BatchPairing",
    "STANDARD_FORMATS",
    "BIT_IDENTICAL",
    "ELEMENT_EXACT",
    "ORACLE",
]
