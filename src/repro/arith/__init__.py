"""Format-generic arithmetic backends (binary64 / log-space / posit /
BigFloat oracle) shared by all applications and experiments."""

from .backend import Backend
from .backends import (
    BigFloatBackend,
    Binary64Backend,
    LNSBackend,
    LogSpaceBackend,
    PositBackend,
    standard_backends,
)

__all__ = [
    "Backend",
    "Binary64Backend",
    "LogSpaceBackend",
    "PositBackend",
    "LNSBackend",
    "BigFloatBackend",
    "standard_backends",
]
