"""Concrete arithmetic backends for the four representations the paper
compares: binary64, log-space, posit(64,ES), and the BigFloat oracle."""

from __future__ import annotations

import math
from typing import Iterable

from ..bigfloat import BigFloat, DEFAULT_PRECISION
from ..formats.logspace import LogSpace, log_mul, lse2, lse_n, lse_sequential
from .backend import Backend

try:  # Optional here: the scalar stack must import without NumPy.
    import numpy as _np
except ImportError:  # pragma: no cover - NumPy-less installs
    _np = None


class Binary64Backend(Backend):
    """Native IEEE binary64 (Python floats are exactly that).

    Probabilities below ~2**-1074 underflow to 0.0, which is the failure
    mode motivating the whole paper.
    """

    name = "binary64"

    def from_bigfloat(self, x: BigFloat) -> float:
        return x.to_float()

    def to_bigfloat(self, value: float) -> BigFloat:
        if math.isinf(value) or math.isnan(value):
            raise ValueError(f"{value} has no exact value")
        return BigFloat.from_float(value)

    def add(self, a: float, b: float) -> float:
        return a + b

    def mul(self, a: float, b: float) -> float:
        return a * b

    def sub(self, a: float, b: float) -> float:
        return a - b

    def div(self, a: float, b: float) -> float:
        return a / b

    def zero(self) -> float:
        return 0.0

    def one(self) -> float:
        return 1.0

    def is_zero(self, value: float) -> bool:
        return value == 0.0

    def gt(self, a: float, b: float) -> bool:
        return a > b


class LogSpaceBackend(Backend):
    """Probabilities stored as natural logs in binary64 (Section II.B).

    ``mul`` is float addition; ``add`` is the LSE of Equation (2); ``sum``
    is the n-ary LSE of Equation (3).  Probability zero is ``-inf``.

    ``sum_mode`` selects the accumulation dataflow: ``"nary"`` (default)
    is Equation (3) — one max, one sum of exps, one log, the hardware
    LSE unit's shape — while ``"sequential"`` folds the binary LSE of
    Equation (2) left-to-right, the software-accumulation shape that the
    batched engine (:mod:`repro.engine`) reproduces bit-for-bit.
    """

    name = "log"

    SUM_MODES = ("nary", "sequential")

    def __init__(self, prec: int = DEFAULT_PRECISION, sum_mode: str = "nary"):
        if sum_mode not in self.SUM_MODES:
            raise ValueError(f"unknown sum_mode {sum_mode!r}")
        self._codec = LogSpace(prec)
        self.sum_mode = sum_mode

    def from_bigfloat(self, x: BigFloat) -> float:
        return self._codec.encode_bigfloat(x)

    def to_bigfloat(self, value: float) -> BigFloat:
        return self._codec.decode_bigfloat(value)

    def add(self, a: float, b: float) -> float:
        return lse2(a, b)

    def mul(self, a: float, b: float) -> float:
        return log_mul(a, b)

    def sub(self, a: float, b: float) -> float:
        """Probability subtraction ``a - b`` via log-diff-exp:

            ``a + log1p(-exp(b - a))``   (for b < a)

        the numerically stable companion of Equation (2).  Probabilities
        are non-negative, so ``b > a`` (a negative result) is a domain
        error, and ``a == b`` yields exact probability zero (``-inf``).

        The interior evaluates through NumPy's scalar ``exp``/``log1p``
        kernels (elementwise-consistent with the array kernels), so
        :meth:`BatchLogSpace.sub <repro.engine.batch.BatchLogSpace.sub>`
        is bit-identical by construction; without NumPy the ``math``
        fallback may differ from a batch result in the last ulp — moot,
        since no batch plane exists there.
        """
        if b == -math.inf:
            return a
        if a == -math.inf or b > a:
            raise ValueError(
                "log-space subtraction would produce a negative probability")
        if a == b:
            return -math.inf
        if _np is not None:
            return float(a + _np.log1p(-_np.exp(_np.float64(b - a))))
        return a + math.log1p(-math.exp(b - a))  # pragma: no cover

    def div(self, a: float, b: float) -> float:
        if b == -math.inf:
            raise ZeroDivisionError("log-space division by zero probability")
        if a == -math.inf:
            return -math.inf
        return a - b

    def zero(self) -> float:
        return -math.inf

    def one(self) -> float:
        return 0.0

    def is_zero(self, value: float) -> bool:
        return value == -math.inf

    def sum(self, values: Iterable[float]) -> float:
        if self.sum_mode == "sequential":
            return lse_sequential(values)
        return lse_n(values)

    def gt(self, a: float, b: float) -> bool:
        """Compare the raw float logs, not ``to_bigfloat`` values: the
        decode is only correctly rounded, so two distinct logs could
        round to one BigFloat and flip a tie-break.  ``log`` is strictly
        monotone, so the float order *is* the probability order —
        exactly the order ``np.maximum`` realizes on the batch mirror's
        log arrays."""
        return a > b


class PositBackend(Backend):
    """posit(N, ES) arithmetic on raw bit patterns (Section III)."""

    def __init__(self, env: PositEnv):
        self.env = env
        self.name = env.name
        self._one = env.from_float(1.0)

    def from_bigfloat(self, x: BigFloat):
        return self.env.encode_bigfloat(x)

    def to_bigfloat(self, value) -> BigFloat:
        return self.env.to_bigfloat(value)

    def add(self, a, b):
        return self.env.add(a, b)

    def mul(self, a, b):
        return self.env.mul(a, b)

    def sub(self, a, b):
        return self.env.sub(a, b)

    def div(self, a, b):
        return self.env.div(a, b)

    def zero(self):
        return 0

    def one(self):
        return self._one

    def is_zero(self, value) -> bool:
        return self.env.is_zero(value)

    def is_nar(self, value) -> bool:
        return self.env.is_nar(value)

    def gt(self, a, b) -> bool:
        """Posit bit patterns compare as two's-complement integers (the
        posit standard's total order; NaR = the sign-bit pattern sorts
        below every real).  Exact by construction — no decode."""
        return self._ordered(a) > self._ordered(b)

    def _ordered(self, value) -> int:
        return value - (1 << self.env.nbits) \
            if value >= self.env.sign_bit else value

    def fused_sum(self, values) -> int:
        """Quire-style exact accumulation (extension feature)."""
        return self.env.fused_sum(values)


class LNSBackend(Backend):
    """Logarithmic Number System (Section VII) with an ideal sb table.

    Included for the extended format comparison: flat precision across
    its range, exact multiplication, hard saturation at the range edge.
    """

    def __init__(self, env=None):
        from ..formats.lns import LNSEnv
        self.env = env if env is not None else LNSEnv(12, 50)
        self.name = self.env.name

    def from_bigfloat(self, x: BigFloat):
        return self.env.encode_bigfloat(x)

    def to_bigfloat(self, value) -> BigFloat:
        return self.env.decode_bigfloat(value)

    def add(self, a, b):
        return self.env.add(a, b)

    def mul(self, a, b):
        return self.env.mul(a, b)

    def sub(self, a, b):
        return self.env.sub(a, b)

    def div(self, a, b):
        from ..formats.lns import LNS_ZERO
        if b == LNS_ZERO:
            raise ZeroDivisionError("LNS division by zero probability")
        if a == LNS_ZERO:
            return LNS_ZERO
        return max(self.env.min_code, min(self.env.max_code, a - b))

    def zero(self):
        from ..formats.lns import LNS_ZERO
        return LNS_ZERO

    def one(self):
        return 0

    def is_zero(self, value) -> bool:
        from ..formats.lns import LNS_ZERO
        return value == LNS_ZERO

    def gt(self, a, b) -> bool:
        """LNS codes are fixed-point log2 values — integer order *is*
        probability order, with the zero sentinel below everything
        (mirroring the batch mirror's ``ZERO_CODE`` = int64 min)."""
        from ..formats.lns import LNS_ZERO
        if a == LNS_ZERO:
            return False
        if b == LNS_ZERO:
            return True
        return a > b


class BigFloatBackend(Backend):
    """The oracle: p-bit MPFR-style arithmetic (default 256 bits)."""

    def __init__(self, prec: int = DEFAULT_PRECISION):
        self.prec = prec
        self.name = f"bigfloat{prec}"

    def from_bigfloat(self, x: BigFloat) -> BigFloat:
        return x.round(self.prec)

    def to_bigfloat(self, value: BigFloat) -> BigFloat:
        return value

    def add(self, a: BigFloat, b: BigFloat) -> BigFloat:
        return a.add(b, self.prec)

    def mul(self, a: BigFloat, b: BigFloat) -> BigFloat:
        return a.mul(b, self.prec)

    def sub(self, a: BigFloat, b: BigFloat) -> BigFloat:
        return a.sub(b, self.prec)

    def div(self, a: BigFloat, b: BigFloat) -> BigFloat:
        return a.div(b, self.prec)

    def zero(self) -> BigFloat:
        return BigFloat.zero()

    def one(self) -> BigFloat:
        return BigFloat.from_int(1)

    def is_zero(self, value: BigFloat) -> bool:
        return value.is_zero()


def standard_backends(underflow: str = "saturate") -> dict:
    """The five formats of Figure 3: binary64, log, and three posits.

    Thin view over the format registry
    (:data:`repro.arith.registry.REGISTRY`), which owns construction.
    """
    from .registry import REGISTRY
    return REGISTRY.standard(underflow)
