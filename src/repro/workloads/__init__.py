"""``repro.workloads`` — recurrence workloads over semirings over
formats.

The paper's thesis is that number-format behavior is a property of the
*recurrence*, not of one application.  This package makes the third
axis explicit: a :class:`~repro.workloads.semiring.Semiring` names the
recombination algebra (sum-product, max-product, the pair-HMM hybrid),
a :class:`~repro.workloads.registry.WorkloadSpec` ties a kernel to its
semiring and equivalence certification, and every kernel is one
:mod:`repro.nd` expression — so each workload runs on every registered
format, under batch or serial plans, with the registry's exactness
guarantees, and is servable through :mod:`repro.service` as a typed
request kind::

    import repro.workloads as wl

    best = wl.viterbi(hmm, "posit(64,12)")     # path + exact-max score
    likes = wl.pairhmm_batch(hap, reads, "log")
    tracks = wl.kalman_batch(zs, "lns(12,50)")

Shipped workloads (see :data:`WORKLOADS`): ``viterbi`` (max-product
decoding with traceback — max is exact by construction in every
format), ``pairhmm`` (the GATK HaplotypeCaller alignment kernel),
``kalman`` (the subtraction/cancellation workload).  Accuracy-vs-
oracle experiments live in ``repro.experiments`` as
``fig_<name>_accuracy``.
"""

from .kalman import KalmanEstimate, KalmanParams, kalman_batch, sample_tracks
from .pairhmm import PairHMMParams, match_priors, pairhmm_batch
from .registry import WORKLOADS, WorkloadSpec, get_workload
from .semiring import (
    LOG_SUM_EXP,
    MAX_PRODUCT,
    PAIRHMM_MAX,
    SEMIRINGS,
    SUM_PRODUCT,
    Semiring,
    resolve_semiring,
)
from .viterbi import ViterbiPath, viterbi, viterbi_batch

__all__ = [
    "LOG_SUM_EXP",
    "MAX_PRODUCT",
    "PAIRHMM_MAX",
    "SEMIRINGS",
    "SUM_PRODUCT",
    "Semiring",
    "ViterbiPath",
    "WORKLOADS",
    "WorkloadSpec",
    "KalmanEstimate",
    "KalmanParams",
    "PairHMMParams",
    "get_workload",
    "kalman_batch",
    "match_priors",
    "pairhmm_batch",
    "resolve_semiring",
    "sample_tracks",
    "viterbi",
    "viterbi_batch",
]
