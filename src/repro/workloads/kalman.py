"""Scalar Kalman filtering: the subtraction-heavy workload.

A 1-D constant-dynamics Kalman filter per track, written in the
*convex-combination* form so it stays inside the execution plane's
probability domain (every quantity is positive)::

    x⁻ = a·x            p⁻ = a²·p + q
    k  = p⁻ / (p⁻ + r)  (the Kalman gain, in (0, 1))
    x  = (1-k)·x⁻ + k·z  p  = (1-k)·p⁻

The one subtraction is ``1 - k`` — and that is the point: as the
predicted variance ``p⁻`` dwarfs the measurement noise ``r``, ``k``
approaches 1 and ``1 - k`` is a catastrophic cancellation, the
scenario that motivated the native batch ``sub`` kernels and the LNS
``db`` tables (PR 5) and that no sum/product-only kernel ever hits.
Posit's tapered precision and LNS's flat precision behave very
differently here, which is what
:mod:`repro.experiments.fig_kalman_accuracy` measures against the
BigFloat oracle.

The recurrence is a straight-line nd expression over ``(B,)`` state
vectors — one op sequence regardless of plan, so batch and serial
representations agree to the registry's certification per format.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

import numpy as np

from .. import nd
from .. import telemetry as _tele
from ..engine.plan import ExecPlan, resolve_plan
from ..nd.context import _resolve_format


@dataclass(frozen=True)
class KalmanParams:
    """Shared filter constants (all strictly positive; ``a`` in
    (0, 1] keeps the prediction inside the probability domain)."""

    a: float = 0.9      # state transition
    q: float = 1e-4     # process noise variance
    r: float = 1e-2     # measurement noise variance
    x0: float = 0.5     # initial state estimate
    p0: float = 0.25    # initial estimate variance


@dataclass(frozen=True)
class KalmanEstimate:
    """One track's final filtered state and variance (backend
    values)."""

    x: Any
    p: Any


def _kalman_nd(zs, params: KalmanParams, backend, plan):
    """The filter over an encoded measurement array ``zs (B, T)``;
    returns ``(x (B,), p (B,))`` FArrays."""
    def const(v):
        return nd.asarray(v, backend, plan=plan)

    a = const(params.a)
    aa = a * a
    q, r, one = const(params.q), const(params.r), const(1.0)
    n_batch, n_steps = zs.shape
    with _tele.span("workload.kalman"):
        x = nd.broadcast_to(const([params.x0]), (n_batch,))
        p = nd.broadcast_to(const([params.p0]), (n_batch,))
        for t in range(n_steps):
            xp = a * x
            pp = aa * p + q
            k = pp / (pp + r)
            omk = one - k  # the cancellation: k -> 1 as pp >> r
            x = omk * xp + k * zs[:, t]
            p = omk * pp
        return x, p


def kalman_batch(measurements, backend=None,
                 params: Optional[KalmanParams] = None,
                 plan: Optional[ExecPlan] = None
                 ) -> List[KalmanEstimate]:
    """Filter a batch of measurement tracks.

    ``measurements`` is a ``(B, T)`` array of strictly positive
    values.  Returns one :class:`KalmanEstimate` per track.  Requires
    a format with ``sub`` and ``div`` (binary64, log-space, posit,
    LNS, the oracle — every registered format since PR 5); vectorized
    passes slice into groups of at most ``plan.batch_size``.
    """
    backend = _resolve_format(backend)
    plan = resolve_plan(plan, where="kalman_batch")
    params = params or KalmanParams()
    zs_f64 = np.asarray(measurements, dtype=np.float64)
    if zs_f64.ndim != 2:
        raise ValueError("measurements must have shape (batch, T)")
    out: List[KalmanEstimate] = []
    for rows in plan.group_slices(zs_f64.shape[0]):
        zs = nd.asarray(zs_f64[rows], backend, plan=plan)
        x, p = _kalman_nd(zs, params, backend, plan)
        out.extend(KalmanEstimate(x.item(i), p.item(i))
                   for i in range(x.shape[0]))
    return out


def sample_tracks(n_tracks: int, length: int, seed: int = 0,
                  params: Optional[KalmanParams] = None
                  ) -> Tuple[np.ndarray, np.ndarray]:
    """Synthetic measurement tracks: a latent AR(1) state observed
    through positive multiplicative noise.  Returns ``(measurements
    (B, T), latent (B, T))`` float64 — inputs stay exactly
    representable on format entry via the usual one-rounding path."""
    params = params or KalmanParams()
    rng = np.random.default_rng(seed)
    latent = np.empty((n_tracks, length))
    state = np.full(n_tracks, params.x0)
    for t in range(length):
        state = params.a * state + rng.normal(
            0.0, np.sqrt(params.q), n_tracks)
        state = np.abs(state) + 1e-12
        latent[:, t] = state
    noise = rng.lognormal(0.0, np.sqrt(params.r), (n_tracks, length))
    return latent * noise, latent


__all__ = ["KalmanEstimate", "KalmanParams", "kalman_batch",
           "sample_tracks"]
