"""Pair-HMM read alignment (the GATK HaplotypeCaller kernel).

The likelihood that a read was sequenced from a haplotype, summed (or
maxed) over all alignments, via the classic three-state recurrence
over match/insert/delete matrices ``M, I, D`` of shape
``(R+1, L+1)``::

    M[i,j] = prior[i,j] × (tMM×M[i-1,j-1] ⊕ tIM×I[i-1,j-1]
                           ⊕ tDM×D[i-1,j-1])
    I[i,j] = tMI×M[i-1,j] ⊕ tII×I[i-1,j]
    D[i,j] = tMD×M[i,j-1] ⊕ tDD×D[i,j-1]
    result = total_j (M[R,j] ⊕ I[R,j])

with ``tMM = 1-2δ``, ``tMI = tMD = δ``, ``tII = tDD = ε``,
``tIM = tDM = 1-ε`` and the free-gap initialization
``D[0,j] = 1/L``.  ``⊕`` is the semiring's plus: probability addition
(LSE when the *format* is log-space — the exact GATK dataflow) or the
max of :data:`~repro.workloads.semiring.PAIRHMM_MAX`, the
HaplotypeCaller hybrid that recombines with max inside the recurrence
and sums only over where the read ends.

The kernel is one nd expression, row-vectorized over a batch of reads
(every elementwise op is ``(B, L)``-shaped; only the in-row ``D`` scan
is inherently serial in ``j``), so batch and serial plans run the same
ops in the same order — bit-identical or registry-certified per
format.  Match priors are precomputed input-side as exact float64 and
rounded into the format once, the paper's operand methodology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

import numpy as np

from .. import nd
from .. import telemetry as _tele
from ..engine.plan import ExecPlan, resolve_plan
from ..nd.context import _resolve_format
from .semiring import resolve_semiring


@dataclass(frozen=True)
class PairHMMParams:
    """Alignment model: gap open/extend probabilities and the base
    miscall rate (uniform over reads — per-base qualities would make
    the prior tensor position-dependent, nothing else changes)."""

    gap_open: float = 0.1      # δ
    gap_extend: float = 0.1    # ε
    mismatch: float = 0.01     # base error rate

    def transitions(self) -> dict:
        d, e = self.gap_open, self.gap_extend
        return {"tMM": 1.0 - 2.0 * d, "tMI": d, "tMD": d,
                "tII": e, "tDD": e, "tIM": 1.0 - e, "tDM": 1.0 - e}


def match_priors(haplotype, reads: np.ndarray,
                 mismatch: float) -> np.ndarray:
    """The emission tensor ``(B, R, L)``: probability of read base
    ``i`` given haplotype base ``j`` — ``1 - mismatch`` on agreement,
    ``mismatch / 3`` otherwise (uniform miscall over the other three
    bases), as exact float64 for one rounding on format entry."""
    hap = np.asarray(haplotype, dtype=np.intp)
    reads = np.asarray(reads, dtype=np.intp)
    if reads.ndim != 2:
        raise ValueError("reads must have shape (batch, R)")
    match = reads[:, :, None] == hap[None, None, :]
    return np.where(match, 1.0 - mismatch, mismatch / 3.0)


def _pairhmm_nd(priors, semiring, trans: dict, length: int):
    """The recurrence over an already-encoded prior tensor
    ``priors (B, R, L)`` (FArray); returns the ``(B,)`` likelihood
    FArray.  ``trans`` holds the seven transition FArrays (0-d)."""
    n_batch, n_reads, n_hap = priors.shape
    with _tele.span("workload.pairhmm"):
        m_row = nd.zeros_like(priors, (n_batch, n_hap + 1))
        i_row = nd.zeros_like(priors, (n_batch, n_hap + 1))
        # Free gap before the read starts: D[0, j>=1] = 1/L.
        d_init = np.concatenate(
            [np.zeros((n_batch, 1)),
             np.full((n_batch, n_hap), 1.0 / length)], axis=1)
        d_row = nd.asarray(d_init, priors.backend,
                           plan=None, certified=False)._as_mode(priors._bb)
        zero_col = nd.zeros_like(priors, (n_batch, 1))
        for i in range(n_reads):
            rec = semiring.plus(
                semiring.plus(trans["tMM"] * m_row[:, :-1],
                              trans["tIM"] * i_row[:, :-1]),
                trans["tDM"] * d_row[:, :-1])
            m_new = nd.concatenate(
                [zero_col, priors[:, i, :] * rec], axis=1)
            i_new = semiring.plus(trans["tMI"] * m_row,
                                  trans["tII"] * i_row)
            # In-row delete scan: D[i, j] depends on D[i, j-1].
            src = trans["tMD"] * m_new
            d_cols = [zero_col[:, 0]]
            for j in range(1, n_hap + 1):
                d_cols.append(semiring.plus(
                    src[:, j - 1], trans["tDD"] * d_cols[j - 1]))
            m_row, i_row = m_new, i_new
            d_row = nd.stack(d_cols, axis=1)
        ends = semiring.plus(m_row, i_row)[:, 1:]
        return semiring.reduce(ends, axis=1)


def pairhmm_batch(haplotype, reads, backend=None,
                  params: Optional[PairHMMParams] = None,
                  plan: Optional[ExecPlan] = None,
                  semiring="pairhmm-max") -> List[Any]:
    """Alignment likelihoods for a batch of reads against one
    haplotype.

    ``haplotype`` is a length-``L`` symbol sequence, ``reads`` a
    ``(B, R)`` integer array over the same alphabet.  Returns one
    backend value per read.  ``semiring`` defaults to the
    HaplotypeCaller max/sum hybrid; pass ``"sum-product"`` for the
    full-sum likelihood (the LSE dataflow when the format is
    log-space).  Vectorized passes slice into groups of at most
    ``plan.batch_size``.
    """
    backend = _resolve_format(backend)
    plan = resolve_plan(plan, where="pairhmm_batch")
    params = params or PairHMMParams()
    sr = resolve_semiring(semiring)
    reads = np.asarray(reads, dtype=np.intp)
    hap = np.asarray(haplotype, dtype=np.intp)
    priors_f64 = match_priors(hap, reads, params.mismatch)
    trans = {k: nd.asarray(v, backend, plan=plan)
             for k, v in params.transitions().items()}
    values: List[Any] = []
    for rows in plan.group_slices(reads.shape[0]):
        priors = nd.asarray(priors_f64[rows], backend, plan=plan)
        out = _pairhmm_nd(priors, sr, trans, hap.size)
        values.extend(out.item(i) for i in range(out.shape[0]))
    return values


__all__ = ["PairHMMParams", "match_priors", "pairhmm_batch"]
