"""Semirings over the nd plane: the algebra a recurrence runs in.

The paper's kernels are all instances of one shape — a linear
recurrence whose "multiply" chains probabilities and whose "add"
recombines alternatives — evaluated under interchangeable number
formats.  This module makes the *algebra* as swappable as the format:
a :class:`Semiring` names the pair of monoids and dispatches them to
the existing :mod:`repro.nd` ops, so sum-product forward, Viterbi
max-product decoding, and the pair-HMM max/LSE hybrid are the same
kernel applied to different semirings (see
:func:`repro.apps.hmm.forward` and :mod:`repro.workloads.viterbi`).

Two ``plus`` monoids exist:

* ``"add"`` — probability addition (the format's native ``add``: float
  add, Equation-2/3 LSE in log-space, posit/LNS rounded adds).  Inner
  products contract through :func:`nd.dot`, keeping the decoded-plane
  fused kernels.
* ``"max"`` — the larger probability.  This dispatches to the
  :func:`nd.maximum`/:meth:`FArray.max` order ops, which compare the
  mirrors' *monotone code arrays* (float values, float logs, posit
  patterns as two's-complement integers, LNS fixed-point codes), so
  max is **exact by construction** in every registered format — no
  rounding, no decode, and batch/serial plans decide identically.
  That certification is pinned exhaustively in
  ``tests/test_workloads_semiring.py``.

``times`` is always the format's probability multiply: every semiring
the workloads use is ``(⊕, ×)`` over probabilities; the log-space
*format* is what turns ``×`` into code addition, exactly as it turns
``⊕`` into LSE — semiring choice and format choice stay orthogonal,
which is the point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .. import nd

#: The two plus-monoids (module docstring).
_PLUS_OPS = ("add", "max")


@dataclass(frozen=True)
class Semiring:
    """One recurrence algebra: how alternatives recombine.

    ``plus_op`` is the within-step recombination (the inner product of
    the recurrence); ``total_op`` the final cross-state reduction.
    They usually coincide, but the pair-HMM hybrid recombines with max
    while totalling with add (GATK's HMM approximation), which is why
    they are separate fields.
    """

    name: str
    plus_op: str       # "add" | "max" — within-step recombination
    total_op: str      # "add" | "max" — final reduction
    description: str = ""

    def __post_init__(self):
        for field in (self.plus_op, self.total_op):
            if field not in _PLUS_OPS:
                raise ValueError(f"unknown semiring op {field!r} "
                                 f"(one of {_PLUS_OPS})")

    # -- the four ops every kernel is written against -------------------
    def times(self, x, y):
        """Chain two probabilities (the format's multiply)."""
        return x * y

    def plus(self, x, y):
        """Recombine two alternatives elementwise."""
        return x + y if self.plus_op == "add" else nd.maximum(x, y)

    def contract(self, x, y, axis: int = -1):
        """The recurrence's inner product: ``⊕_i (x_i × y_i)`` along
        ``axis``.  The add-monoid routes through :func:`nd.dot` (the
        decoded-plane fused kernel); the max-monoid multiplies then
        takes the exact code-order max."""
        if self.plus_op == "add":
            return nd.dot(x, y, axis=axis)
        return (x * y).max(axis=axis)

    def reduce(self, x, axis: Optional[int] = None):
        """The final cross-state reduction with the total monoid."""
        return x.sum(axis=axis) if self.total_op == "add" \
            else x.max(axis=axis)

    def __repr__(self):
        return f"<Semiring {self.name} ⊕={self.plus_op} total={self.total_op}>"


#: Classic sum-product: forward probabilities, PBD, LoFreq.
SUM_PRODUCT = Semiring(
    "sum-product", "add", "add",
    "Probability mass over all paths (forward algorithm, PBD).")

#: Max-product (Viterbi): the single best path's probability.
MAX_PRODUCT = Semiring(
    "max-product", "max", "max",
    "Best single path (Viterbi decoding; max is exact in every "
    "format — codes are monotone).")

#: Sum-product *as realized in the log format*: plus is the LSE of
#: Equation (2)/(3).  Algebraically identical to SUM_PRODUCT — the
#: format supplies the LSE — but registered separately so workloads
#: and service requests can name the dataflow the paper's LSE unit
#: implements.
LOG_SUM_EXP = Semiring(
    "log-sum-exp", "add", "add",
    "Sum-product under the log format: plus is the stable LSE "
    "recombination (Equations 2-3).")

#: GATK-style pair-HMM hybrid: max recombination inside the
#: recurrence (best alignment extension), probability-sum total over
#: the final row (mass of where the read ends).
PAIRHMM_MAX = Semiring(
    "pairhmm-max", "max", "add",
    "Pair-HMM hybrid: max within the recurrence, sum over final "
    "states (the HaplotypeCaller approximation).")

#: Every registered semiring, by name.
SEMIRINGS: Dict[str, Semiring] = {
    s.name: s
    for s in (SUM_PRODUCT, MAX_PRODUCT, LOG_SUM_EXP, PAIRHMM_MAX)
}


def resolve_semiring(semiring) -> Semiring:
    """``semiring`` (a :class:`Semiring`, a registered name, or None
    for sum-product) as a :class:`Semiring`."""
    if semiring is None:
        return SUM_PRODUCT
    if isinstance(semiring, Semiring):
        return semiring
    try:
        return SEMIRINGS[semiring]
    except KeyError:
        raise ValueError(f"unknown semiring {semiring!r} "
                         f"(one of {sorted(SEMIRINGS)})") from None


__all__ = [
    "LOG_SUM_EXP",
    "MAX_PRODUCT",
    "PAIRHMM_MAX",
    "SEMIRINGS",
    "SUM_PRODUCT",
    "Semiring",
    "resolve_semiring",
]
