"""The WORKLOADS table: every registered recurrence workload, by name.

What :data:`repro.arith.registry.REGISTRY` does for formats this table
does for workloads: one entry makes a kernel discoverable to the
service layer (each name is a typed request kind in
:mod:`repro.service`), to the experiments CLI (the
``fig_<name>_accuracy`` modules), and to the equivalence tests.  The
``certification`` field states *why* batch and serial plans agree:

* ``"max-exact"`` — every recombination is a max over monotone code
  arrays: no rounding at all, so decisions (scores *and* argmax
  paths) are identical across plans in every format.
* ``"reductions-certified"`` — results follow the format registry's
  reduction certification (bit-identical for binary64/posit/LNS and
  sequential log-space; ulp-close for n-ary log-space).
* ``"elementwise-exact"`` — a straight-line elementwise expression
  (no reductions), so every registered mirror is exact vs the scalar
  fold by the registry's elementwise certification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from .kalman import kalman_batch
from .pairhmm import pairhmm_batch
from .semiring import MAX_PRODUCT, PAIRHMM_MAX, SUM_PRODUCT, Semiring
from .viterbi import viterbi_batch


@dataclass(frozen=True)
class WorkloadSpec:
    """One registered workload: its batch kernel, characteristic
    semiring, and the batch/serial equivalence class it certifies."""

    name: str
    description: str
    semiring: Semiring
    certification: str
    runner: Callable

    def __repr__(self):
        return (f"<WorkloadSpec {self.name} semiring={self.semiring.name} "
                f"{self.certification}>")


WORKLOADS: Dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in (
        WorkloadSpec(
            "viterbi",
            "Most probable HMM state path (max-product forward with "
            "back-pointer traceback).",
            MAX_PRODUCT, "max-exact", viterbi_batch),
        WorkloadSpec(
            "pairhmm",
            "Pair-HMM read-vs-haplotype alignment likelihood (the "
            "HaplotypeCaller kernel; max/sum hybrid by default).",
            PAIRHMM_MAX, "reductions-certified", pairhmm_batch),
        WorkloadSpec(
            "kalman",
            "1-D Kalman filtering in convex-combination form — the "
            "subtraction/cancellation workload.",
            SUM_PRODUCT, "elementwise-exact", kalman_batch),
    )
}


def get_workload(name: str) -> WorkloadSpec:
    """The registered spec, or a ValueError naming the known set."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise ValueError(f"unknown workload {name!r} "
                         f"(one of {sorted(WORKLOADS)})") from None


__all__ = ["WORKLOADS", "WorkloadSpec", "get_workload"]
