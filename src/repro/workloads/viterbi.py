"""Viterbi decoding: the forward recurrence in the max-product
semiring, plus back-pointer path recovery.

The *score* (best single path's probability) is literally
:func:`repro.apps.hmm.forward` with ``semiring="max-product"`` — the
same kernel, different algebra (that identity is pinned in
``tests/test_workloads.py``).  What this module adds is the part a
semiring cannot express: remembering *which* predecessor achieved each
max (``argmax`` back-pointers) and walking them backwards into the
decoded state path.

Decisions are plan-invariant: ``max``/``argmax`` compare the batch
mirrors' monotone code arrays, the scalar fallback compares through the
backends' representation-native ``gt`` — the same total order with the
same first-index tie-break — so a batch plan and ``ExecPlan.serial()``
recover identical paths in every format.  Across *formats* the paths
may genuinely differ (rounded scores can reorder candidates), which is
exactly what :mod:`repro.experiments.fig_viterbi_accuracy` measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

import numpy as np

from .. import nd
from .. import telemetry as _tele
from ..engine.plan import ExecPlan, resolve_plan


@dataclass(frozen=True)
class ViterbiPath:
    """One decoded sequence: the best path's probability (a backend
    value — score it with ``backend.to_bigfloat``) and its state
    indices, shape ``(T,)``."""

    score: Any
    path: np.ndarray

    def states(self) -> List[int]:
        return [int(s) for s in self.path]


def _viterbi_nd(a, b, pi, obs: np.ndarray):
    """Max-product forward with back-pointers for a batch of sequences
    sharing one model: ``a (H, H)``, ``b (H, M)``, ``pi (H,)``
    FArrays, ``obs (B, T)`` ints.  Returns ``(score (B,) FArray,
    path (B, T) intp ndarray)``.

    Identical op order to ``_forward_recurrence`` under MAX_PRODUCT —
    ``prod`` is the contraction's multiply, ``max``/``argmax`` its
    recombination — so the returned score equals the semiring forward's
    bit-for-bit; ``argmax`` merely observes which lane won.
    """
    from ..apps.hmm import _emission_shared
    obs = np.asarray(obs)
    if obs.ndim != 2:
        raise ValueError("obs must have shape (batch, T)")
    n_batch, n_steps = obs.shape
    with _tele.span("workload.viterbi"):
        delta = pi * _emission_shared(b, obs, 0)
        back: List[np.ndarray] = []
        for t in range(1, n_steps):
            # prod[s, p, q] = delta[s, p] × A[p, q]; the max monoid
            # recombines over p (exact code order, first index on ties).
            prod = delta[:, :, None] * a
            back.append(prod.argmax(axis=1))
            delta = prod.max(axis=1) * _emission_shared(b, obs, t)
        score = delta.max(axis=1)
        path = np.empty((n_batch, n_steps), dtype=np.intp)
        path[:, -1] = delta.argmax(axis=1)
        rows = np.arange(n_batch)
        for t in range(n_steps - 2, -1, -1):
            path[:, t] = back[t][rows, path[:, t + 1]]
        return score, path


def viterbi(hmm, backend=None, observations=None,
            plan: Optional[ExecPlan] = None) -> ViterbiPath:
    """Decode one sequence: the most probable state path and its
    probability.  ``backend``/``plan`` default to the ambient
    :mod:`repro.nd` context; a B=1 view over :func:`_viterbi_nd` in
    the reduction-certified tier (max needs no certification — it is
    exact everywhere — but the model conversion should match
    :func:`repro.apps.hmm.forward`'s)."""
    from ..apps.hmm import _obs_rows, model_arrays
    plan = resolve_plan(plan, where="viterbi")
    obs = hmm.observations if observations is None else observations
    a, b, pi = model_arrays(hmm, backend, plan=plan, certified=True)
    score, path = _viterbi_nd(a, b, pi, _obs_rows([obs]))
    return ViterbiPath(score.item(0), path[0])


def viterbi_batch(hmm, backend=None, observations=None,
                  plan: Optional[ExecPlan] = None) -> List[ViterbiPath]:
    """Decode a batch of observation sequences sharing one model.

    ``observations`` is a ``(B, T)`` integer array (default: a batch
    of one, the HMM's own sequence).  Returns one :class:`ViterbiPath`
    per sequence, equal decision-for-decision to calling
    :func:`viterbi` per sequence under any plan — max and argmax are
    exact in every format, so there is no certified/uncertified split.
    Vectorized passes slice into groups of at most ``plan.batch_size``;
    formats without an array backend run through the scalar
    representation with the model conversion hoisted.
    """
    from ..apps.hmm import _obs_rows, model_arrays
    plan = resolve_plan(plan, where="viterbi_batch")
    if observations is None:
        observations = [hmm.observations]
    a, b, pi = model_arrays(hmm, backend, plan=plan, certified=False)
    obs = _obs_rows(observations)
    out: List[ViterbiPath] = []
    for rows in plan.group_slices(obs.shape[0]):
        score, path = _viterbi_nd(a, b, pi, obs[rows])
        out.extend(ViterbiPath(score.item(i), path[i])
                   for i in range(path.shape[0]))
    return out


__all__ = ["ViterbiPath", "viterbi", "viterbi_batch"]
