"""repro — reproduction of *Design and accuracy trade-offs in
Computational Statistics* (Xu, Cox, Rixner; IISWC 2025).

The paper compares binary64, log-space, and posit(64,ES) arithmetic for
statistical computations whose probabilities fall far below 2**-1074,
at three levels: individual operations, full applications (HMM forward
algorithm / Poisson-binomial p-values), and FPGA accelerators.

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.bigfloat` — arbitrary-precision oracle (MPFR substitute)
* :mod:`repro.formats` — posit / IEEE / log-space number formats
* :mod:`repro.arith` — format-generic arithmetic backends + the format
  registry (construction, batch pairing, capability flags)
* :mod:`repro.engine` — the execution plane: certified batch mirrors,
  :class:`~repro.engine.plan.ExecPlan`, parallel sweep runner
* :mod:`repro.nd` — the NumPy-style front end: format-tagged
  :class:`~repro.nd.FArray` arrays with registry-dispatched operators,
  plan-aware reductions, and ambient ``use_format``/``use_plan``
* :mod:`repro.core` — accuracy sweeps, bit-budget analysis, range tables
* :mod:`repro.apps` — forward algorithm (VICAR), PBD p-values (LoFreq)
* :mod:`repro.workloads` — semiring-parameterized workloads: Viterbi
  decoding, pair-HMM alignment, Kalman filtering, and the
  :data:`~repro.workloads.WORKLOADS` registry
* :mod:`repro.data` — synthetic workload generators
* :mod:`repro.hw` — FPGA accelerator timing/resource models
* :mod:`repro.experiments` — one module per paper table/figure
* :mod:`repro.service` — arithmetic-as-a-service: asyncio server
  with cross-request microbatching, typed workload API, client,
  and load harness
* :mod:`repro.report` — text tables and CDFs
* :mod:`repro.faults` — deterministic fault injection + the
  graceful-degradation ladder (chaos testing for every layer above)

Quickstart::

    import repro.nd as nd
    with nd.use_format("posit(32,2)"):
        p = nd.asarray([0.5, 0.25, 0.125])
        print(nd.sum(p * (1 - p)).to_floats())
"""

__version__ = "1.2.0"

from . import arith, bigfloat, core, faults, formats, telemetry  # noqa: F401

#: NumPy-dependent subpackages load lazily (PEP 562) so the scalar
#: stack stays importable where the vectorized engine cannot run.
#: (:mod:`repro.telemetry` is stdlib-only, so it loads eagerly.)
_LAZY_SUBMODULES = ("apps", "engine", "experiments", "nd",
                    "service", "workloads")

__all__ = [  # noqa: PLE0604
    "arith", "bigfloat", "core", "faults", "formats", "telemetry",
    "__version__",
    *_LAZY_SUBMODULES,
]


def __getattr__(name):
    if name in _LAZY_SUBMODULES:
        import importlib
        return importlib.import_module(f".{name}", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
