"""repro — reproduction of *Design and accuracy trade-offs in
Computational Statistics* (Xu, Cox, Rixner; IISWC 2025).

The paper compares binary64, log-space, and posit(64,ES) arithmetic for
statistical computations whose probabilities fall far below 2**-1074,
at three levels: individual operations, full applications (HMM forward
algorithm / Poisson-binomial p-values), and FPGA accelerators.

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.bigfloat` — arbitrary-precision oracle (MPFR substitute)
* :mod:`repro.formats` — posit / IEEE / log-space number formats
* :mod:`repro.arith` — format-generic arithmetic backends + the format
  registry (construction, batch pairing, capability flags)
* :mod:`repro.engine` — the execution plane: canonical batch kernels,
  :class:`~repro.engine.plan.ExecPlan`, parallel sweep runner
* :mod:`repro.core` — accuracy sweeps, bit-budget analysis, range tables
* :mod:`repro.apps` — forward algorithm (VICAR), PBD p-values (LoFreq)
* :mod:`repro.data` — synthetic workload generators
* :mod:`repro.hw` — FPGA accelerator timing/resource models
* :mod:`repro.experiments` — one module per paper table/figure
* :mod:`repro.report` — text tables and CDFs

Quickstart::

    from repro.arith import standard_backends
    from repro.core import run_op_sweep
    result = run_op_sweep("add", standard_backends(), per_bin=50)
"""

__version__ = "1.1.0"

from . import arith, bigfloat, core, formats  # noqa: F401

__all__ = ["arith", "bigfloat", "core", "formats", "__version__"]
