"""The :class:`Collector`: counters, timing spans, and event tallies.

One collector aggregates everything observed inside one
:func:`repro.telemetry.collect` scope:

* **counters** — monotonically increasing work tallies (elements
  dispatched per op/format/plane, sweep pairs measured, cache bytes);
* **spans** — named timed regions on the monotonic clock
  (``time.perf_counter``), nestable, aggregated per name into
  ``[count, total_s, min_s, max_s]``;
* **events** — exceptional-outcome tallies (posit NaR/saturation/
  flush, log-space ``-inf`` underflow, quire NaR poisoning).

Collectors are plain-dict state end to end, so they pickle across
process boundaries (the parallel sweep runner ships one back per
chunk) and :meth:`Collector.merge` combines any two: counters and
events add, span aggregates combine count/total and take min/max.

An optional JSONL trace sink streams one line per *closed* span (name,
depth, start offset, duration) plus a final ``summary`` line holding
the full aggregate state; merged child collectors appear only in the
summary (their spans closed in another process).
"""

from __future__ import annotations

import contextvars
import json
import time
from typing import Dict, List

#: Current span nesting depth, tracked *per execution context* rather
#: than per collector.  Concurrent asyncio tasks that share one
#: collector (a child task inherits the parent's collector through
#: ``contextvars`` at ``asyncio.create_task``) each see their own
#: depth, so interleaved spans from different tasks cannot corrupt each
#: other's nesting — with a collector-owned stack, task B's close would
#: pop task A's frame.
_SPAN_DEPTH: contextvars.ContextVar[int] = contextvars.ContextVar(
    "repro_telemetry_span_depth", default=0)


class _Span:
    """One active timed region; created by :meth:`Collector.span`."""

    __slots__ = ("_collector", "_name", "_t0", "_depth", "_token")

    def __init__(self, collector: "Collector", name: str):
        self._collector = collector
        self._name = name

    def __enter__(self) -> "_Span":
        self._depth = _SPAN_DEPTH.get()
        self._token = _SPAN_DEPTH.set(self._depth + 1)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        t1 = time.perf_counter()
        _SPAN_DEPTH.reset(self._token)
        self._collector._close_span(self._name, self._t0, t1, self._depth)
        return False


class Collector:
    """Aggregated observations for one ``collect()`` scope.

    Not constructed directly in most code — enter
    :func:`repro.telemetry.collect` and use the yielded instance.
    State is exposed as plain attributes for tests and exporters:
    ``counters`` / ``events`` map names to integers, ``spans`` maps
    names to ``[count, total_s, min_s, max_s]`` lists.
    """

    def __init__(self, trace=None):
        self.counters: Dict[str, int] = {}
        self.events: Dict[str, int] = {}
        self.spans: Dict[str, List] = {}
        self._epoch = time.perf_counter()
        self._sink = None
        self._sink_owned = False
        if trace is not None:
            if hasattr(trace, "write"):
                self._sink = trace
            else:
                self._sink = open(trace, "w")
                self._sink_owned = True

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + int(n)

    def event(self, name: str, n: int = 1) -> None:
        """Tally ``n`` occurrences of the exceptional event ``name``."""
        self.events[name] = self.events.get(name, 0) + int(n)

    def span(self, name: str) -> _Span:
        """A context manager timing one region under ``name``.

        Spans nest freely; each closed span feeds the per-name
        aggregate and (when tracing) one JSONL line carrying its
        nesting depth.
        """
        return _Span(self, name)

    def _close_span(self, name: str, t0: float, t1: float,
                    depth: int = 0) -> None:
        dur = t1 - t0
        agg = self.spans.get(name)
        if agg is None:
            self.spans[name] = [1, dur, dur, dur]
        else:
            agg[0] += 1
            agg[1] += dur
            if dur < agg[2]:
                agg[2] = dur
            if dur > agg[3]:
                agg[3] = dur
        if self._sink is not None:
            self._sink.write(json.dumps(
                {"type": "span", "name": name, "depth": depth,
                 "start_s": t0 - self._epoch, "duration_s": dur}) + "\n")

    # ------------------------------------------------------------------
    # Merging / pickling (multi-process sweeps)
    # ------------------------------------------------------------------
    def merge(self, other: "Collector") -> "Collector":
        """Fold another collector's aggregates into this one."""
        for name, n in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + n
        for name, n in other.events.items():
            self.events[name] = self.events.get(name, 0) + n
        for name, (count, total, lo, hi) in other.spans.items():
            agg = self.spans.get(name)
            if agg is None:
                self.spans[name] = [count, total, lo, hi]
            else:
                agg[0] += count
                agg[1] += total
                agg[2] = min(agg[2], lo)
                agg[3] = max(agg[3], hi)
        return self

    def __getstate__(self):
        # The trace sink is process-local (an open file); merged-in
        # children report through the parent's summary instead.
        return {"counters": self.counters, "events": self.events,
                "spans": self.spans, "_epoch": self._epoch}

    def __setstate__(self, state):
        self.counters = state["counters"]
        self.events = state["events"]
        self.spans = state["spans"]
        self._epoch = state["_epoch"]
        self._sink = None
        self._sink_owned = False

    # ------------------------------------------------------------------
    # Export surfaces
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        """The aggregate state as one JSON-serializable dict."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "events": dict(sorted(self.events.items())),
            "spans": {name: {"count": agg[0], "total_s": agg[1],
                             "min_s": agg[2], "max_s": agg[3]}
                      for name, agg in sorted(self.spans.items())},
        }

    def report(self) -> str:
        """A pretty fixed-width table of everything collected."""
        lines: List[str] = []
        if self.spans:
            width = max(len(n) for n in self.spans)
            lines.append("spans (aggregated on the monotonic clock):")
            lines.append(f"  {'name':<{width}} {'calls':>8} "
                         f"{'total':>11} {'mean':>11} {'min':>11} "
                         f"{'max':>11}")
            for name, (count, total, lo, hi) in sorted(self.spans.items()):
                lines.append(
                    f"  {name:<{width}} {count:>8} {_fmt_s(total):>11} "
                    f"{_fmt_s(total / count):>11} {_fmt_s(lo):>11} "
                    f"{_fmt_s(hi):>11}")
        for title, table in (("counters", self.counters),
                             ("events", self.events)):
            if not table:
                continue
            width = max(len(n) for n in table)
            lines.append(f"{title}:")
            for name, n in sorted(table.items()):
                lines.append(f"  {name:<{width}} {n:>14}")
        return "\n".join(lines) if lines else "(nothing collected)"

    def _finish(self) -> None:
        """Flush the summary line and release an owned trace sink."""
        if self._sink is not None:
            self._sink.write(json.dumps(
                {"type": "summary", **self.to_json()}) + "\n")
            self._sink.flush()
            if self._sink_owned:
                self._sink.close()
            self._sink = None
            self._sink_owned = False

    def __repr__(self):
        return (f"<Collector {len(self.counters)} counters, "
                f"{len(self.events)} events, {len(self.spans)} spans>")


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    return f"{seconds * 1e6:.1f} us"


__all__ = ["Collector"]
