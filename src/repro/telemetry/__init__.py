"""repro.telemetry — zero-dependency tracing/metrics for the execution
plane.

The execution plane (registry + ExecPlan, batched kernels, the nd
front end, the result cache, multi-process sweeps) is instrumented
with three primitive kinds, all aggregated by a
:class:`~repro.telemetry.collector.Collector`:

* **counters** — work tallies: per-format/per-op/plane element counts
  from :mod:`repro.nd`, sweep pairs from
  :func:`repro.core.accuracy.measure_pairs`, LNS table/memo hits,
  cache hit/miss/bytes;
* **spans** — timed regions on the monotonic clock, nestable:
  app/kernel entry points, the posit decode/core/encode stages,
  per-chunk sweep workers;
* **events** — exceptional outcomes: posit NaR / saturation /
  flush-to-zero, log-space ``-inf`` underflow, quire NaR poisoning.

Usage::

    from repro import telemetry

    with telemetry.collect() as t:
        run_workload()
    print(t.report())           # pretty table
    payload = t.to_json()       # machine-readable aggregate

    with telemetry.collect(trace="run.jsonl") as t:
        run_workload()          # one JSONL line per closed span

**The disabled path is strictly zero-cost.**  Collection is scoped by
a :class:`contextvars.ContextVar`; with no active ``collect()`` scope,
:func:`span` returns a shared no-op singleton (no allocation),
:func:`count`/:func:`event` return after one module-level integer
check, and :func:`current` returns ``None`` without touching the
context variable.  Instrumented hot paths guard any mask/key
construction behind ``telemetry.current() is not None``, so the
batched kernels run uninstrumented-speed when nothing collects
(asserted by ``benchmarks/test_telemetry_overhead.py``: < 3% on the
batched forward benchmark).

Collectors pickle (minus their trace sink) and merge, so the parallel
sweep runner (:func:`repro.engine.runner.run_sweep_parallel`) ships
one back per chunk and folds worker timings into the parent scope.
"""

from __future__ import annotations

from contextvars import ContextVar
from typing import Optional

from .collector import Collector

__all__ = ["Collector", "collect", "count", "current", "event", "span"]

#: The active collector for the current context (None outside any
#: ``collect()`` scope).
_collector_var: ContextVar[Optional[Collector]] = ContextVar(
    "repro_telemetry_collector", default=None)

#: Module-level fast check: the number of ``collect()`` scopes entered
#: process-wide.  Zero means *no* context can have a collector, so the
#: disabled path never touches the ContextVar machinery.
_active_scopes = 0


class _NoopSpan:
    """The shared do-nothing span returned while collection is off."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NOOP_SPAN = _NoopSpan()


def current() -> Optional[Collector]:
    """The active collector, or None (the disabled fast path).

    Instrumentation sites that must *compute* something before
    recording (event masks, counter keys) check this first so the
    disabled path allocates nothing.
    """
    if _active_scopes == 0:
        return None
    return _collector_var.get()


def span(name: str):
    """A timing span on the active collector, or the no-op singleton.

    Always usable as a context manager::

        with telemetry.span("posit.decode"):
            ...
    """
    if _active_scopes == 0:
        return _NOOP_SPAN
    c = _collector_var.get()
    return _NOOP_SPAN if c is None else c.span(name)


def count(name: str, n: int = 1) -> None:
    """Add ``n`` to a counter on the active collector (no-op when
    disabled)."""
    if _active_scopes:
        c = _collector_var.get()
        if c is not None:
            c.count(name, n)


def event(name: str, n: int = 1) -> None:
    """Tally an exceptional event on the active collector (no-op when
    disabled)."""
    if _active_scopes:
        c = _collector_var.get()
        if c is not None:
            c.event(name, n)


class collect:
    """Context manager scoping a :class:`Collector` over a region.

    ``trace`` optionally names a JSONL file (or passes a file-like
    object) receiving one line per closed span plus a final summary
    line.  An existing ``collector`` may be re-entered to accumulate
    several regions into one aggregate.  Scopes nest: the innermost
    collector receives the observations, and the outer one resumes
    when the inner scope exits (the parallel sweep workers rely on
    this to collect into a fresh picklable child).
    """

    __slots__ = ("_trace", "_given", "_collector", "_token")

    def __init__(self, trace=None, collector: Optional[Collector] = None):
        if trace is not None and collector is not None:
            raise ValueError("pass trace= or collector=, not both")
        self._trace = trace
        self._given = collector
        self._collector: Optional[Collector] = None

    def __enter__(self) -> Collector:
        global _active_scopes
        c = self._given if self._given is not None \
            else Collector(trace=self._trace)
        self._collector = c
        self._token = _collector_var.set(c)
        _active_scopes += 1
        return c

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _active_scopes
        _active_scopes -= 1
        _collector_var.reset(self._token)
        if self._given is None:
            self._collector._finish()
        self._collector = None
        return False
