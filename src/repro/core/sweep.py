"""Exponent-stratified operand generation for the Figure 3 sweep.

The paper draws add/mul operand pairs (from a phylogenetics run and from
uniform sampling in MPFR) whose *results* span base-2 exponents from
-10000 up to 0, then buckets accuracy by result exponent.  This module
generates such pairs deterministically (seeded) as exact dyadic rationals.

Generation is rejection-free: we choose the result's target scale first
and construct operands guaranteed to land in the requested bin.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from ..formats.real import Real

#: Figure 3's x-axis bins: [lo, hi) half-open result-exponent ranges.
FIG3_BINS: tuple = (
    (-10_000, -8_000),
    (-8_000, -6_000),
    (-6_000, -4_000),
    (-4_000, -2_000),
    (-2_000, -1_022),
    (-1_022, -500),
    (-500, -100),
    (-100, -10),
    (-10, 1),  # the paper labels this [-10, 0]; scales are integers
)


def bin_label(bin_range: tuple) -> str:
    lo, hi = bin_range
    if hi == 1:
        # Scales are integers, so [lo, 1) == [lo, 0] — the paper's label.
        return f"[{lo}, 0]"
    return f"[{lo}, {hi})"


def binary64_skipped(fmt: str, bin_range: tuple) -> bool:
    """Figure 3's presentation rule: binary64 is not measured in bins
    entirely left of its normal range ('Binary64 is not shown in ranges
    to the left of 2**-1022').  Shared by the serial sweep driver and
    the parallel runner so the two can never disagree on which cells
    exist."""
    return fmt == "binary64" and bin_range[1] <= -1_022


@dataclass(frozen=True)
class OperandPair:
    """One sampled operation with its exact result."""

    op: str  # "add" | "mul"
    x: Real
    y: Real
    exact: Real

    @property
    def result_scale(self) -> int:
        return self.exact.scale


def _random_mantissa(rng: random.Random, bits: int) -> int:
    """A random odd mantissa with exactly ``bits`` significant bits."""
    return (1 << (bits - 1)) | rng.getrandbits(bits - 1) | 1


def _real_with_scale(rng: random.Random, scale: int, mant_bits: int) -> Real:
    m = _random_mantissa(rng, mant_bits)
    return Real(0, m, scale - mant_bits + 1)


def generate_add_pairs(bin_range: tuple, count: int, seed: int = 0,
                       mant_bits: int = 80,
                       max_operand_gap: int = 64,
                       rng_seed: Optional[int] = None) -> Iterator[OperandPair]:
    """Addition pairs whose exact sum's scale falls in ``bin_range``.

    The two operands are separated by 0..``max_operand_gap`` binades so
    the sweep exercises both balanced additions and alignments where one
    operand dominates — the regimes that stress LSE and posit rounding
    differently.

    ``rng_seed``, when given, seeds the stream directly; the default is
    :func:`stable_chunk_seed` (op, bin, seed), which is identical in
    every process and interpreter session — the builtin ``hash`` the
    seed code used here is salted per process, which made serial sweep
    results irreproducible across runs.
    """
    if rng_seed is None:
        rng_seed = stable_chunk_seed("add", bin_range, seed)
    lo, hi = bin_range
    rng = random.Random(rng_seed)
    produced = 0
    while produced < count:
        target = rng.randrange(lo, hi)
        gap = rng.randrange(0, max_operand_gap + 1)
        # x at target-1, y at target-1-gap: sum's scale is target-1 or
        # target; retry cheaply if it misses the bin.
        x = _real_with_scale(rng, target - 1, mant_bits)
        y = _real_with_scale(rng, target - 1 - gap, mant_bits)
        exact = x.add(y)
        if lo <= exact.scale < hi:
            yield OperandPair("add", x, y, exact)
            produced += 1


def generate_mul_pairs(bin_range: tuple, count: int, seed: int = 0,
                       mant_bits: int = 80,
                       max_factor_scale: int = 200,
                       rng_seed: Optional[int] = None) -> Iterator[OperandPair]:
    """Multiplication pairs whose exact product's scale falls in
    ``bin_range``.

    One factor is kept within ``max_factor_scale`` binades of 1 (a
    transition/emission probability, in HMM terms); the other carries the
    remaining magnitude (the running state probability).  Both operands
    are probabilities — scale <= 0 — matching the paper's workloads; a
    factor above 1.0 would let log-space cancel digits it never cancels
    in the real applications.
    """
    if rng_seed is None:
        rng_seed = stable_chunk_seed("mul", bin_range, seed)
    lo, hi = bin_range
    rng = random.Random(rng_seed)
    produced = 0
    while produced < count:
        target = rng.randrange(lo, hi)
        # sy in [max(target, -max_factor_scale), -1] keeps sx <= 0.
        sy_min = max(target + 1, -max_factor_scale)
        sy = rng.randrange(sy_min, 0) if sy_min < 0 else -1
        sx = target - sy
        x = _real_with_scale(rng, min(sx, 0), mant_bits)
        y = _real_with_scale(rng, sy, mant_bits)
        exact = x.mul(y)
        if lo <= exact.scale < hi:
            yield OperandPair("mul", x, y, exact)
            produced += 1


def generate_sweep(op: str, bins: Sequence[tuple] = FIG3_BINS,
                   per_bin: int = 100, seed: int = 0) -> dict:
    """Full sweep: ``{bin_range: [OperandPair, ...]}`` for one op."""
    gen = generate_add_pairs if op == "add" else generate_mul_pairs
    return {b: list(gen(b, per_bin, seed)) for b in bins}


# ----------------------------------------------------------------------
# Chunked generation (the unit of work of the parallel sweep runner)
# ----------------------------------------------------------------------
def stable_chunk_seed(op: str, bin_range: tuple, seed: int,
                      chunk_index: int = 0) -> int:
    """A deterministic, process-independent RNG seed for one chunk.

    Unlike Python's built-in ``hash`` (salted per process), this survives
    crossing a process boundary, so a worker regenerates exactly the
    pairs the parent planned.
    """
    key = f"{op}:{bin_range[0]}:{bin_range[1]}:{seed}:{chunk_index}"
    digest = hashlib.blake2b(key.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


@dataclass(frozen=True)
class SweepChunk:
    """One self-contained unit of sweep work: ``count`` pairs of ``op``
    in ``bin_range``, generated from an explicit ``rng_seed``."""

    op: str  # "add" | "mul"
    bin_range: tuple
    count: int
    rng_seed: int
    chunk_index: int = 0

    def generate(self) -> List[OperandPair]:
        gen = generate_add_pairs if self.op == "add" else generate_mul_pairs
        return list(gen(self.bin_range, self.count, rng_seed=self.rng_seed))


def plan_chunks(op: str, bins: Sequence[tuple] = FIG3_BINS,
                per_bin: int = 100, seed: int = 0,
                chunk_size: int = 250) -> List[SweepChunk]:
    """Partition a sweep into deterministic chunks.

    Each (bin, chunk-index) pair gets an independent seeded stream, so
    the plan is reproducible regardless of worker count or scheduling
    order, and scaling ``per_bin`` up only *appends* chunks.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    chunks = []
    for bin_range in bins:
        remaining, index = per_bin, 0
        while remaining > 0:
            count = min(chunk_size, remaining)
            chunks.append(SweepChunk(
                op, bin_range, count,
                stable_chunk_seed(op, bin_range, seed, index), index))
            remaining -= count
            index += 1
    return chunks


def generate_sweep_chunked(op: str, bins: Sequence[tuple] = FIG3_BINS,
                           per_bin: int = 100, seed: int = 0,
                           chunk_size: int = 250) -> dict:
    """Like :func:`generate_sweep` but via the chunk plan: the exact
    pair streams the parallel runner produces, merged in chunk order."""
    result: dict = {b: [] for b in bins}
    for chunk in plan_chunks(op, bins, per_bin, seed, chunk_size):
        result[chunk.bin_range].extend(chunk.generate())
    return result


def probability_pairs_from_trace(trace: Sequence, op: str) -> Iterator[OperandPair]:
    """Adapt an application operand trace (see ``repro.apps.hmm``'s
    ``trace_operands``) into sweep pairs — the paper's 'operands collected
    from a real phylogenetics application' source."""
    for item in trace:
        t_op, x, y = item
        if t_op != op:
            continue
        exact = x.add(y) if op == "add" else x.mul(y)
        if exact.is_zero():
            continue
        yield OperandPair(op, x, y, exact)
