"""Table I: dynamic range and precision of the compared formats."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..formats.ieee import BINARY64
from ..formats.posit import PositEnv

#: The ES values Table I lists for 64-bit posits.
TABLE1_ES_VALUES = (6, 9, 12, 15, 18, 21)


@dataclass(frozen=True)
class RangeRow:
    """One row of Table I."""

    format: str
    useed_log2: int  # log2(useed); None rendered as '-' for binary64
    smallest_scale: int  # base-2 exponent of smallest positive value
    max_fraction_bits: int

    def render(self) -> dict:
        useed = "-" if self.useed_log2 == 0 else f"2^{self.useed_log2}"
        return {
            "Format": self.format,
            "useed": useed,
            "Smallest Positive": f"2^{self.smallest_scale}",
            "Max Fraction Bits": self.max_fraction_bits,
        }


def binary64_row() -> RangeRow:
    return RangeRow("binary64", 0, BINARY64.smallest_positive_scale(),
                    BINARY64.frac_bits)


def posit_row(es: int, nbits: int = 64) -> RangeRow:
    env = PositEnv(nbits, es)
    return RangeRow(env.name, env.useed_log2, env.min_scale,
                    env.max_fraction_bits())


def table1_rows(nbits: int = 64) -> List[RangeRow]:
    """All of Table I, computed from the format implementations (not
    hard-coded — the tests compare these against the paper's numbers)."""
    rows = [binary64_row()]
    rows.extend(posit_row(es, nbits) for es in TABLE1_ES_VALUES)
    return rows
