"""Box-plot statistics and the Figure 3 sweep driver.

Figure 3 shows, per result-exponent bin and per format, the 5/25/50/75/95
percentiles of log10(relative error).  :func:`run_op_sweep` produces that
table; :class:`BoxStats` holds one box."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from ..arith.backend import Backend
from .accuracy import measure_pairs
from .sweep import (
    FIG3_BINS,
    bin_label,
    binary64_skipped,
    generate_sweep,
)
from ..engine.plan import ExecPlan, resolve_plan


@dataclass
class BoxStats:
    """Percentiles of log10 relative error for one (format, bin) cell."""

    format: str
    bin_range: tuple
    count: int
    underflow: int
    overflow: int
    p5: Optional[float] = None
    p25: Optional[float] = None
    median: Optional[float] = None
    p75: Optional[float] = None
    p95: Optional[float] = None

    @classmethod
    def from_errors(cls, fmt: str, bin_range: tuple,
                    errors: Sequence[float], underflow: int = 0,
                    overflow: int = 0) -> "BoxStats":
        stats = cls(fmt, bin_range, len(errors), underflow, overflow)
        if errors:
            arr = np.asarray(errors, dtype=float)
            stats.p5, stats.p25, stats.median, stats.p75, stats.p95 = (
                float(np.percentile(arr, q)) for q in (5, 25, 50, 75, 95))
        return stats

    @property
    def label(self) -> str:
        return bin_label(self.bin_range)

    def row(self) -> dict:
        return {
            "format": self.format,
            "bin": self.label,
            "n": self.count,
            "underflow": self.underflow,
            "overflow": self.overflow,
            "p5": self.p5,
            "p25": self.p25,
            "median": self.median,
            "p75": self.p75,
            "p95": self.p95,
        }


@dataclass
class SweepResult:
    """All boxes for one operation (one panel of Figure 3)."""

    op: str
    boxes: Dict[tuple, Dict[str, BoxStats]] = field(default_factory=dict)

    def box(self, bin_range: tuple, fmt: str) -> BoxStats:
        return self.boxes[bin_range][fmt]

    def formats(self) -> list:
        first = next(iter(self.boxes.values()))
        return list(first)

    def rows(self) -> list:
        out = []
        for bin_range in self.boxes:
            for fmt in self.boxes[bin_range]:
                out.append(self.boxes[bin_range][fmt].row())
        return out


def run_op_sweep(op: str, backends: Dict[str, Backend],
                 per_bin: int = 100, bins: Sequence[tuple] = FIG3_BINS,
                 seed: int = 0,
                 pairs_by_bin: Optional[dict] = None,
                 plan: Optional[ExecPlan] = None) -> SweepResult:
    """Measure every backend on stratified operand pairs.

    binary64 is skipped (not measured) in bins entirely left of its
    normal range, matching the paper's Figure 3 ('Binary64 is not shown
    in ranges to the left of 2**-1022').

    Execution follows the :class:`~repro.engine.plan.ExecPlan`: the
    canonical path measures through the array backends of
    :mod:`repro.engine` (bit-identical results; scalar fallback per
    format), and ``plan=ExecPlan.serial()`` forces the scalar per-pair
    loop.  ``plan.n_workers`` fans bins out across worker processes via
    the chunked parallel runner (chunk granularity ``plan.chunk_size``).
    Serial and chunked pair streams share chunk-0 seeds, so results
    coincide while ``per_bin`` fits one chunk (250); beyond that the
    chunked plan reseeds per chunk — use ``plan.n_workers=0`` for the
    like-for-like reference at larger scales.
    """
    plan = resolve_plan(plan, where="run_op_sweep")
    if plan.n_workers is not None:
        if pairs_by_bin is not None:
            raise ValueError(
                "a worker-parallel plan regenerates pairs from the chunked "
                "plan and cannot measure caller-supplied pairs_by_bin; "
                "pass one or the other")
        from ..engine.runner import run_sweep_parallel
        return run_sweep_parallel(op, backends, per_bin=per_bin, bins=bins,
                                  seed=seed, n_workers=plan.n_workers,
                                  chunk_size=plan.chunk_size,
                                  batch=plan.batch)
    if pairs_by_bin is None:
        pairs_by_bin = generate_sweep(op, bins=bins, per_bin=per_bin, seed=seed)
    result = SweepResult(op)
    for bin_range, pairs in pairs_by_bin.items():
        cell: Dict[str, BoxStats] = {}
        for fmt, backend in backends.items():
            if binary64_skipped(fmt, bin_range):
                continue
            cell[fmt] = _measure_cell(backend, fmt, op, bin_range, pairs,
                                      plan.batch)
        result.boxes[bin_range] = cell
    return result


def _measure_cell(backend: Backend, fmt: str, op: str, bin_range: tuple,
                  pairs, batch: bool) -> BoxStats:
    """One (format, bin) box from a pair list, optionally batched."""
    errors, n_uf, n_of = measure_pairs(backend, op, pairs, batch=batch)
    return BoxStats.from_errors(fmt, bin_range, errors, n_uf, n_of)


def accuracy_ordering(result: SweepResult, bin_range: tuple) -> list:
    """Formats sorted most-accurate-first by median log10 error in a bin
    (used by tests asserting the paper's qualitative claims)."""
    cell = result.boxes[bin_range]
    measured = [(s.median, f) for f, s in cell.items() if s.median is not None]
    measured.sort()
    return [f for _, f in measured]
