"""Per-operation accuracy measurement (Section IV.A methodology).

Operands are exact dyadic rationals.  For each format we convert the
operands in, perform one operation, convert the result out, and score it
against the *exact* result (exact because sums and products of dyadic
rationals are dyadic — our oracle is even stronger than the paper's
256-bit MPFR).  The score is the relative error ``|x - y| / |x|``, and
results are reported as log10(relative error), matching Figure 3's axes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from .. import faults as _faults
from .. import telemetry as _tele
from ..arith.backend import Backend
from ..bigfloat import BigFloat, log10 as bf_log10, relative_error
from ..formats.real import Real

#: Sentinel categories for results that have no finite relative error.
OK = "ok"
UNDERFLOW = "underflow"  # computed exactly zero for a nonzero truth
OVERFLOW = "overflow"  # computed inf / NaR
ERROR_FLOOR = -400.0  # stand-in log10 error for exact results


@dataclass(frozen=True)
class OpResult:
    """Outcome of one measured operation in one format."""

    format: str
    status: str
    log10_error: Optional[float]  # None unless status == OK

    @property
    def ok(self) -> bool:
        return self.status == OK


def measure_op(backend: Backend, op: str, x: Real, y: Real,
               exact: Optional[Real] = None, prec: int = 256) -> OpResult:
    """Run ``x op y`` through ``backend`` and score it.

    ``op`` is ``"add"`` or ``"mul"``.  ``exact`` may be supplied when the
    caller already computed the exact result (the sweep does, to bin by
    result exponent).
    """
    if exact is None:
        exact = x.add(y) if op == "add" else x.mul(y)
    if exact.is_zero():
        raise ValueError("exact result is zero; relative error undefined")
    a = backend.from_bigfloat(x.to_bigfloat())
    b = backend.from_bigfloat(y.to_bigfloat())
    if op == "add":
        computed = backend.add(a, b)
    elif op == "mul":
        computed = backend.mul(a, b)
    else:
        raise ValueError(f"unknown op {op!r}")
    return score_value(backend, computed, exact.to_bigfloat(), prec)


def measure_ops_batch(batch_backend, op: str, pairs: Sequence,
                      prec: int = 256) -> List[OpResult]:
    """Batched counterpart of :func:`measure_op` over a list of
    :class:`~repro.core.sweep.OperandPair`.

    Operands are converted in with the scalar backend (the conversion is
    part of the methodology, not the measured op), the operation itself
    runs once over the whole array through a
    :class:`repro.engine.BatchBackend`, and each result is scored with
    the scalar oracle machinery.  Per-element results are bit-identical
    to the scalar path (see :mod:`repro.engine.batch`).
    """
    if op not in ("add", "mul"):
        raise ValueError(f"unknown op {op!r}")
    if not pairs:
        return []
    xs = batch_backend.from_bigfloats([p.x.to_bigfloat() for p in pairs])
    ys = batch_backend.from_bigfloats([p.y.to_bigfloat() for p in pairs])
    computed = (batch_backend.add(xs, ys) if op == "add"
                else batch_backend.mul(xs, ys))
    scalar = batch_backend.scalar
    return [score_value(scalar, batch_backend.item(computed, i),
                        pair.exact.to_bigfloat(), prec)
            for i, pair in enumerate(pairs)]


def measure_pairs(backend: Backend, op: str, pairs: Sequence,
                  batch: bool = True) -> tuple:
    """Measure one backend over a pair list; returns the box tally
    ``(errors, underflow_count, overflow_count)`` that feeds a Figure 3
    cell.

    ``batch=True`` routes the measured op through the format's array
    backend from :mod:`repro.engine` when one exists (identical
    results); the serial path never touches the engine layer.  A batch
    tier that raises at runtime — or is already quarantined by the
    degradation ladder — falls back to the scalar loop
    (:mod:`repro.faults.degrade`; the tallies are identical either
    way, only the speed changes).
    """
    bb = None
    if batch and not _faults.quarantined("batch"):
        from ..engine import batch_backend_for
        bb = batch_backend_for(backend)
    if bb is not None:
        if _tele.current() is not None:
            _tele.count(f"sweep.{op}.{backend.name}.batch", len(pairs))
        try:
            _faults.fire("batch.measure")
            results = measure_ops_batch(bb, op, pairs)
        except Exception as exc:
            _faults.degrade("batch", exc)
            bb = None
    if bb is None:
        if _tele.current() is not None:
            _tele.count(f"sweep.{op}.{backend.name}.scalar", len(pairs))
        results = [measure_op(backend, op, p.x, p.y, exact=p.exact)
                   for p in pairs]
    errors, n_uf, n_of = [], 0, 0
    for res in results:
        if res.status == OK:
            errors.append(res.log10_error)
        elif res.status == UNDERFLOW:
            n_uf += 1
        else:
            n_of += 1
    return errors, n_uf, n_of


def score_value(backend: Backend, computed, exact: BigFloat,
                prec: int = 256) -> OpResult:
    """Score an already-computed backend value against an exact truth."""
    if backend.is_zero(computed):
        if exact.is_zero():
            return OpResult(backend.name, OK, ERROR_FLOOR)
        return OpResult(backend.name, UNDERFLOW, None)
    try:
        got = backend.to_bigfloat(computed)
    except ValueError:
        return OpResult(backend.name, OVERFLOW, None)
    err = relative_error(exact, got, prec)
    if err.is_zero():
        return OpResult(backend.name, OK, ERROR_FLOOR)
    return OpResult(backend.name, OK, bf_log10(err, 64).to_float())


def score_log10(backend: Backend, computed, exact: BigFloat,
                huge: float = 400.0) -> float:
    """Like :func:`score_value` but collapse failures onto a single
    numeric scale: underflow/overflow map to ``+huge`` so CDFs can still
    be drawn over all results (used for Figs. 9-11, where the paper notes
    'extreme cases with relative error >= 1 are not included' for the
    box plot but counted separately)."""
    res = score_value(backend, computed, exact)
    if res.ok:
        return res.log10_error
    return huge


def ulp_relative_error(fraction_bits: int) -> float:
    """Model relative error bound for round-to-nearest with the given
    number of fraction bits: 2**-(fraction_bits + 1).  Used to sanity-
    check measured medians against format precision."""
    return math.ldexp(1.0, -(fraction_bits + 1))
