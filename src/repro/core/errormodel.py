"""Analytic error-accumulation model for the application studies.

The application-level relative error of an iterative probability
computation is, to first order, a random walk of per-operation rounding
errors: after ``n_ops`` operations each contributing rounding error of
at most ``u`` (half an ulp at the operating magnitude),

    expected relative error ~ u * sqrt(n_ops)

This model *predicts* the measured Figure 10/11 gaps between log-space
and posit from nothing but the bit budgets of Section III — closing the
loop between the paper's per-op analysis (Fig. 3) and its application
results.  The tests check the predictions against measured VICAR runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..formats.posit import PositEnv
from .bitbudget import logspace_effective_bits, posit_effective_bits


@dataclass(frozen=True)
class ErrorPrediction:
    """Predicted application-level accuracy for one format."""

    format: str
    per_op_log10: float  # log10 of the per-op rounding error bound
    n_ops: int

    @property
    def accumulated_log10(self) -> float:
        """Random-walk accumulation: + 0.5*log10(n_ops)."""
        return self.per_op_log10 + 0.5 * math.log10(max(1, self.n_ops))


def per_op_error_log10(bits: float) -> float:
    """log10 of half an ulp for the given fraction-bit budget."""
    return -(bits + 1) * math.log10(2)


def predict_logspace(final_scale: int, n_ops: int) -> ErrorPrediction:
    """Log-space prediction at the magnitude where the computation
    *ends* (the worst case: |ln x| is largest there, so the per-op error
    is largest; most of the accumulation happens near the end's scale in
    a linearly descending computation)."""
    bits = logspace_effective_bits(final_scale)
    return ErrorPrediction("log", per_op_error_log10(bits), n_ops)


def predict_posit(env: PositEnv, final_scale: int, n_ops: int) -> Optional[ErrorPrediction]:
    """Posit prediction at the final magnitude; None if out of range."""
    bits = posit_effective_bits(env, final_scale)
    if bits is None:
        return None
    return ErrorPrediction(env.name, per_op_error_log10(bits), n_ops)


def predicted_gap_log_vs_posit(env: PositEnv, final_scale: int) -> Optional[float]:
    """Decades of accuracy separating posit from log at a magnitude —
    n_ops cancels, so the gap is purely a bit-budget statement:

        gap = (posit_bits - log_bits) * log10(2)
    """
    posit_bits = posit_effective_bits(env, final_scale)
    if posit_bits is None:
        return None
    log_bits = logspace_effective_bits(final_scale)
    return (posit_bits - log_bits) * math.log10(2)


def forward_op_count(h: int, t: int) -> int:
    """Arithmetic ops on the alpha path in one forward run: per outer
    iteration, H*(H muls + H-1 adds) + H emission muls."""
    return t * (h * (2 * h))


def pbd_op_count(n: int, k: int) -> int:
    """Ops on the PMF path of Listing 2: ~3 per (n, k) cell."""
    return 3 * n * k
