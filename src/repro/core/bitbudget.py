"""The paper's bit-budget argument (Sections II.C and III), quantified.

For a value of magnitude ``2**s`` each representation spends its 64 bits
differently:

* **binary64** always offers 52 fraction bits inside the normal range,
  decaying linearly through the subnormals, then nothing.
* **posit(64,ES)** offers ``64 - 1 - regime_len(s) - ES`` fraction bits —
  tapered with ``|s|``.
* **log-space** stores ``ln(2**s) = s ln 2`` in binary64; the *absolute*
  error of that stored log is half an ulp of ``s ln 2``, and an absolute
  log error ``d`` is a relative value error ``e**d - 1 ~ d``.  The
  *effective* fraction bits are therefore ``52 - log2(|s ln 2|)`` — they
  shrink as values shrink, even well inside binary64's range.  This is
  the quantitative form of the paper's "the fraction bits encode both
  the fraction and the exponent" argument.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional

from ..formats.ieee import BINARY64
from ..formats.posit import PositEnv


def binary64_effective_bits(scale: int) -> Optional[float]:
    """Fraction bits binary64 offers at magnitude 2**scale (None once
    underflowed)."""
    if scale >= BINARY64.emin:
        if scale > BINARY64.emax:
            return None
        return float(BINARY64.frac_bits)
    bits = BINARY64.frac_bits + (scale - BINARY64.emin)
    return float(bits) if bits >= 0 else None


def posit_effective_bits(env: PositEnv, scale: int) -> Optional[float]:
    """Fraction bits the posit offers at magnitude 2**scale."""
    if not env.min_scale <= scale <= env.max_scale:
        return None
    return float(env.fraction_bits_at_scale(scale))


def logspace_effective_bits(scale: int) -> Optional[float]:
    """Effective fraction bits of log-space storage at magnitude 2**scale.

    The stored value is ``lx = s ln 2``; its representation error is
    ``ulp(lx)/2 = 2**(floor(log2 |lx|) - 53)`` absolute, which equals the
    relative error of the decoded value.  Solving ``2**-(b+1)`` for b
    gives the effective bit count.
    """
    if scale == 0:
        return 52.0  # lx = 0 stored exactly; precision limited elsewhere
    lx = abs(scale) * math.log(2)
    return 52.0 - math.floor(math.log2(lx))


def budget_curves(scales: Iterable[int],
                  posit_envs: Optional[Dict[str, PositEnv]] = None) -> Dict[str, list]:
    """Effective-precision curves for plotting/inspection: one list of
    (scale, bits-or-None) per format."""
    if posit_envs is None:
        posit_envs = {f"posit(64,{es})": PositEnv(64, es) for es in (9, 12, 18)}
    scales = list(scales)
    curves: Dict[str, list] = {
        "binary64": [(s, binary64_effective_bits(s)) for s in scales],
        "log": [(s, logspace_effective_bits(s)) for s in scales],
    }
    for name, env in posit_envs.items():
        curves[name] = [(s, posit_effective_bits(env, s)) for s in scales]
    return curves


def predicted_log10_error(bits: Optional[float]) -> Optional[float]:
    """Median log10 relative error predicted from a bit budget: half an
    ulp, i.e. ``-(bits + 1) * log10(2)``."""
    if bits is None:
        return None
    return -(bits + 1) * math.log10(2)
