"""The paper's primary contribution: quantitative accuracy/cost trade-off
analysis across binary64, log-space and posit representations."""

from .accuracy import (
    ERROR_FLOOR,
    OK,
    OVERFLOW,
    UNDERFLOW,
    OpResult,
    measure_op,
    measure_ops_batch,
    measure_pairs,
    score_log10,
    score_value,
    ulp_relative_error,
)
from .analysis import BoxStats, SweepResult, accuracy_ordering, run_op_sweep
from .bitbudget import (
    binary64_effective_bits,
    budget_curves,
    logspace_effective_bits,
    posit_effective_bits,
    predicted_log10_error,
)
from .errormodel import (
    ErrorPrediction,
    forward_op_count,
    pbd_op_count,
    per_op_error_log10,
    predict_logspace,
    predict_posit,
    predicted_gap_log_vs_posit,
)
from .rangetable import RangeRow, TABLE1_ES_VALUES, binary64_row, posit_row, table1_rows
from .sweep import (
    FIG3_BINS,
    OperandPair,
    SweepChunk,
    bin_label,
    generate_add_pairs,
    generate_mul_pairs,
    generate_sweep,
    generate_sweep_chunked,
    plan_chunks,
    probability_pairs_from_trace,
    stable_chunk_seed,
)

__all__ = [
    "OpResult", "measure_op", "measure_ops_batch", "measure_pairs",
    "score_value", "score_log10",
    "ulp_relative_error", "OK", "UNDERFLOW", "OVERFLOW", "ERROR_FLOOR",
    "BoxStats", "SweepResult", "run_op_sweep", "accuracy_ordering",
    "SweepChunk", "plan_chunks", "generate_sweep_chunked",
    "stable_chunk_seed",
    "binary64_effective_bits", "logspace_effective_bits",
    "posit_effective_bits", "budget_curves", "predicted_log10_error",
    "RangeRow", "TABLE1_ES_VALUES", "binary64_row", "posit_row", "table1_rows",
    "FIG3_BINS", "OperandPair", "bin_label", "generate_add_pairs",
    "generate_mul_pairs", "generate_sweep", "probability_pairs_from_trace",
    "ErrorPrediction", "predict_logspace", "predict_posit",
    "predicted_gap_log_vs_posit", "per_op_error_log10",
    "forward_op_count", "pbd_op_count",
]
