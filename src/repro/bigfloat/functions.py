"""Correctly-rounded-ish transcendental functions for :class:`BigFloat`.

The paper's accuracy methodology converts operands into and out of
log-space with MPFR and measures relative errors through ``log``/``exp``.
These are the functions that make that methodology work without MPFR.

Implementation strategy: every function reduces its argument and then
evaluates a rapidly converging series in *integer fixed point* — values
are plain Python ints scaled by ``2**work_bits`` — which is both exact to
the last working bit and much faster than looping over BigFloat objects.
Results carry ``GUARD`` extra bits through the kernel and are rounded to
the requested precision once at the end, so final results are accurate to
well under 1 ulp (tests check <= 2 ulp against independent oracles and
identities).
"""

from __future__ import annotations

from typing import Optional

from .number import DEFAULT_PRECISION, BigFloat

GUARD = 32

_LN2_CACHE: dict[int, int] = {}
_LN10_CACHE: dict[int, int] = {}


# ----------------------------------------------------------------------
# Fixed-point kernels.  X encodes the real number X / 2**fbits.
# ----------------------------------------------------------------------
def _atanh_fixed(z: int, fbits: int) -> int:
    """atanh(z / 2**fbits) in fixed point, for 0 <= z/2**fbits < 1/2."""
    if z == 0:
        return 0
    w = (z * z) >> fbits
    term = z
    total = 0
    n = 1
    while term:
        total += term // n
        term = (term * w) >> fbits
        n += 2
    return total


def _exp_fixed(x: int, fbits: int) -> int:
    """exp(x / 2**fbits) in fixed point, for |x / 2**fbits| <= 0.5."""
    one = 1 << fbits
    term = one
    total = one
    n = 1
    while term:
        term = (term * x) >> fbits
        term = term // n if term >= 0 else -((-term) // n)
        total += term
        n += 1
    return total


def _ln2_fixed(fbits: int) -> int:
    """ln(2) in fixed point: ln 2 = 2 * atanh(1/3)."""
    cached = _LN2_CACHE.get(fbits)
    if cached is None:
        # atanh's argument 1/3 is not exactly representable in binary;
        # evaluate with extra internal bits and shift down.
        extra = 16
        t = (1 << (fbits + extra)) // 3
        cached = (2 * _atanh_fixed(t, fbits + extra)) >> extra
        _LN2_CACHE[fbits] = cached
    return cached


def _ln10_fixed(fbits: int) -> int:
    """ln(10) in fixed point: ln 10 = 3 ln 2 + 2 atanh(1/9)."""
    cached = _LN10_CACHE.get(fbits)
    if cached is None:
        extra = 16
        t = (1 << (fbits + extra)) // 9
        # 10 = 8 * (10/8); ln(10/8) = 2 atanh((10/8-1)/(10/8+1)) = 2 atanh(1/9)
        cached = 3 * _ln2_fixed(fbits) + ((2 * _atanh_fixed(t, fbits + extra)) >> extra)
        _LN10_CACHE[fbits] = cached
    return cached


def _ln_mantissa_fixed(m: int, fbits: int) -> int:
    """ln(m / 2**fbits) for m in [2**fbits, 2**(fbits+1)), i.e. m in [1, 2).

    Uses ln(m) = 2 atanh((m - 1) / (m + 1)); the argument lies in [0, 1/3).
    """
    num = m - (1 << fbits)
    if num == 0:
        return 0
    den = m + (1 << fbits)
    z = (num << fbits) // den
    return 2 * _atanh_fixed(z, fbits)


# ----------------------------------------------------------------------
# Public functions
# ----------------------------------------------------------------------
def log(x: BigFloat, prec: int = DEFAULT_PRECISION) -> BigFloat:
    """Natural logarithm.  ``x`` must be strictly positive.

    Handles arbitrarily extreme magnitudes (e.g. ``2**-2_900_000``), which
    is the whole point of the oracle in this paper.
    """
    if x.is_zero() or x.sign == 1:
        raise ValueError("log requires a strictly positive argument")
    fbits = prec + GUARD
    nbits = x.mantissa.bit_length()
    e = x.exponent + nbits - 1  # value = m * 2**e with m in [1, 2)
    # Fixed-point mantissa in [1, 2).
    shift = fbits - (nbits - 1)
    m_fixed = x.mantissa << shift if shift >= 0 else x.mantissa >> (-shift)
    ln_m = _ln_mantissa_fixed(m_fixed, fbits)
    total = ln_m + e * _ln2_fixed(fbits)
    return _from_fixed(total, fbits, prec)


def log2(x: BigFloat, prec: int = DEFAULT_PRECISION) -> BigFloat:
    """Base-2 logarithm via ln(x)/ln(2) computed in fixed point."""
    if x.is_zero() or x.sign == 1:
        raise ValueError("log2 requires a strictly positive argument")
    fbits = prec + GUARD
    nbits = x.mantissa.bit_length()
    e = x.exponent + nbits - 1
    shift = fbits - (nbits - 1)
    m_fixed = x.mantissa << shift if shift >= 0 else x.mantissa >> (-shift)
    ln_m = _ln_mantissa_fixed(m_fixed, fbits)
    frac = (ln_m << fbits) // _ln2_fixed(fbits)
    total = frac + (e << fbits)
    return _from_fixed(total, fbits, prec)


def log10(x: BigFloat, prec: int = DEFAULT_PRECISION) -> BigFloat:
    """Base-10 logarithm, used to report the paper's log10 error axes."""
    if x.is_zero() or x.sign == 1:
        raise ValueError("log10 requires a strictly positive argument")
    fbits = prec + GUARD
    nbits = x.mantissa.bit_length()
    e = x.exponent + nbits - 1
    shift = fbits - (nbits - 1)
    m_fixed = x.mantissa << shift if shift >= 0 else x.mantissa >> (-shift)
    total = _ln_mantissa_fixed(m_fixed, fbits) + e * _ln2_fixed(fbits)
    total = (total << fbits) // _ln10_fixed(fbits)
    return _from_fixed(total, fbits, prec)


def exp(x: BigFloat, prec: int = DEFAULT_PRECISION,
        max_scale: Optional[int] = None) -> BigFloat:
    """Exponential function with unbounded result range.

    ``max_scale`` optionally bounds the result's base-2 exponent as a
    sanity rail (the experiments never need exp of anything that would
    produce more than a few million exponent bits).
    """
    if x.is_zero():
        return BigFloat.from_int(1)
    fbits = prec + GUARD
    x_fixed = _to_fixed(x, fbits)
    ln2 = _ln2_fixed(fbits)
    # Reduce: x = k*ln2 + r with |r| <= ln2/2.
    k = (x_fixed + (ln2 >> 1)) // ln2 if x_fixed >= 0 else -((-x_fixed + (ln2 >> 1)) // ln2)
    r = x_fixed - k * ln2
    if max_scale is not None and k > max_scale:
        raise OverflowError(f"exp result scale {k} exceeds max_scale {max_scale}")
    e_r = _exp_fixed(r, fbits)
    return _from_fixed(e_r, fbits, prec).mul_pow2(k)


def expm1(x: BigFloat, prec: int = DEFAULT_PRECISION) -> BigFloat:
    """``exp(x) - 1`` without cancellation for tiny ``x``.

    Needed to measure relative errors of log-space results: the relative
    error of ``exp(ly)`` against truth ``t`` is ``|expm1(ly - ln t)|``.
    """
    if x.is_zero():
        return BigFloat.zero()
    if x.scale < -2:
        # Small argument: direct series exp(x) - 1 = x + x^2/2! + ...
        fbits = prec + GUARD
        # Keep absolute scale so tiny x keeps full *relative* precision.
        sbits = fbits - x.scale  # x_fixed has ~fbits significant bits
        x_fixed = _to_fixed(x, sbits)
        term = x_fixed
        total = 0
        n = 2
        while term:
            total += term
            term = (term * x_fixed) >> sbits
            term = term // n if term >= 0 else -((-term) // n)
            n += 1
        return _from_fixed(total, sbits, prec)
    return exp(x, prec + 8).sub(BigFloat.from_int(1), prec)


def log1p(x: BigFloat, prec: int = DEFAULT_PRECISION) -> BigFloat:
    """``log(1 + x)`` without cancellation for tiny ``x`` (x > -1)."""
    if x.is_zero():
        return BigFloat.zero()
    if not x.is_negative() or x.scale >= -1:
        one_plus = BigFloat.from_int(1).add(x, prec + 8)
        if one_plus.is_zero() or one_plus.is_negative():
            raise ValueError("log1p requires x > -1")
        if x.scale >= -2:
            return log(one_plus, prec)
    if x.scale < -2:
        # ln(1+x) = 2 atanh(x / (2 + x)); argument magnitude ~ x/2.
        fbits = prec + GUARD
        sbits = fbits - x.scale
        x_fixed = _to_fixed(x, sbits)
        den = (2 << sbits) + x_fixed
        z = (x_fixed << sbits) // den
        total = 2 * _atanh_fixed(abs(z), sbits)
        if z < 0:
            total = -total
        return _from_fixed(total, sbits, prec)
    return log(BigFloat.from_int(1).add(x, prec + 8), prec)


def pow_int(x: BigFloat, n: int, prec: int = DEFAULT_PRECISION) -> BigFloat:
    """``x**n`` for integer ``n`` by square-and-multiply, rounding each
    step at ``prec + GUARD`` bits and the final result at ``prec``."""
    if n == 0:
        return BigFloat.from_int(1)
    if n < 0:
        return BigFloat.from_int(1).div(pow_int(x, -n, prec + 8), prec)
    work = prec + GUARD
    result = BigFloat.from_int(1)
    base = x.round(work)
    e = n
    while e:
        if e & 1:
            result = result.mul(base, work)
        e >>= 1
        if e:
            base = base.mul(base, work)
    return result.round(prec)


def ln2(prec: int = DEFAULT_PRECISION) -> BigFloat:
    """The constant ln(2)."""
    fbits = prec + GUARD
    return _from_fixed(_ln2_fixed(fbits), fbits, prec)


def ln10(prec: int = DEFAULT_PRECISION) -> BigFloat:
    """The constant ln(10)."""
    fbits = prec + GUARD
    return _from_fixed(_ln10_fixed(fbits), fbits, prec)


# ----------------------------------------------------------------------
# Fixed-point <-> BigFloat plumbing
# ----------------------------------------------------------------------
def _to_fixed(x: BigFloat, fbits: int) -> int:
    """Exact-when-possible conversion to fixed point with ``fbits``
    fractional bits; rounds toward zero past the working precision."""
    shift = x.exponent + fbits
    mag = x.mantissa << shift if shift >= 0 else x.mantissa >> (-shift)
    return -mag if x.sign else mag


def _from_fixed(value: int, fbits: int, prec: int) -> BigFloat:
    sign = 1 if value < 0 else 0
    return BigFloat(sign, abs(value), -fbits).round(prec)


def relative_error(reference: BigFloat, computed: BigFloat,
                   prec: int = DEFAULT_PRECISION) -> BigFloat:
    """``|computed - reference| / |reference|`` as used throughout the
    paper's accuracy evaluation (Section IV.A)."""
    if reference.is_zero():
        raise ValueError("relative error undefined for zero reference")
    return computed.sub(reference, prec).abs().div(reference.abs(), prec)


def log10_relative_error(reference: BigFloat, computed: BigFloat,
                         prec: int = DEFAULT_PRECISION,
                         floor: float = -400.0) -> float:
    """``log10`` of the relative error, the y axis of Figs. 3 and 9-11.

    Exact results get ``floor`` (a stand-in for -inf that keeps plots and
    percentile math finite).
    """
    err = relative_error(reference, computed, prec)
    if err.is_zero():
        return floor
    value = log10(err, 64).to_float()
    return max(value, floor)
