"""Integer-level rounding primitives shared by all number formats.

Every format in this library (BigFloat, IEEE softfloat, posit) ultimately
rounds an exact value of the form ``mantissa * 2**exponent`` down to a
fixed number of significand bits.  The helpers here perform that rounding
on plain Python integers so the higher layers never re-implement
round-to-nearest-even logic.
"""

from __future__ import annotations

# Rounding mode identifiers.  Only RNE is required by the paper (MPFR's
# default and the posit standard's mode), but the others make the
# substrate reusable and are exercised by tests.
RNE = "nearest-even"  # round to nearest, ties to even
RTZ = "toward-zero"
RTP = "toward-positive"
RTN = "toward-negative"
RNA = "nearest-away"  # round to nearest, ties away from zero

_MODES = (RNE, RTZ, RTP, RTN, RNA)


def shift_right_round(mantissa: int, shift: int, sign: int = 0, mode: str = RNE) -> int:
    """Shift ``mantissa`` right by ``shift`` bits, rounding the result.

    ``mantissa`` must be non-negative; ``sign`` (0 positive, 1 negative)
    only matters for the directed modes.  Returns the rounded magnitude.
    A negative ``shift`` shifts left exactly.
    """
    if mantissa < 0:
        raise ValueError("mantissa must be non-negative")
    if mode not in _MODES:
        raise ValueError(f"unknown rounding mode: {mode!r}")
    if shift <= 0:
        return mantissa << (-shift)
    kept = mantissa >> shift
    dropped = mantissa & ((1 << shift) - 1)
    if dropped == 0:
        return kept
    if mode == RTZ:
        return kept
    if mode == RTP:
        return kept + (0 if sign else 1)
    if mode == RTN:
        return kept + (1 if sign else 0)
    half = 1 << (shift - 1)
    if dropped > half:
        return kept + 1
    if dropped < half:
        return kept
    # Exactly halfway.
    if mode == RNA:
        return kept + 1
    return kept + (kept & 1)  # RNE: round up only if kept is odd


def round_to_precision(mantissa: int, exponent: int, precision: int,
                       sign: int = 0, mode: str = RNE) -> tuple[int, int]:
    """Round the exact value ``mantissa * 2**exponent`` to ``precision``
    significand bits.

    Returns ``(mantissa', exponent')`` with ``mantissa'`` either zero or
    having exactly ``precision`` bits.  Rounding may carry out (e.g.
    ``0b1111`` at precision 3 becomes ``0b100`` with exponent bumped).
    """
    if precision < 1:
        raise ValueError("precision must be >= 1")
    if mantissa == 0:
        return 0, 0
    nbits = mantissa.bit_length()
    excess = nbits - precision
    if excess <= 0:
        # Normalize up so the mantissa always has exactly `precision` bits;
        # this keeps downstream comparisons trivial.
        return mantissa << (-excess), exponent + excess
    rounded = shift_right_round(mantissa, excess, sign=sign, mode=mode)
    exponent += excess
    if rounded.bit_length() > precision:  # carry out of the top bit
        rounded >>= 1
        exponent += 1
    return rounded, exponent


def sticky_compress(mantissa: int, max_bits: int) -> tuple[int, int]:
    """Compress ``mantissa`` to at most ``max_bits + 1`` bits, preserving
    round/sticky information.

    Returns ``(compressed, shift)`` where ``compressed`` equals
    ``mantissa >> shift`` with its least significant bit forced to 1 if
    any shifted-out bit was set.  This keeps alignment shifts bounded when
    adding numbers whose exponents differ by millions (routine for the
    probability magnitudes in this paper).
    """
    nbits = mantissa.bit_length()
    if nbits <= max_bits + 1:
        return mantissa, 0
    shift = nbits - (max_bits + 1)
    kept = mantissa >> shift
    if mantissa & ((1 << shift) - 1):
        kept |= 1
    return kept, shift
