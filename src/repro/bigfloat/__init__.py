"""Arbitrary-precision binary floating point — the repo's MPFR substitute.

The paper uses 256-bit GNU MPFR as its accuracy oracle; this subpackage
provides the same capability from scratch: a :class:`BigFloat` value type
with round-to-nearest-even arithmetic at caller-chosen precision, and the
``exp``/``log`` family needed to move values into and out of log-space and
to measure relative errors of results far outside binary64's range.
"""

from .number import DEFAULT_PRECISION, BigFloat
from .functions import (
    exp,
    expm1,
    ln2,
    ln10,
    log,
    log1p,
    log2,
    log10,
    log10_relative_error,
    pow_int,
    relative_error,
)
from .rounding import RNA, RNE, RTN, RTP, RTZ, round_to_precision, shift_right_round
from .format import decimal_exponent_estimate, log10_value, to_decimal_string

__all__ = [
    "BigFloat",
    "DEFAULT_PRECISION",
    "exp",
    "expm1",
    "ln2",
    "ln10",
    "log",
    "log1p",
    "log2",
    "log10",
    "log10_relative_error",
    "pow_int",
    "relative_error",
    "RNA",
    "RNE",
    "RTN",
    "RTP",
    "RTZ",
    "round_to_precision",
    "shift_right_round",
    "to_decimal_string",
    "decimal_exponent_estimate",
    "log10_value",
]
