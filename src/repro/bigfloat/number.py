"""Arbitrary-precision binary floating point (the repo's MPFR substitute).

A :class:`BigFloat` is an exact value ``(-1)**sign * mantissa * 2**exponent``
with an *unbounded* exponent and a mantissa that operations round to a
caller-chosen precision (default 256 bits, matching the paper's use of
256-bit MPFR as the accuracy oracle).  Unlike IEEE formats there are no
subnormals, infinities or NaN: the oracle must never silently lose range,
so out-of-range situations raise instead.

Values are immutable.  Arithmetic methods take an optional ``prec``
argument; module users normally rely on :data:`DEFAULT_PRECISION`.
"""

from __future__ import annotations

import math
from typing import Union

from .rounding import RNE, round_to_precision, sticky_compress

DEFAULT_PRECISION = 256

_NumberLike = Union["BigFloat", int, float]


class BigFloat:
    """An exact/roundable binary floating-point number.

    The internal invariant is ``mantissa >= 0`` and, for nonzero values,
    ``mantissa`` odd is *not* required — construction normalizes trailing
    zero bits away purely to keep representations canonical and cheap to
    compare.
    """

    __slots__ = ("sign", "mantissa", "exponent")

    def __init__(self, sign: int, mantissa: int, exponent: int):
        if mantissa < 0:
            raise ValueError("mantissa must be non-negative")
        if sign not in (0, 1):
            raise ValueError("sign must be 0 or 1")
        if mantissa == 0:
            sign, exponent = 0, 0
        else:
            # Canonicalize: strip trailing zeros so equality is structural.
            tz = (mantissa & -mantissa).bit_length() - 1
            if tz:
                mantissa >>= tz
                exponent += tz
        object.__setattr__(self, "sign", sign)
        object.__setattr__(self, "mantissa", mantissa)
        object.__setattr__(self, "exponent", exponent)

    def __setattr__(self, name, value):  # immutability
        raise AttributeError("BigFloat is immutable")

    def __reduce__(self):
        # The immutability guard breaks pickle's default slot-state
        # restore; reconstruct through __init__ instead (needed by the
        # multi-process experiment runners).
        return (type(self), (self.sign, self.mantissa, self.exponent))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls) -> "BigFloat":
        return cls(0, 0, 0)

    @classmethod
    def from_int(cls, value: int) -> "BigFloat":
        if value < 0:
            return cls(1, -value, 0)
        return cls(0, value, 0)

    @classmethod
    def from_float(cls, value: float) -> "BigFloat":
        """Exact conversion from a binary64 (every finite double is exact)."""
        if math.isnan(value) or math.isinf(value):
            raise ValueError("cannot convert NaN/Inf to BigFloat")
        if value == 0.0:
            return cls.zero()
        mant, exp = math.frexp(abs(value))
        mant_int = int(mant * (1 << 53))
        return cls(1 if value < 0 else 0, mant_int, exp - 53)

    @classmethod
    def from_ratio(cls, num: int, den: int, prec: int = DEFAULT_PRECISION) -> "BigFloat":
        """Correctly rounded ``num / den``."""
        if den == 0:
            raise ZeroDivisionError("from_ratio with zero denominator")
        sign = 0
        if num < 0:
            sign ^= 1
            num = -num
        if den < 0:
            sign ^= 1
            den = -den
        if num == 0:
            return cls.zero()
        # Produce prec + 2 quotient bits, then round with a sticky bit.
        shift = prec + 2 - (num.bit_length() - den.bit_length())
        if shift > 0:
            q, r = divmod(num << shift, den)
            exp = -shift
        else:
            q, r = divmod(num, den << (-shift))
            exp = -shift
        if r and q & 1 == 0:
            q |= 1  # sticky into the LSB
        m, e = round_to_precision(q, exp, prec, sign=sign)
        return cls(sign, m, e)

    @classmethod
    def exp2(cls, k: int) -> "BigFloat":
        """Exact ``2**k`` for integer ``k`` (any magnitude)."""
        return cls(0, 1, k)

    @staticmethod
    def coerce(value: _NumberLike) -> "BigFloat":
        if isinstance(value, BigFloat):
            return value
        if isinstance(value, bool):
            raise TypeError("refusing to coerce bool to BigFloat")
        if isinstance(value, int):
            return BigFloat.from_int(value)
        if isinstance(value, float):
            return BigFloat.from_float(value)
        raise TypeError(f"cannot coerce {type(value).__name__} to BigFloat")

    # ------------------------------------------------------------------
    # Predicates / accessors
    # ------------------------------------------------------------------
    def is_zero(self) -> bool:
        return self.mantissa == 0

    def is_negative(self) -> bool:
        return self.sign == 1 and self.mantissa != 0

    @property
    def scale(self) -> int:
        """Base-2 exponent of the value in scientific form, i.e. the ``E``
        in ``value = +/- 1.f * 2**E``.  This is the quantity plotted on the
        x axes of the paper's Figures 1, 3 and 9."""
        if self.mantissa == 0:
            raise ValueError("zero has no scale")
        return self.exponent + self.mantissa.bit_length() - 1

    # ------------------------------------------------------------------
    # Rounding / conversion
    # ------------------------------------------------------------------
    def round(self, prec: int, mode: str = RNE) -> "BigFloat":
        m, e = round_to_precision(self.mantissa, self.exponent, prec,
                                  sign=self.sign, mode=mode)
        return BigFloat(self.sign, m, e)

    def to_float(self) -> float:
        """Round to the nearest binary64 (RNE), honouring subnormals and
        overflowing to +/-inf — i.e. exactly what storing into a C double
        would produce."""
        if self.mantissa == 0:
            return 0.0
        s = self.scale
        if s > 1023:  # overflow threshold is conservative-checked below
            m, e = round_to_precision(self.mantissa, self.exponent, 53, sign=self.sign)
            if e + 52 > 1023:
                return math.inf if self.sign == 0 else -math.inf
            return self._ldexp(m, e)
        if s >= -1022:
            m, e = round_to_precision(self.mantissa, self.exponent, 53, sign=self.sign)
            if m.bit_length() + e - 1 > 1023:
                return math.inf if self.sign == 0 else -math.inf
            return self._ldexp(m, e)
        # Subnormal range: the available precision shrinks with magnitude.
        # The smallest representable exponent is -1074.
        from .rounding import shift_right_round
        shift = -1074 - self.exponent
        if shift <= 0:
            return self._ldexp(self.mantissa, self.exponent)
        m = shift_right_round(self.mantissa, shift, sign=self.sign)
        if m == 0:
            return -0.0 if self.sign else 0.0
        if m.bit_length() > 53:  # rounded up into the normal range
            pass
        return self._ldexp(m, -1074)

    def _ldexp(self, mant: int, exp: int) -> float:
        value = math.ldexp(float(mant), exp) if mant.bit_length() <= 53 else math.ldexp(
            float(mant >> (mant.bit_length() - 53)), exp + mant.bit_length() - 53)
        return -value if self.sign else value

    def to_fraction_parts(self) -> tuple[int, int]:
        """Return ``(numerator, log2_denominator)`` such that the exact
        value equals ``numerator / 2**log2_denominator``."""
        num = self.mantissa if self.sign == 0 else -self.mantissa
        if self.exponent >= 0:
            return num << self.exponent, 0
        return num, -self.exponent

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def neg(self) -> "BigFloat":
        if self.mantissa == 0:
            return self
        return BigFloat(self.sign ^ 1, self.mantissa, self.exponent)

    def abs(self) -> "BigFloat":
        return BigFloat(0, self.mantissa, self.exponent)

    def add(self, other: _NumberLike, prec: int = DEFAULT_PRECISION) -> "BigFloat":
        other = BigFloat.coerce(other)
        if self.mantissa == 0:
            return other.round(prec)
        if other.mantissa == 0:
            return self.round(prec)
        a, b = self, other
        if a.exponent < b.exponent:
            a, b = b, a
        # a has the larger exponent.  Cap the alignment shift: once the
        # magnitudes are further apart than prec + guard bits, the smaller
        # operand only contributes a sticky bit.
        diff = a.exponent - b.exponent
        guard = prec + 4
        gap = (a.exponent + a.mantissa.bit_length()) - (b.exponent + b.mantissa.bit_length())
        if gap > guard:
            # b is negligible but must nudge rounding: widen a well past
            # the target precision and attach a one-ulp perturbation in
            # the direction of b.
            widen = guard + 4
            if a.sign == b.sign:
                m = (a.mantissa << widen) | 1
            else:
                m = (a.mantissa << widen) - 1
            return BigFloat(a.sign, m, a.exponent - widen).round(prec)
        am = a.mantissa << diff
        bm = b.mantissa
        if a.sign == b.sign:
            return BigFloat(a.sign, am + bm, b.exponent).round(prec)
        if am == bm:
            return BigFloat.zero()
        if am > bm:
            return BigFloat(a.sign, am - bm, b.exponent).round(prec)
        return BigFloat(b.sign, bm - am, b.exponent).round(prec)

    def sub(self, other: _NumberLike, prec: int = DEFAULT_PRECISION) -> "BigFloat":
        return self.add(BigFloat.coerce(other).neg(), prec)

    def mul(self, other: _NumberLike, prec: int = DEFAULT_PRECISION) -> "BigFloat":
        other = BigFloat.coerce(other)
        if self.mantissa == 0 or other.mantissa == 0:
            return BigFloat.zero()
        sign = self.sign ^ other.sign
        # Compress very wide mantissas first so products stay bounded.
        am, ash = sticky_compress(self.mantissa, prec + 8)
        bm, bsh = sticky_compress(other.mantissa, prec + 8)
        m = am * bm
        e = self.exponent + other.exponent + ash + bsh
        return BigFloat(sign, m, e).round(prec)

    def div(self, other: _NumberLike, prec: int = DEFAULT_PRECISION) -> "BigFloat":
        other = BigFloat.coerce(other)
        if other.mantissa == 0:
            raise ZeroDivisionError("BigFloat division by zero")
        if self.mantissa == 0:
            return BigFloat.zero()
        sign = self.sign ^ other.sign
        num, den = self.mantissa, other.mantissa
        shift = prec + 2 - (num.bit_length() - den.bit_length())
        if shift > 0:
            q, r = divmod(num << shift, den)
        else:
            q, r = divmod(num, den << (-shift))
        if r and q & 1 == 0:
            q |= 1  # sticky
        e = self.exponent - other.exponent - shift
        return BigFloat(sign, q, e).round(prec)

    def mul_pow2(self, k: int) -> "BigFloat":
        """Exact scaling by ``2**k``."""
        if self.mantissa == 0:
            return self
        return BigFloat(self.sign, self.mantissa, self.exponent + k)

    def sqrt(self, prec: int = DEFAULT_PRECISION) -> "BigFloat":
        if self.sign == 1 and self.mantissa != 0:
            raise ValueError("sqrt of a negative BigFloat")
        if self.mantissa == 0:
            return BigFloat.zero()
        # Compute isqrt on mantissa << s with s chosen so the root has
        # prec + 2 bits and (exponent + s) is even.
        target = 2 * (prec + 2)
        s = max(0, target - self.mantissa.bit_length())
        if (self.exponent - s) % 2:
            s += 1
        m = self.mantissa << s
        root = math.isqrt(m)
        if root * root != m and root & 1 == 0:
            root |= 1  # sticky
        return BigFloat(0, root, (self.exponent - s) // 2).round(prec)

    # ------------------------------------------------------------------
    # Comparison (exact, precision-free)
    # ------------------------------------------------------------------
    def cmp(self, other: _NumberLike) -> int:
        other = BigFloat.coerce(other)
        if self.mantissa == 0 and other.mantissa == 0:
            return 0
        if self.mantissa == 0:
            return 1 if other.sign else -1
        if other.mantissa == 0:
            return -1 if self.sign else 1
        if self.sign != other.sign:
            return -1 if self.sign else 1
        mag = self._cmp_magnitude(other)
        return -mag if self.sign else mag

    def _cmp_magnitude(self, other: "BigFloat") -> int:
        sa, sb = self.scale, other.scale
        if sa != sb:
            return -1 if sa < sb else 1
        # Same leading-bit position: align and compare mantissas exactly.
        ea, eb = self.exponent, other.exponent
        ma, mb = self.mantissa, other.mantissa
        if ea > eb:
            ma <<= ea - eb
        elif eb > ea:
            mb <<= eb - ea
        if ma == mb:
            return 0
        return -1 if ma < mb else 1

    def __eq__(self, other):
        if not isinstance(other, (BigFloat, int, float)):
            return NotImplemented
        return self.cmp(other) == 0

    def __lt__(self, other):
        return self.cmp(other) < 0

    def __le__(self, other):
        return self.cmp(other) <= 0

    def __gt__(self, other):
        return self.cmp(other) > 0

    def __ge__(self, other):
        return self.cmp(other) >= 0

    def __hash__(self):
        return hash((self.sign, self.mantissa, self.exponent))

    # Operator sugar at default precision.  Non-coercible operands
    # yield NotImplemented so Python tries the reflected operator
    # (repro.nd.FArray relies on this for `BigFloat <op> FArray`).
    def __add__(self, other):
        if not isinstance(other, _COERCIBLE):
            return NotImplemented
        return self.add(other)

    __radd__ = __add__

    def __sub__(self, other):
        if not isinstance(other, _COERCIBLE):
            return NotImplemented
        return self.sub(other)

    def __rsub__(self, other):
        if not isinstance(other, _COERCIBLE):
            return NotImplemented
        return BigFloat.coerce(other).sub(self)

    def __mul__(self, other):
        if not isinstance(other, _COERCIBLE):
            return NotImplemented
        return self.mul(other)

    __rmul__ = __mul__

    def __truediv__(self, other):
        if not isinstance(other, _COERCIBLE):
            return NotImplemented
        return self.div(other)

    def __rtruediv__(self, other):
        if not isinstance(other, _COERCIBLE):
            return NotImplemented
        return BigFloat.coerce(other).div(self)

    def __neg__(self):
        return self.neg()

    def __abs__(self):
        return self.abs()

    def __repr__(self):
        if self.mantissa == 0:
            return "BigFloat(0)"
        sign = "-" if self.sign else ""
        return f"BigFloat({sign}{self.mantissa}*2**{self.exponent})"

    def __str__(self):
        if self.mantissa == 0:
            return "0"
        # Render as m * 2**scale with a short decimal mantissa.
        s = self.scale
        if self.mantissa.bit_length() <= 1024:
            lead = self.mantissa / (1 << (self.mantissa.bit_length() - 1))
        else:
            top = self.mantissa >> (self.mantissa.bit_length() - 53)
            lead = 1.0 + (top & ((1 << 52) - 1)) / (1 << 52)
        sign = "-" if self.sign else ""
        return f"{sign}{lead:.6f}*2**{s}"


#: Types the operator sugar coerces; anything else makes the operators
#: return NotImplemented so the other operand's reflected op runs.
_COERCIBLE = (BigFloat, int, float)
