"""Decimal rendering of BigFloats at arbitrary magnitudes.

``repr(2**-434916)`` as a float is just ``0.0``; experiment reports need
strings like ``"6.273e-130921"``.  This module converts exactly-held
binary values to decimal scientific notation using integer arithmetic
only (no precision cliff at any magnitude).
"""

from __future__ import annotations

from .number import BigFloat

_LOG10_2_NUM = 30103  # log10(2) ~ 30103/100000, good to ~8 digits
_LOG10_2_DEN = 100000


def decimal_exponent_estimate(x: BigFloat) -> int:
    """Floor of log10(|x|), exact up to +-1 (refined by to_decimal_string)."""
    if x.is_zero():
        raise ValueError("zero has no decimal exponent")
    return (x.scale * _LOG10_2_NUM) // _LOG10_2_DEN


def to_decimal_string(x: BigFloat, digits: int = 6) -> str:
    """Scientific-notation string with ``digits`` significant digits.

    Exact integer algorithm: scale the binary value by a power of ten
    chosen so the integer part has exactly ``digits`` digits, then round
    half-up on the discarded remainder.
    """
    if digits < 1:
        raise ValueError("need at least one digit")
    if x.is_zero():
        return "0"
    sign = "-" if x.sign else ""
    d10 = decimal_exponent_estimate(x)
    # We want mantissa = round(|x| * 10**(digits - 1 - d10)).
    for _ in range(4):  # the estimate is off by at most 1; loop to settle
        shift10 = digits - 1 - d10
        num = x.mantissa
        exp2 = x.exponent
        if shift10 >= 0:
            num *= 10 ** shift10
        else:
            den10 = 10 ** (-shift10)
        # Apply the binary exponent.
        if exp2 >= 0:
            num <<= exp2
            den = 1
        else:
            den = 1 << (-exp2)
        if shift10 < 0:
            den *= den10
        mant, rem = divmod(num, den)
        if 2 * rem >= den:
            mant += 1
        s = str(mant)
        if len(s) == digits:
            break
        # Rounding crossed a decade (e.g. 999.9 -> 1000) or the estimate
        # was off: adjust and retry.
        d10 += 1 if len(s) > digits else -1
    else:
        raise AssertionError("decimal exponent failed to settle")
    if digits == 1:
        body = s
    else:
        body = f"{s[0]}.{s[1:]}"
    return f"{sign}{body}e{d10:+d}"


def log10_value(x: BigFloat) -> float:
    """log10(|x|) as a float — usable at any magnitude (the float only
    holds the *logarithm*, which is always small)."""
    from .functions import log10 as bf_log10
    if x.is_zero():
        raise ValueError("zero has no log10")
    return bf_log10(x.abs(), 64).to_float()
