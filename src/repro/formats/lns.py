"""Logarithmic Number System (LNS) — the paper's Section VII alternative.

LNS stores ``log2|x|`` as a *fixed-point* number (sign bit + zero flag +
``int_bits`` integer bits + ``frac_bits`` fraction bits), unlike
log-space-over-binary64 which stores the log in a *float*.  Consequences
this module makes measurable:

* multiplication is a fixed-point addition (exact unless the range
  saturates);
* precision is **flat** across the whole range (a fixed-point log has
  constant absolute error, hence constant relative value error) — unlike
  float-log whose error grows with |log x|;
* addition needs the Gaussian-log function ``sb(d) = log2(1 + 2**d)``,
  classically a lookup table.  The table must cover ``|d|`` up to about
  ``frac_bits + 1`` with ``2**frac_bits`` entries per unit — this module
  computes that size, quantifying the paper's claim that "lookup table
  optimizations are impractical for 64-bit numbers".

Arithmetic here evaluates ``sb`` exactly through the BigFloat oracle and
rounds once — i.e. it models an *ideal* (infeasible) LNS unit, which is
the fair accuracy comparison.
"""

from __future__ import annotations

import math
from typing import Union

from ..bigfloat import BigFloat, DEFAULT_PRECISION
from ..bigfloat import log2 as bf_log2
from ..bigfloat.rounding import shift_right_round

#: Special encodings (kept symbolic; hardware would use flag bits).
LNS_ZERO = "lns-zero"

_Value = Union[int, str]


class LNSEnv:
    """One LNS configuration: values are signed fixed-point log2 codes.

    A nonzero value is represented as an integer ``code`` meaning
    ``(-1)**sign * 2**(code / 2**frac_bits)``; this implementation keeps
    sign implicit by only supporting positive reals (probabilities), as
    the paper's workloads do.
    """

    def __init__(self, int_bits: int, frac_bits: int,
                 prec: int = DEFAULT_PRECISION):
        if int_bits < 2 or frac_bits < 1:
            raise ValueError("need int_bits >= 2 and frac_bits >= 1")
        self.int_bits = int_bits
        self.frac_bits = frac_bits
        self.prec = prec
        #: Representable log2 range: [-2**(int_bits-1), 2**(int_bits-1)).
        self.max_log2 = 1 << (int_bits - 1)
        self.min_code = -self.max_log2 << frac_bits
        self.max_code = (self.max_log2 << frac_bits) - 1

    @property
    def name(self) -> str:
        return f"lns({self.int_bits},{self.frac_bits})"

    @property
    def total_bits(self) -> int:
        """Storage width: sign + zero flag + integer + fraction."""
        return 2 + self.int_bits + self.frac_bits

    def smallest_positive_scale(self) -> int:
        """Base-2 exponent of the smallest representable positive value."""
        return -self.max_log2

    # ------------------------------------------------------------------
    # Codec
    # ------------------------------------------------------------------
    def encode_bigfloat(self, x: BigFloat) -> _Value:
        if x.is_zero():
            return LNS_ZERO
        if x.is_negative():
            raise ValueError("this LNS models probabilities (x >= 0)")
        lg = bf_log2(x, self.prec)
        code = self._round_code(lg)
        return max(self.min_code, min(self.max_code, code))

    def _round_code(self, lg: BigFloat) -> int:
        # code = round(lg * 2**frac_bits), RNE on the exact value.
        scaled = lg.mul_pow2(self.frac_bits)
        if scaled.exponent >= 0:
            mag = scaled.mantissa << scaled.exponent
        else:
            mag = shift_right_round(scaled.mantissa, -scaled.exponent)
        return -mag if scaled.sign else mag

    def decode_bigfloat(self, value: _Value) -> BigFloat:
        if value == LNS_ZERO:
            return BigFloat.zero()
        from ..bigfloat import exp as bf_exp
        from ..bigfloat import ln2 as bf_ln2
        lg = BigFloat(1 if value < 0 else 0, abs(value), -self.frac_bits)
        return bf_exp(lg.mul(bf_ln2(self.prec + 16), self.prec + 16), self.prec)

    def from_float(self, x: float) -> _Value:
        return self.encode_bigfloat(BigFloat.from_float(x))

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def mul(self, a: _Value, b: _Value) -> _Value:
        """Fixed-point addition of the log codes (exact, may saturate)."""
        if a == LNS_ZERO or b == LNS_ZERO:
            return LNS_ZERO
        return max(self.min_code, min(self.max_code, a + b))

    def add(self, a: _Value, b: _Value) -> _Value:
        """LNS addition via the Gaussian logarithm:

            log2(x + y) = max + sb(min - max),  sb(d) = log2(1 + 2**d)

        evaluated exactly (ideal-table model) and rounded to the code
        grid once.
        """
        if a == LNS_ZERO:
            return b
        if b == LNS_ZERO:
            return a
        hi, lo = (a, b) if a >= b else (b, a)
        d = lo - hi  # <= 0, in code units
        sb = self._sb_exact(d)
        return max(self.min_code, min(self.max_code, hi + sb))

    def _sb_exact(self, d_code: int) -> int:
        """sb(d) = log2(1 + 2**d) on the code grid, correctly rounded."""
        from ..bigfloat import exp as bf_exp
        from ..bigfloat import ln2 as bf_ln2
        from ..bigfloat import log1p as bf_log1p
        work = self.prec + 16
        d = BigFloat(1 if d_code < 0 else 0, abs(d_code), -self.frac_bits)
        pow2_d = bf_exp(d.mul(bf_ln2(work), work), work)
        sb = bf_log1p(pow2_d, work).div(bf_ln2(work), work)
        return self._round_code(sb)

    def _db_exact(self, d_code: int) -> int:
        """db(d) = log2(1 - 2**d) on the code grid for ``d < 0``,
        correctly rounded — the Gaussian-log *difference* companion of
        :meth:`_sb_exact` (the other half of a classical LNS table).

        Always negative; grows like ``-(frac_bits + 0.53) * 2**frac_bits``
        as ``d -> 0-`` (the cancellation is benign: ``1 - 2**d`` is
        computed at ``prec + 16`` working bits, far below the half-code
        rounding threshold for any supported width).
        """
        if d_code >= 0:
            raise ValueError("db(d) needs d < 0 (1 - 2**d must be positive)")
        from ..bigfloat import exp as bf_exp
        from ..bigfloat import ln2 as bf_ln2
        from ..bigfloat import log1p as bf_log1p
        work = self.prec + 16
        d = BigFloat(1, abs(d_code), -self.frac_bits)
        pow2_d = bf_exp(d.mul(bf_ln2(work), work), work)
        db = bf_log1p(pow2_d.neg(), work).div(bf_ln2(work), work)
        return self._round_code(db)

    def sub(self, a: _Value, b: _Value) -> _Value:
        """Probability subtraction ``a - b`` via the difference Gaussian
        logarithm:

            log2(x - y) = max + db(min - max),  db(d) = log2(1 - 2**d)

        evaluated exactly (ideal-table model) and rounded to the code
        grid once, saturating at the range edge like :meth:`add`.
        Probabilities are non-negative, so ``b > a`` is a domain error;
        ``a == b`` yields exact probability zero.
        """
        if b == LNS_ZERO:
            return a
        if a == LNS_ZERO or b > a:
            raise ValueError(
                "LNS subtraction would produce a negative probability")
        if a == b:
            return LNS_ZERO
        db = self._db_exact(b - a)
        return max(self.min_code, min(self.max_code, a + db))

    # ------------------------------------------------------------------
    # The impracticality argument (Section VII)
    # ------------------------------------------------------------------
    def sb_table_entries(self) -> int:
        """Entries a direct-mapped sb lookup table would need: one per
        representable d in (-(frac_bits + 1 + margin), 0] — beyond that
        sb rounds to 0.  For frac_bits ~ 40+ this is astronomically
        infeasible, which is exactly the paper's point."""
        domain = self.frac_bits + 2  # |d| values that still matter
        return domain << self.frac_bits

    def sb_table_bytes(self) -> int:
        entry_bytes = (self.total_bits + 7) // 8
        return self.sb_table_entries() * entry_bytes

    def per_op_relative_error_bound(self) -> float:
        """Half a code unit in log2 translates to a relative value error
        of ``2**(2**-(frac_bits+1)) - 1 ~ ln2 * 2**-(frac_bits+1)`` —
        constant across the entire range."""
        return math.log(2.0) * 2.0 ** -(self.frac_bits + 1)

    def __repr__(self):
        return f"LNSEnv(int_bits={self.int_bits}, frac_bits={self.frac_bits})"


def lns64_for_range(min_scale: int) -> LNSEnv:
    """The 64-bit LNS whose range covers values down to 2**min_scale,
    spending the rest of the bits on fraction."""
    int_bits = max(2, math.ceil(math.log2(abs(min_scale))) + 1)
    frac_bits = 64 - 2 - int_bits
    if frac_bits < 1:
        raise ValueError("range too wide for a 64-bit LNS")
    return LNSEnv(int_bits, frac_bits)
