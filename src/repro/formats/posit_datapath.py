"""Hardware-style posit add/multiply datapath.

:mod:`repro.formats.posit` computes with exact integers and rounds once —
a clean *specification* of correct rounding.  This module implements the
same operations the way hardware posit units (MArTo's HLS operators) do:
unpack to fixed-width fields, compute on a bounded-width significand
datapath with guard/round/sticky bits, normalize, and round.  The two
engines are cross-checked exhaustively in the tests — the software
analogue of verifying an RTL datapath against a reference model — and
the datapath's internal widths document *why* posit units cost what
Table II says (the unpacked significand register is ``max_fraction_bits
+ 1`` wide, the multiplier array is that squared, and the aligner spans
the full register: all wider than a same-width IEEE datapath).

Correctness strategy per path:

* **same-sign add / multiply** — bounded grid with GRS + sticky; any
  dropped bits make the true value *epsilon above* the kept bits, which
  an appended sticky bit encodes exactly (the standard R/S argument).
* **effective subtraction, near/far** — when the alignment distance is
  within the shifter span the subtraction is performed exactly on the
  (bounded, ~2x fraction width) extended grid; beyond the span the
  smaller operand is pure sticky and the true value is *epsilon below*
  the larger, encoded by a borrowed low bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from .posit import NAR, ZERO, PositEnv
from .real import Real


@dataclass(frozen=True)
class UnpackedPosit:
    """A decoded posit in the datapath's fixed-width registers.

    ``significand`` holds the implicit leading 1 followed by exactly
    ``frac_width`` fraction bits (zero-padded), so its value is
    ``significand * 2**(scale - frac_width)``.
    """

    sign: int
    scale: int  # k * 2**es + e
    significand: int


class PositDatapath:
    """Add/mul built from bounded shift/compare/add primitives."""

    def __init__(self, env: PositEnv):
        self.env = env
        #: Significand register fraction width (shortest-regime case).
        self.frac_width = env.max_fraction_bits()
        #: Guard/round/sticky bits carried below the ulp grid.
        self.grs = 3
        #: Aligner span: beyond this distance the small addend is sticky.
        self.max_shift = self.frac_width + self.grs + 2

    # ------------------------------------------------------------------
    def unpack(self, bits: int) -> UnpackedPosit:
        decoded = self.env.decode(bits)
        if decoded is ZERO:
            return UnpackedPosit(0, 0, 0)
        if decoded is NAR:
            raise ValueError("NaR bypasses the datapath")
        mant = decoded.mantissa
        significand = mant << (self.frac_width + 1 - mant.bit_length())
        return UnpackedPosit(decoded.sign, decoded.scale, significand)

    def _pack(self, sign: int, significand: int, grid_exp: int,
              sticky: int) -> int:
        """Round-and-encode ``(-1)^sign * (significand + eps) * 2**grid_exp``
        where ``eps`` is in (0, 1) iff sticky is set.

        Appending the sticky below the LSB reproduces the exact rounding
        decision because eps is strictly smaller than one grid unit.
        """
        if significand == 0:
            if not sticky:
                return 0
            return self.env.encode_real(Real(sign, 1, self.env.min_scale - 4))
        mant = (significand << 1) | (1 if sticky else 0)
        return self.env.encode_real(Real(sign, mant, grid_exp - 1))

    # ------------------------------------------------------------------
    def add(self, a_bits: int, b_bits: int) -> int:
        env = self.env
        if env.is_nar(a_bits) or env.is_nar(b_bits):
            return env.nar
        if env.is_zero(a_bits):
            return b_bits & env.mask
        if env.is_zero(b_bits):
            return a_bits & env.mask
        a, b = self.unpack(a_bits), self.unpack(b_bits)
        if (a.scale, a.significand) < (b.scale, b.significand):
            a, b = b, a  # |a| >= |b| after the magnitude compare
        diff = a.scale - b.scale
        grid_exp = a.scale - self.frac_width  # grid of a.significand
        if a.sign == b.sign:
            return self._add_magnitudes(a, b, diff, grid_exp)
        return self._sub_magnitudes(a, b, diff, grid_exp)

    def _add_magnitudes(self, a, b, diff: int, grid_exp: int) -> int:
        # Work on the GRS-extended grid (3 bits below a's ulp grid).
        wa = a.significand << self.grs
        wb = b.significand << self.grs
        sticky = 0
        if diff >= self.max_shift:
            wb = 0
            sticky = 1
        elif diff > 0:
            sticky = 1 if wb & ((1 << diff) - 1) else 0
            wb >>= diff
        return self._pack(a.sign, wa + wb, grid_exp - self.grs, sticky)

    def _sub_magnitudes(self, a, b, diff: int, grid_exp: int) -> int:
        if diff >= self.max_shift:
            # Far path: b is pure sticky; true value = a - eps.
            wa = a.significand << self.grs
            # Represent a - eps as (2*wa - 1)/2 with a live sticky: the
            # borrowed half-unit plus sticky brackets the true value.
            doubled = (wa << 1) - 1
            return self._pack(a.sign, doubled, grid_exp - self.grs - 1,
                              sticky=1)
        # Near/far-within-span path: exact subtraction on the extended
        # grid (bounded width: frac_width + max_shift bits).
        am = a.significand << diff
        bm = b.significand
        total = am - bm
        if total == 0:
            return 0
        return self.env.encode_real(Real(a.sign, total,
                                         b.scale - self.frac_width))

    # ------------------------------------------------------------------
    def mul(self, a_bits: int, b_bits: int) -> int:
        env = self.env
        if env.is_nar(a_bits) or env.is_nar(b_bits):
            return env.nar
        if env.is_zero(a_bits) or env.is_zero(b_bits):
            return 0
        a, b = self.unpack(a_bits), self.unpack(b_bits)
        sign = a.sign ^ b.sign
        # The (frac_width+1)^2 multiplier array (the DSP cost of Table II).
        product = a.significand * b.significand
        # Product grid: 2**(a.scale + b.scale - 2*frac_width).  Compress
        # to the GRS working grid, folding dropped bits into sticky.
        shift = self.frac_width - self.grs
        sticky = 0
        if shift > 0:
            sticky = 1 if product & ((1 << shift) - 1) else 0
            product >>= shift
        elif shift < 0:
            product <<= -shift
        grid_exp = a.scale + b.scale - self.frac_width - self.grs
        return self._pack(sign, product, grid_exp, sticky)
