"""Parameterizable IEEE 754 binary softfloat (Figure 2a's fixed-field
format), used both as the binary64 reference semantics and to let the
analysis vary exponent/fraction splits beyond the standard widths.

An :class:`IEEEEnv` fixes the exponent width ``w`` and total significand
precision ``p`` (including the implicit bit); ``IEEEEnv(11, 53)`` is
binary64, ``IEEEEnv(8, 24)`` is binary32.  Values are raw bit patterns.
Arithmetic is exact-compute + single RNE rounding with full subnormal and
infinity semantics, and is cross-checked bit-for-bit against the host's
native doubles in the tests.
"""

from __future__ import annotations

import math

from ..bigfloat import BigFloat
from ..bigfloat.rounding import shift_right_round
from .real import Real

#: Special decode results (NaN payloads are collapsed: statistics codes
#: never branch on payloads).
ZERO = "zero"
INF = "inf"
NAN = "nan"


class IEEEEnv:
    """All operations for one IEEE binary interchange format."""

    def __init__(self, exp_bits: int, precision: int):
        if exp_bits < 2 or precision < 2:
            raise ValueError("need exp_bits >= 2 and precision >= 2")
        self.exp_bits = exp_bits
        self.precision = precision  # includes the implicit bit
        self.frac_bits = precision - 1
        self.nbits = 1 + exp_bits + self.frac_bits
        self.bias = (1 << (exp_bits - 1)) - 1
        self.emax = self.bias  # max unbiased exponent of a normal
        self.emin = 1 - self.bias  # min unbiased exponent of a normal
        self.mask = (1 << self.nbits) - 1
        self.sign_bit = 1 << (self.nbits - 1)
        self.exp_mask = ((1 << exp_bits) - 1) << self.frac_bits
        self.frac_mask = (1 << self.frac_bits) - 1
        self.pos_inf = self.exp_mask
        self.neg_inf = self.sign_bit | self.exp_mask
        self.quiet_nan = self.exp_mask | (1 << (self.frac_bits - 1))

    @property
    def name(self) -> str:
        if (self.exp_bits, self.precision) == (11, 53):
            return "binary64"
        if (self.exp_bits, self.precision) == (8, 24):
            return "binary32"
        return f"ieee({self.exp_bits},{self.precision})"

    # ------------------------------------------------------------------
    # Range facts (Table I's binary64 row and Section II's examples)
    # ------------------------------------------------------------------
    def smallest_positive_scale(self) -> int:
        """Base-2 exponent of the smallest positive (subnormal) value;
        -1074 for binary64, as quoted throughout the paper."""
        return self.emin - self.frac_bits

    def smallest_normal_scale(self) -> int:
        """-1022 for binary64 (the left edge of Figure 3's 'normal' bins)."""
        return self.emin

    def largest_finite(self) -> Real:
        mant = (1 << self.precision) - 1
        return Real(0, mant, self.emax - self.frac_bits)

    # ------------------------------------------------------------------
    # Decode / encode
    # ------------------------------------------------------------------
    def decode(self, bits: int):
        bits &= self.mask
        sign = 1 if bits & self.sign_bit else 0
        exp_field = (bits & self.exp_mask) >> self.frac_bits
        frac = bits & self.frac_mask
        if exp_field == (1 << self.exp_bits) - 1:
            return NAN if frac else INF if sign == 0 else (INF, 1)
        if exp_field == 0:
            if frac == 0:
                return ZERO
            # Subnormal: no implicit bit, fixed exponent emin.
            return Real(sign, frac, self.emin - self.frac_bits)
        mant = (1 << self.frac_bits) | frac
        return Real(sign, mant, exp_field - self.bias - self.frac_bits)

    def encode_real(self, value: Real) -> int:
        """Round an exact real into the format (RNE, subnormals, overflow
        to infinity — IEEE default semantics)."""
        if value.is_zero():
            return 0
        sign_bits = self.sign_bit if value.sign else 0
        scale = value.scale
        if scale < self.emin:
            # Subnormal range: align to fixed exponent emin - frac_bits.
            target_exp = self.emin - self.frac_bits
            shift = target_exp - value.exponent
            if shift <= 0:
                mant = value.mantissa << (-shift)
            else:
                mant = shift_right_round(value.mantissa, shift)
            if mant == 0:
                return sign_bits  # underflow to signed zero
            if mant.bit_length() > self.frac_bits:
                # Rounded up into the smallest normal.
                return sign_bits | (1 << self.frac_bits)
            return sign_bits | mant
        # Normal range: round to `precision` significand bits.
        excess = value.mantissa.bit_length() - self.precision
        if excess > 0:
            mant = shift_right_round(value.mantissa, excess)
            if mant.bit_length() > self.precision:
                mant >>= 1
                scale += 1
        else:
            mant = value.mantissa << (-excess)
        if scale > self.emax:
            return sign_bits | self.pos_inf
        exp_field = scale + self.bias
        frac = mant & self.frac_mask
        return sign_bits | (exp_field << self.frac_bits) | frac

    def to_bigfloat(self, bits: int) -> BigFloat:
        d = self.decode(bits)
        if d is ZERO:
            return BigFloat.zero()
        if isinstance(d, Real):
            return d.to_bigfloat()
        raise ValueError(f"{d} has no finite real value")

    def encode_bigfloat(self, x: BigFloat) -> int:
        return self.encode_real(Real.from_bigfloat(x))

    def from_float(self, x: float) -> int:
        if math.isnan(x):
            return self.quiet_nan
        if math.isinf(x):
            return self.neg_inf if x < 0 else self.pos_inf
        if x == 0.0:
            return self.sign_bit if math.copysign(1.0, x) < 0 else 0
        return self.encode_real(Real.from_float(x))

    def to_float(self, bits: int) -> float:
        d = self.decode(bits)
        if d is ZERO:
            return -0.0 if (bits & self.sign_bit) else 0.0
        if d is NAN:
            return math.nan
        if d is INF:
            return math.inf
        if isinstance(d, tuple) and d[0] is INF:
            return -math.inf
        return d.to_float()

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def add(self, a: int, b: int) -> int:
        da, db = self.decode(a), self.decode(b)
        special = self._special_add(a, da, b, db)
        if special is not None:
            return special
        result = da.add(db)
        if result.is_zero():
            return 0  # (+0) under RNE for exact cancellation
        return self.encode_real(result)

    def sub(self, a: int, b: int) -> int:
        return self.add(a, self.neg(b))

    def mul(self, a: int, b: int) -> int:
        da, db = self.decode(a), self.decode(b)
        sign_a = 1 if a & self.sign_bit else 0
        sign_b = 1 if b & self.sign_bit else 0
        if da is NAN or db is NAN:
            return self.quiet_nan
        a_inf = self._is_inf(da)
        b_inf = self._is_inf(db)
        if a_inf or b_inf:
            if da is ZERO or db is ZERO:
                return self.quiet_nan  # inf * 0
            sign = sign_a ^ sign_b
            return (self.sign_bit if sign else 0) | self.pos_inf
        if da is ZERO or db is ZERO:
            return self.sign_bit if sign_a ^ sign_b else 0
        return self.encode_real(da.mul(db))

    def fma(self, a: int, b: int, c: int) -> int:
        """Fused multiply-add ``a*b + c`` with a single rounding (IEEE
        754 fusedMultiplyAdd semantics for finite operands)."""
        da, db, dc = self.decode(a), self.decode(b), self.decode(c)
        if da is NAN or db is NAN or dc is NAN:
            return self.quiet_nan
        a_inf, b_inf, c_inf = (self._is_inf(d) for d in (da, db, dc))
        if a_inf or b_inf:
            if da is ZERO or db is ZERO:
                return self.quiet_nan  # inf * 0
            prod_sign = ((a ^ b) & self.sign_bit) >> (self.nbits - 1)
            prod_inf = (self.sign_bit if prod_sign else 0) | self.pos_inf
            if c_inf and (c ^ prod_inf) & self.sign_bit:
                return self.quiet_nan  # inf - inf
            return prod_inf
        if c_inf:
            # a*b is finite (exactly — no intermediate rounding), so the
            # infinite addend wins regardless of the product's size.
            return c & self.mask
        if da is ZERO or db is ZERO:
            prod = Real.zero()
        else:
            prod = da.mul(db)
        if prod.is_zero() and dc is ZERO:
            # Signed-zero rules: (-0) + (-0) = -0, anything else +0.
            prod_negative = bool((a ^ b) & self.sign_bit)
            c_negative = bool(c & self.sign_bit)
            return self.sign_bit if prod_negative and c_negative else 0
        if dc is ZERO:
            result = prod
        elif prod.is_zero():
            result = dc
        else:
            result = prod.add(dc)
        if result.is_zero():
            return 0  # exact cancellation yields +0 under RNE
        return self.encode_real(result)

    def neg(self, a: int) -> int:
        return (a ^ self.sign_bit) & self.mask

    def _is_inf(self, decoded) -> bool:
        return decoded is INF or (isinstance(decoded, tuple) and decoded[0] is INF)

    def _special_add(self, a, da, b, db):
        if da is NAN or db is NAN:
            return self.quiet_nan
        a_inf, b_inf = self._is_inf(da), self._is_inf(db)
        if a_inf and b_inf:
            if (a ^ b) & self.sign_bit:
                return self.quiet_nan  # inf - inf
            return a & self.mask
        if a_inf:
            return a & self.mask
        if b_inf:
            return b & self.mask
        if da is ZERO and db is ZERO:
            # +0 unless both -0.
            both_neg = (a & self.sign_bit) and (b & self.sign_bit)
            return self.sign_bit if both_neg else 0
        if da is ZERO:
            return b & self.mask
        if db is ZERO:
            return a & self.mask
        return None

    def __repr__(self):
        return f"IEEEEnv(exp_bits={self.exp_bits}, precision={self.precision})"


BINARY64 = IEEEEnv(11, 53)
BINARY32 = IEEEEnv(8, 24)
