"""Posit(N, ES) arithmetic (Section III of the paper), from scratch.

A :class:`PositEnv` fixes the configuration (total bits ``nbits``, maximum
exponent bits ``es``) and operates on raw bit patterns (Python ints in
``[0, 2**nbits)``).  Arithmetic is *correctly rounded*: operands are
decoded to exact dyadic rationals, combined exactly, and re-encoded with a
single rounding — the same result MArTo's hardware operators produce.

Rounding follows the posit standard: round-to-nearest on the (notionally
infinite) encoding string with ties to the even pattern, and saturation at
``minpos``/``maxpos`` — a nonzero real never rounds to zero or NaR.  The
paper's application study nevertheless reports *underflow counts* for
posit(64,9)/(64,12), so the environment also offers ``underflow="flush"``
which flushes sub-``minpos`` magnitudes to zero; DESIGN.md discusses the
discrepancy.
"""

from __future__ import annotations

from ..bigfloat import BigFloat
from .real import Real

SATURATE = "saturate"
FLUSH = "flush"

#: Special decode results.
ZERO = "zero"
NAR = "nar"


class PositEnv:
    """All operations for one posit configuration.

    Parameters
    ----------
    nbits:
        Total width N (2..128 supported; the paper uses 64 and an 8-bit
        example).
    es:
        Maximum exponent field width ES.
    underflow:
        ``"saturate"`` (posit standard; default) or ``"flush"``.
    """

    def __init__(self, nbits: int, es: int, underflow: str = SATURATE):
        if nbits < 2:
            raise ValueError("posit needs at least 2 bits")
        if es < 0:
            raise ValueError("es must be non-negative")
        if underflow not in (SATURATE, FLUSH):
            raise ValueError(f"unknown underflow mode {underflow!r}")
        self.nbits = nbits
        self.es = es
        self.underflow = underflow
        self.mask = (1 << nbits) - 1
        self.sign_bit = 1 << (nbits - 1)
        self.nar = self.sign_bit
        self.zero = 0
        self.minpos = 1
        self.maxpos = self.sign_bit - 1
        #: useed = 2**(2**es); regime steps scale by this factor.
        self.useed_log2 = 1 << es
        #: Largest/smallest representable scale (base-2 exponent).
        self.max_scale = (nbits - 2) * self.useed_log2
        self.min_scale = -self.max_scale

    # ------------------------------------------------------------------
    # Introspection helpers (Table I / Section III analysis)
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return f"posit({self.nbits},{self.es})"

    def max_fraction_bits(self) -> int:
        """Fraction bits available with the shortest (2-bit) regime."""
        return max(0, self.nbits - 1 - 2 - self.es)

    def fraction_bits_at_scale(self, scale: int) -> int:
        """Fraction bits available when encoding a value of the given
        base-2 exponent — the paper's 'bit budget' argument for why ES
        affects accuracy non-monotonically."""
        if not self.min_scale <= scale <= self.max_scale:
            raise ValueError(f"scale {scale} not representable by {self.name}")
        k = scale >> self.es  # floor division by 2**es
        run = k + 1 if k >= 0 else -k
        regime_len = min(run + 1, self.nbits - 1)
        rem = self.nbits - 1 - regime_len
        return max(0, rem - self.es)

    def regime_length_at_scale(self, scale: int) -> int:
        k = scale >> self.es
        run = k + 1 if k >= 0 else -k
        return min(run + 1, self.nbits - 1)

    # ------------------------------------------------------------------
    # Decode
    # ------------------------------------------------------------------
    def decode(self, bits: int):
        """Decode a bit pattern.

        Returns :data:`ZERO`, :data:`NAR`, or an exact :class:`Real`.
        """
        bits &= self.mask
        if bits == 0:
            return ZERO
        if bits == self.nar:
            return NAR
        sign = 1 if bits & self.sign_bit else 0
        if sign:
            bits = (-bits) & self.mask  # two's complement magnitude
        body_len = self.nbits - 1
        body = bits & (self.sign_bit - 1)
        # Regime: run of identical bits from the MSB of the body.
        top = body_len - 1
        r = (body >> top) & 1
        run = 1
        while run < body_len and ((body >> (top - run)) & 1) == r:
            run += 1
        k = run - 1 if r == 1 else -run
        # Bits left after the regime and its terminator (if present).
        consumed = run + 1 if run < body_len else body_len
        rem = body_len - consumed
        e_bits = min(self.es, rem)
        e_field = (body >> (rem - e_bits)) & ((1 << e_bits) - 1) if e_bits else 0
        # Truncated exponent fields are left-aligned: missing low bits = 0.
        e = e_field << (self.es - e_bits)
        f_bits = rem - e_bits
        f_field = body & ((1 << f_bits) - 1) if f_bits else 0
        scale = k * self.useed_log2 + e
        mantissa = (1 << f_bits) | f_field
        return Real(sign, mantissa, scale - f_bits)

    def to_bigfloat(self, bits: int) -> BigFloat:
        value = self.decode(bits)
        if value is ZERO:
            return BigFloat.zero()
        if value is NAR:
            raise ValueError("NaR has no real value")
        return value.to_bigfloat()

    def to_float(self, bits: int) -> float:
        return self.to_bigfloat(bits).to_float()

    # ------------------------------------------------------------------
    # Encode (the rounding step)
    # ------------------------------------------------------------------
    def encode_real(self, value: Real) -> int:
        """Correctly rounded encoding of an exact real value."""
        if value.is_zero():
            return 0
        scale = value.scale
        if scale > self.max_scale:
            pattern = self.maxpos
        else:
            pattern = self._round_pattern(value, scale)
            if pattern == 0:
                # Sub-minpos magnitude.  The standard never rounds a
                # nonzero value to zero (saturate to minpos); flush mode
                # reproduces the underflow behaviour the paper reports.
                pattern = 0 if self.underflow == FLUSH else self.minpos
            elif pattern > self.maxpos:
                pattern = self.maxpos
        if value.sign:
            pattern = (-pattern) & self.mask
        return pattern

    def _round_pattern(self, value: Real, scale: int) -> int:
        """Round-to-nearest-even on the encoding string (posit standard)."""
        es = self.es
        k = scale >> es
        e = scale - (k << es)
        if k >= 0:
            run = k + 1
            regime = (1 << (run + 1)) - 2  # run ones, then a zero
        else:
            run = -k
            regime = 1  # run zeros, then a one
        regime_len = run + 1
        mb = value.mantissa.bit_length()
        frac = value.mantissa - (1 << (mb - 1))
        frac_len = mb - 1
        # Unrounded encoding U with total length L (after the sign bit).
        length = regime_len + es + frac_len
        unrounded = (regime << (es + frac_len)) | (e << frac_len) | frac
        body_len = self.nbits - 1
        if length <= body_len:
            return unrounded << (body_len - length)
        shift = length - body_len
        kept = unrounded >> shift
        dropped = unrounded & ((1 << shift) - 1)
        half = 1 << (shift - 1)
        if dropped > half or (dropped == half and kept & 1):
            kept += 1
        return kept

    def encode_bigfloat(self, x: BigFloat) -> int:
        return self.encode_real(Real.from_bigfloat(x))

    def from_float(self, x: float) -> int:
        import math
        if math.isnan(x):
            return self.nar
        if math.isinf(x):
            return self.nar
        return self.encode_real(Real.from_float(x))

    # ------------------------------------------------------------------
    # Arithmetic (exact compute + single rounding)
    # ------------------------------------------------------------------
    def add(self, a: int, b: int) -> int:
        da, db = self.decode(a), self.decode(b)
        if da is NAR or db is NAR:
            return self.nar
        if da is ZERO:
            return b & self.mask
        if db is ZERO:
            return a & self.mask
        return self.encode_real(da.add(db))

    def sub(self, a: int, b: int) -> int:
        return self.add(a, self.neg(b))

    def mul(self, a: int, b: int) -> int:
        da, db = self.decode(a), self.decode(b)
        if da is NAR or db is NAR:
            return self.nar
        if da is ZERO or db is ZERO:
            return 0
        return self.encode_real(da.mul(db))

    def div(self, a: int, b: int) -> int:
        da, db = self.decode(a), self.decode(b)
        if da is NAR or db is NAR or db is ZERO:
            return self.nar
        if da is ZERO:
            return 0
        # Exact quotient is not dyadic in general; divide with enough
        # quotient bits that a sticky LSB makes the final rounding exact.
        prec = self.nbits + self.useed_log2.bit_length() + 8
        q = da.to_bigfloat().div(db.to_bigfloat(), prec + 16)
        return self.encode_bigfloat(q)

    def fma(self, a: int, b: int, c: int) -> int:
        """Fused multiply-add ``a*b + c`` with a single rounding (the
        posit standard requires fused ops to round once)."""
        da, db, dc = self.decode(a), self.decode(b), self.decode(c)
        if da is NAR or db is NAR or dc is NAR:
            return self.nar
        prod = Real.zero() if (da is ZERO or db is ZERO) else da.mul(db)
        if dc is ZERO:
            result = prod
        elif prod.is_zero():
            result = dc
        else:
            result = prod.add(dc)
        return self.encode_real(result)

    def neg(self, a: int) -> int:
        a &= self.mask
        if a == 0 or a == self.nar:
            return a
        return (-a) & self.mask

    def abs(self, a: int) -> int:
        a &= self.mask
        if a & self.sign_bit and a != self.nar:
            return (-a) & self.mask
        return a

    def fused_sum(self, terms) -> int:
        """Quire-style exact accumulation: sum all terms exactly, round
        once.  This is the posit standard's fused dot-product behaviour
        and serves as the repo's ablation of rounding-per-add error."""
        acc = Real.zero()
        for t in terms:
            d = self.decode(t)
            if d is NAR:
                return self.nar
            if d is ZERO:
                continue
            acc = acc.add(d)
        return self.encode_real(acc)

    # ------------------------------------------------------------------
    # Comparison: posits order as two's-complement integers.
    # ------------------------------------------------------------------
    def cmp(self, a: int, b: int) -> int:
        sa, sb = self._signed(a), self._signed(b)
        return (sa > sb) - (sa < sb)

    def _signed(self, a: int) -> int:
        a &= self.mask
        return a - (1 << self.nbits) if a & self.sign_bit else a

    def is_nar(self, a: int) -> bool:
        return (a & self.mask) == self.nar

    def is_zero(self, a: int) -> bool:
        return (a & self.mask) == 0

    # ------------------------------------------------------------------
    # Presentation (Figure 2 rendering; used by examples and docs)
    # ------------------------------------------------------------------
    def field_layout(self, bits: int) -> dict:
        """Split a pattern into its sign/regime/exponent/fraction fields
        as bit strings (after two's-complement magnitude recovery)."""
        bits &= self.mask
        if bits in (0, self.nar):
            return {"special": "zero" if bits == 0 else "NaR",
                    "pattern": format(bits, f"0{self.nbits}b")}
        sign = 1 if bits & self.sign_bit else 0
        mag = (-bits) & self.mask if sign else bits
        body_len = self.nbits - 1
        body = format(mag & (self.sign_bit - 1), f"0{body_len}b")
        r = body[0]
        run = 1
        while run < body_len and body[run] == r:
            run += 1
        consumed = min(run + 1, body_len)
        regime = body[:consumed]
        rest = body[consumed:]
        e_bits = min(self.es, len(rest))
        return {
            "sign": str(sign),
            "regime": regime,
            "exponent": rest[:e_bits],
            "fraction": rest[e_bits:],
            "pattern": format(bits, f"0{self.nbits}b"),
        }

    def __repr__(self):
        return f"PositEnv(nbits={self.nbits}, es={self.es}, underflow={self.underflow!r})"


#: The three configurations the paper analyses in depth (Section III).
def paper_configs(underflow: str = SATURATE) -> dict:
    return {
        "posit(64,9)": PositEnv(64, 9, underflow),
        "posit(64,12)": PositEnv(64, 12, underflow),
        "posit(64,18)": PositEnv(64, 18, underflow),
    }
