"""Number formats compared by the paper: posit(N,ES), IEEE binary
(binary64 and friends), and log-space over binary64."""

from .real import Real
from .posit import FLUSH, NAR, SATURATE, ZERO, PositEnv, paper_configs
from .ieee import BINARY32, BINARY64, IEEEEnv
from .logspace import LogSpace, log_mul, lse2, lse2_naive, lse_n, lse_sequential
from .quire import Quire, fused_dot_product
from .lns import LNS_ZERO, LNSEnv, lns64_for_range
from .posit_datapath import PositDatapath

__all__ = [
    "Real",
    "PositEnv",
    "paper_configs",
    "SATURATE",
    "FLUSH",
    "ZERO",
    "NAR",
    "IEEEEnv",
    "BINARY64",
    "BINARY32",
    "LogSpace",
    "lse2",
    "lse2_naive",
    "lse_n",
    "lse_sequential",
    "log_mul",
    "Quire",
    "fused_dot_product",
    "LNSEnv",
    "LNS_ZERO",
    "lns64_for_range",
    "PositDatapath",
]
