"""Quire: the posit standard's exact fixed-point accumulator.

A quire for posit(N, ES) is a fixed-point register wide enough to hold
the exact sum of products of posits without any rounding — the standard
sizes it to cover ``[minpos^2, maxpos^2]`` plus carry headroom.  Fused
dot products accumulate exactly and round once at the end.

The paper does not use quires (none of its kernels are dot products with
reuse), but they are the posit ecosystem's answer to accumulation error
and the natural 'future work' extension for the forward algorithm's
inner loop — the ablation benchmarks quantify what they would buy.
"""

from __future__ import annotations

from .posit import NAR, ZERO, PositEnv
from .real import Real


class Quire:
    """An exact accumulator bound to one posit environment.

    Internally the value is a plain arbitrary-precision integer scaled by
    ``2**-frac_bits`` — Python ints make the standard's carry-guard
    sizing unnecessary, but the *semantics* (exact accumulation, single
    final rounding) match the standard exactly.
    """

    def __init__(self, env: PositEnv):
        self.env = env
        #: Fixed-point position: products reach down to minpos^2.
        self.frac_bits = 2 * abs(env.min_scale) + 2 * env.nbits
        self._value = 0
        self._nar = False

    # ------------------------------------------------------------------
    def clear(self) -> "Quire":
        self._value = 0
        self._nar = False
        return self

    @property
    def is_nar(self) -> bool:
        return self._nar

    def _add_real(self, r: Real, negate: bool = False) -> None:
        shift = r.exponent + self.frac_bits
        if shift < 0:
            raise OverflowError("value below quire resolution")
        term = r.mantissa << shift
        if (r.sign == 1) != negate:
            term = -term
        self._value += term

    # ------------------------------------------------------------------
    def add_posit(self, bits: int) -> "Quire":
        """Accumulate one posit value exactly."""
        d = self.env.decode(bits)
        if d is NAR:
            self._nar = True
        elif d is not ZERO:
            self._add_real(d)
        return self

    def add_product(self, a_bits: int, b_bits: int, negate: bool = False) -> "Quire":
        """Fused multiply-accumulate: += (or -=) a*b, exactly."""
        da, db = self.env.decode(a_bits), self.env.decode(b_bits)
        if da is NAR or db is NAR:
            self._nar = True
            return self
        if da is ZERO or db is ZERO:
            return self
        self._add_real(da.mul(db), negate=negate)
        return self

    def sub_posit(self, bits: int) -> "Quire":
        d = self.env.decode(bits)
        if d is NAR:
            self._nar = True
        elif d is not ZERO:
            self._add_real(d, negate=True)
        return self

    # ------------------------------------------------------------------
    def to_posit(self) -> int:
        """Round the accumulated value to a posit (the only rounding)."""
        if self._nar:
            return self.env.nar
        if self._value == 0:
            return 0
        sign = 1 if self._value < 0 else 0
        return self.env.encode_real(Real(sign, abs(self._value),
                                         -self.frac_bits))

    def to_real(self) -> Real:
        if self._nar:
            raise ValueError("quire holds NaR")
        if self._value == 0:
            return Real.zero()
        sign = 1 if self._value < 0 else 0
        return Real(sign, abs(self._value), -self.frac_bits)

    def __repr__(self):
        state = "NaR" if self._nar else f"{self._value} * 2^-{self.frac_bits}"
        return f"Quire({self.env.name}: {state})"


def fused_dot_product(env: PositEnv, xs, ys) -> int:
    """Correctly rounded dot product: one rounding for the whole sum
    (the posit standard's fdp operation)."""
    q = Quire(env)
    for x, y in zip(xs, ys):
        q.add_product(x, y)
    return q.to_posit()
