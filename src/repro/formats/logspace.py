"""Log-space arithmetic over binary64 (Section II.B of the paper).

A probability ``x`` is stored as its natural log ``lx = ln(x)`` in an
ordinary Python float (which *is* IEEE binary64 — the exact representation
the paper's software baselines and LSE accelerator use).  Multiplication
becomes float addition; addition becomes Log-Sum-Exp:

    ``lse(lx, ly) = m + log1p(exp(min - m))``,  ``m = max(lx, ly)``

which is Equation (2) of the paper, and the n-ary form is Equation (3).
Zero probability is represented by ``-inf``, exactly as log-space software
does.

Conversions into and out of log-space go through :mod:`repro.bigfloat`
so that operands far outside double range (e.g. ``2**-500_000``) are
converted *correctly rounded* — the paper's methodology converts operands
in MPFR for the same reason.
"""

from __future__ import annotations

import math

from ..bigfloat import BigFloat, DEFAULT_PRECISION
from ..bigfloat import exp as bf_exp
from ..bigfloat import log as bf_log


def lse2(lx: float, ly: float) -> float:
    """Binary Log-Sum-Exp (paper Equation 2) in binary64 arithmetic."""
    if lx == -math.inf:
        return ly
    if ly == -math.inf:
        return lx
    if lx >= ly:
        m, other = lx, ly
    else:
        m, other = ly, lx
    return m + math.log1p(math.exp(other - m))


def lse2_naive(lx: float, ly: float) -> float:
    """Equation (1): the numerically unstable direct form, kept as an
    ablation of the stability claim (overflows for lx > ~709.78 and
    underflows to -inf once both operands drop below ~-745.13)."""
    try:
        return math.log(math.exp(lx) + math.exp(ly))
    except OverflowError:
        return math.inf
    except ValueError:
        return -math.inf


def lse_n(values) -> float:
    """N-ary Log-Sum-Exp (paper Equation 3): one max, one sum of exps,
    one log — the dataflow the log-based PE implements in hardware."""
    vals = list(values)
    if not vals:
        return -math.inf
    m = max(vals)
    if m == -math.inf:
        return -math.inf
    if m == math.inf:
        return math.inf
    total = 0.0
    for v in vals:
        total += math.exp(v - m)
    return m + math.log(total)


def lse_sequential(values) -> float:
    """Fold :func:`lse2` left-to-right — the software-accumulation
    alternative to the tree/n-ary form, used by the ablation bench."""
    acc = -math.inf
    for v in values:
        acc = lse2(acc, v)
    return acc


def log_mul(lx: float, ly: float) -> float:
    """Multiplication of probabilities in log-space: a float addition."""
    if lx == -math.inf or ly == -math.inf:
        return -math.inf
    return lx + ly


class LogSpace:
    """Conversion helpers for one log base (natural log by default).

    The paper's pipelines use natural logs; base-2 is provided for the
    analysis utilities (exponent bookkeeping).
    """

    def __init__(self, prec: int = DEFAULT_PRECISION):
        self.prec = prec

    def encode_bigfloat(self, x: BigFloat) -> float:
        """ln(x) correctly rounded to binary64; -inf for zero."""
        if x.is_zero():
            return -math.inf
        if x.is_negative():
            raise ValueError("log-space encodes non-negative values only")
        return bf_log(x, self.prec).to_float()

    def encode_float(self, x: float) -> float:
        if x == 0.0:
            return -math.inf
        if x < 0.0:
            raise ValueError("log-space encodes non-negative values only")
        return self.encode_bigfloat(BigFloat.from_float(x))

    def decode_bigfloat(self, lx: float) -> BigFloat:
        """exp(lx) as a BigFloat — exact range, no underflow, so results
        like ``exp(-2_010_126.8)`` stay measurable."""
        if lx == -math.inf:
            return BigFloat.zero()
        if math.isnan(lx) or lx == math.inf:
            raise ValueError(f"cannot decode {lx} from log-space")
        return bf_exp(BigFloat.from_float(lx), self.prec)

    def is_zero(self, lx: float) -> bool:
        return lx == -math.inf
