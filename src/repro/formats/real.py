"""Exact real values of the form ``(-1)**sign * mantissa * 2**exponent``.

Every finite posit and IEEE value is exactly such a number, and the sum or
product of two of them is again one — so format arithmetic in this library
is implemented as *exact* integer computation followed by a single
correctly-rounded encode.  That is precisely the semantics of the paper's
hardware operators (MArTo posits and the Xilinx IEEE cores both round
correctly), which is what makes the accuracy comparison faithful.
"""

from __future__ import annotations

from ..bigfloat import BigFloat


class Real:
    """A lightweight exact dyadic rational (no specials).

    ``mantissa`` is kept positive and odd (canonical form) unless zero.
    """

    __slots__ = ("sign", "mantissa", "exponent")

    def __init__(self, sign: int, mantissa: int, exponent: int):
        if mantissa < 0:
            raise ValueError("mantissa must be non-negative")
        if mantissa == 0:
            sign, exponent = 0, 0
        else:
            tz = (mantissa & -mantissa).bit_length() - 1
            if tz:
                mantissa >>= tz
                exponent += tz
        self.sign = sign
        self.mantissa = mantissa
        self.exponent = exponent

    # ------------------------------------------------------------------
    @classmethod
    def zero(cls) -> "Real":
        return cls(0, 0, 0)

    @classmethod
    def from_bigfloat(cls, x: BigFloat) -> "Real":
        return cls(x.sign, x.mantissa, x.exponent)

    @classmethod
    def from_float(cls, x: float) -> "Real":
        return cls.from_bigfloat(BigFloat.from_float(x))

    @classmethod
    def from_int(cls, x: int) -> "Real":
        return cls(1 if x < 0 else 0, abs(x), 0)

    def to_bigfloat(self) -> BigFloat:
        return BigFloat(self.sign, self.mantissa, self.exponent)

    def to_float(self) -> float:
        return self.to_bigfloat().to_float()

    # ------------------------------------------------------------------
    def is_zero(self) -> bool:
        return self.mantissa == 0

    @property
    def scale(self) -> int:
        """Base-2 exponent in normalized scientific form (the ``E`` in
        ``1.f * 2**E``)."""
        if self.mantissa == 0:
            raise ValueError("zero has no scale")
        return self.exponent + self.mantissa.bit_length() - 1

    # ------------------------------------------------------------------
    # Exact arithmetic (mantissas grow as needed; callers re-encode into
    # a finite format immediately, so growth is bounded in practice).
    # ------------------------------------------------------------------
    def add(self, other: "Real") -> "Real":
        if self.mantissa == 0:
            return other
        if other.mantissa == 0:
            return self
        a, b = self, other
        if a.exponent < b.exponent:
            a, b = b, a
        am = a.mantissa << (a.exponent - b.exponent)
        bm = b.mantissa
        if a.sign == b.sign:
            return Real(a.sign, am + bm, b.exponent)
        if am == bm:
            return Real.zero()
        if am > bm:
            return Real(a.sign, am - bm, b.exponent)
        return Real(b.sign, bm - am, b.exponent)

    def sub(self, other: "Real") -> "Real":
        return self.add(other.neg())

    def mul(self, other: "Real") -> "Real":
        if self.mantissa == 0 or other.mantissa == 0:
            return Real.zero()
        return Real(self.sign ^ other.sign,
                    self.mantissa * other.mantissa,
                    self.exponent + other.exponent)

    def neg(self) -> "Real":
        if self.mantissa == 0:
            return self
        return Real(self.sign ^ 1, self.mantissa, self.exponent)

    def abs(self) -> "Real":
        return Real(0, self.mantissa, self.exponent)

    # ------------------------------------------------------------------
    def cmp(self, other: "Real") -> int:
        return self.to_bigfloat().cmp(other.to_bigfloat())

    def __eq__(self, other):
        if not isinstance(other, Real):
            return NotImplemented
        return ((self.sign, self.mantissa, self.exponent)
                == (other.sign, other.mantissa, other.exponent))

    def __hash__(self):
        return hash((self.sign, self.mantissa, self.exponent))

    def __repr__(self):
        if self.mantissa == 0:
            return "Real(0)"
        s = "-" if self.sign else ""
        return f"Real({s}{self.mantissa}*2**{self.exponent})"
