"""VICAR-like phylogenetics workload (Section V.A): HMM forward-algorithm
likelihoods on genome-scale magnitude trajectories, scored per format.

The real VICAR computes likelihoods down to 2**-2,900,000 on 500,000-site
Human-Chimp-Gorilla alignments.  This module runs the same forward
algorithm on magnitude-compressed synthetic HMMs (see
:func:`repro.data.sample_hcg_like_hmm`) and scores each format's final
likelihood against the 256-bit oracle — producing the data behind the
paper's Figure 10 CDFs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..arith.backend import Backend
from ..arith.backends import BigFloatBackend
from ..bigfloat import BigFloat
from ..core.accuracy import OK, OpResult, score_value
from ..data.dirichlet import HMMData, sample_hcg_like_hmm
from ..engine.plan import ExecPlan, resolve_plan
from .hmm import forward, forward_models_batch


@dataclass(frozen=True)
class VicarConfig:
    """One Figure 10 experiment configuration.

    The paper runs T in {100_000, 500_000} with 128 A/B matrices for each
    H in {13, 32, 64, 128}.  ``bits_per_step`` compresses the magnitude
    axis so a scaled T reaches the same final likelihood exponent; the
    defaults target the T=100,000 magnitude regime (2**-590,000).
    """

    length: int = 500
    h_values: tuple = (13, 32)
    matrices_per_h: int = 4
    bits_per_step: float = 1180.0
    seed: int = 0
    oracle_prec: int = 256

    @property
    def target_scale(self) -> float:
        """Approximate final-likelihood base-2 exponent."""
        return -self.bits_per_step * self.length


def paper_config(t: int) -> VicarConfig:
    """The paper's own parameters (T = 100_000 or 500_000, 128 matrices
    per H) — runnable in principle, used for documentation and the
    hardware model; far too slow for per-op software arithmetic."""
    return VicarConfig(length=t, h_values=(13, 32, 64, 128),
                       matrices_per_h=128, bits_per_step=5.8)


def scaled_config(t: int, matrices_per_h: int = 4,
                  h_values: tuple = (13, 32), seed: int = 0) -> VicarConfig:
    """Magnitude-faithful scaled configuration: final likelihood exponent
    matches the paper's at sequence length ``t``."""
    scaled_len = 500
    return VicarConfig(length=scaled_len, h_values=h_values,
                       matrices_per_h=matrices_per_h,
                       bits_per_step=5.8 * t / scaled_len, seed=seed)


@dataclass
class VicarResult:
    """Accuracy results for one configuration."""

    config: VicarConfig
    #: per format: list of OpResult (one per matrix)
    scores: Dict[str, List[OpResult]] = field(default_factory=dict)
    #: oracle likelihood scales (one per matrix)
    reference_scales: List[int] = field(default_factory=list)

    def log10_errors(self, fmt: str) -> List[float]:
        return [r.log10_error for r in self.scores[fmt] if r.status == OK]

    def failure_count(self, fmt: str) -> int:
        return sum(1 for r in self.scores[fmt] if r.status != OK)

    def fraction_below(self, fmt: str, threshold_log10: float) -> float:
        """CDF readout: fraction of runs with relative error below
        10**threshold_log10 (the paper quotes e.g. 'fraction < 1e-8')."""
        scores = self.scores[fmt]
        if not scores:
            return 0.0
        good = sum(1 for r in scores
                   if r.status == OK and r.log10_error < threshold_log10)
        return good / len(scores)


def generate_instances(config: VicarConfig) -> List[HMMData]:
    """All HMM instances for a configuration (deterministic in seed)."""
    instances = []
    for hi, h in enumerate(config.h_values):
        for m in range(config.matrices_per_h):
            seed = config.seed + 7919 * hi + m
            instances.append(sample_hcg_like_hmm(
                h, config.length, seed=seed,
                bits_per_step=config.bits_per_step))
    return instances


def _oracle_forward(task) -> BigFloat:
    """Worker entry for the parallel reference pass (module-level so the
    process pool can pickle it)."""
    hmm, prec = task
    return forward(hmm, BigFloatBackend(prec))


def reference_likelihoods(instances: Sequence[HMMData], prec: int = 256,
                          plan: Optional[ExecPlan] = None) -> List[BigFloat]:
    """Oracle likelihood per instance, fanned across ``plan.n_workers``
    worker processes when the plan is parallel (the oracle pass
    dominates run time; instances are independent, and the merge
    preserves instance order)."""
    plan = resolve_plan(plan, where="reference_likelihoods")
    tasks = [(hmm, prec) for hmm in instances]
    if not plan.parallel:
        return [_oracle_forward(t) for t in tasks]
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # platforms without fork
        ctx = multiprocessing.get_context("spawn")
    with ProcessPoolExecutor(max_workers=plan.n_workers,
                             mp_context=ctx) as pool:
        return list(pool.map(_oracle_forward, tasks, chunksize=1))


def run_vicar(config: VicarConfig, backends: Dict[str, Backend],
              instances: Optional[Sequence[HMMData]] = None,
              plan: Optional[ExecPlan] = None) -> VicarResult:
    """Run every backend over every instance; score final likelihoods
    against the oracle.

    Each format's likelihoods run through the vectorized multi-model
    forward kernel (grouped by H; equal to the per-model scalar loop —
    exactly for binary64/posit/LNS/sequential log-space, within an ulp
    for n-ary log-space; see
    :func:`repro.apps.hmm.forward_models_batch`);
    ``plan=ExecPlan.serial()`` forces the per-model scalar loop.
    ``plan.n_workers`` fans the oracle reference pass across processes;
    the scores are order-preserving and identical for any worker count.
    """
    plan = resolve_plan(plan, where="run_vicar")
    if instances is None:
        instances = generate_instances(config)
    result = VicarResult(config)
    references = reference_likelihoods(instances, config.oracle_prec,
                                       plan=plan)
    result.reference_scales.extend(ref.scale for ref in references)
    for fmt, backend in backends.items():
        values = forward_models_batch(instances, backend, plan=plan)
        result.scores[fmt] = [score_value(backend, value, ref)
                              for value, ref in zip(values, references)]
    return result
