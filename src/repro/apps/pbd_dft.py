"""DFT-CF: the characteristic-function method for the Poisson binomial
distribution (Hong 2013, the paper's reference [32]).

The PMF is the inverse DFT of the characteristic function

    phi(l) = prod_n (1 - p_n + p_n * exp(2*pi*i*l/(N+1)))

This is the standard *alternative* to the Listing-2 recurrence and the
repo's independent cross-check of it.  It works in binary64 only —
which is itself instructive: the characteristic-function products have
magnitude ~1 (no underflow!), but the inverse DFT *output* underflows
below ~1e-17 relative to the distribution's bulk, so DFT-CF cannot
resolve the deep-tail p-values the paper cares about.  The tests verify
both the agreement in the bulk and this failure in the tail.
"""

from __future__ import annotations

import numpy as np


def pbd_pmf_dft(success_probs: np.ndarray) -> np.ndarray:
    """Full PMF over k = 0..N via the characteristic function."""
    p = np.asarray(success_probs, dtype=float)
    n = p.shape[0]
    size = n + 1
    l = np.arange(size)
    omega = np.exp(2j * np.pi * l / size)
    # phi[l] = prod_n (1 - p_n + p_n * omega^l)
    terms = 1.0 - p[:, None] + p[:, None] * omega[None, :]
    phi = terms.prod(axis=0)
    # pmf[k] = (1/(N+1)) sum_l phi[l] exp(-2 pi i l k / (N+1)): a forward
    # DFT with the 1/(N+1) normalization.
    pmf = (np.fft.fft(phi) / size).real
    # Clamp tiny negative round-off.
    return np.where(pmf < 0.0, 0.0, pmf)


def pbd_pvalue_dft(success_probs: np.ndarray, k: int) -> float:
    """P(X >= k) from the DFT-CF PMF (bulk-accurate, tail-blind)."""
    pmf = pbd_pmf_dft(success_probs)
    return float(pmf[k:].sum())


def dft_tail_resolution_limit() -> float:
    """The smallest p-value DFT-CF can resolve: the inverse FFT's output
    is accurate to ~machine epsilon relative to the PMF's *maximum*, so
    tail masses below ~1e-15 are round-off noise."""
    return 1e-14
