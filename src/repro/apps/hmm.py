"""Hidden Markov Model forward algorithm (Section V.A, Listings 1 and 3).

The *canonical* implementation is the batched kernel in
:mod:`repro.engine.kernels`: :func:`forward` is a B=1 view over it for
every format whose batch mirror is certified exact by the format
registry (binary64 bit-identical; posit/LNS element-exact; log-space in
``sequential`` sum mode).  Formats without a certified mirror — the
BigFloat oracle, log-space's default n-ary mode, the tracing wrapper —
run the scalar reference recurrence, which follows Listing 1's
structure exactly and is parameterized by an arithmetic
:class:`~repro.arith.Backend`; with the log-space backend that code *is*
Listing 3 (multiplications become float adds, the accumulation becomes
the n-ary LSE of Equation 3).  Optimized numpy fast paths for binary64
and log-space are provided and cross-checked against the generic
implementation in the tests.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..arith.backend import Backend
from ..bigfloat import BigFloat
from ..data.dirichlet import HMMData
from ..engine.plan import ExecPlan, resolve_plan
from ..formats.real import Real


def model_values(hmm: HMMData, backend: Backend) -> tuple:
    """One HMM's parameters as backend values, converted exactly once.

    Conversion is input-side methodology (the paper rounds exact MPFR
    operands into each format), so it is hoisted out of the per-sequence
    recurrences: repeated-sequence sweeps must not redo
    ``from_bigfloat`` work per sequence.
    """
    a = [[backend.from_bigfloat(x) for x in row] for row in hmm.transition]
    b = [[backend.from_bigfloat(x) for x in row] for row in hmm.emission]
    pi = [backend.from_bigfloat(x) for x in hmm.initial]
    return a, b, pi


def _forward_values(backend: Backend, a, b, pi, obs):
    """Listing 1 over pre-converted parameters: the scalar reference
    recurrence, kept for formats without a certified batch mirror."""
    h = len(pi)
    # t = 0: alpha[q] = pi[q] * B[q][o0]
    o0 = obs[0]
    alpha_prev = [backend.mul(pi[q], b[q][o0]) for q in range(h)]
    for t in range(1, len(obs)):
        ot = obs[t]
        alpha = []
        for q in range(h):
            path_sum = backend.sum(
                backend.mul(alpha_prev[p], a[p][q]) for p in range(h))
            alpha.append(backend.mul(path_sum, b[q][ot]))
        alpha_prev = alpha
    return backend.sum(alpha_prev)


def _kernel_backend(backend: Backend, plan: ExecPlan, *,
                    certified: bool = True):
    """The batch mirror the plan selects (see
    :func:`repro.engine.plan_batch_backend`), or None for the scalar
    path."""
    from ..engine import plan_batch_backend
    return plan_batch_backend(backend, plan, certified=certified)


def forward(hmm: HMMData, backend: Backend, observations=None,
            plan: Optional[ExecPlan] = None):
    """Run the forward algorithm; return the likelihood P(O | lambda) as
    a backend value (use ``backend.to_bigfloat`` to score it).

    Runs through the batched kernel as a batch of one wherever the
    format's batch mirror is certified exact (the canonical path);
    ``plan=ExecPlan.serial()`` forces the legacy scalar recurrence.
    Results are identical either way — that is the certification.
    """
    plan = resolve_plan(plan, where="forward")
    obs = hmm.observations if observations is None else observations
    bb = _kernel_backend(backend, plan)
    if bb is not None:
        from ..engine.kernels import forward_batch as forward_batch_kernel
        obs_arr = np.asarray([tuple(int(o) for o in obs)], dtype=np.intp)
        a, b, pi = batch_model_arrays(hmm, bb)
        return bb.item(forward_batch_kernel(bb, a, b, pi, obs_arr), 0)
    a, b, pi = model_values(hmm, backend)
    return _forward_values(backend, a, b, pi, obs)


def forward_alpha_trace(hmm: HMMData, backend: Backend,
                        plan: Optional[ExecPlan] = None) -> list:
    """Per-iteration alpha summaries (backend values): the data behind
    Figure 1.  A B=1 view over the batched trace kernel for certified
    formats; scalar recurrence otherwise."""
    plan = resolve_plan(plan, where="forward_alpha_trace")
    obs = hmm.observations
    bb = _kernel_backend(backend, plan)
    if bb is not None:
        from ..engine.kernels import forward_alpha_trace_batch
        obs_arr = np.asarray([tuple(int(o) for o in obs)], dtype=np.intp)
        a, b, pi = batch_model_arrays(hmm, bb)
        trace = forward_alpha_trace_batch(bb, a, b, pi, obs_arr)
        return [bb.item(trace, (0, t)) for t in range(trace.shape[1])]
    a, b, pi = model_values(hmm, backend)
    h = hmm.n_states
    o0 = obs[0]
    alpha_prev = [backend.mul(pi[q], b[q][o0]) for q in range(h)]
    trace = [backend.sum(alpha_prev)]
    for t in range(1, len(obs)):
        ot = obs[t]
        alpha = []
        for q in range(h):
            path_sum = backend.sum(
                backend.mul(alpha_prev[p], a[p][q]) for p in range(h))
            alpha.append(backend.mul(path_sum, b[q][ot]))
        alpha_prev = alpha
        trace.append(backend.sum(alpha_prev))
    return trace


def alpha_scale_series(hmm: HMMData, prec: int = 96) -> List[int]:
    """Figure 1's y axis: the base-2 exponent of alpha's total mass per
    iteration, tracked in arbitrary-precision arithmetic so it stays
    exact far below binary64's range (the paper uses MPFR for this)."""
    from ..arith.backends import BigFloatBackend
    backend = BigFloatBackend(prec)
    trace = forward_alpha_trace(hmm, backend)
    return [v.scale for v in trace]


# ----------------------------------------------------------------------
# Batched execution (repro.engine): many sequences per call
# ----------------------------------------------------------------------
def batch_model_arrays(hmm: HMMData, batch_backend):
    """Convert one HMM's parameters into backend-value arrays, once per
    batch (the scalar path hoists the same conversion via
    :func:`model_values`)."""
    h, m = hmm.n_states, hmm.n_symbols
    a = batch_backend.from_bigfloats(
        [x for row in hmm.transition for x in row]).reshape(h, h)
    b = batch_backend.from_bigfloats(
        [x for row in hmm.emission for x in row]).reshape(h, m)
    pi = batch_backend.from_bigfloats(list(hmm.initial))
    return a, b, pi


def forward_batch(hmm: HMMData, backend: Backend, observations=None,
                  plan: Optional[ExecPlan] = None) -> list:
    """Forward algorithm over a batch of observation sequences.

    ``observations`` is a ``(B, T)`` integer array (default: a batch of
    one, the HMM's own sequence).  Returns a list of B likelihoods as
    backend values, equal element-for-element to calling
    :func:`forward` per sequence — exactly so for binary64, posit, LNS,
    and log-space with ``sum_mode="sequential"``; for log-space's
    default n-ary mode the batched LSE matches to within an ulp (NumPy's
    SIMD ``exp`` is not libm's; see :mod:`repro.engine.batch`).  Formats
    with an array backend run through the vectorized kernel, sliced
    into groups of at most ``plan.batch_size``; others (the BigFloat
    oracle) run the scalar recurrence with the model conversion hoisted
    out of the per-sequence loop.
    """
    plan = resolve_plan(plan, where="forward_batch")
    if observations is None:
        observations = [hmm.observations]
    bb = _kernel_backend(backend, plan, certified=False)
    if bb is None:
        a, b, pi = model_values(hmm, backend)
        return [_forward_values(backend, a, b, pi,
                                tuple(int(o) for o in seq))
                for seq in observations]
    from ..engine.kernels import forward_batch as forward_batch_kernel
    obs = np.asarray(observations, dtype=np.intp)
    a, b, pi = batch_model_arrays(hmm, bb)
    values: list = []
    for rows in plan.group_slices(obs.shape[0]):
        out = forward_batch_kernel(bb, a, b, pi, obs[rows])
        values.extend(bb.item(out, i) for i in range(out.shape[0]))
    return values


def forward_models_batch(models, backend: Backend,
                         plan: Optional[ExecPlan] = None, *,
                         certified: bool = False) -> list:
    """Forward likelihoods for many *models* (each with its own
    parameters and observation sequence) — the ViCAR/MCMC shape.

    Models are grouped by ``(H, M, T)`` and each group runs through
    :func:`repro.engine.kernels.forward_multi_batch` in vectorized
    passes of at most ``plan.batch_size`` models; the returned list
    matches the input order and equals calling :func:`forward` per
    model (exactly for binary64, posit, LNS, and log-space with
    ``sum_mode="sequential"``; within an ulp for log-space's default
    n-ary mode).  Formats without an array backend (the BigFloat
    oracle) fall back to the scalar loop.  ``certified=True`` restricts
    the kernel to reduction-certified mirrors, so results are
    guaranteed identical to the scalar loop (what MH acceptance
    decisions need); n-ary log-space then takes the scalar path.
    """
    plan = resolve_plan(plan, where="forward_models_batch")
    models = list(models)
    bb = _kernel_backend(backend, plan, certified=certified)
    if bb is None:
        return [forward(hmm, backend, plan=plan) for hmm in models]
    from ..engine.kernels import forward_multi_batch
    groups: dict = {}
    for i, hmm in enumerate(models):
        key = (hmm.n_states, hmm.n_symbols, hmm.length)
        groups.setdefault(key, []).append(i)
    out: list = [None] * len(models)
    for (h, m, _t), group in groups.items():
        for rows in plan.group_slices(len(group)):
            indices = group[rows]
            a = bb.from_bigfloats(
                [x for i in indices for row in models[i].transition
                 for x in row]).reshape(len(indices), h, h)
            b = bb.from_bigfloats(
                [x for i in indices for row in models[i].emission
                 for x in row]).reshape(len(indices), h, m)
            pi = bb.from_bigfloats(
                [x for i in indices for x in models[i].initial]
            ).reshape(len(indices), h)
            obs = np.array([models[i].observations for i in indices],
                           dtype=np.intp)
            likes = forward_multi_batch(bb, a, b, pi, obs)
            for j, i in enumerate(indices):
                out[i] = bb.item(likes, j)
    return out


# ----------------------------------------------------------------------
# Optimized fast paths (vectorized; used by large-scale experiments)
# ----------------------------------------------------------------------
def forward_float(a: np.ndarray, b: np.ndarray, pi: np.ndarray,
                  obs: np.ndarray) -> float:
    """Vectorized binary64 forward algorithm (Listing 1 semantics).

    Note: underflows to 0.0 for long sequences — that is the point.
    """
    alpha = pi * b[:, obs[0]]
    for ot in obs[1:]:
        alpha = (alpha @ a) * b[:, ot]
    return float(alpha.sum())


def forward_log(a: np.ndarray, b: np.ndarray, pi: np.ndarray,
                obs: np.ndarray) -> float:
    """Vectorized log-space forward algorithm (Listing 3 semantics).

    Uses ``np.logaddexp.reduce`` — the same LSE dataflow as Equation (3).
    Returns the log likelihood.
    """
    with np.errstate(divide="ignore"):
        ln_a = np.log(a)
        ln_b = np.log(b)
        ln_pi = np.log(pi)
    alpha = ln_pi + ln_b[:, obs[0]]
    for ot in obs[1:]:
        # alpha'[q] = LSE_p(alpha[p] + ln_a[p, q]) + ln_b[q, ot]
        alpha = np.logaddexp.reduce(alpha[:, None] + ln_a, axis=0) + ln_b[:, ot]
    return float(np.logaddexp.reduce(alpha))


def forward_rescaled(a: np.ndarray, b: np.ndarray, pi: np.ndarray,
                     obs: np.ndarray) -> tuple:
    """The classic scaling alternative the paper's related work dismisses
    for wide ranges (kept as an extra baseline/ablation): renormalize
    alpha each step and accumulate the log of the scale factors.

    Returns ``(log2_scale, mantissa)`` with likelihood =
    ``mantissa * 2**log2_scale``.
    """
    alpha = pi * b[:, obs[0]]
    log2_scale = 0
    for ot in obs[1:]:
        alpha = (alpha @ a) * b[:, ot]
        total = alpha.sum()
        if total <= 0.0:
            return float("-inf"), 0.0
        exp = int(np.floor(np.log2(total)))
        alpha = alpha * 2.0 ** (-exp)
        log2_scale += exp
    total = float(alpha.sum())
    return log2_scale, total


# ----------------------------------------------------------------------
# Operand harvesting (Fig. 3's application-sourced operands)
# ----------------------------------------------------------------------
class _TracingBackend(Backend):
    """Wraps the oracle backend, recording exact operands of every op."""

    name = "trace"

    def __init__(self, inner: Backend):
        self.inner = inner
        self.records: list = []

    def from_bigfloat(self, x: BigFloat):
        return self.inner.from_bigfloat(x)

    def to_bigfloat(self, value) -> BigFloat:
        return self.inner.to_bigfloat(value)

    def _rec(self, op: str, a, b):
        self.records.append((op,
                             Real.from_bigfloat(self.inner.to_bigfloat(a)),
                             Real.from_bigfloat(self.inner.to_bigfloat(b))))

    def add(self, a, b):
        self._rec("add", a, b)
        return self.inner.add(a, b)

    def mul(self, a, b):
        self._rec("mul", a, b)
        return self.inner.mul(a, b)

    def zero(self):
        return self.inner.zero()

    def one(self):
        return self.inner.one()

    def is_zero(self, value) -> bool:
        return self.inner.is_zero(value)


def trace_operands(hmm: HMMData, prec: int = 256,
                   max_records: Optional[int] = None) -> list:
    """Collect (op, x, y) operand triples from a forward-algorithm run in
    oracle arithmetic — the 'operands collected from a real phylogenetics
    application' input source for the Figure 3 sweep."""
    from ..arith.backends import BigFloatBackend
    tracer = _TracingBackend(BigFloatBackend(prec))
    forward(hmm, tracer)
    records = tracer.records
    if max_records is not None and len(records) > max_records:
        step = len(records) // max_records
        records = records[::step][:max_records]
    return records
