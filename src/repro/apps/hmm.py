"""Hidden Markov Model forward algorithm (Section V.A, Listings 1 and 3).

The recurrence is written *once*, as a :mod:`repro.nd` expression over
format-tagged arrays (:func:`_forward_nd` and friends): per step,
``alpha'[q] = sum_p(alpha[p] * A[p, q]) * B[q, o_t]`` with the format's
``sum`` fold over ``p`` in index order.  The :class:`FArray`
representation decides how it runs — through the registry-certified
batch mirror (binary64 bit-identical; posit/LNS element-exact;
log-space in ``sequential`` sum mode) or through the scalar backend
element by element (the BigFloat oracle, log-space's default n-ary
mode, the tracing wrapper, and every ``ExecPlan.serial()`` baseline).
Results are identical either way — that is the registry's
certification; with the log-space backend the same expression *is*
Listing 3 (multiplications become float adds, the accumulation the
n-ary LSE of Equation 3).  Optimized numpy fast paths for binary64 and
log-space are provided and cross-checked against the generic
implementation in the tests.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .. import faults as _faults
from .. import nd
from .. import telemetry as _tele
from ..arith.backend import Backend
from ..bigfloat import BigFloat
from ..data.dirichlet import HMMData
from ..engine.plan import ExecPlan, resolve_plan
from ..formats.real import Real
from ..nd.context import _resolve_format
from ..workloads.semiring import resolve_semiring


def model_arrays(hmm: HMMData, backend: Optional[Backend] = None,
                 plan: Optional[ExecPlan] = None, *,
                 certified: bool = True):
    """One HMM's parameters as :class:`~repro.nd.FArray`\\ s
    ``(transition (H, H), emission (H, M), initial (H,))``, converted
    exactly once.

    Conversion is input-side methodology (the paper rounds exact MPFR
    operands into each format), so it is hoisted out of the per-sequence
    recurrences: repeated-sequence sweeps must not redo
    ``from_bigfloat`` work per sequence.  The plan + ``certified`` tier
    select the representation (vectorized codes or scalar values); both
    hold the same rounded parameters, so downstream results do not
    depend on the choice.
    """
    backend = _resolve_format(backend)
    plan = resolve_plan(plan, where="model_arrays")
    a = nd.asarray(hmm.transition, backend, plan=plan, certified=certified)
    b = nd.asarray(hmm.emission, backend, plan=plan, certified=certified)
    pi = nd.asarray(hmm.initial, backend, plan=plan, certified=certified)
    return a, b, pi


# ----------------------------------------------------------------------
# The recurrences, written once as nd expressions
# ----------------------------------------------------------------------
def _emission_shared(b: "nd.FArray", obs: np.ndarray, t: int) -> "nd.FArray":
    """``B[q, o_t]`` per sequence for a shared model: ``(B, H)``."""
    return b[:, obs[:, t]].T


def _compiled_forward(a, b, pi, plan):
    """The compiled tier's fused forward kernels for these operands,
    or ``None`` for the generic expression (silent fallback: the tier
    is bit-identical, so the choice never changes results).  Only
    shared-model shapes fuse; ragged/odd shapes keep the nd path."""
    from ..engine.compiled import plan_compiled_kernels
    if a.ndim != 2 or b.ndim != 2 or pi.ndim != 1:
        return None
    return plan_compiled_kernels(plan, a, b, pi)


def _forward_recurrence(a, pi, emission, n_steps: int, semiring,
                        trace: bool = False) -> "nd.FArray":
    """The one HMM recurrence, over any semiring: per step,

        ``alpha'[q] = (⊕_p alpha[p] × A[p, q]) × B[q, o_t]``

    with the semiring's contraction over ``p`` in index order (the add
    monoid is ``nd.dot`` — mul + the format's ``sum`` fold, fused on
    decoded-plane mirrors so each operand decodes once per step; the
    max monoid is the exact code-order max).  ``alpha`` is always
    ``(B, H)``; ``a`` is ``(H, H)`` (shared model) or ``(B, H, H)``
    (per-model), ``emission(t)`` yields ``(B, H)``.  Returns the
    ``total_op`` reduction over states, ``(B,)`` — or, with ``trace``,
    the per-step totals stacked to ``(B, T)`` (Figure 1's data).

    Sum-product forward, Viterbi scoring, and the pair-HMM hybrid are
    this function under different semirings; the sum-product
    instantiation is op-for-op the pre-semiring kernel (pinned
    exhaustively in ``tests/test_workloads.py``).
    """
    alpha = semiring.times(pi, emission(0))
    totals = [semiring.reduce(alpha, axis=1)] if trace else None
    for t in range(1, n_steps):
        # path[s, q] = ⊕_p(alpha[s, p] × A[..., p, q])
        path = semiring.contract(alpha[:, :, None], a, axis=1)
        alpha = semiring.times(path, emission(t))
        if trace:
            totals.append(semiring.reduce(alpha, axis=1))
    if trace:
        return nd.stack(totals, axis=1)
    return semiring.reduce(alpha, axis=1)


def _forward_nd(a, b, pi, obs: np.ndarray,
                plan: Optional[ExecPlan] = None,
                semiring=None) -> "nd.FArray":
    """Forward likelihoods for a batch of sequences sharing one model:
    ``a (H, H)``, ``b (H, M)``, ``pi (H,)`` FArrays, ``obs (B, T)``
    ints; returns ``(B,)``.  Listing 1, vectorized across sequences.
    ``plan=ExecPlan(compiled=True)`` routes through the fused
    resident-plane kernel where the format registers one (sum-product
    only — the compiled tier bakes in the add monoid)."""
    obs = np.asarray(obs)
    if obs.ndim != 2:
        raise ValueError("obs must have shape (batch, T)")
    sr = resolve_semiring(semiring)
    if sr.plus_op == "add" and sr.total_op == "add":
        ck = _compiled_forward(a, b, pi, plan)
        if ck is not None:
            try:
                return nd.wrap(ck.forward(a.data, b.data, pi.data, obs),
                               bb=a._bb)
            except Exception as exc:
                # Degradation ladder: quarantine the compiled tier and
                # recompute on the batch path (bit-identical).
                _faults.degrade("compiled", exc)
    with _tele.span("app.hmm.forward"):
        return _forward_recurrence(
            a, pi, lambda t: _emission_shared(b, obs, t),
            obs.shape[1], sr)


def _forward_trace_nd(a, b, pi, obs: np.ndarray,
                      plan: Optional[ExecPlan] = None,
                      semiring=None) -> "nd.FArray":
    """Per-iteration total alpha mass, shape ``(B, T)`` — the data
    behind Figure 1."""
    obs = np.asarray(obs)
    sr = resolve_semiring(semiring)
    if sr.plus_op == "add" and sr.total_op == "add" and obs.ndim == 2:
        ck = _compiled_forward(a, b, pi, plan)
        if ck is not None:
            try:
                return nd.wrap(
                    ck.forward_trace(a.data, b.data, pi.data, obs),
                    bb=a._bb)
            except Exception as exc:
                _faults.degrade("compiled", exc)
    with _tele.span("app.hmm.forward_trace"):
        return _forward_recurrence(
            a, pi, lambda t: _emission_shared(b, obs, t),
            obs.shape[1], sr, trace=True)


def _forward_models_nd(a, b, pi, obs: np.ndarray,
                       semiring=None) -> "nd.FArray":
    """Forward likelihoods for a batch of *models* (the ViCAR/MCMC
    shape): ``a (B, H, H)``, ``b (B, H, M)``, ``pi (B, H)``,
    ``obs (B, T)``; returns ``(B,)``."""
    obs = np.asarray(obs)
    if obs.ndim != 2:
        raise ValueError("obs must have shape (batch, T)")
    if a.ndim != 3 or b.ndim != 3 or pi.ndim != 2:
        raise ValueError("need per-model params: a (B,H,H), b (B,H,M), "
                         "pi (B,H)")

    def emission(t):
        # b[s, :, obs[s, t]] for every model s, shape (B, H).
        return nd.take_along_axis(
            b, obs[:, t][:, None, None], axis=2)[..., 0]

    with _tele.span("app.hmm.forward_models"):
        return _forward_recurrence(a, pi, emission, obs.shape[1],
                                   resolve_semiring(semiring))


def _seq_rows(observations) -> list:
    """Observation sequences as integer tuples (lengths may differ)."""
    return [tuple(int(o) for o in seq) for seq in observations]


def _obs_rows(observations) -> np.ndarray:
    rows = _seq_rows(observations)
    if len({len(r) for r in rows}) > 1:
        raise ValueError("observation sequences must share one length "
                         "for a rectangular (batch, T) array")
    return np.asarray(rows, dtype=np.intp)


# ----------------------------------------------------------------------
# Public entry points (B=1 views and explicit batches)
# ----------------------------------------------------------------------
def forward(hmm: HMMData, backend: Optional[Backend] = None,
            observations=None, plan: Optional[ExecPlan] = None,
            semiring=None):
    """Run the forward algorithm; return the likelihood P(O | lambda) as
    a backend value (use ``backend.to_bigfloat`` to score it).

    ``backend`` defaults to the ambient :func:`repro.nd.use_format`
    format; ``plan`` to the ambient :func:`repro.nd.use_plan` plan.  A
    B=1 view over :func:`_forward_nd` with the *reduction-certified*
    representation tier, so the result never depends on the plan;
    ``plan=ExecPlan.serial()`` merely forces the scalar baseline.

    ``semiring`` (a :class:`~repro.workloads.semiring.Semiring` or
    registered name; default sum-product) swaps the recurrence algebra:
    ``"max-product"`` makes this the Viterbi *score* — the best single
    path's probability (see :func:`repro.workloads.viterbi` for path
    recovery).
    """
    plan = resolve_plan(plan, where="forward")
    obs = hmm.observations if observations is None else observations
    a, b, pi = model_arrays(hmm, backend, plan=plan, certified=True)
    return _forward_nd(a, b, pi, _obs_rows([obs]), plan=plan,
                       semiring=semiring).item(0)


def forward_alpha_trace(hmm: HMMData, backend: Optional[Backend] = None,
                        plan: Optional[ExecPlan] = None) -> list:
    """Per-iteration alpha summaries (backend values): the data behind
    Figure 1.  A B=1 view over :func:`_forward_trace_nd` in the
    reduction-certified tier."""
    plan = resolve_plan(plan, where="forward_alpha_trace")
    a, b, pi = model_arrays(hmm, backend, plan=plan, certified=True)
    trace = _forward_trace_nd(a, b, pi, _obs_rows([hmm.observations]),
                              plan=plan)
    return [trace.item((0, t)) for t in range(trace.shape[1])]


def alpha_scale_series(hmm: HMMData, prec: int = 96) -> List[int]:
    """Figure 1's y axis: the base-2 exponent of alpha's total mass per
    iteration, tracked in arbitrary-precision arithmetic so it stays
    exact far below binary64's range (the paper uses MPFR for this)."""
    from ..arith.backends import BigFloatBackend
    backend = BigFloatBackend(prec)
    trace = forward_alpha_trace(hmm, backend)
    return [v.scale for v in trace]


def forward_batch(hmm: HMMData, backend: Optional[Backend] = None,
                  observations=None,
                  plan: Optional[ExecPlan] = None,
                  semiring=None) -> list:
    """Forward algorithm over a batch of observation sequences.

    ``observations`` is a ``(B, T)`` integer array (default: a batch of
    one, the HMM's own sequence).  Returns a list of B likelihoods as
    backend values, equal element-for-element to calling
    :func:`forward` per sequence — exactly so for binary64, posit, LNS,
    and log-space with ``sum_mode="sequential"``; for log-space's
    default n-ary mode the batched LSE matches to within an ulp (NumPy's
    SIMD ``exp`` is not libm's; see :mod:`repro.engine.batch`).  The
    vectorized passes are sliced into groups of at most
    ``plan.batch_size``; formats without an array backend (the BigFloat
    oracle) run the same expression through the scalar representation,
    with the model conversion hoisted out of the per-sequence loop.
    """
    plan = resolve_plan(plan, where="forward_batch")
    if observations is None:
        observations = [hmm.observations]
    a, b, pi = model_arrays(hmm, backend, plan=plan, certified=False)
    seqs = _seq_rows(observations)
    if len({len(s) for s in seqs}) > 1:
        # Ragged batch: per-sequence B=1 passes over the hoisted model.
        return [_forward_nd(a, b, pi, np.asarray([s], dtype=np.intp),
                            plan=plan, semiring=semiring).item(0)
                for s in seqs]
    obs = np.asarray(seqs, dtype=np.intp)
    values: list = []
    for rows in plan.group_slices(obs.shape[0]):
        out = _forward_nd(a, b, pi, obs[rows], plan=plan,
                          semiring=semiring)
        values.extend(out.item(i) for i in range(out.shape[0]))
    return values


def forward_models_batch(models, backend: Optional[Backend] = None,
                         plan: Optional[ExecPlan] = None, *,
                         certified: bool = False,
                         semiring=None) -> list:
    """Forward likelihoods for many *models* (each with its own
    parameters and observation sequence) — the ViCAR/MCMC shape.

    Models are grouped by ``(H, M, T)`` and each group runs through
    :func:`_forward_models_nd` in passes of at most
    ``plan.batch_size`` models; the returned list matches the input
    order and equals calling :func:`forward` per model (exactly for
    binary64, posit, LNS, and log-space with
    ``sum_mode="sequential"``; within an ulp for log-space's default
    n-ary mode).  ``certified=True`` restricts the vectorized
    representation to reduction-certified mirrors, so results are
    guaranteed identical to the scalar loop (what MH acceptance
    decisions need); n-ary log-space and the oracle then run the same
    expression through the scalar representation.
    """
    backend = _resolve_format(backend)
    plan = resolve_plan(plan, where="forward_models_batch")
    models = list(models)
    groups: dict = {}
    for i, hmm in enumerate(models):
        key = (hmm.n_states, hmm.n_symbols, hmm.length)
        groups.setdefault(key, []).append(i)
    out: list = [None] * len(models)
    for _key, group in groups.items():
        for rows in plan.group_slices(len(group)):
            indices = group[rows]
            a = nd.asarray([models[i].transition for i in indices],
                           backend, plan=plan, certified=certified)
            b = nd.asarray([models[i].emission for i in indices],
                           backend, plan=plan, certified=certified)
            pi = nd.asarray([models[i].initial for i in indices],
                            backend, plan=plan, certified=certified)
            obs = np.array([models[i].observations for i in indices],
                           dtype=np.intp)
            likes = _forward_models_nd(a, b, pi, obs, semiring=semiring)
            for j, i in enumerate(indices):
                out[i] = likes.item(j)
    return out


# ----------------------------------------------------------------------
# Optimized fast paths (vectorized; used by large-scale experiments)
# ----------------------------------------------------------------------
def forward_float(a: np.ndarray, b: np.ndarray, pi: np.ndarray,
                  obs: np.ndarray) -> float:
    """Vectorized binary64 forward algorithm (Listing 1 semantics).

    Note: underflows to 0.0 for long sequences — that is the point.
    """
    alpha = pi * b[:, obs[0]]
    for ot in obs[1:]:
        alpha = (alpha @ a) * b[:, ot]
    return float(alpha.sum())


def forward_log(a: np.ndarray, b: np.ndarray, pi: np.ndarray,
                obs: np.ndarray) -> float:
    """Vectorized log-space forward algorithm (Listing 3 semantics).

    Uses ``np.logaddexp.reduce`` — the same LSE dataflow as Equation (3).
    Returns the log likelihood.
    """
    with np.errstate(divide="ignore"):
        ln_a = np.log(a)
        ln_b = np.log(b)
        ln_pi = np.log(pi)
    alpha = ln_pi + ln_b[:, obs[0]]
    for ot in obs[1:]:
        # alpha'[q] = LSE_p(alpha[p] + ln_a[p, q]) + ln_b[q, ot]
        alpha = np.logaddexp.reduce(alpha[:, None] + ln_a, axis=0) + ln_b[:, ot]
    return float(np.logaddexp.reduce(alpha))


def forward_rescaled(a: np.ndarray, b: np.ndarray, pi: np.ndarray,
                     obs: np.ndarray) -> tuple:
    """The classic scaling alternative the paper's related work dismisses
    for wide ranges (kept as an extra baseline/ablation): renormalize
    alpha each step and accumulate the log of the scale factors.

    Returns ``(log2_scale, mantissa)`` with likelihood =
    ``mantissa * 2**log2_scale``.
    """
    alpha = pi * b[:, obs[0]]
    log2_scale = 0
    for ot in obs[1:]:
        alpha = (alpha @ a) * b[:, ot]
        total = alpha.sum()
        if total <= 0.0:
            return float("-inf"), 0.0
        exp = int(np.floor(np.log2(total)))
        alpha = alpha * 2.0 ** (-exp)
        log2_scale += exp
    total = float(alpha.sum())
    return log2_scale, total


# ----------------------------------------------------------------------
# Operand harvesting (Fig. 3's application-sourced operands)
# ----------------------------------------------------------------------
class _TracingBackend(Backend):
    """Wraps the oracle backend, recording exact operands of every op."""

    name = "trace"

    def __init__(self, inner: Backend):
        self.inner = inner
        self.records: list = []

    def from_bigfloat(self, x: BigFloat):
        return self.inner.from_bigfloat(x)

    def to_bigfloat(self, value) -> BigFloat:
        return self.inner.to_bigfloat(value)

    def _rec(self, op: str, a, b):
        self.records.append((op,
                             Real.from_bigfloat(self.inner.to_bigfloat(a)),
                             Real.from_bigfloat(self.inner.to_bigfloat(b))))

    def add(self, a, b):
        self._rec("add", a, b)
        return self.inner.add(a, b)

    def mul(self, a, b):
        self._rec("mul", a, b)
        return self.inner.mul(a, b)

    def zero(self):
        return self.inner.zero()

    def one(self):
        return self.inner.one()

    def is_zero(self, value) -> bool:
        return self.inner.is_zero(value)


def trace_operands(hmm: HMMData, prec: int = 256,
                   max_records: Optional[int] = None) -> list:
    """Collect (op, x, y) operand triples from a forward-algorithm run in
    oracle arithmetic — the 'operands collected from a real phylogenetics
    application' input source for the Figure 3 sweep.  (The tracing
    wrapper is unknown to the registry, so the nd expression runs it
    through the scalar representation — every recorded op is a real
    scalar oracle op.)"""
    from ..arith.backends import BigFloatBackend
    tracer = _TracingBackend(BigFloatBackend(prec))
    forward(hmm, tracer)
    records = tracer.records
    if max_records is not None and len(records) > max_records:
        step = len(records) // max_records
        records = records[::step][:max_records]
    return records
