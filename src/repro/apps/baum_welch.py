"""Baum-Welch (EM) training of HMMs, generic over arithmetic backends.

The paper's motivation quotes a downstream consequence of underflow:
"underflow to zero prevents proper convergence and leads to incorrect
results" in inference algorithms.  Baum-Welch makes that concrete and
testable: the E step is exactly the forward-backward quantities whose
magnitudes collapse, and a backend that underflows produces degenerate
expected counts (0/0 normalizations) while log-space and posit backends
converge.

Re-estimation (Rabiner's classic formulas):

    gamma_t(i)  ~ alpha_t(i) * beta_t(i)
    xi_t(i,j)   ~ alpha_t(i) * a_ij * b_j(o_{t+1}) * beta_{t+1}(j)
    a'_ij  = sum_t xi_t(i,j) / sum_t gamma_t(i)
    b'_j(v) = sum_{t: o_t = v} gamma_t(j) / sum_t gamma_t(j)
    pi'_i  = gamma_0(i)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..arith.backend import Backend
from ..bigfloat import BigFloat
from ..data.dirichlet import HMMData
from .hmm import forward
from .hmm_extra import backward_matrix, forward_matrix


@dataclass
class TrainingTrace:
    """Per-iteration record of one Baum-Welch run."""

    log2_likelihoods: List[float]
    converged: bool
    degenerate: bool  # a normalization hit 0/0 (underflow collapse)
    model: Optional[HMMData]

    @property
    def iterations(self) -> int:
        return len(self.log2_likelihoods)

    def monotone_increasing(self, tol: float = 1e-6) -> bool:
        """EM guarantees non-decreasing likelihood (up to rounding)."""
        pairs = zip(self.log2_likelihoods, self.log2_likelihoods[1:])
        return all(b >= a - tol for a, b in pairs)


def _to_hmm(backend: Backend, a, b, pi, observations) -> HMMData:
    def grid(rows):
        return tuple(tuple(backend.to_bigfloat(v) for v in row)
                     for row in rows)
    return HMMData(grid(a), grid(b),
                   tuple(backend.to_bigfloat(v) for v in pi),
                   tuple(observations))


def baum_welch(hmm: HMMData, backend: Backend, iterations: int = 5) -> TrainingTrace:
    """Train ``iterations`` EM steps starting from ``hmm``'s parameters.

    Returns the per-iteration likelihood trajectory.  If any expected
    count normalizer underflows to the backend's zero, training is
    aborted and marked degenerate — the failure mode the paper's
    introduction describes for binary64.
    """
    h, m = hmm.n_states, hmm.n_symbols
    current = hmm
    log2_likes: List[float] = []
    for _ in range(iterations):
        like = forward(current, backend)
        if backend.is_zero(like):
            return TrainingTrace(log2_likes, False, True, None)
        log2_likes.append(_log2_of(backend, like))
        alphas = forward_matrix(current, backend)
        betas = backward_matrix(current, backend)
        a_vals = [[backend.from_bigfloat(x) for x in row]
                  for row in current.transition]
        b_vals = [[backend.from_bigfloat(x) for x in row]
                  for row in current.emission]
        obs = current.observations
        t_len = len(obs)
        # Expected counts (unnormalized gamma/xi sums).
        gamma_sum = [backend.zero()] * h  # over t = 0..T-2 (for A)
        gamma_total = [backend.zero()] * h  # over all t (for B)
        xi_sum = [[backend.zero()] * h for _ in range(h)]
        emit_sum = [[backend.zero()] * m for _ in range(h)]
        pi_new = [backend.mul(alphas[0][i], betas[0][i]) for i in range(h)]
        for t in range(t_len):
            for i in range(h):
                gamma = backend.mul(alphas[t][i], betas[t][i])
                gamma_total[i] = backend.add(gamma_total[i], gamma)
                emit_sum[i][obs[t]] = backend.add(emit_sum[i][obs[t]], gamma)
                if t < t_len - 1:
                    gamma_sum[i] = backend.add(gamma_sum[i], gamma)
                    for j in range(h):
                        xi = backend.mul(
                            backend.mul(alphas[t][i], a_vals[i][j]),
                            backend.mul(b_vals[j][obs[t + 1]],
                                        betas[t + 1][j]))
                        xi_sum[i][j] = backend.add(xi_sum[i][j], xi)
        if (any(backend.is_zero(g) for g in gamma_sum)
                or any(backend.is_zero(g) for g in gamma_total)):
            return TrainingTrace(log2_likes, False, True, None)
        a_new = [[backend.div(xi_sum[i][j], gamma_sum[i]) for j in range(h)]
                 for i in range(h)]
        b_new = [[backend.div(emit_sum[i][v], gamma_total[i])
                  for v in range(m)] for i in range(h)]
        pi_norm = backend.sum(pi_new)
        pi_new = [backend.div(p, pi_norm) for p in pi_new]
        current = _to_hmm(backend, a_new, b_new, pi_new, obs)
    converged = len(log2_likes) >= 2 and abs(
        log2_likes[-1] - log2_likes[-2]) < 1e-3 * max(1.0, abs(log2_likes[-1]))
    return TrainingTrace(log2_likes, converged, False, current)


def _log2_of(backend: Backend, value) -> float:
    from ..bigfloat import log2 as bf_log2
    return bf_log2(backend.to_bigfloat(value), 64).to_float()


def improvement_decades(trace: TrainingTrace) -> float:
    """Total likelihood improvement over training, in log2 units."""
    if len(trace.log2_likelihoods) < 2:
        return 0.0
    return trace.log2_likelihoods[-1] - trace.log2_likelihoods[0]
