"""LoFreq-like variant caller (Section V.A): PBD p-values over pileup
columns, with the paper's 2**-200 call threshold.

Produces the data behind Figures 9 and 11: per-column p-value relative
errors per format, split by magnitude bin and by critical/non-critical
status, plus application-level call concordance (does a format's
accuracy/underflow behaviour change which variants get called?).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..arith.backend import Backend
from ..arith.backends import BigFloatBackend
from ..bigfloat import BigFloat
from ..core.accuracy import OK, OVERFLOW, UNDERFLOW, OpResult, score_value
from ..data.genome import CALL_THRESHOLD_SCALE, Column
from ..engine.plan import ExecPlan, resolve_plan
from .pbd import pbd_pvalue, pbd_pvalue_batch


@dataclass
class ColumnScore:
    """One column's outcome in one format."""

    column: Column
    reference_scale: int
    result: OpResult
    called: Optional[bool]  # None when the format produced NaR

    @property
    def critical(self) -> bool:
        """True when the *true* p-value is below the call threshold."""
        return self.reference_scale < CALL_THRESHOLD_SCALE


@dataclass
class LoFreqResult:
    """All per-column scores for a set of formats."""

    scores: Dict[str, List[ColumnScore]] = field(default_factory=dict)

    def errors(self, fmt: str, critical: Optional[bool] = None,
               include_extreme: bool = True) -> List[float]:
        """log10 relative errors; optionally filter by criticality and
        drop 'extreme cases with relative error >= 1' as Figure 9 does."""
        out = []
        for s in self.scores[fmt]:
            if critical is not None and s.critical != critical:
                continue
            if s.result.status != OK:
                continue
            if not include_extreme and s.result.log10_error >= 0.0:
                continue
            out.append(s.result.log10_error)
        return out

    def underflow_count(self, fmt: str) -> int:
        return sum(1 for s in self.scores[fmt] if s.result.status == UNDERFLOW)

    def extreme_error_count(self, fmt: str) -> int:
        """Cases with relative error >= 1 (the paper reports 30 for
        posit(64,9) and 2 for posit(64,12))."""
        return sum(1 for s in self.scores[fmt]
                   if s.result.status == OK and s.result.log10_error >= 0.0)

    def call_discordance(self, fmt: str) -> int:
        """Columns where the format's variant call differs from truth."""
        return sum(1 for s in self.scores[fmt]
                   if s.called is None or s.called != s.critical)

    def errors_by_bin(self, fmt: str, bins: Sequence[tuple]) -> Dict[tuple, List[float]]:
        """Figure 9's view: errors grouped by true-p-value exponent bin
        (extreme >= 1 cases excluded, as in the figure)."""
        grouped: Dict[tuple, List[float]] = {b: [] for b in bins}
        for s in self.scores[fmt]:
            if s.result.status != OK or s.result.log10_error >= 0.0:
                continue
            for lo, hi in bins:
                if lo <= s.reference_scale < hi:
                    grouped[(lo, hi)].append(s.result.log10_error)
                    break
        return grouped


def reference_pvalues(columns: Sequence[Column], prec: int = 256) -> List[BigFloat]:
    oracle = BigFloatBackend(prec)
    return [pbd_pvalue(c.success_probs, c.k, oracle) for c in columns]


def column_pvalues(columns: Sequence[Column], backend: Backend,
                   plan: Optional[ExecPlan] = None) -> List:
    """Each column's p-value as a backend value, in column order.

    The canonical path groups columns by ``(depth, k)`` — the shape a
    batched recurrence shares — and runs each group through
    :func:`repro.apps.pbd.pbd_pvalue_batch` vectorized;
    ``plan=ExecPlan.serial()`` forces the scalar per-column loop.
    Results are identical either way.
    """
    plan = resolve_plan(plan, where="column_pvalues")
    if not plan.batch:
        return [pbd_pvalue(c.success_probs, c.k, backend, plan=plan)
                for c in columns]
    groups: Dict[tuple, List[int]] = {}
    for i, column in enumerate(columns):
        groups.setdefault((column.depth, column.k), []).append(i)
    values: List = [None] * len(columns)
    for (_depth, k), indices in groups.items():
        batch_values = pbd_pvalue_batch(
            [columns[i].success_probs for i in indices], k, backend,
            plan=plan)
        for i, value in zip(indices, batch_values):
            values[i] = value
    return values


def run_lofreq(columns: Sequence[Column], backends: Dict[str, Backend],
               references: Optional[Sequence[BigFloat]] = None,
               prec: int = 256,
               plan: Optional[ExecPlan] = None) -> LoFreqResult:
    """Compute every column's p-value in every format and score it.

    Execution (batched grouping, group width, scalar fallback) follows
    the :class:`~repro.engine.plan.ExecPlan`; results are identical for
    every plan (see :func:`column_pvalues`)."""
    plan = resolve_plan(plan, where="run_lofreq")
    if references is None:
        references = reference_pvalues(columns, prec)
    threshold = BigFloat.exp2(CALL_THRESHOLD_SCALE)
    result = LoFreqResult()
    for fmt, backend in backends.items():
        fmt_scores: List[ColumnScore] = []
        values = column_pvalues(columns, backend, plan=plan)
        for column, ref, value in zip(columns, references, values):
            score = score_value(backend, value, ref)
            called = _call(backend, value, threshold, score)
            fmt_scores.append(ColumnScore(column, ref.scale, score, called))
        result.scores[fmt] = fmt_scores
    return result


def _call(backend: Backend, value, threshold: BigFloat,
          score: OpResult) -> Optional[bool]:
    """LoFreq's decision: variant iff p-value < 2**-200.  Underflowed
    zeros compare below the threshold (they *are* called — with a wrong
    p-value); NaR/overflow yields no call."""
    if score.status == OVERFLOW:
        return None
    if backend.is_zero(value):
        return True
    return backend.to_bigfloat(value) < threshold
