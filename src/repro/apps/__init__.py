"""Statistical applications from the paper's case study: the HMM forward
algorithm (VICAR) and Poisson-binomial p-values (LoFreq)."""

from .hmm import (
    alpha_scale_series,
    forward,
    forward_alpha_trace,
    forward_batch,
    forward_float,
    forward_log,
    forward_models_batch,
    forward_rescaled,
    model_arrays,
    trace_operands,
)
from .pbd import (
    complement,
    pbd_pmf,
    pbd_pvalue,
    pbd_pvalue_batch,
    pbd_pvalue_float,
    pbd_pvalue_log,
    reference_pvalue,
)
from .vicar import (
    VicarConfig,
    VicarResult,
    generate_instances,
    paper_config,
    run_vicar,
    scaled_config,
)
from .lofreq import (
    ColumnScore,
    LoFreqResult,
    column_pvalues,
    reference_pvalues,
    run_lofreq,
)
from .hmm_extra import (
    backward,
    backward_batch,
    backward_matrix,
    forward_matrix,
    path_probability,
    posterior_decode,
    posterior_distributions,
    viterbi,
)
from .pbd_dft import dft_tail_resolution_limit, pbd_pmf_dft, pbd_pvalue_dft
from .baum_welch import TrainingTrace, baum_welch, improvement_decades
from .mcmc import ChainResult, run_chain, run_chains

__all__ = [
    "forward", "forward_alpha_trace", "alpha_scale_series",
    "forward_batch", "forward_models_batch", "model_arrays",
    "forward_float", "forward_log", "forward_rescaled", "trace_operands",
    "pbd_pvalue", "pbd_pmf", "pbd_pvalue_batch",
    "pbd_pvalue_float", "pbd_pvalue_log",
    "reference_pvalue", "complement",
    "VicarConfig", "VicarResult", "run_vicar", "paper_config",
    "scaled_config", "generate_instances",
    "ColumnScore", "LoFreqResult", "run_lofreq", "reference_pvalues",
    "column_pvalues",
    "backward", "backward_batch", "backward_matrix", "forward_matrix",
    "viterbi",
    "posterior_decode", "posterior_distributions", "path_probability",
    "pbd_pmf_dft", "pbd_pvalue_dft", "dft_tail_resolution_limit",
    "baum_welch", "TrainingTrace", "improvement_decades",
    "run_chain", "run_chains", "ChainResult",
]
