"""HMM algorithms beyond the paper's forward pass: backward, Viterbi and
posterior decoding.

These exercise the same probability arithmetic (iterated mul/add over
shrinking magnitudes) through different dataflows, and give the test
suite strong cross-validation invariants:

* forward and backward compute the *same* likelihood;
* posterior state probabilities sum to 1 at every position;
* the Viterbi path's probability is a lower bound on the likelihood.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .. import nd
from .. import telemetry as _tele
from ..arith.backend import Backend
from ..data.dirichlet import HMMData
from ..engine.plan import ExecPlan, resolve_plan


def _backward_nd(a, b, pi, obs: np.ndarray) -> "nd.FArray":
    """Right-to-left recurrence over a batch of sequences sharing one
    model, written once as an nd expression: ``beta[p] = sum_q(A[p, q]
    * (B[q, o_t] * beta[q]))`` with the ``sum`` fold over ``q`` in
    index order.  Returns the ``(B,)`` likelihoods."""
    from .hmm import _emission_shared
    obs = np.asarray(obs)
    if obs.ndim != 2:
        raise ValueError("obs must have shape (batch, T)")
    n_batch, t_len = obs.shape
    with _tele.span("app.hmm.backward"):
        beta = nd.ones_like(a, (n_batch, len(pi)))
        for t in range(t_len - 1, 0, -1):
            inner = _emission_shared(b, obs, t) * beta
            beta = nd.dot(a, inner[:, None, :], axis=2)
        terms = nd.broadcast_to(pi, beta.shape) \
            * (_emission_shared(b, obs, 0) * beta)
        return nd.sum(terms, axis=1)


def backward(hmm: HMMData, backend: Optional[Backend] = None,
             plan: Optional[ExecPlan] = None):
    """The backward algorithm: returns the likelihood P(O | lambda)
    computed right-to-left (must agree with :func:`repro.apps.forward`).

    A B=1 view over :func:`_backward_nd` in the *reduction-certified*
    representation tier (so this scalar entry point never changes
    results); ``plan=ExecPlan.serial()`` forces the scalar baseline.
    """
    from .hmm import _obs_rows, model_arrays
    plan = resolve_plan(plan, where="backward")
    a, b, pi = model_arrays(hmm, backend, plan=plan, certified=True)
    return _backward_nd(a, b, pi, _obs_rows([hmm.observations])).item(0)


def backward_batch(hmm: HMMData, backend: Optional[Backend] = None,
                   observations=None,
                   plan: Optional[ExecPlan] = None) -> list:
    """Backward-algorithm likelihoods over a batch of observation
    sequences (``(B, T)`` ints; default: a batch of one, the HMM's own
    sequence).  Same contract as :func:`repro.apps.hmm.forward_batch`:
    vectorized in groups of at most ``plan.batch_size`` where the
    format has an array mirror, equal to the scalar recurrence per
    sequence (exactly, except log-space's default n-ary mode, which
    matches within an ulp); other formats run the same expression
    through the scalar representation with the model conversion hoisted
    out of the per-sequence recurrence.
    """
    from .hmm import _seq_rows, model_arrays
    plan = resolve_plan(plan, where="backward_batch")
    if observations is None:
        observations = [hmm.observations]
    a, b, pi = model_arrays(hmm, backend, plan=plan, certified=False)
    seqs = _seq_rows(observations)
    if len({len(s) for s in seqs}) > 1:
        # Ragged batch: per-sequence B=1 passes over the hoisted model.
        return [_backward_nd(a, b, pi,
                             np.asarray([s], dtype=np.intp)).item(0)
                for s in seqs]
    obs = np.asarray(seqs, dtype=np.intp)
    values: list = []
    for rows in plan.group_slices(obs.shape[0]):
        out = _backward_nd(a, b, pi, obs[rows])
        values.extend(out.item(i) for i in range(out.shape[0]))
    return values


def forward_matrix(hmm: HMMData, backend: Backend) -> List[list]:
    """All alpha vectors (T x H backend values)."""
    obs = hmm.observations
    h = hmm.n_states
    a = [[backend.from_bigfloat(x) for x in row] for row in hmm.transition]
    b = [[backend.from_bigfloat(x) for x in row] for row in hmm.emission]
    pi = [backend.from_bigfloat(x) for x in hmm.initial]
    alphas = [[backend.mul(pi[q], b[q][obs[0]]) for q in range(h)]]
    for t in range(1, len(obs)):
        ot = obs[t]
        prev = alphas[-1]
        alphas.append([
            backend.mul(backend.sum(backend.mul(prev[p], a[p][q])
                                    for p in range(h)), b[q][ot])
            for q in range(h)])
    return alphas


def backward_matrix(hmm: HMMData, backend: Backend) -> List[list]:
    """All beta vectors (T x H backend values)."""
    obs = hmm.observations
    h = hmm.n_states
    a = [[backend.from_bigfloat(x) for x in row] for row in hmm.transition]
    b = [[backend.from_bigfloat(x) for x in row] for row in hmm.emission]
    betas = [[backend.one()] * h]
    for t in range(len(obs) - 1, 0, -1):
        ot = obs[t]
        nxt = betas[0]
        betas.insert(0, [backend.sum(
            backend.mul(a[p][q], backend.mul(b[q][ot], nxt[q]))
            for q in range(h)) for p in range(h)])
    return betas


def posterior_decode(hmm: HMMData, backend: Backend) -> List[int]:
    """Most probable state at each position: argmax_q alpha_t[q]*beta_t[q].

    The argmax is taken by exact value comparison (via the backend's
    BigFloat view), so posterior decoding is well-defined even for
    formats whose encodings are not order-isomorphic to floats.
    """
    alphas = forward_matrix(hmm, backend)
    betas = backward_matrix(hmm, backend)
    path = []
    for alpha_t, beta_t in zip(alphas, betas):
        best_q, best_v = 0, None
        for q, (av, bv) in enumerate(zip(alpha_t, beta_t)):
            prod = backend.mul(av, bv)
            value = None if backend.is_zero(prod) else backend.to_bigfloat(prod)
            if value is None:
                continue
            if best_v is None or value > best_v:
                best_q, best_v = q, value
        path.append(best_q)
    return path


def posterior_distributions(hmm: HMMData, backend: Backend) -> List[list]:
    """gamma_t(q) = P(q_t = q | O) as backend values, normalized by the
    likelihood.  Only meaningful for backends with division (the oracle
    and binary64); used by the invariants tests."""
    alphas = forward_matrix(hmm, backend)
    betas = backward_matrix(hmm, backend)
    out = []
    for alpha_t, beta_t in zip(alphas, betas):
        out.append([backend.mul(a, b) for a, b in zip(alpha_t, beta_t)])
    return out


def viterbi(hmm: HMMData, backend: Backend) -> Tuple[List[int], object]:
    """Most probable state path and its probability.

    ``max`` is evaluated by exact value comparison.  In log-space the
    products become sums and the same code applies unchanged — Viterbi
    needs no LSE at all, which is why log-space Viterbi is cheap while
    the forward algorithm is not (the paper's LSE cost argument applies
    only to *summing* paths).
    """
    obs = hmm.observations
    h = hmm.n_states
    a = [[backend.from_bigfloat(x) for x in row] for row in hmm.transition]
    b = [[backend.from_bigfloat(x) for x in row] for row in hmm.emission]
    pi = [backend.from_bigfloat(x) for x in hmm.initial]

    def key(value):
        if backend.is_zero(value):
            return None
        return backend.to_bigfloat(value)

    delta = [backend.mul(pi[q], b[q][obs[0]]) for q in range(h)]
    parents: List[List[int]] = []
    for t in range(1, len(obs)):
        ot = obs[t]
        nxt = []
        row_parents = []
        for q in range(h):
            best_v = backend.mul(delta[0], a[0][q])
            best_p, best_key = 0, key(best_v)
            for p in range(1, h):
                cand = backend.mul(delta[p], a[p][q])
                ck = key(cand)
                if best_key is None or (ck is not None and ck > best_key):
                    best_p, best_v, best_key = p, cand, ck
            nxt.append(backend.mul(best_v, b[q][ot]))
            row_parents.append(best_p)
        delta = nxt
        parents.append(row_parents)
    # Trace back from the best final state.
    best_q, best_key = 0, key(delta[0])
    for q in range(1, h):
        ck = key(delta[q])
        if best_key is None or (ck is not None and ck > best_key):
            best_q, best_key = q, ck
    path = [best_q]
    for row_parents in reversed(parents):
        path.append(row_parents[path[-1]])
    path.reverse()
    return path, delta[path[-1]]


def path_probability(hmm: HMMData, path: List[int], backend: Backend):
    """P(O, q = path | lambda): probability of one specific state path —
    used to verify Viterbi's optimality against brute force."""
    obs = hmm.observations
    a = [[backend.from_bigfloat(x) for x in row] for row in hmm.transition]
    b = [[backend.from_bigfloat(x) for x in row] for row in hmm.emission]
    pi = [backend.from_bigfloat(x) for x in hmm.initial]
    p = backend.mul(pi[path[0]], b[path[0]][obs[0]])
    for t in range(1, len(obs)):
        p = backend.mul(p, backend.mul(a[path[t - 1]][path[t]],
                                       b[path[t]][obs[t]]))
    return p
