"""HMM algorithms beyond the paper's forward pass: backward, Viterbi and
posterior decoding.

These exercise the same probability arithmetic (iterated mul/add over
shrinking magnitudes) through different dataflows, and give the test
suite strong cross-validation invariants:

* forward and backward compute the *same* likelihood;
* posterior state probabilities sum to 1 at every position;
* the Viterbi path's probability is a lower bound on the likelihood.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..arith.backend import Backend
from ..data.dirichlet import HMMData
from ..engine.plan import ExecPlan, resolve_plan


def _backward_values(backend: Backend, a, b, pi, obs):
    """Right-to-left recurrence over pre-converted parameters: the
    scalar reference, kept for formats without a certified mirror."""
    h = len(pi)
    one = backend.one()
    beta = [one] * h
    for t in range(len(obs) - 1, 0, -1):
        ot = obs[t]
        beta = [backend.sum(
            backend.mul(a[p][q], backend.mul(b[q][ot], beta[q]))
            for q in range(h)) for p in range(h)]
    o0 = obs[0]
    return backend.sum(
        backend.mul(pi[q], backend.mul(b[q][o0], beta[q])) for q in range(h))


def backward(hmm: HMMData, backend: Backend,
             plan: Optional[ExecPlan] = None):
    """The backward algorithm: returns the likelihood P(O | lambda)
    computed right-to-left (must agree with :func:`repro.apps.forward`).

    A B=1 view over the batched backward kernel wherever the format's
    mirror is *reduction-certified* (so this scalar entry point never
    changes results); ``plan=ExecPlan.serial()`` forces the scalar
    recurrence.
    """
    import numpy as np

    from ..engine import plan_batch_backend
    from .hmm import batch_model_arrays, model_values
    plan = resolve_plan(plan, where="backward")
    bb = plan_batch_backend(backend, plan)
    if bb is None:
        a, b, pi = model_values(hmm, backend)
        return _backward_values(backend, a, b, pi, hmm.observations)
    from ..engine.kernels import backward_batch as backward_batch_kernel
    obs = np.asarray([tuple(int(o) for o in hmm.observations)],
                     dtype=np.intp)
    a, b, pi = batch_model_arrays(hmm, bb)
    return bb.item(backward_batch_kernel(bb, a, b, pi, obs), 0)


def backward_batch(hmm: HMMData, backend: Backend,
                   observations=None,
                   plan: Optional[ExecPlan] = None) -> list:
    """Backward-algorithm likelihoods over a batch of observation
    sequences (``(B, T)`` ints; default: a batch of one, the HMM's own
    sequence).  Same contract as :func:`repro.apps.hmm.forward_batch`:
    formats with an array backend run the vectorized kernel in groups
    of at most ``plan.batch_size`` and equal the scalar recurrence per
    sequence (exactly, except log-space's default n-ary mode, which
    matches within an ulp); others run the scalar loop with the model
    conversion hoisted out of the per-sequence recurrence.
    """
    import numpy as np

    from .hmm import _kernel_backend, batch_model_arrays, model_values
    plan = resolve_plan(plan, where="backward_batch")
    if observations is None:
        observations = [hmm.observations]
    bb = _kernel_backend(backend, plan, certified=False)
    if bb is None:
        a, b, pi = model_values(hmm, backend)
        return [_backward_values(backend, a, b, pi,
                                 tuple(int(o) for o in seq))
                for seq in observations]
    from ..engine.kernels import backward_batch as backward_batch_kernel
    obs = np.asarray(observations, dtype=np.intp)
    a, b, pi = batch_model_arrays(hmm, bb)
    values: list = []
    for rows in plan.group_slices(obs.shape[0]):
        out = backward_batch_kernel(bb, a, b, pi, obs[rows])
        values.extend(bb.item(out, i) for i in range(out.shape[0]))
    return values


def forward_matrix(hmm: HMMData, backend: Backend) -> List[list]:
    """All alpha vectors (T x H backend values)."""
    obs = hmm.observations
    h = hmm.n_states
    a = [[backend.from_bigfloat(x) for x in row] for row in hmm.transition]
    b = [[backend.from_bigfloat(x) for x in row] for row in hmm.emission]
    pi = [backend.from_bigfloat(x) for x in hmm.initial]
    alphas = [[backend.mul(pi[q], b[q][obs[0]]) for q in range(h)]]
    for t in range(1, len(obs)):
        ot = obs[t]
        prev = alphas[-1]
        alphas.append([
            backend.mul(backend.sum(backend.mul(prev[p], a[p][q])
                                    for p in range(h)), b[q][ot])
            for q in range(h)])
    return alphas


def backward_matrix(hmm: HMMData, backend: Backend) -> List[list]:
    """All beta vectors (T x H backend values)."""
    obs = hmm.observations
    h = hmm.n_states
    a = [[backend.from_bigfloat(x) for x in row] for row in hmm.transition]
    b = [[backend.from_bigfloat(x) for x in row] for row in hmm.emission]
    betas = [[backend.one()] * h]
    for t in range(len(obs) - 1, 0, -1):
        ot = obs[t]
        nxt = betas[0]
        betas.insert(0, [backend.sum(
            backend.mul(a[p][q], backend.mul(b[q][ot], nxt[q]))
            for q in range(h)) for p in range(h)])
    return betas


def posterior_decode(hmm: HMMData, backend: Backend) -> List[int]:
    """Most probable state at each position: argmax_q alpha_t[q]*beta_t[q].

    The argmax is taken by exact value comparison (via the backend's
    BigFloat view), so posterior decoding is well-defined even for
    formats whose encodings are not order-isomorphic to floats.
    """
    alphas = forward_matrix(hmm, backend)
    betas = backward_matrix(hmm, backend)
    path = []
    for alpha_t, beta_t in zip(alphas, betas):
        best_q, best_v = 0, None
        for q, (av, bv) in enumerate(zip(alpha_t, beta_t)):
            prod = backend.mul(av, bv)
            value = None if backend.is_zero(prod) else backend.to_bigfloat(prod)
            if value is None:
                continue
            if best_v is None or value > best_v:
                best_q, best_v = q, value
        path.append(best_q)
    return path


def posterior_distributions(hmm: HMMData, backend: Backend) -> List[list]:
    """gamma_t(q) = P(q_t = q | O) as backend values, normalized by the
    likelihood.  Only meaningful for backends with division (the oracle
    and binary64); used by the invariants tests."""
    alphas = forward_matrix(hmm, backend)
    betas = backward_matrix(hmm, backend)
    out = []
    for alpha_t, beta_t in zip(alphas, betas):
        out.append([backend.mul(a, b) for a, b in zip(alpha_t, beta_t)])
    return out


def viterbi(hmm: HMMData, backend: Backend) -> Tuple[List[int], object]:
    """Most probable state path and its probability.

    ``max`` is evaluated by exact value comparison.  In log-space the
    products become sums and the same code applies unchanged — Viterbi
    needs no LSE at all, which is why log-space Viterbi is cheap while
    the forward algorithm is not (the paper's LSE cost argument applies
    only to *summing* paths).
    """
    obs = hmm.observations
    h = hmm.n_states
    a = [[backend.from_bigfloat(x) for x in row] for row in hmm.transition]
    b = [[backend.from_bigfloat(x) for x in row] for row in hmm.emission]
    pi = [backend.from_bigfloat(x) for x in hmm.initial]

    def key(value):
        if backend.is_zero(value):
            return None
        return backend.to_bigfloat(value)

    delta = [backend.mul(pi[q], b[q][obs[0]]) for q in range(h)]
    parents: List[List[int]] = []
    for t in range(1, len(obs)):
        ot = obs[t]
        nxt = []
        row_parents = []
        for q in range(h):
            best_v = backend.mul(delta[0], a[0][q])
            best_p, best_key = 0, key(best_v)
            for p in range(1, h):
                cand = backend.mul(delta[p], a[p][q])
                ck = key(cand)
                if best_key is None or (ck is not None and ck > best_key):
                    best_p, best_v, best_key = p, cand, ck
            nxt.append(backend.mul(best_v, b[q][ot]))
            row_parents.append(best_p)
        delta = nxt
        parents.append(row_parents)
    # Trace back from the best final state.
    best_q, best_key = 0, key(delta[0])
    for q in range(1, h):
        ck = key(delta[q])
        if best_key is None or (ck is not None and ck > best_key):
            best_q, best_key = q, ck
    path = [best_q]
    for row_parents in reversed(parents):
        path.append(row_parents[path[-1]])
    path.reverse()
    return path, delta[path[-1]]


def path_probability(hmm: HMMData, path: List[int], backend: Backend):
    """P(O, q = path | lambda): probability of one specific state path —
    used to verify Viterbi's optimality against brute force."""
    obs = hmm.observations
    a = [[backend.from_bigfloat(x) for x in row] for row in hmm.transition]
    b = [[backend.from_bigfloat(x) for x in row] for row in hmm.emission]
    pi = [backend.from_bigfloat(x) for x in hmm.initial]
    p = backend.mul(pi[path[0]], b[path[0]][obs[0]])
    for t in range(1, len(obs)):
        p = backend.mul(p, backend.mul(a[path[t - 1]][path[t]],
                                       b[path[t]][obs[t]]))
    return p
