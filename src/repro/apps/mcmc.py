"""Metropolis-Hastings over HMM parameters — the paper's cited failure
mode for underflow in Bayesian inference ([47], [81]: "underflow to zero
prevents proper convergence ... in algorithms such as Variational
Inference and Markov Chain Monte Carlo").

The acceptance decision needs the likelihood *ratio* L(theta') / L(theta).
When both likelihoods underflow to zero the ratio is 0/0: the chain
cannot move rationally.  This module runs a small random-walk MH chain
over the transition-matrix concentration and reports acceptance
statistics per backend, making the paper's motivation measurable:

* binary64: every proposal evaluates to 0 -> the chain is **stuck**
  (or accepts blindly, depending on the 0/0 convention — we count both);
* log-space and posit: the ratio is well-defined and the chain mixes.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional

from ..arith.backend import Backend
from ..bigfloat import BigFloat
from ..data.dirichlet import HMMData, sample_hcg_like_hmm
from ..engine.plan import ExecPlan, resolve_plan
from .hmm import forward_models_batch


@dataclass
class ChainResult:
    """Outcome of one Metropolis-Hastings run."""

    accepted: int
    rejected: int
    stuck: int  # proposals where the ratio was undefined (0/0)
    samples: List[float] = field(default_factory=list)  # accepted params

    @property
    def steps(self) -> int:
        return self.accepted + self.rejected + self.stuck

    @property
    def acceptance_rate(self) -> float:
        moves = self.accepted + self.rejected
        return self.accepted / moves if moves else 0.0

    @property
    def mixed(self) -> bool:
        """A healthy chain both accepts and rejects and is never stuck."""
        return self.stuck == 0 and self.accepted > 0 and self.rejected > 0


def _likelihood_ratio(backend: Backend, proposed, current) -> Optional[float]:
    """L(theta')/L(theta) as a float in [0, inf); None when undefined."""
    p_zero = backend.is_zero(proposed)
    c_zero = backend.is_zero(current)
    if p_zero and c_zero:
        return None  # 0/0: the underflow pathology
    if p_zero:
        return 0.0
    if c_zero:
        return math.inf
    ratio = backend.div(proposed, current)
    value = backend.to_bigfloat(ratio)
    f = value.to_float()
    return f if math.isfinite(f) else math.inf


def _perturbed_model(base: HMMData, scale_jitter: float,
                     seed: int) -> HMMData:
    """Propose new parameters: rescale the emission magnitudes slightly
    (a random-walk step on the magnitude parameter the synthetic HCG
    generator exposes)."""
    rng = random.Random(seed)
    factor = BigFloat.from_float(math.exp(rng.gauss(0.0, scale_jitter)))
    emission = tuple(tuple(v.mul(factor, 128) for v in row)
                     for row in base.emission)
    return HMMData(base.transition, emission, base.initial,
                   base.observations)


def run_chain(backend: Backend, base: Optional[HMMData] = None,
              steps: int = 20, seed: int = 0,
              scale_jitter: float = 0.2,
              bits_per_step: float = 150.0,
              plan: Optional[ExecPlan] = None) -> ChainResult:
    """Run one random-walk MH chain; returns acceptance statistics.

    A one-chain view over :func:`run_chains` — there is a single chain
    recurrence, shared by the scalar and batched paths.  The default
    workload's likelihood (~2**-4500 for 30 sites at 150 bits/site) is
    far below binary64's range, so the binary64 chain is stuck from the
    first proposal.
    """
    bases = None if base is None else [base]
    return run_chains(backend, 1, bases=bases, steps=steps, seeds=[seed],
                      scale_jitter=scale_jitter,
                      bits_per_step=bits_per_step, plan=plan)[0]


def run_chains(backend: Backend, n_chains: int,
               bases: Optional[List[HMMData]] = None,
               steps: int = 20, seeds: Optional[List[int]] = None,
               scale_jitter: float = 0.2,
               bits_per_step: float = 150.0,
               plan: Optional[ExecPlan] = None) -> List[ChainResult]:
    """Run ``n_chains`` independent MH chains, evaluating every step's
    likelihoods through the vectorized multi-model forward kernel.

    There is one chain recurrence: the per-step likelihood evaluation
    flows through :func:`repro.apps.hmm.forward_models_batch` with
    ``certified=True`` — vectorized for reduction-certified formats,
    the scalar reference recurrence for the rest (the BigFloat oracle,
    n-ary log-space) — so chain ``c`` is decision-for-decision
    identical for *every* plan (the proposal and acceptance RNG streams
    depend only on ``seeds[c]``, and likelihoods never differ between
    paths).  ``plan=ExecPlan.serial()`` forces the scalar loop, which
    is the throughput baseline, not a different algorithm.
    """
    plan = resolve_plan(plan, where="run_chains")
    if seeds is None:
        seeds = list(range(n_chains))
    if len(seeds) != n_chains:
        raise ValueError("need one seed per chain")
    if bases is None:
        bases = [sample_hcg_like_hmm(3, 30, seed=s,
                                     bits_per_step=bits_per_step)
                 for s in seeds]
    if len(bases) != n_chains:
        raise ValueError("need one base model per chain")
    rngs = [random.Random(s) for s in seeds]
    current_models = list(bases)
    current_likes = forward_models_batch(current_models, backend, plan=plan,
                                         certified=True)
    results = [ChainResult(0, 0, 0) for _ in range(n_chains)]
    for step in range(steps):
        proposals = [_perturbed_model(current_models[c], scale_jitter,
                                      seed=seeds[c] * 1000 + step)
                     for c in range(n_chains)]
        proposed_likes = forward_models_batch(proposals, backend, plan=plan,
                                              certified=True)
        for c in range(n_chains):
            result = results[c]
            ratio = _likelihood_ratio(backend, proposed_likes[c],
                                      current_likes[c])
            if ratio is None:
                result.stuck += 1
                continue
            if ratio >= 1.0 or rngs[c].random() < ratio:
                result.accepted += 1
                current_models[c] = proposals[c]
                current_likes[c] = proposed_likes[c]
                result.samples.append(ratio)
            else:
                result.rejected += 1
    return results
