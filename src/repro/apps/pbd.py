"""Poisson Binomial Distribution PMF and p-value (Section V.A, Listing 2).

Given N independent Bernoulli trials with success probabilities ``p_n``
and an observed success count K, the kernel iterates the PMF recurrence

    ``pr[k] = pr_prev[k] * (1 - p_n) + pr_prev[k-1] * p_n``

and accumulates the p-value ``P(X >= K)`` as the probability that the
K-th success arrives at trial n:

    ``pvalue += pr_prev[K-1] * p_n``   (for n > K ... N)

which is exactly Listing 2.  The generic implementation is parameterized
by an arithmetic backend; ``1 - p_n`` is computed exactly on the input
side (LoFreq precomputes ``ln(1 - p_n)`` the same way) so log-space never
needs a subtraction.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .. import faults as _faults
from .. import nd
from .. import telemetry as _tele
from ..arith.backend import Backend
from ..bigfloat import BigFloat
from ..engine.plan import ExecPlan, resolve_plan


def complement(p: BigFloat, prec: int = 256) -> BigFloat:
    """Exactly-rounded ``1 - p`` for a probability input.

    Validates the probability domain: a success probability outside
    [0, 1] is a workload-generation bug, and letting it through would
    silently break every downstream recurrence.
    """
    if p.is_negative() or p > BigFloat.from_int(1):
        raise ValueError("success probability must lie in [0, 1]")
    return BigFloat.from_int(1).sub(p, prec)


def _pbd_nd(pn: "nd.FArray", qn: "nd.FArray", k: int,
            plan: Optional[ExecPlan] = None) -> "nd.FArray":
    """Listing 2 over a batch of sites, written once as an nd
    expression: ``pn``/``qn`` are ``(S, N)`` success probabilities and
    their exact complements; returns the ``(S,)`` p-values.

    The per-``j`` recurrence is vectorized over sites *and* PMF
    entries, which is value-preserving because ``add(x, 0)`` and
    ``mul(0, p)`` are exact in every backend.  Built from ``add`` and
    ``mul`` alone (no reductions), so the elementwise certification
    tier suffices — log-space qualifies in *both* sum modes
    (``np.logaddexp`` is bit-identical to ``lse2``).
    """
    if k < 1:
        raise ValueError("k must be >= 1 (a variant needs a success)")
    n_sites, n_trials = pn.shape
    if n_trials < k:
        raise ValueError("need at least k trials")
    from ..engine.compiled import plan_compiled_kernels
    ck = plan_compiled_kernels(plan, pn, qn)
    if ck is not None:
        # The fused resident-plane recurrence (bit-identical; the trial
        # probabilities decode once for all N trials).
        try:
            return nd.wrap(ck.pbd(pn.data, qn.data, k), bb=pn._bb)
        except Exception as exc:
            # Degradation ladder: quarantine the compiled tier and
            # recompute on the batch path (bit-identical).
            _faults.degrade("compiled", exc)
    with _tele.span("app.pbd"):
        # pr[s, j] = P(j successes in the first n trials), tracked for
        # j < k.
        pr = nd.concatenate([nd.ones_like(pn, (n_sites, 1)),
                             nd.zeros_like(pn, (n_sites, k - 1))], axis=1)
        pvalue = nd.zeros_like(pn, (n_sites,))
        zero_col = nd.zeros_like(pn, (n_sites, 1))
        for n in range(n_trials):
            if n >= k - 1:
                pvalue = nd.multiply_add(pr[:, k - 1], pn[:, n], pvalue)
            shifted = nd.concatenate([zero_col, pr[:, :-1]], axis=1)
            pr = nd.multiply_add(shifted, pn[:, n:n + 1],
                                 pr * qn[:, n:n + 1])
        return pvalue


def _site_arrays(sites: Sequence[Sequence[BigFloat]], backend, plan):
    """(pn, qn) FArrays for a group of equal-length sites; complements
    are formed exactly on the input side (LoFreq precomputes
    ``ln(1 - p_n)`` the same way) so log-space never subtracts."""
    flat = [p for row in sites for p in row]
    flat_q = [complement(p) for row in sites for p in row]
    shape = (len(sites), len(sites[0]))
    pn = nd.asarray(flat, backend, plan=plan).reshape(shape)
    qn = nd.asarray(flat_q, backend, plan=plan).reshape(shape)
    return pn, qn


def pbd_pvalue(success_probs: Sequence[BigFloat], k: int,
               backend: Optional[Backend] = None,
               plan: Optional[ExecPlan] = None):
    """P(X >= k) over the given trials, as a backend value.

    Follows Listing 2: the PMF array ``pr`` only needs entries 0..k-1
    because trials beyond the k-th success contribute through the
    accumulation term.  A one-site view over :func:`_pbd_nd`;
    ``plan=ExecPlan.serial()`` forces the scalar representation.
    Results are identical either way.
    """
    plan = resolve_plan(plan, where="pbd_pvalue")
    if k < 1:
        raise ValueError("k must be >= 1 (a variant needs a success)")
    if len(success_probs) < k:
        raise ValueError("need at least k trials")
    pn, qn = _site_arrays([list(success_probs)], backend, plan)
    return _pbd_nd(pn, qn, k, plan=plan).item(0)


def pbd_pmf(success_probs: Sequence[BigFloat], max_k: int, backend: Backend) -> list:
    """The full PMF row P(X = j) for j = 0..max_k after all trials."""
    pn_vals = [backend.from_bigfloat(p) for p in success_probs]
    qn_vals = [backend.from_bigfloat(complement(p)) for p in success_probs]
    zero = backend.zero()
    pr_prev: List = [backend.one()] + [zero] * max_k
    for n in range(len(success_probs)):
        pn, qn = pn_vals[n], qn_vals[n]
        pr = [backend.mul(pr_prev[0], qn)]
        for j in range(1, max_k + 1):
            pr.append(backend.add(backend.mul(pr_prev[j], qn),
                                  backend.mul(pr_prev[j - 1], pn)))
        pr_prev = pr
    return pr_prev


def reference_pvalue(success_probs: Sequence[BigFloat], k: int,
                     prec: int = 256) -> BigFloat:
    """Oracle p-value at the given precision (the paper's 256-bit MPFR
    baseline)."""
    from ..arith.backends import BigFloatBackend
    return pbd_pvalue(success_probs, k, BigFloatBackend(prec))


def pbd_pvalue_batch(sites: Sequence[Sequence[BigFloat]], k: int,
                     backend: Optional[Backend] = None,
                     plan: Optional[ExecPlan] = None) -> list:
    """P(X >= k) for a batch of sites sharing trial count and ``k``.

    ``sites`` is a list of equal-length success-probability rows.
    Returns one backend value per site, equal element-for-element to
    calling :func:`pbd_pvalue` per site.  Formats with an array backend
    in :mod:`repro.engine` run the recurrence vectorized in groups of
    at most ``plan.batch_size`` sites; others (the BigFloat oracle)
    run the same expression through the scalar representation.
    """
    plan = resolve_plan(plan, where="pbd_pvalue_batch")
    sites = list(sites)
    if not sites:
        return []
    n_trials = len(sites[0])
    if any(len(row) != n_trials for row in sites):
        raise ValueError("batched sites must share a trial count; "
                         "group by (depth, k) first")
    values: list = []
    for rows in plan.group_slices(len(sites)):
        group = sites[rows]
        pn, qn = _site_arrays(group, backend, plan)
        out = _pbd_nd(pn, qn, k, plan=plan)
        values.extend(out.item(i) for i in range(len(group)))
    return values


# ----------------------------------------------------------------------
# Vectorized fast paths
# ----------------------------------------------------------------------
def pbd_pvalue_float(success_probs: np.ndarray, k: int) -> float:
    """Vectorized binary64 PBD p-value (underflows for deep tails)."""
    p = np.asarray(success_probs, dtype=float)
    pr = np.zeros(k, dtype=float)
    pr[0] = 1.0
    pvalue = 0.0
    for n in range(p.shape[0]):
        pn = p[n]
        shifted = np.empty_like(pr)
        shifted[0] = 0.0
        shifted[1:] = pr[:-1]
        if n >= k - 1:
            pvalue += pr[k - 1] * pn
        pr = pr * (1.0 - pn) + shifted * pn
    return float(pvalue)


def pbd_pvalue_log(success_probs: np.ndarray, k: int) -> float:
    """Vectorized log-space PBD p-value (returns the natural log).

    ``np.logaddexp`` performs the binary LSE of Equation (2); this is the
    software structure of the paper's log-based column unit.
    """
    p = np.asarray(success_probs, dtype=float)
    with np.errstate(divide="ignore"):
        ln_p = np.log(p)
        ln_q = np.log1p(-p)
    neg_inf = -np.inf
    pr = np.full(k, neg_inf)
    pr[0] = 0.0
    ln_pvalue = neg_inf
    for n in range(p.shape[0]):
        lpn, lqn = ln_p[n], ln_q[n]
        shifted = np.empty_like(pr)
        shifted[0] = neg_inf
        shifted[1:] = pr[:-1]
        if n >= k - 1:
            ln_pvalue = np.logaddexp(ln_pvalue, pr[k - 1] + lpn)
        pr = np.logaddexp(pr + lqn, shifted + lpn)
    return float(ln_pvalue)
