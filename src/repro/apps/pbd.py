"""Poisson Binomial Distribution PMF and p-value (Section V.A, Listing 2).

Given N independent Bernoulli trials with success probabilities ``p_n``
and an observed success count K, the kernel iterates the PMF recurrence

    ``pr[k] = pr_prev[k] * (1 - p_n) + pr_prev[k-1] * p_n``

and accumulates the p-value ``P(X >= K)`` as the probability that the
K-th success arrives at trial n:

    ``pvalue += pr_prev[K-1] * p_n``   (for n > K ... N)

which is exactly Listing 2.  The generic implementation is parameterized
by an arithmetic backend; ``1 - p_n`` is computed exactly on the input
side (LoFreq precomputes ``ln(1 - p_n)`` the same way) so log-space never
needs a subtraction.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..arith.backend import Backend
from ..bigfloat import BigFloat
from ..engine.plan import ExecPlan, resolve_plan


def complement(p: BigFloat, prec: int = 256) -> BigFloat:
    """Exactly-rounded ``1 - p`` for a probability input.

    Validates the probability domain: a success probability outside
    [0, 1] is a workload-generation bug, and letting it through would
    silently break every downstream recurrence.
    """
    if p.is_negative() or p > BigFloat.from_int(1):
        raise ValueError("success probability must lie in [0, 1]")
    return BigFloat.from_int(1).sub(p, prec)


def _pbd_pvalue_values(backend: Backend, pn_vals: list, qn_vals: list,
                       k: int):
    """Listing 2 over pre-converted trial probabilities: the scalar
    reference recurrence, kept for formats without a batch mirror."""
    zero = backend.zero()
    # pr[j] = P(j successes in the first n trials), tracked for j < k.
    pr_prev: List = [backend.one()] + [zero] * (k - 1)
    pvalue = zero
    for n in range(len(pn_vals)):
        pn, qn = pn_vals[n], qn_vals[n]
        pr = [backend.mul(pr_prev[0], qn)]
        for j in range(1, k):
            pr.append(backend.add(backend.mul(pr_prev[j], qn),
                                  backend.mul(pr_prev[j - 1], pn)))
        if n >= k - 1:
            pvalue = backend.add(pvalue, backend.mul(pr_prev[k - 1], pn))
        pr_prev = pr
    return pvalue


def _elementwise_backend(backend: Backend, plan: ExecPlan):
    """The batch mirror the plan selects for the PBD kernels.

    The recurrence is built from ``add``/``mul`` alone (no reductions),
    so the elementwise pairing tier is already exact — log-space
    qualifies in *both* sum modes (``np.logaddexp`` is bit-identical to
    ``lse2``).
    """
    from ..engine import plan_batch_backend
    return plan_batch_backend(backend, plan, certified=False)


def pbd_pvalue(success_probs: Sequence[BigFloat], k: int, backend: Backend,
               plan: Optional[ExecPlan] = None):
    """P(X >= k) over the given trials, as a backend value.

    Follows Listing 2: the PMF array ``pr`` only needs entries 0..k-1
    because trials beyond the k-th success contribute through the
    accumulation term.  Runs through the batched kernel as a batch of
    one site wherever the format has an (elementwise-exact) array
    backend; ``plan=ExecPlan.serial()`` forces the scalar recurrence.
    Results are identical either way.
    """
    plan = resolve_plan(plan, where="pbd_pvalue")
    if k < 1:
        raise ValueError("k must be >= 1 (a variant needs a success)")
    n_trials = len(success_probs)
    if n_trials < k:
        raise ValueError("need at least k trials")
    bb = _elementwise_backend(backend, plan)
    if bb is not None:
        from ..engine.kernels import pbd_pvalue_batch as pbd_batch_kernel
        pn = bb.from_bigfloats(success_probs).reshape(1, n_trials)
        complements = [complement(p) for p in success_probs]
        qn = bb.from_bigfloats(complements).reshape(1, n_trials)
        return bb.item(pbd_batch_kernel(bb, pn, qn, k), 0)
    pn_vals = [backend.from_bigfloat(p) for p in success_probs]
    qn_vals = [backend.from_bigfloat(complement(p)) for p in success_probs]
    return _pbd_pvalue_values(backend, pn_vals, qn_vals, k)


def pbd_pmf(success_probs: Sequence[BigFloat], max_k: int, backend: Backend) -> list:
    """The full PMF row P(X = j) for j = 0..max_k after all trials."""
    pn_vals = [backend.from_bigfloat(p) for p in success_probs]
    qn_vals = [backend.from_bigfloat(complement(p)) for p in success_probs]
    zero = backend.zero()
    pr_prev: List = [backend.one()] + [zero] * max_k
    for n in range(len(success_probs)):
        pn, qn = pn_vals[n], qn_vals[n]
        pr = [backend.mul(pr_prev[0], qn)]
        for j in range(1, max_k + 1):
            pr.append(backend.add(backend.mul(pr_prev[j], qn),
                                  backend.mul(pr_prev[j - 1], pn)))
        pr_prev = pr
    return pr_prev


def reference_pvalue(success_probs: Sequence[BigFloat], k: int,
                     prec: int = 256) -> BigFloat:
    """Oracle p-value at the given precision (the paper's 256-bit MPFR
    baseline)."""
    from ..arith.backends import BigFloatBackend
    return pbd_pvalue(success_probs, k, BigFloatBackend(prec))


def pbd_pvalue_batch(sites: Sequence[Sequence[BigFloat]], k: int,
                     backend: Backend,
                     plan: Optional[ExecPlan] = None) -> list:
    """P(X >= k) for a batch of sites sharing trial count and ``k``.

    ``sites`` is a list of equal-length success-probability rows.
    Returns one backend value per site, equal element-for-element to
    calling :func:`pbd_pvalue` per site.  Formats with an array backend
    in :mod:`repro.engine` run the recurrence vectorized in groups of
    at most ``plan.batch_size`` sites; others (the BigFloat oracle)
    fall back to the scalar loop.
    """
    plan = resolve_plan(plan, where="pbd_pvalue_batch")
    sites = list(sites)
    if not sites:
        return []
    n_trials = len(sites[0])
    if any(len(row) != n_trials for row in sites):
        raise ValueError("batched sites must share a trial count; "
                         "group by (depth, k) first")
    bb = _elementwise_backend(backend, plan)
    if bb is None:
        return [pbd_pvalue(row, k, backend, plan=plan) for row in sites]
    from ..engine.kernels import pbd_pvalue_batch as pbd_batch_kernel
    values: list = []
    for rows in plan.group_slices(len(sites)):
        group = sites[rows]
        flat = [p for row in group for p in row]
        flat_q = [complement(p) for row in group for p in row]
        pn = bb.from_bigfloats(flat).reshape(len(group), n_trials)
        qn = bb.from_bigfloats(flat_q).reshape(len(group), n_trials)
        out = pbd_batch_kernel(bb, pn, qn, k)
        values.extend(bb.item(out, i) for i in range(len(group)))
    return values


# ----------------------------------------------------------------------
# Vectorized fast paths
# ----------------------------------------------------------------------
def pbd_pvalue_float(success_probs: np.ndarray, k: int) -> float:
    """Vectorized binary64 PBD p-value (underflows for deep tails)."""
    p = np.asarray(success_probs, dtype=float)
    pr = np.zeros(k, dtype=float)
    pr[0] = 1.0
    pvalue = 0.0
    for n in range(p.shape[0]):
        pn = p[n]
        shifted = np.empty_like(pr)
        shifted[0] = 0.0
        shifted[1:] = pr[:-1]
        if n >= k - 1:
            pvalue += pr[k - 1] * pn
        pr = pr * (1.0 - pn) + shifted * pn
    return float(pvalue)


def pbd_pvalue_log(success_probs: np.ndarray, k: int) -> float:
    """Vectorized log-space PBD p-value (returns the natural log).

    ``np.logaddexp`` performs the binary LSE of Equation (2); this is the
    software structure of the paper's log-based column unit.
    """
    p = np.asarray(success_probs, dtype=float)
    with np.errstate(divide="ignore"):
        ln_p = np.log(p)
        ln_q = np.log1p(-p)
    neg_inf = -np.inf
    pr = np.full(k, neg_inf)
    pr[0] = 0.0
    ln_pvalue = neg_inf
    for n in range(p.shape[0]):
        lpn, lqn = ln_p[n], ln_q[n]
        shifted = np.empty_like(pr)
        shifted[0] = neg_inf
        shifted[1:] = pr[:-1]
        if n >= k - 1:
            ln_pvalue = np.logaddexp(ln_pvalue, pr[k - 1] + lpn)
        pr = np.logaddexp(pr + lqn, shifted + lpn)
    return float(ln_pvalue)
