"""Batched quire accumulation: exact posit sums as uint64 limb arrays.

The scalar :class:`repro.formats.quire.Quire` holds one exact
fixed-point accumulator as an arbitrary-precision Python int scaled by
``2**-frac_bits``.  A :class:`BatchQuire` holds a whole *array* of such
accumulators as a ``(..., n_limbs)`` uint64 array — two's-complement,
little-endian limbs — and performs every accumulate/round step with
fixed-width integer array operations:

* a decoded posit (or an exact 128-bit posit product) lands in at most
  three limbs; the per-element limb offset scatter and the multi-limb
  carry propagation are both vectorized;
* the quire is sized like the scalar one (``frac_bits =
  2*|min_scale| + 2*nbits``) plus integer range for ``maxpos**2`` and a
  64-bit carry guard, so sums of up to ``2**63`` extreme products
  cannot wrap;
* the final :meth:`to_posit` rounding normalizes the limb array to a
  left-aligned 64-bit significand plus a sticky bit and reuses
  :class:`~repro.engine.posit_batch.BatchPosit`'s exact encoder.

Element-for-element equality with the scalar ``Quire`` is enforced by
``tests/test_engine_quire_batch.py`` (exhaustively at 8 bits).

Widths: the quire for posit(N, ES) spans ``4*(N-2)*2**ES + O(N)`` bits,
so the paper's posit(64, >=9) configurations would need thousands of
limbs per element — the quire-impracticality flip side of the paper's
large-ES accuracy argument.  The default ``max_limbs`` refuses such
configurations; pass a larger cap to pay the memory anyway.
"""

from __future__ import annotations

import numpy as np

from .. import telemetry as _tele
from ..formats.posit import PositEnv
from .posit_batch import (
    BatchPosit,
    _bit_length64,
    _low_mask,
    _shl64,
    _shr64,
    _shr128_sticky,
    _u64,
    _umul64,
)

_U64 = np.uint64
_TOP64 = np.uint64(1) << np.uint64(63)


def quire_limbs(env: PositEnv) -> int:
    """Limbs needed for an exact accumulator over ``env``:
    fraction down to ``minpos**2``, integers up to ``maxpos**2``, a
    64-bit carry guard and a sign bit."""
    frac_bits = 2 * abs(env.min_scale) + 2 * env.nbits
    total = frac_bits + 2 * env.max_scale + 1 + 64 + 1
    return -(-total // 64)


class BatchQuire:
    """An array of exact accumulators bound to one posit environment.

    ``shape`` is the accumulator array shape; every accumulate method
    takes pattern arrays broadcastable to it.
    """

    def __init__(self, env: PositEnv, shape=(), max_limbs: int = 1024,
                 batch: BatchPosit = None):
        self.env = env
        self.shape = (shape,) if isinstance(shape, int) else tuple(shape)
        #: Fixed-point position: products reach down to minpos^2.
        self.frac_bits = 2 * abs(env.min_scale) + 2 * env.nbits
        self.n_limbs = quire_limbs(env)
        if self.n_limbs > max_limbs:
            raise ValueError(
                f"{env.name} needs a {self.n_limbs}-limb quire "
                f"(> max_limbs={max_limbs}); large-ES posits make wide "
                f"accumulators impractical — raise max_limbs to force it")
        self._batch = batch if batch is not None else BatchPosit(env)
        self._value = np.zeros(self.shape + (self.n_limbs,), dtype=np.uint64)
        self._nar = np.zeros(self.shape, dtype=bool)
        #: Scratch addend reused across accumulate calls (chained
        #: ``add_posit``/``add_product`` must not reallocate per term).
        self._addend = np.zeros_like(self._value)

    # ------------------------------------------------------------------
    def clear(self) -> "BatchQuire":
        self._value[...] = 0
        self._nar[...] = False
        return self

    @property
    def is_nar(self) -> np.ndarray:
        return self._nar.copy()

    # ------------------------------------------------------------------
    # Limb plumbing
    # ------------------------------------------------------------------
    def _gather(self, idx: np.ndarray) -> np.ndarray:
        """``value[..., idx]`` with per-element ``idx``; 0 out of range."""
        idx = np.asarray(idx)
        safe = np.clip(idx, 0, self.n_limbs - 1)
        out = np.take_along_axis(self._value, safe[..., None], axis=-1)
        out = out[..., 0]
        return np.where((idx < 0) | (idx >= self.n_limbs), _U64(0), out)

    def _scatter_chunks(self, bitpos: np.ndarray, chunks) -> np.ndarray:
        """The reusable addend limb array with ``chunks[j]`` placed at
        bit offset ``bitpos + 64*j``.  ``bitpos`` must be >= 0; writes
        beyond the top limb carry no set bits (guard sizing) and are
        dropped.

        Each piece lands in its own limb per element (offsets are
        ``limb + i`` for distinct ``i``), so pieces scatter straight
        into the preallocated addend — processed highest-first so a
        clamped out-of-range write never clobbers an in-range one.
        """
        limb = (bitpos // 64).astype(np.intp)
        off = _u64(bitpos - limb * 64)  # in [0, 63]: plain shifts apply
        off_zero = off == 0
        spill = (_U64(64) - off) & _U64(63)  # shift count for the carry
        prev_hi = np.zeros(self.shape, dtype=np.uint64)
        pieces = []
        for chunk in chunks:
            chunk = _u64(chunk)
            pieces.append((chunk << off) | prev_hi)
            # off == 0 spills nothing (spill is 0 there, a no-op shift
            # that the mask discards).
            prev_hi = np.where(off_zero, _U64(0), chunk >> spill)
        pieces.append(prev_hi)
        addend = self._addend
        addend[...] = 0
        top = self.n_limbs - 1
        for j in range(len(pieces) - 1, -1, -1):
            idx = limb + j
            in_range = idx <= top
            np.put_along_axis(
                addend, np.minimum(idx, top)[..., None],
                np.where(in_range, pieces[j], _U64(0))[..., None], axis=-1)
        return addend

    def _accumulate(self, addend: np.ndarray, negate: np.ndarray) -> None:
        """``value += addend`` (or ``-= `` on negated lanes), two's
        complement across limbs; wraparound is precluded by the guard
        sizing.  Runs in place on the limb views (no per-term
        temporaries beyond the carry lane)."""
        negate = np.broadcast_to(negate, self.shape)
        carry = negate.astype(np.uint64)
        value = self._value
        for i in range(self.n_limbs):
            a_i = np.where(negate, ~addend[..., i], addend[..., i])
            v_i = value[..., i]
            np.add(v_i, a_i, out=v_i)
            c1 = v_i < a_i
            np.add(v_i, carry, out=v_i)
            c2 = v_i < carry
            carry = (c1 | c2).astype(np.uint64)

    # ------------------------------------------------------------------
    # Accumulation
    # ------------------------------------------------------------------
    def add_posit(self, bits, negate=False) -> "BatchQuire":
        """Accumulate one array of posit values exactly."""
        with np.errstate(over="ignore"):
            bits = np.broadcast_to(_u64(bits), self.shape)
            zero, nar, sign, frac64, scale = self._batch._decode(bits)
            if _tele.current() is not None:
                self._tally(nar)
            self._nar |= nar
            dead = zero | nar
            frac64 = np.where(dead, _U64(0), frac64)
            # Value = frac64 * 2**(scale - 63): bit 0 of frac64 sits at
            # fixed-point position frac_bits + scale - 63.  When that is
            # negative the low frac64 bits there are zeros by
            # construction (a decoded posit has <= nbits-2 significant
            # bits), so the pre-shift is exact.
            bitpos = np.where(dead, 0, self.frac_bits + scale - 63)
            under = np.maximum(-bitpos, 0)
            frac64 = _shr64(frac64, under)
            bitpos = np.maximum(bitpos, 0)
            addend = self._scatter_chunks(bitpos, [frac64])
            self._accumulate(addend, np.asarray(sign) ^ bool(negate))
        return self

    def sub_posit(self, bits) -> "BatchQuire":
        return self.add_posit(bits, negate=True)

    def add_product(self, a_bits, b_bits, negate=False) -> "BatchQuire":
        """Fused multiply-accumulate: += (or -=) a*b, exactly."""
        with np.errstate(over="ignore"):
            a_bits = np.broadcast_to(_u64(a_bits), self.shape)
            b_bits = np.broadcast_to(_u64(b_bits), self.shape)
            za, na, sa, fa, ea = self._batch._decode(a_bits)
            zb, nb, sb, fb, eb = self._batch._decode(b_bits)
            if _tele.current() is not None:
                self._tally(na | nb)
            self._nar |= na | nb
            dead = za | zb | na | nb
            hi, lo = _umul64(fa, fb)
            hi = np.where(dead, _U64(0), hi)
            lo = np.where(dead, _U64(0), lo)
            # Product = (hi, lo) * 2**(ea + eb - 126); the two factors
            # carry at most 2*(nbits - 2) significant bits between them,
            # so a negative bit position only ever shifts out zeros.
            bitpos = np.where(dead, 0, self.frac_bits + ea + eb - 126)
            under = np.maximum(-bitpos, 0)
            hi, lo, _lost = _shr128_sticky(hi, lo, under)
            bitpos = np.maximum(bitpos, 0)
            addend = self._scatter_chunks(bitpos, [lo, hi])
            self._accumulate(addend, np.asarray(sa ^ sb) ^ bool(negate))
        return self

    def _tally(self, nar_in: np.ndarray) -> None:
        """Count accumulated terms and newly NaR-poisoned lanes (only
        called while a telemetry collector is active)."""
        _tele.count("quire.accumulate", int(np.prod(self.shape or (1,))))
        n = int(np.count_nonzero(nar_in & ~self._nar))
        if n:
            _tele.event("quire.nar", n)

    # ------------------------------------------------------------------
    # Rounding
    # ------------------------------------------------------------------
    def to_posit(self) -> np.ndarray:
        """Round every accumulator to a posit (the only rounding)."""
        if _tele.current() is not None:
            _tele.count("quire.to_posit",
                        int(np.prod(self.shape or (1,))))
        with np.errstate(over="ignore"):
            return self._to_posit()

    def _to_posit(self) -> np.ndarray:
        value = self._value
        sign = (value[..., -1] & _TOP64) != 0
        # |value| limbs: two's-complement negate the negative lanes.
        mag = np.where(sign[..., None], ~value, value)
        carry = sign.astype(np.uint64)
        for i in range(self.n_limbs):
            s = mag[..., i] + carry
            carry = (s < carry).astype(np.uint64)
            mag[..., i] = s
        nonzero = mag != 0
        # Highest nonzero limb via one argmax over the reversed limb
        # axis, then one bit-length on that limb alone.
        any_nz = nonzero.any(axis=-1)
        top_idx = (self.n_limbs - 1
                   - np.argmax(nonzero[..., ::-1], axis=-1).astype(np.int64))
        top_limb = np.take_along_axis(mag, top_idx[..., None],
                                      axis=-1)[..., 0]
        msb = np.where(any_nz, top_idx * 64 + _bit_length64(top_limb) - 1,
                       np.int64(-1))
        is_zero = msb < 0
        scale = msb - self.frac_bits
        # 64-bit window [msb-63, msb] + sticky for everything below.
        shift_r = msb - 63  # may be negative (small values)
        limb = np.floor_divide(shift_r, 64).astype(np.intp)
        off = _u64(shift_r - limb * 64)
        low = self._take_mag(mag, limb)
        high = self._take_mag(mag, limb + 1)
        frac64 = _shr64(low, off) | _shl64(high, _U64(64) - off)
        below = np.zeros(self.shape + (self.n_limbs,), dtype=bool)
        below[..., 1:] = np.logical_or.accumulate(nonzero, axis=-1)[..., :-1]
        below_limb = np.take_along_axis(
            below, np.clip(limb, 0, self.n_limbs - 1)[..., None],
            axis=-1)[..., 0] & (limb > 0)
        sticky = below_limb | ((low & _low_mask(off)) != 0)
        sticky = np.where(limb < 0, False, sticky)
        frac64 = np.where(is_zero, _U64(1) << _U64(63), frac64)
        pattern = self._batch._encode(sign, np.where(is_zero, 0, scale),
                                      frac64, sticky)
        pattern = np.where(is_zero, _U64(0), pattern)
        return np.where(self._nar, _U64(self.env.nar), pattern)

    def _take_mag(self, mag: np.ndarray, idx: np.ndarray) -> np.ndarray:
        safe = np.clip(idx, 0, self.n_limbs - 1)
        out = np.take_along_axis(mag, safe[..., None], axis=-1)[..., 0]
        return np.where((idx < 0) | (idx >= self.n_limbs), _U64(0), out)

    def __repr__(self):
        return (f"BatchQuire({self.env.name}: shape={self.shape}, "
                f"{self.n_limbs} limbs)")


# ----------------------------------------------------------------------
# Fused reductions (the standard's fdp, batched)
# ----------------------------------------------------------------------
def fused_dot_product_batch(env: PositEnv, xs, ys, axis: int = -1,
                            max_limbs: int = 1024) -> np.ndarray:
    """Correctly rounded dot products along ``axis``: one rounding per
    output element (the batched counterpart of
    :func:`repro.formats.quire.fused_dot_product`)."""
    xs = np.moveaxis(_u64(xs), axis, -1)
    ys = np.moveaxis(_u64(ys), axis, -1)
    xs, ys = np.broadcast_arrays(xs, ys)
    q = BatchQuire(env, xs.shape[:-1], max_limbs=max_limbs)
    for i in range(xs.shape[-1]):
        q.add_product(xs[..., i], ys[..., i])
    return q.to_posit()


def fused_sum_batch(env: PositEnv, arr, axis: int = -1,
                    max_limbs: int = 1024) -> np.ndarray:
    """Exact sums along ``axis``, rounded once per output element (the
    batched counterpart of :meth:`PositEnv.fused_sum`)."""
    arr = np.moveaxis(_u64(arr), axis, -1)
    q = BatchQuire(env, arr.shape[:-1], max_limbs=max_limbs)
    for i in range(arr.shape[-1]):
        q.add_posit(arr[..., i])
    return q.to_posit()
