"""Batched arithmetic backends: the array counterpart of
:class:`repro.arith.Backend`.

The scalar backends pay a Python-interpreter round trip per operation —
fine for per-op accuracy measurement, hopeless for application-scale
workloads (the paper's own point about software-emulated formats).  A
:class:`BatchBackend` performs the *same* operation on whole NumPy arrays
of backend values, preserving the scalar backends' numerics:

* ``BatchBinary64`` is trivially bit-identical (the ops are the same IEEE
  ops).
* ``BatchLogSpace`` uses ``np.logaddexp`` for probability addition, which
  routes through the C library's scalar ``exp``/``log1p`` and is
  bit-identical to :func:`repro.formats.logspace.lse2` (verified by the
  equivalence tests).  N-ary accumulation offers two modes, defaulting
  to ``"nary"`` like the scalar backend: ``"nary"`` is the Equation-3
  max/exp/log dataflow, which matches :func:`lse_n` to within an ulp but
  not bit-for-bit because NumPy's SIMD ``exp`` is not the libm ``exp``;
  ``"sequential"`` is the binary-LSE fold, bit-identical to the scalar
  backend constructed with the same mode.
* ``BatchPosit`` (see :mod:`repro.engine.posit_batch`) is element-exact
  against :class:`repro.formats.posit.PositEnv`.

Values enter through :meth:`BatchBackend.from_bigfloats`, which performs
the conversion with the *scalar* backend element by element — conversions
are input-side and must be bit-identical, so they are never re-derived in
floating point.
"""

from __future__ import annotations

import abc
from typing import Iterable, List, Optional

import numpy as np

from .. import telemetry as _tele
from ..arith.backend import Backend
from ..arith.backends import Binary64Backend, LogSpaceBackend
from ..bigfloat import BigFloat, DEFAULT_PRECISION

SUM_SEQUENTIAL = "sequential"
SUM_NARY = "nary"


class BatchBackend(abc.ABC):
    """Arithmetic over arrays of values in one number representation.

    Arrays hold raw backend values (float64 probabilities, float64 logs,
    uint64 posit patterns).  All binary operations broadcast like NumPy
    ufuncs.  ``sum`` reduces along an axis with *scalar-faithful* order:
    the result of ``sum`` must equal folding the scalar backend's
    ``sum`` over the same values in the same order.
    """

    #: Short identifier, matching the scalar backend's ``name``.
    name: str = "abstract-batch"
    #: NumPy dtype of value arrays.
    dtype: np.dtype = np.dtype(np.float64)
    #: Array namespace the vectorized passes run on (array-API style,
    #: the ``xp`` convention).  NumPy is the default and the only
    #: namespace the exactness suites certify; subclasses accept
    #: ``xp=`` so a CuPy-like module (NumPy-compatible broadcasting
    #: ufuncs, ``where``/``minimum``/``concatenate``, 64-bit integer
    #: dtypes) can be dropped in without another refactor.  The
    #: compiled tier (:mod:`repro.engine.compiled`) inherits it.
    xp = np

    @property
    @abc.abstractmethod
    def scalar(self) -> Backend:
        """The scalar backend whose numerics this batch backend mirrors."""

    # ------------------------------------------------------------------
    # Conversions (always via the scalar backend: input-side, exact)
    # ------------------------------------------------------------------
    def from_bigfloats(self, values: Iterable[BigFloat]) -> np.ndarray:
        return np.array([self.scalar.from_bigfloat(v) for v in values],
                        dtype=self.dtype)

    def from_floats(self, values) -> np.ndarray:
        return np.array([self.scalar.from_float(float(v)) for v in
                         np.asarray(values).ravel()],
                        dtype=self.dtype).reshape(np.asarray(values).shape)

    def to_bigfloats(self, arr: np.ndarray) -> List[BigFloat]:
        return [self.scalar.to_bigfloat(v.item()) for v in
                np.asarray(arr).ravel()]

    def item(self, arr: np.ndarray, index=()):
        """One element as a scalar-backend value (for scoring)."""
        return np.asarray(arr)[index].item()

    def from_items(self, values, shape=None) -> np.ndarray:
        """Scalar-backend values back into a code array — the inverse
        of :meth:`item` (used by :mod:`repro.nd` when an object-mode
        array re-enters the vectorized representation)."""
        arr = np.array(list(values), dtype=self.dtype)
        return arr if shape is None else arr.reshape(shape)

    # ------------------------------------------------------------------
    # Array constructors
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def zeros(self, shape) -> np.ndarray:
        """Array of the additive identity (probability 0)."""

    @abc.abstractmethod
    def ones(self, shape) -> np.ndarray:
        """Array of the multiplicative identity (probability 1)."""

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise probability addition (LSE in log-space)."""

    @abc.abstractmethod
    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise probability multiplication."""

    @abc.abstractmethod
    def is_zero(self, arr: np.ndarray) -> np.ndarray:
        """Boolean mask of exact zero probabilities."""

    def sub(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise probability subtraction ``a - b``.

        Every registered mirror implements this natively (element-exact
        against the scalar backend's ``sub``); the default mirrors the
        scalar protocol and raises for exotic mirrors without one.
        """
        raise NotImplementedError(
            f"{self.name} batch backend does not support subtraction")

    def div(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise probability division ``a / b`` (see :meth:`sub`
        for the native-coverage contract)."""
        raise NotImplementedError(
            f"{self.name} batch backend does not support division")

    def recip(self, arr: np.ndarray) -> np.ndarray:
        """Elementwise reciprocal: ``div(1, x)`` through the native
        division kernel."""
        return self.div(self.ones(np.shape(arr)), arr)

    def axpy(self, a: np.ndarray, x: np.ndarray, y: np.ndarray
             ) -> np.ndarray:
        """``a*x + y`` with both intermediate roundings — exactly
        ``add(mul(a, x), y)``.  Mirrors with a decoded plane
        (:class:`~repro.engine.posit_batch.BatchPosit`) override this
        with a fused kernel that decodes each operand once."""
        return self.add(self.mul(a, x), y)

    def sum(self, arr: np.ndarray, axis: int = -1) -> np.ndarray:
        """Reduce along ``axis`` in index order, matching the scalar
        backend's ``sum`` fold (``acc = add(acc, v)`` starting from
        zero).  Subclasses override when the scalar backend overrides."""
        arr = np.asarray(arr)
        moved = np.moveaxis(arr, axis, -1)
        acc = self.zeros(moved.shape[:-1])
        for i in range(moved.shape[-1]):
            acc = self.add(acc, moved[..., i])
        return acc

    # ------------------------------------------------------------------
    # Order (the max semirings: Viterbi, pair-HMM recombination)
    # ------------------------------------------------------------------
    def _order_key(self, arr: np.ndarray) -> np.ndarray:
        """``arr``'s codes mapped onto a NumPy-comparable array whose
        ``<`` order equals the probability order — the certification
        behind :meth:`maximum`/:meth:`amax`/:meth:`argmax`.  Every
        registered mirror's code space is monotone (float64 values,
        float64 logs, LNS int64 codes with the zero sentinel at int64
        min, posit patterns as two's-complement integers), so max is
        *exact by construction*: no decode, no rounding, no tie hazard.
        Exotic mirrors without a monotone code space leave the default,
        which raises (mirroring ``sub``/``div``)."""
        raise NotImplementedError(
            f"{self.name} batch backend does not define a monotone "
            f"code order (no max/argmax)")

    def maximum(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise larger probability (``a`` wins ties, matching
        the scalar :meth:`Backend.maximum` fold and ``np.argmax``'s
        first-index tie-break)."""
        a = np.asarray(a, dtype=self.dtype)
        b = np.asarray(b, dtype=self.dtype)
        return np.where(self._order_key(b) > self._order_key(a), b, a)

    def amax(self, arr: np.ndarray, axis: int = -1) -> np.ndarray:
        """Reduce along ``axis`` to the largest probability (exact —
        no fold roundings, unlike ``sum``)."""
        arr = np.asarray(arr, dtype=self.dtype)
        moved = np.moveaxis(arr, axis, -1)
        idx = np.argmax(np.moveaxis(self._order_key(arr), axis, -1),
                        axis=-1)
        return np.take_along_axis(moved, np.expand_dims(idx, -1),
                                  axis=-1)[..., 0]

    def argmax(self, arr: np.ndarray, axis: int = -1) -> np.ndarray:
        """Index of the largest probability along ``axis`` (first index
        on ties — identical to folding the scalar backend's strict
        :meth:`Backend.gt`)."""
        arr = np.asarray(arr, dtype=self.dtype)
        return np.argmax(self._order_key(arr), axis=axis)

    def dot(self, a: np.ndarray, b: np.ndarray, axis: int = -1) -> np.ndarray:
        """Sum of elementwise products along ``axis``."""
        return self.sum(self.mul(a, b), axis=axis)

    def __repr__(self):
        return f"<{type(self).__name__} {self.name}>"


class BatchBinary64(BatchBackend):
    """Native IEEE binary64 on arrays; ops are bit-identical to the
    scalar :class:`Binary64Backend` because they are the same IEEE ops."""

    name = "binary64"
    dtype = np.dtype(np.float64)

    def __init__(self, scalar: Optional[Binary64Backend] = None, *,
                 xp=None):
        self._scalar = scalar if scalar is not None else Binary64Backend()
        if xp is not None:
            self.xp = xp

    @property
    def scalar(self) -> Backend:
        return self._scalar

    def from_bigfloats(self, values: Iterable[BigFloat]) -> np.ndarray:
        return np.array([v.to_float() for v in values], dtype=self.dtype)

    def from_floats(self, values) -> np.ndarray:
        # Rounding an exact float64 to binary64 is the identity, so the
        # vectorized cast IS the scalar ``from_float`` per element (the
        # copy keeps the FArray from aliasing caller memory).
        return np.array(values, dtype=self.dtype)

    def zeros(self, shape) -> np.ndarray:
        return np.zeros(shape, dtype=self.dtype)

    def ones(self, shape) -> np.ndarray:
        return np.ones(shape, dtype=self.dtype)

    def add(self, a, b) -> np.ndarray:
        return np.add(a, b)

    def mul(self, a, b) -> np.ndarray:
        return np.multiply(a, b)

    def sub(self, a, b) -> np.ndarray:
        return np.subtract(a, b)

    def div(self, a, b) -> np.ndarray:
        """Bit-identical to the scalar ``a / b``, including Python's
        division-by-zero error (any zero divisor lane raises)."""
        b = np.asarray(b, dtype=self.dtype)
        if (b == 0.0).any():
            raise ZeroDivisionError("float division by zero")
        with np.errstate(over="ignore", under="ignore"):
            # Finite/finite overflow returns inf silently, as CPython's
            # float division does.
            return np.divide(a, b)

    def is_zero(self, arr) -> np.ndarray:
        return np.asarray(arr) == 0.0

    def _order_key(self, arr) -> np.ndarray:
        # IEEE floats order by value in the NaN-free probability domain.
        return np.asarray(arr, dtype=self.dtype)


class BatchLogSpace(BatchBackend):
    """Log-space probabilities (natural logs in float64) on arrays.

    ``add`` is ``np.logaddexp`` — bit-identical to the scalar ``lse2``
    (both evaluate ``m + log1p(exp(min - m))`` through the C library).
    ``mul`` is float addition with the ``-inf`` short-circuit of
    :func:`log_mul`.  ``sum_mode`` selects the reduction dataflow and
    defaults to ``"nary"``, mirroring the scalar backend's default
    (same Equation-3 dataflow, ulp-close); choose ``"sequential"`` on
    *both* sides for bit-for-bit equivalence (see module docstring).
    """

    name = "log"
    dtype = np.dtype(np.float64)

    def __init__(self, prec: int = DEFAULT_PRECISION,
                 sum_mode: Optional[str] = None,
                 scalar: Optional[LogSpaceBackend] = None, *,
                 xp=None):
        if xp is not None:
            self.xp = xp
        if scalar is not None:
            # The mirror contract requires one reduction dataflow on
            # both sides; inherit it, and refuse a contradiction.
            if sum_mode is not None and sum_mode != scalar.sum_mode:
                raise ValueError(
                    f"sum_mode {sum_mode!r} contradicts the scalar "
                    f"backend's {scalar.sum_mode!r}")
            sum_mode = scalar.sum_mode
        elif sum_mode is None:
            sum_mode = SUM_NARY
        if sum_mode not in (SUM_SEQUENTIAL, SUM_NARY):
            raise ValueError(f"unknown sum_mode {sum_mode!r}")
        self.sum_mode = sum_mode
        if scalar is not None:
            self._scalar = scalar
        else:
            self._scalar = LogSpaceBackend(prec, sum_mode=sum_mode)

    @property
    def scalar(self) -> Backend:
        return self._scalar

    def zeros(self, shape) -> np.ndarray:
        return np.full(shape, -np.inf, dtype=self.dtype)

    def ones(self, shape) -> np.ndarray:
        return np.zeros(shape, dtype=self.dtype)

    def add(self, a, b) -> np.ndarray:
        return np.logaddexp(a, b)

    def mul(self, a, b) -> np.ndarray:
        a = np.asarray(a, dtype=self.dtype)
        b = np.asarray(b, dtype=self.dtype)
        out = a + b
        # log_mul: zero probability absorbs (avoids -inf + inf = nan; in
        # the probability domain plain addition already yields -inf).
        neg_inf = np.isneginf(a) | np.isneginf(b)
        if neg_inf.any():
            out = np.where(neg_inf, -np.inf, out)
        if _tele.current() is not None:
            # Lanes driven to -inf by the float sum itself: the log
            # representation ran out of range (probability underflow).
            n = int(np.count_nonzero(np.isneginf(out) & ~neg_inf))
            if n:
                _tele.event("log.underflow", n)
        return out

    def sub(self, a, b) -> np.ndarray:
        """Probability subtraction via log-diff-exp:
        ``a + log1p(-exp(b - a))`` for ``b < a``.

        Bit-identical to :meth:`LogSpaceBackend.sub
        <repro.arith.backends.LogSpaceBackend.sub>` by construction —
        both evaluate the interior through NumPy's ``exp``/``log1p``
        kernels, which are elementwise-consistent between scalars and
        arrays.  The scalar's domain errors are preserved: any lane
        that would produce a negative probability raises.
        """
        a = np.asarray(a, dtype=self.dtype)
        b = np.asarray(b, dtype=self.dtype)
        zb = np.isneginf(b)
        bad = ~zb & (np.isneginf(a) | (b > a))
        if bad.any():
            raise ValueError(
                "log-space subtraction would produce a negative probability")
        with np.errstate(divide="ignore", invalid="ignore"):
            # a == b lanes: log1p(-1) = -inf, the exact-zero result.
            out = a + np.log1p(-np.exp(b - a))
        # b == -inf lanes return a unchanged (the scalar short-circuit;
        # also guards the a == b == -inf lane, where b - a is NaN).
        return np.where(zb, a, out)

    def div(self, a, b) -> np.ndarray:
        """Probability division: float subtraction of the logs, with
        the scalar's division-by-zero error (any zero divisor lane
        raises)."""
        a = np.asarray(a, dtype=self.dtype)
        b = np.asarray(b, dtype=self.dtype)
        if np.isneginf(b).any():
            raise ZeroDivisionError("log-space division by zero probability")
        return a - b

    def is_zero(self, arr) -> np.ndarray:
        return np.isneginf(arr)

    def _order_key(self, arr) -> np.ndarray:
        # log is strictly monotone: float log order == probability
        # order (zero = -inf sorts first), exactly the scalar gt.
        return np.asarray(arr, dtype=self.dtype)

    def sum(self, arr: np.ndarray, axis: int = -1) -> np.ndarray:
        if self.sum_mode == SUM_SEQUENTIAL:
            # The base fold *is* the sequential binary-LSE: zeros() is
            # -inf and add() is np.logaddexp.
            return super().sum(arr, axis=axis)
        arr = np.asarray(arr, dtype=self.dtype)
        moved = np.moveaxis(arr, axis, -1)
        # N-ary LSE (Equation 3): one max, a sequential sum of exps in
        # index order, one log.  Within an ulp of lse_n, not bit-exact
        # (NumPy's SIMD exp differs from libm in the last ulp).
        m = np.max(moved, axis=-1)
        safe_m = np.where(np.isneginf(m), 0.0, m)
        total = np.zeros(moved.shape[:-1], dtype=self.dtype)
        for i in range(moved.shape[-1]):
            total = total + np.exp(moved[..., i] - safe_m)
        with np.errstate(divide="ignore"):
            out = safe_m + np.log(total)
        return np.where(np.isneginf(m), -np.inf, out)
