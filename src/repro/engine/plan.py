"""Execution plans: the one object that carries *how* a workload runs.

Before this module, every batch-aware app and experiment grew its own
``batch=``/``n_workers=`` kwarg pair, and the pair had to be threaded
through each call layer by hand.  An :class:`ExecPlan` replaces those
pairs: it names the batch toggle, the vectorized group width, the
worker fan-out, the sweep chunk granularity, and the result-cache
policy once, and flows unchanged from the CLI down to the kernels.

The *semantics* of the plan live with the callees:

* ``batch`` — run through the vectorized kernels of
  :mod:`repro.engine.kernels` wherever the format's batch mirror is
  certified exact (see :mod:`repro.arith.registry`); ``False`` forces
  the legacy scalar loops (the baseline the throughput benchmarks
  measure against).  Batch is the *default*: the scalar path is the
  special case now.
* ``batch_size`` — optional ceiling on how many batch elements one
  vectorized kernel call may carry; larger workloads are sliced into
  ``batch_size``-wide groups.  ``None`` means one pass over everything.
* ``n_workers`` — process fan-out for the embarrassingly parallel
  stages (the Figure 3 sweep chunks, the ViCAR oracle pass).  ``None``
  stays serial in-process; ``0``/``1`` use the chunked code path
  without spawning (the deterministic reference).
* ``chunk_size`` — pair-generation granularity of the chunked sweep
  runner (:mod:`repro.engine.runner`).
* ``cache`` — experiment result-cache policy: ``"auto"`` (honor the
  caller's cache setting), ``"off"`` (neither read nor write), or
  ``"refresh"`` (recompute and overwrite).
* ``measure`` — collect wall-clock software-throughput measurements
  where an experiment supports them (fig6's software MMAPS columns).
  Runs that measure wall-clock are never served from the cache.

This module must stay import-light (no NumPy): plans are constructed
by CLI/front-end code that must work even where the vectorized engine
cannot.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Optional

CACHE_POLICIES = ("auto", "off", "refresh")

#: Kwarg names the one-release deprecation shims accept.
_LEGACY_KEYS = ("batch", "n_workers")


@dataclass(frozen=True)
class ExecPlan:
    """How to execute a workload: batching, fan-out, chunking, caching."""

    batch: bool = True
    batch_size: Optional[int] = None
    n_workers: Optional[int] = None
    chunk_size: int = 250
    cache: str = "auto"
    measure: bool = False

    def __post_init__(self):
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.n_workers is not None and self.n_workers < 0:
            raise ValueError(f"n_workers must be >= 0, got {self.n_workers}")
        if self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.cache not in CACHE_POLICIES:
            raise ValueError(f"unknown cache policy {self.cache!r}; "
                             f"expected one of {CACHE_POLICIES}")

    @classmethod
    def serial(cls, **overrides) -> "ExecPlan":
        """The legacy scalar path: no vectorized kernels, no fan-out."""
        overrides.setdefault("batch", False)
        return cls(**overrides)

    def with_(self, **overrides) -> "ExecPlan":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)

    @property
    def parallel(self) -> bool:
        """True when the plan fans work across >1 worker process."""
        return self.n_workers is not None and self.n_workers > 1

    def group_slices(self, n: int):
        """Slices partitioning ``n`` batch elements into groups of at
        most ``batch_size`` (one slice covering everything when no
        ceiling is set)."""
        if n < 0:
            raise ValueError("n must be >= 0")
        width = self.batch_size if self.batch_size is not None else max(n, 1)
        return [slice(lo, min(lo + width, n))
                for lo in range(0, n, width)] or [slice(0, 0)]


#: The canonical plan: batch kernels on, serial, cache honored.
DEFAULT_PLAN = ExecPlan()


def resolve_plan(plan: Optional[ExecPlan] = None,
                 deprecated: Optional[dict] = None,
                 *, where: str = "this function",
                 batch_field: str = "batch") -> ExecPlan:
    """Normalize ``plan=`` plus any legacy ``batch=``/``n_workers=``
    kwargs into one :class:`ExecPlan`.

    ``deprecated`` is the ``**deprecated`` catch-all of a shimmed
    public function.  Unknown keys raise :class:`TypeError` (preserving
    normal unexpected-keyword behavior); known keys emit a
    :class:`DeprecationWarning` and are folded into the plan.
    ``batch_field`` names the plan field a legacy ``batch=`` maps onto
    (fig6's old ``batch=True`` meant "measure wall-clock", so it maps
    to ``measure`` there).
    """
    if plan is not None and not isinstance(plan, ExecPlan):
        raise TypeError(f"plan must be an ExecPlan, got {type(plan).__name__}")
    resolved = plan if plan is not None else DEFAULT_PLAN
    if not deprecated:
        return resolved
    unknown = set(deprecated) - set(_LEGACY_KEYS)
    if unknown:
        raise TypeError(f"{where}() got unexpected keyword argument(s) "
                        f"{sorted(unknown)}")
    warnings.warn(
        f"{where}(): the batch=/n_workers= kwargs are deprecated; pass "
        f"plan=ExecPlan(...) instead (see repro.engine.plan)",
        DeprecationWarning, stacklevel=3)
    overrides = {}
    if deprecated.get("batch") is not None:
        overrides[batch_field] = bool(deprecated["batch"])
    if deprecated.get("n_workers") is not None:
        overrides["n_workers"] = int(deprecated["n_workers"])
    return resolved.with_(**overrides) if overrides else resolved


__all__ = [
    "CACHE_POLICIES",
    "DEFAULT_PLAN",
    "ExecPlan",
    "resolve_plan",
]
