"""Execution plans: the one object that carries *how* a workload runs.

Before this module, every batch-aware app and experiment grew its own
``batch=``/``n_workers=`` kwarg pair, and the pair had to be threaded
through each call layer by hand.  An :class:`ExecPlan` replaces those
pairs: it names the batch toggle, the vectorized group width, the
worker fan-out, the sweep chunk granularity, and the result-cache
policy once, and flows unchanged from the CLI down to the kernels.

Plans travel two ways:

* **explicitly** — every plan-aware function takes ``plan=``;
* **ambiently** — ``with use_plan(plan): ...`` installs a plan for the
  dynamic extent of a block, and :func:`resolve_plan` (which every
  plan-aware entry point calls) picks it up when no explicit ``plan=``
  was passed.  This is how :mod:`repro.nd` expressions and nested app
  calls agree on one plan without threading it positionally.

The *semantics* of the plan live with the callees:

* ``batch`` — run through the vectorized kernels of
  :mod:`repro.engine.kernels` wherever the format's batch mirror is
  certified exact (see :mod:`repro.arith.registry`); ``False`` forces
  the legacy scalar loops (the baseline the throughput benchmarks
  measure against).  Batch is the *default*: the scalar path is the
  special case now.
* ``batch_size`` — optional ceiling on how many batch elements one
  vectorized kernel call may carry; larger workloads are sliced into
  ``batch_size``-wide groups.  ``None`` means one pass over everything.
* ``n_workers`` — process fan-out for the embarrassingly parallel
  stages (the Figure 3 sweep chunks, the ViCAR oracle pass).  ``None``
  stays serial in-process; ``0``/``1`` use the chunked code path
  without spawning (the deterministic reference).
* ``chunk_size`` — pair-generation granularity of the chunked sweep
  runner (:mod:`repro.engine.runner`).
* ``cache`` — experiment result-cache policy: ``"auto"`` (honor the
  caller's cache setting), ``"off"`` (neither read nor write), or
  ``"refresh"`` (recompute and overwrite).
* ``measure`` — collect wall-clock software-throughput measurements
  where an experiment supports them (fig6's software MMAPS columns).
  Runs that measure wall-clock are never served from the cache.
* ``compiled`` — route whole recurrences through the compiled kernel
  tier (:mod:`repro.engine.compiled`) where the format registers one:
  the model arrays decode once, the decoded plane stays resident
  across every timestep, and only escaping outputs are encoded.  The
  tier is bit-identical to the batch path, so formats without one
  *silently* fall back — the flag can never error and never changes
  results (``tests/test_engine_compiled.py`` pins both).

This module must stay import-light (no NumPy): plans are constructed
by CLI/front-end code that must work even where the vectorized engine
cannot.
"""

from __future__ import annotations

import contextlib
import contextvars
from dataclasses import dataclass, fields, replace
from typing import Iterator, Optional

CACHE_POLICIES = ("auto", "off", "refresh")

#: Version of the plan's JSON wire schema (bumped when fields change
#: incompatibly).  :meth:`ExecPlan.from_json` names this version in its
#: rejection errors so a schema mismatch is diagnosable from the
#: message alone.  v2 added ``compiled`` (v1 payloads still parse:
#: absent fields keep their defaults).
PLAN_SCHEMA_VERSION = 2


@dataclass(frozen=True)
class ExecPlan:
    """How to execute a workload: batching, fan-out, chunking, caching."""

    batch: bool = True
    batch_size: Optional[int] = None
    n_workers: Optional[int] = None
    chunk_size: int = 250
    cache: str = "auto"
    measure: bool = False
    compiled: bool = False

    def __post_init__(self):
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.n_workers is not None and self.n_workers < 0:
            raise ValueError(f"n_workers must be >= 0, got {self.n_workers}")
        if self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.cache not in CACHE_POLICIES:
            raise ValueError(f"unknown cache policy {self.cache!r}; "
                             f"expected one of {CACHE_POLICIES}")

    @classmethod
    def serial(cls, **overrides) -> "ExecPlan":
        """The legacy scalar path: no vectorized kernels, no fan-out."""
        overrides.setdefault("batch", False)
        return cls(**overrides)

    def with_(self, **overrides) -> "ExecPlan":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)

    @property
    def parallel(self) -> bool:
        """True when the plan fans work across >1 worker process."""
        return self.n_workers is not None and self.n_workers > 1

    def group_slices(self, n: int):
        """Slices partitioning ``n`` batch elements into groups of at
        most ``batch_size`` (one slice covering everything when no
        ceiling is set)."""
        if n < 0:
            raise ValueError("n must be >= 0")
        width = self.batch_size if self.batch_size is not None else max(n, 1)
        return [slice(lo, min(lo + width, n))
                for lo in range(0, n, width)] or [slice(0, 0)]

    # ------------------------------------------------------------------
    # JSON wire form (plans travel inside repro.service requests)
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        """The plan as one JSON-serializable dict (all fields, plus the
        ``plan_version`` schema tag :meth:`from_json` validates)."""
        payload = {"plan_version": PLAN_SCHEMA_VERSION}
        for f in fields(self):
            payload[f.name] = getattr(self, f.name)
        return payload

    @classmethod
    def from_json(cls, data) -> "ExecPlan":
        """Rebuild a plan from :meth:`to_json` output.

        Unknown fields are *rejected* with a versioned
        :class:`ValueError` (not a bare ``TypeError``): a request built
        against a newer schema must fail with a message that names both
        schema versions instead of an opaque constructor error.  Every
        field is optional — absent fields keep their defaults, so old
        payloads keep parsing as the schema grows.
        """
        if not isinstance(data, dict):
            raise ValueError(
                f"ExecPlan JSON (schema v{PLAN_SCHEMA_VERSION}) must be an "
                f"object, got {type(data).__name__}")
        data = dict(data)
        version = data.pop("plan_version", PLAN_SCHEMA_VERSION)
        if not isinstance(version, int) or isinstance(version, bool) \
                or version < 1:
            raise ValueError(
                f"ExecPlan JSON: plan_version must be a positive integer, "
                f"got {version!r} (this build speaks schema "
                f"v{PLAN_SCHEMA_VERSION})")
        if version > PLAN_SCHEMA_VERSION:
            raise ValueError(
                f"ExecPlan JSON schema v{version} is newer than this "
                f"build's v{PLAN_SCHEMA_VERSION}; upgrade the receiver or "
                f"send a v{PLAN_SCHEMA_VERSION} plan")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"ExecPlan JSON (schema v{PLAN_SCHEMA_VERSION}) does not "
                f"define field(s) {', '.join(map(repr, unknown))}; known "
                f"fields: {', '.join(sorted(known))}")
        try:
            return cls(**data)
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"ExecPlan JSON (schema v{PLAN_SCHEMA_VERSION}) rejected: "
                f"{exc}") from exc

    def __repr__(self):
        """Non-default fields only: ``ExecPlan()`` is the canonical
        plan, ``ExecPlan(batch=False)`` the serial baseline."""
        shown = []
        for f in fields(self):
            value = getattr(self, f.name)
            if value != f.default:
                shown.append(f"{f.name}={value!r}")
        return f"ExecPlan({', '.join(shown)})"


#: The canonical plan: batch kernels on, serial, cache honored.
DEFAULT_PLAN = ExecPlan()

#: The ambient plan installed by :func:`use_plan` (``None`` outside any
#: ``with use_plan(...)`` block).  Context-variable semantics make the
#: ambient plan task- and thread-local.
_AMBIENT_PLAN: contextvars.ContextVar[Optional[ExecPlan]] = \
    contextvars.ContextVar("repro_ambient_plan", default=None)


def current_plan() -> ExecPlan:
    """The ambient :class:`ExecPlan` (innermost :func:`use_plan` block),
    or :data:`DEFAULT_PLAN` outside any block."""
    plan = _AMBIENT_PLAN.get()
    return plan if plan is not None else DEFAULT_PLAN


@contextlib.contextmanager
def use_plan(plan: ExecPlan) -> Iterator[ExecPlan]:
    """Install ``plan`` as the ambient plan for the enclosed block.

    Every plan-aware entry point called without an explicit ``plan=``
    (and every :mod:`repro.nd` array built without one) picks it up::

        with use_plan(ExecPlan(n_workers=4)):
            run_vicar(config, backends)   # fans the oracle pass out

    Blocks nest; the innermost plan wins.
    """
    if not isinstance(plan, ExecPlan):
        raise TypeError(f"plan must be an ExecPlan, got {type(plan).__name__}")
    token = _AMBIENT_PLAN.set(plan)
    try:
        yield plan
    finally:
        _AMBIENT_PLAN.reset(token)


def resolve_plan(plan: Optional[ExecPlan] = None, *,
                 where: str = "this function") -> ExecPlan:
    """Normalize an optional ``plan=`` argument into one
    :class:`ExecPlan`: an explicit plan wins, otherwise the ambient
    :func:`use_plan` plan, otherwise :data:`DEFAULT_PLAN`.

    (The PR 3 ``batch=``/``n_workers=`` deprecation shims that this
    helper used to fold in are gone; those kwargs now raise
    :class:`TypeError` like any other unknown keyword.)
    """
    if plan is None:
        return current_plan()
    if not isinstance(plan, ExecPlan):
        raise TypeError(f"{where}(): plan must be an ExecPlan, "
                        f"got {type(plan).__name__}")
    return plan


__all__ = [
    "CACHE_POLICIES",
    "DEFAULT_PLAN",
    "PLAN_SCHEMA_VERSION",
    "ExecPlan",
    "current_plan",
    "resolve_plan",
    "use_plan",
]
