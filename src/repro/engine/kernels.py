"""Raw-array views over the application recurrences.

Since the :mod:`repro.nd` redesign there is exactly *one*
implementation of each application recurrence — the format-tagged
array expressions in :mod:`repro.apps` (``_forward_nd``,
``_backward_nd``, ``_pbd_nd``, ...).  This module keeps the original
kernel surface for callers that already hold a
:class:`~repro.engine.batch.BatchBackend` plus packed code arrays
(benchmarks, equivalence tests, external users of PR 1/2): each
function wraps the raw arrays into :class:`~repro.nd.FArray`\\ s over
the given backend, runs the shared expression, and hands the packed
result array back.

Every elementwise op and every reduction happens in the same order and
through the same primitive as the scalar backends, so the results are
bit-identical (binary64, log-space in matching ``sum_mode``) or
element-exact (posit, LNS) — only vectorized across a batch dimension.
"""

from __future__ import annotations

import numpy as np

from .. import faults as _faults
from .. import telemetry as _tele
from .batch import BatchBackend


def _wrap3(backend: BatchBackend, a, b, pi):
    from ..nd import wrap
    return wrap(a, bb=backend), wrap(b, bb=backend), wrap(pi, bb=backend)


def forward_batch(backend: BatchBackend, a: np.ndarray, b: np.ndarray,
                  pi: np.ndarray, obs: np.ndarray,
                  plan=None, semiring=None) -> np.ndarray:
    """Forward algorithm over a batch of observation sequences.

    Parameters
    ----------
    a, b, pi:
        Model parameters as *backend value* arrays: transition ``(H, H)``,
        emission ``(H, M)``, initial ``(H,)`` (convert once with
        ``backend.from_bigfloats``).
    obs:
        Integer observation symbols, shape ``(B, T)``.
    plan:
        Optional :class:`~repro.engine.plan.ExecPlan`;
        ``ExecPlan(compiled=True)`` routes through the format's
        compiled tier where one is registered (bit-identical — formats
        without a tier silently keep this batch path).

    Returns the batch of likelihoods, shape ``(B,)``, as backend values.
    Mirrors :func:`repro.apps.hmm.forward` exactly: per step,
    ``alpha'[q] = sum_p(alpha[p] * A[p, q]) * B[q, o_t]`` with the
    backend's ``sum`` reduction over ``p`` in index order.  ``semiring``
    (a :class:`~repro.workloads.semiring.Semiring` or registered name)
    swaps the recurrence algebra — ``"max-product"`` yields Viterbi
    scores.
    """
    from ..apps.hmm import _forward_nd
    with _tele.span("kernel.forward_batch"):
        _faults.fire("kernel.forward_batch")
        fa, fb, fpi = _wrap3(backend, a, b, pi)
        return np.asarray(_forward_nd(fa, fb, fpi, obs, plan=plan,
                                      semiring=semiring).data)


def forward_alpha_trace_batch(backend: BatchBackend, a: np.ndarray,
                              b: np.ndarray, pi: np.ndarray,
                              obs: np.ndarray, plan=None) -> np.ndarray:
    """Per-iteration total alpha mass for a batch of sequences, shape
    ``(B, T)`` — the batched counterpart of ``forward_alpha_trace``
    (``plan=`` as in :func:`forward_batch`)."""
    from ..apps.hmm import _forward_trace_nd
    with _tele.span("kernel.forward_alpha_trace_batch"):
        _faults.fire("kernel.forward_alpha_trace_batch")
        fa, fb, fpi = _wrap3(backend, a, b, pi)
        return np.asarray(
            _forward_trace_nd(fa, fb, fpi, obs, plan=plan).data)


def forward_multi_batch(backend: BatchBackend, a: np.ndarray, b: np.ndarray,
                        pi: np.ndarray, obs: np.ndarray,
                        semiring=None) -> np.ndarray:
    """Forward algorithm over a batch of *models* (the ViCAR/MCMC shape:
    every element has its own parameters and its own sequence).

    Parameters
    ----------
    a, b, pi:
        Per-model parameters as backend value arrays: transition
        ``(B, H, H)``, emission ``(B, H, M)``, initial ``(B, H)``.
    obs:
        Integer observation symbols, shape ``(B, T)``.

    Returns the likelihoods, shape ``(B,)``.  Op-for-op identical to
    running :func:`repro.apps.hmm.forward` once per model.
    """
    from ..apps.hmm import _forward_models_nd
    with _tele.span("kernel.forward_multi_batch"):
        _faults.fire("kernel.forward_multi_batch")
        fa, fb, fpi = _wrap3(backend, a, b, pi)
        return np.asarray(
            _forward_models_nd(fa, fb, fpi, obs, semiring=semiring).data)


def backward_batch(backend: BatchBackend, a: np.ndarray, b: np.ndarray,
                   pi: np.ndarray, obs: np.ndarray) -> np.ndarray:
    """Backward-algorithm likelihoods over a batch of observation
    sequences (shared model), shape ``(B,)`` — the batched counterpart
    of :func:`repro.apps.hmm_extra.backward`, op-for-op:
    ``beta[p] = sum_q(A[p, q] * (B[q, o_t] * beta[q]))`` with the
    ``sum`` reduction over ``q`` in index order."""
    from ..apps.hmm_extra import _backward_nd
    with _tele.span("kernel.backward_batch"):
        _faults.fire("kernel.backward_batch")
        fa, fb, fpi = _wrap3(backend, a, b, pi)
        return np.asarray(_backward_nd(fa, fb, fpi, obs).data)


def pbd_pvalue_batch(backend: BatchBackend, pn: np.ndarray, qn: np.ndarray,
                     k: int, plan=None) -> np.ndarray:
    """Poisson-binomial ``P(X >= k)`` over a batch of sites.

    Parameters
    ----------
    pn, qn:
        Success probabilities and their exact complements as backend
        value arrays, shape ``(S, N)`` — one row per site, ``N`` trials
        each (group sites by ``(N, k)``; see ``repro.apps.pbd``).
    k:
        Observed success count (shared by the batch).

    Mirrors :func:`repro.apps.pbd.pbd_pvalue` exactly; the per-``j``
    recurrence is vectorized over sites *and* PMF entries, which is
    value-preserving because ``add(x, 0)`` is exact in every backend.
    ``plan=`` as in :func:`forward_batch`.
    """
    from ..apps.pbd import _pbd_nd
    from ..nd import wrap
    with _tele.span("kernel.pbd_pvalue_batch"):
        _faults.fire("kernel.pbd_pvalue_batch")
        fpn = wrap(np.asarray(pn), bb=backend)
        fqn = wrap(np.asarray(qn), bb=backend)
        return np.asarray(_pbd_nd(fpn, fqn, k, plan=plan).data)
