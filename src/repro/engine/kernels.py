"""Batched application kernels, generic over a :class:`BatchBackend`.

These mirror the scalar kernels in :mod:`repro.apps` *operation for
operation*: every elementwise op and every reduction happens in the same
order and through the same primitive as the scalar code, so the results
are bit-identical (binary64, log-space in matching ``sum_mode``) or
element-exact (posit) — only vectorized across a batch dimension.
"""

from __future__ import annotations

import numpy as np

from .batch import BatchBackend


def forward_batch(backend: BatchBackend, a: np.ndarray, b: np.ndarray,
                  pi: np.ndarray, obs: np.ndarray) -> np.ndarray:
    """Forward algorithm over a batch of observation sequences.

    Parameters
    ----------
    a, b, pi:
        Model parameters as *backend value* arrays: transition ``(H, H)``,
        emission ``(H, M)``, initial ``(H,)`` (convert once with
        ``backend.from_bigfloats``).
    obs:
        Integer observation symbols, shape ``(B, T)``.

    Returns the batch of likelihoods, shape ``(B,)``, as backend values.
    Mirrors :func:`repro.apps.hmm.forward` exactly: per step,
    ``alpha'[q] = sum_p(alpha[p] * A[p, q]) * B[q, o_t]`` with the
    backend's ``sum`` reduction over ``p`` in index order.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    pi = np.asarray(pi)
    obs = np.asarray(obs)
    if obs.ndim != 2:
        raise ValueError("obs must have shape (batch, T)")
    n_batch, t_len = obs.shape
    # t = 0: alpha[q] = pi[q] * B[q][o0]
    alpha = backend.mul(np.broadcast_to(pi, (n_batch, pi.shape[0])),
                        b[:, obs[:, 0]].T)
    for t in range(1, t_len):
        # prod[s, p, q] = alpha[s, p] * A[p, q]
        prod = backend.mul(alpha[:, :, None], a[None, :, :])
        path_sum = backend.sum(prod, axis=1)
        alpha = backend.mul(path_sum, b[:, obs[:, t]].T)
    return backend.sum(alpha, axis=1)


def forward_alpha_trace_batch(backend: BatchBackend, a: np.ndarray,
                              b: np.ndarray, pi: np.ndarray,
                              obs: np.ndarray) -> np.ndarray:
    """Per-iteration total alpha mass for a batch of sequences, shape
    ``(B, T)`` — the batched counterpart of ``forward_alpha_trace``."""
    a = np.asarray(a)
    b = np.asarray(b)
    pi = np.asarray(pi)
    obs = np.asarray(obs)
    n_batch, t_len = obs.shape
    alpha = backend.mul(np.broadcast_to(pi, (n_batch, pi.shape[0])),
                        b[:, obs[:, 0]].T)
    trace = [backend.sum(alpha, axis=1)]
    for t in range(1, t_len):
        prod = backend.mul(alpha[:, :, None], a[None, :, :])
        path_sum = backend.sum(prod, axis=1)
        alpha = backend.mul(path_sum, b[:, obs[:, t]].T)
        trace.append(backend.sum(alpha, axis=1))
    return np.stack(trace, axis=1)


def forward_multi_batch(backend: BatchBackend, a: np.ndarray, b: np.ndarray,
                        pi: np.ndarray, obs: np.ndarray) -> np.ndarray:
    """Forward algorithm over a batch of *models* (the ViCAR/MCMC shape:
    every element has its own parameters and its own sequence).

    Parameters
    ----------
    a, b, pi:
        Per-model parameters as backend value arrays: transition
        ``(B, H, H)``, emission ``(B, H, M)``, initial ``(B, H)``.
    obs:
        Integer observation symbols, shape ``(B, T)``.

    Returns the likelihoods, shape ``(B,)``.  Op-for-op identical to
    running :func:`repro.apps.hmm.forward` once per model: per step,
    ``alpha'[q] = sum_p(alpha[p] * A[p, q]) * B[q, o_t]`` with the
    backend's ``sum`` reduction over ``p`` in index order.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    pi = np.asarray(pi)
    obs = np.asarray(obs)
    if obs.ndim != 2:
        raise ValueError("obs must have shape (batch, T)")
    if a.ndim != 3 or b.ndim != 3 or pi.ndim != 2:
        raise ValueError("need per-model params: a (B,H,H), b (B,H,M), "
                         "pi (B,H)")
    n_batch, t_len = obs.shape

    def emission(t):
        # b[s, :, obs[s, t]] for every model s, shape (B, H).
        return np.take_along_axis(
            b, obs[:, t][:, None, None], axis=2)[..., 0]

    alpha = backend.mul(pi, emission(0))
    for t in range(1, t_len):
        # prod[s, p, q] = alpha[s, p] * A[s, p, q]
        prod = backend.mul(alpha[:, :, None], a)
        path_sum = backend.sum(prod, axis=1)
        alpha = backend.mul(path_sum, emission(t))
    return backend.sum(alpha, axis=1)


def backward_batch(backend: BatchBackend, a: np.ndarray, b: np.ndarray,
                   pi: np.ndarray, obs: np.ndarray) -> np.ndarray:
    """Backward-algorithm likelihoods over a batch of observation
    sequences (shared model), shape ``(B,)`` — the batched counterpart
    of :func:`repro.apps.hmm_extra.backward`, op-for-op:
    ``beta[p] = sum_q(A[p, q] * (B[q, o_t] * beta[q]))`` with the
    ``sum`` reduction over ``q`` in index order."""
    a = np.asarray(a)
    b = np.asarray(b)
    pi = np.asarray(pi)
    obs = np.asarray(obs)
    if obs.ndim != 2:
        raise ValueError("obs must have shape (batch, T)")
    n_batch, t_len = obs.shape
    beta = backend.ones((n_batch, a.shape[0]))
    for t in range(t_len - 1, 0, -1):
        inner = backend.mul(b[:, obs[:, t]].T, beta)
        prod = backend.mul(a[None, :, :], inner[:, None, :])
        beta = backend.sum(prod, axis=2)
    terms = backend.mul(np.broadcast_to(pi, beta.shape),
                        backend.mul(b[:, obs[:, 0]].T, beta))
    return backend.sum(terms, axis=1)


def pbd_pvalue_batch(backend: BatchBackend, pn: np.ndarray, qn: np.ndarray,
                     k: int) -> np.ndarray:
    """Poisson-binomial ``P(X >= k)`` over a batch of sites.

    Parameters
    ----------
    pn, qn:
        Success probabilities and their exact complements as backend
        value arrays, shape ``(S, N)`` — one row per site, ``N`` trials
        each (group sites by ``(N, k)``; see ``repro.apps.pbd``).
    k:
        Observed success count (shared by the batch).

    Mirrors :func:`repro.apps.pbd.pbd_pvalue` exactly; the per-``j``
    recurrence is vectorized over sites *and* PMF entries, which is
    value-preserving because ``add(x, 0)`` is exact in every backend.
    """
    if k < 1:
        raise ValueError("k must be >= 1 (a variant needs a success)")
    pn = np.asarray(pn)
    qn = np.asarray(qn)
    n_sites, n_trials = pn.shape
    if n_trials < k:
        raise ValueError("need at least k trials")
    # pr[s, j] = P(j successes in the first n trials), tracked for j < k.
    pr = np.concatenate([backend.ones((n_sites, 1)),
                         backend.zeros((n_sites, k - 1))], axis=1)
    pvalue = backend.zeros((n_sites,))
    zero_col = backend.zeros((n_sites, 1))
    for n in range(n_trials):
        p_col = pn[:, n:n + 1]
        q_col = qn[:, n:n + 1]
        if n >= k - 1:
            pvalue = backend.add(pvalue,
                                 backend.mul(pr[:, k - 1], pn[:, n]))
        shifted = np.concatenate([zero_col, pr[:, :-1]], axis=1)
        pr = backend.add(backend.mul(pr, q_col),
                         backend.mul(shifted, p_col))
    return pvalue
