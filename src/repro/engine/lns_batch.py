"""Vectorized LNS arithmetic on int64 code arrays.

The scalar :class:`repro.formats.lns.LNSEnv` stores a probability as a
signed fixed-point ``log2`` code (a Python int) with a symbolic
:data:`~repro.formats.lns.LNS_ZERO` for probability zero.  This module
mirrors it on whole NumPy arrays, element-exactly:

* codes live in ``int64`` (any practical LNS fits: a 64-bit LNS code
  spans at most 62 bits); probability zero is the sentinel
  ``iinfo(int64).min``, which no clamped code can collide with;
* multiplication/division are the same saturating fixed-point add/sub,
  fully vectorized;
* addition and subtraction need the Gaussian logarithms
  ``sb(d) = log2(1 + 2**d)`` and ``db(d) = log2(1 - 2**d)`` on the code
  grid.  A batched float64 evaluation cannot certify the final rounding
  at realistic fraction widths (an error of a fraction of a code unit
  at ``frac_bits ~ 50`` straddles rounding boundaries), so the exact
  values come from the scalar environment's oracle-backed
  :meth:`~repro.formats.lns.LNSEnv._sb_exact` /
  :meth:`~repro.formats.lns.LNSEnv._db_exact`.  Two vectorized
  shortcuts are certified exactly: ``d = 0`` gives
  ``sb = 2**frac_bits`` (``log2 2 = 1``), and
  ``d <= -(frac_bits + 2) * 2**frac_bits`` gives ``sb = db = 0``
  (since ``|sb(d)|, |db(d)| < 2**d / (ln 2 * (1 - 2**d))`` rounds to
  zero strictly before that point).

**Gap store modes.**  For the interior gaps two strategies exist:

* *memo* (the default for wide formats): evaluate once per **distinct**
  gap in the batch and memoize across calls — the honest vectorization
  of the paper's Section VII argument that a full table is impractical
  at 64 bits;
* *full table* (automatic for small formats, forceable up to
  :data:`BatchLNS.SB_TABLE_MAX` entries): lazily precompute the exact
  sb/db tables once through the BigFloat plane and replace the
  per-unique-gap Python loop with a single fancy-index — the very
  lookup table the paper says hardware cannot afford at 64 bits, but
  software can afford below ~2**20 entries (16 MiB of int64).  The
  build is oracle-priced (~0.1 ms/entry), so ``"auto"`` only engages
  below :data:`BatchLNS.SB_TABLE_AUTO_MAX` (sub-second builds);
  mid-size formats keep the memo unless the caller opts in with
  ``sb_table=True`` and pays the one-time build.

Element-for-element equality with ``LNSEnv`` (both modes, all four
operations) is enforced by ``tests/test_engine_lns_batch.py``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from .. import telemetry as _tele
from ..arith.backend import Backend
from ..arith.backends import LNSBackend
from ..bigfloat import BigFloat
from ..formats.lns import LNS_ZERO, LNSEnv
from .batch import BatchBackend

#: Probability-zero sentinel: far outside any clamped code range.
ZERO_CODE = np.iinfo(np.int64).min


class BatchLNS(BatchBackend):
    """Batched LNS arithmetic, element-exact against ``LNSEnv``.

    Values are arrays of fixed-point log2 codes in ``int64``;
    probability zero is :data:`ZERO_CODE`.  ``sb_table`` selects the
    gap store: ``"auto"`` (full table when it fits, memo otherwise),
    ``True`` (force the table), ``False`` (force the memo).
    """

    dtype = np.dtype(np.int64)

    #: Hard memory bound for the full-table mode (entries per table);
    #: ~16 MiB of int64 at the bound.  ``sb_table=True`` may build up
    #: to this.
    SB_TABLE_MAX = 1 << 20
    #: Auto-mode bound: the lazy build evaluates one BigFloat oracle
    #: call per entry (~0.1 ms), so ``"auto"`` only precomputes tables
    #: it can build in well under a second; larger domains keep the
    #: per-distinct-gap memo unless forced.
    SB_TABLE_AUTO_MAX = 1 << 12

    def __init__(self, env: Optional[LNSEnv] = None,
                 scalar: Optional[LNSBackend] = None,
                 sb_table="auto"):
        if scalar is not None:
            if env is not None and env is not scalar.env:
                raise ValueError("env contradicts the scalar backend's env")
            env = scalar.env
        elif env is None:
            env = LNSEnv(12, 50)
        if env.max_code.bit_length() >= 63:
            raise ValueError("BatchLNS needs codes (and their sums) to "
                             "fit in int64; use total_bits <= 64")
        self.env = env
        self.name = env.name
        self._scalar = scalar if scalar is not None else LNSBackend(env)
        self._min_code = np.int64(env.min_code)
        self._max_code = np.int64(env.max_code)
        #: sb/db round to exactly 0 at or below this gap (see module
        #: docstring for the certification).
        self._sb_floor = np.int64(-(env.frac_bits + 2) << env.frac_bits)
        self._sb_one = np.int64(1 << env.frac_bits)
        #: db codes below this are equivalent (the subtraction result
        #: saturates at ``min_code`` either way); clamping here keeps
        #: every stored value — and every ``hi + db`` sum — inside
        #: int64.
        self._db_clamp = int(env.min_code) - int(env.max_code)
        if sb_table == "auto":
            self._table_mode = (env.sb_table_entries()
                                <= self.SB_TABLE_AUTO_MAX)
        else:
            self._table_mode = bool(sb_table)
            if self._table_mode and (env.sb_table_entries()
                                     > self.SB_TABLE_MAX):
                raise ValueError(
                    f"{env.name}: a full sb/db table needs "
                    f"{env.sb_table_entries()} entries "
                    f"(> SB_TABLE_MAX={self.SB_TABLE_MAX}); that is the "
                    f"impractical-at-64-bit table of Section VII — use "
                    f"the memo mode")
        #: Lazily built full tables, indexed by ``-d - 1`` for interior
        #: gaps ``d`` (table mode only).
        self._sb_table: Optional[np.ndarray] = None
        self._db_table: Optional[np.ndarray] = None
        #: Memoized exact values: {d_code: code} (memo mode only).
        self._sb_cache: Dict[int, int] = {0: 1 << env.frac_bits}
        self._db_cache: Dict[int, int] = {}

    @property
    def scalar(self) -> Backend:
        return self._scalar

    # ------------------------------------------------------------------
    # Protocol plumbing
    # ------------------------------------------------------------------
    def from_bigfloats(self, values: Iterable[BigFloat]) -> np.ndarray:
        return np.array([self._to_code(self.env.encode_bigfloat(v))
                         for v in values], dtype=self.dtype)

    def from_floats(self, values) -> np.ndarray:
        arr = np.asarray(values)
        flat = [self._to_code(self.env.from_float(float(v)))
                for v in arr.ravel()]
        return np.array(flat, dtype=self.dtype).reshape(arr.shape)

    def to_bigfloats(self, arr: np.ndarray) -> List[BigFloat]:
        flat = np.asarray(arr).ravel()
        return [self.env.decode_bigfloat(self.item(flat, (i,)))
                for i in range(flat.size)]

    def item(self, arr: np.ndarray, index=()):
        code = int(np.asarray(arr)[index])
        return LNS_ZERO if code == ZERO_CODE else code

    @staticmethod
    def _to_code(value) -> int:
        return ZERO_CODE if value == LNS_ZERO else int(value)

    def from_items(self, values, shape=None) -> np.ndarray:
        arr = np.array([self._to_code(v) for v in values], dtype=self.dtype)
        return arr if shape is None else arr.reshape(shape)

    def zeros(self, shape) -> np.ndarray:
        return np.full(shape, ZERO_CODE, dtype=self.dtype)

    def ones(self, shape) -> np.ndarray:
        return np.zeros(shape, dtype=self.dtype)

    def is_zero(self, arr) -> np.ndarray:
        return np.asarray(arr) == ZERO_CODE

    def _order_key(self, arr) -> np.ndarray:
        """Fixed-point log2 codes order as integers — probability order —
        and ``ZERO_CODE`` = int64 min already sorts below every real."""
        return np.asarray(arr, dtype=self.dtype)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def mul(self, a, b) -> np.ndarray:
        """Saturating fixed-point add of the log codes (exact)."""
        a = np.asarray(a, dtype=self.dtype)
        b = np.asarray(b, dtype=self.dtype)
        zero = (a == ZERO_CODE) | (b == ZERO_CODE)
        # Sentinels would overflow the sum; compute on neutralized lanes.
        safe_a = np.where(zero, np.int64(0), a)
        safe_b = np.where(zero, np.int64(0), b)
        out = np.clip(safe_a + safe_b, self._min_code, self._max_code)
        return np.where(zero, np.int64(ZERO_CODE), out)

    def div(self, a, b) -> np.ndarray:
        """Saturating fixed-point subtract of the log codes (exact),
        with the scalar's division-by-zero error."""
        a = np.asarray(a, dtype=self.dtype)
        b = np.asarray(b, dtype=self.dtype)
        za = a == ZERO_CODE
        if (b == ZERO_CODE).any():
            raise ZeroDivisionError("LNS division by zero probability")
        safe_a = np.where(za, np.int64(0), a)
        out = np.clip(safe_a - b, self._min_code, self._max_code)
        return np.where(za, np.int64(ZERO_CODE), out)

    def add(self, a, b) -> np.ndarray:
        """LNS addition: ``hi + sb(lo - hi)``, saturating (exact sb)."""
        a = np.asarray(a, dtype=self.dtype)
        b = np.asarray(b, dtype=self.dtype)
        a, b = np.broadcast_arrays(a, b)
        za = a == ZERO_CODE
        zb = b == ZERO_CODE
        safe_a = np.where(za, np.int64(0), a)
        safe_b = np.where(zb, np.int64(0), b)
        hi = np.maximum(safe_a, safe_b)
        lo = np.minimum(safe_a, safe_b)
        d = lo - hi  # <= 0, in code units
        sb = self._sb_codes(d)
        out = np.clip(hi + sb, self._min_code, self._max_code)
        out = np.where(za & zb, np.int64(ZERO_CODE), out)
        out = np.where(za & ~zb, b, out)
        return np.where(zb & ~za, a, out)

    def sub(self, a, b) -> np.ndarray:
        """LNS subtraction: ``a + db(b - a)``, saturating (exact db).

        The scalar domain contract is preserved: any lane where ``b``
        exceeds ``a`` (a negative probability) raises; ``a == b`` lanes
        yield exact probability zero.
        """
        a = np.asarray(a, dtype=self.dtype)
        b = np.asarray(b, dtype=self.dtype)
        a, b = np.broadcast_arrays(a, b)
        za = a == ZERO_CODE
        zb = b == ZERO_CODE
        bad = ~zb & (za | (b > a))
        if bad.any():
            raise ValueError(
                "LNS subtraction would produce a negative probability")
        safe_a = np.where(za, np.int64(0), a)
        d = np.where(zb, np.int64(0), b - safe_a)  # <= 0 on live lanes
        db = self._db_codes(d)
        # Per-lane floor keeps the sum inside int64; any db at or below
        # it saturates the result to min_code identically.
        db = np.maximum(db, self._min_code - safe_a)
        out = np.clip(safe_a + db, self._min_code, self._max_code)
        out = np.where((a == b) & ~zb, np.int64(ZERO_CODE), out)
        return np.where(zb, a, out)

    # ------------------------------------------------------------------
    # Exact Gaussian logarithms on the code grid
    # ------------------------------------------------------------------
    def _gauss_table(self, kind: str) -> np.ndarray:
        """The lazily built full sb/db table over the interior gap
        domain ``(sb_floor, 0)``, indexed by ``-d - 1`` — every entry
        computed once, exactly, through the BigFloat plane."""
        table = self._sb_table if kind == "sb" else self._db_table
        if table is None:
            exact = (self.env._sb_exact if kind == "sb"
                     else self.env._db_exact)
            floor = int(self._sb_floor)
            values = [exact(d) for d in range(-1, floor, -1)]
            if kind == "db":
                values = [max(v, self._db_clamp) for v in values]
            table = np.array(values, dtype=self.dtype)
            if _tele.current() is not None:
                _tele.count(f"lns.{kind}.table_build", len(values))
            if kind == "sb":
                self._sb_table = table
            else:
                self._db_table = table
        return table

    def _interior_codes(self, gaps: np.ndarray, kind: str) -> np.ndarray:
        """Exact sb/db for strictly interior gaps (``sb_floor < d < 0``)."""
        if self._table_mode:
            if _tele.current() is not None:
                _tele.count(f"lns.{kind}.table_hit", int(gaps.size))
            return self._gauss_table(kind)[-gaps - 1]
        uniques, inverse = np.unique(gaps, return_inverse=True)
        cache = self._sb_cache if kind == "sb" else self._db_cache
        exact = self.env._sb_exact if kind == "sb" else self.env._db_exact
        tally = _tele.current() is not None
        if tally:
            # Per-element hit/miss against the memo as of call entry
            # (every element of a freshly-memoized gap counts as a
            # miss for this call).
            hit_u = np.array([int(u) in cache for u in uniques])
            hits = int(np.bincount(inverse, minlength=len(uniques))
                       [hit_u].sum())
            _tele.count(f"lns.{kind}.memo_hit", hits)
            _tele.count(f"lns.{kind}.memo_miss", int(gaps.size) - hits)
        table = np.empty(uniques.shape, dtype=self.dtype)
        for i, u in enumerate(uniques):
            key = int(u)
            value = cache.get(key)
            if value is None:
                value = exact(key)
                if kind == "db":
                    value = max(value, self._db_clamp)
                cache[key] = value
            table[i] = value
        return table[inverse]

    def _sb_codes(self, d: np.ndarray) -> np.ndarray:
        """Exact ``sb`` on the code grid for an array of gaps ``d <= 0``.

        Vectorized shortcuts handle ``d == 0`` and the certified
        rounds-to-zero region; the remainder is a single table gather
        (table mode) or one exact evaluation per distinct gap (memo
        mode).
        """
        sb = np.zeros(d.shape, dtype=self.dtype)
        sb[d == 0] = self._sb_one
        interior = (d < 0) & (d > self._sb_floor)
        if interior.any():
            sb[interior] = self._interior_codes(d[interior], "sb")
        return sb

    def _db_codes(self, d: np.ndarray) -> np.ndarray:
        """Exact ``db`` on the code grid for gaps ``d <= 0`` (``d == 0``
        lanes are the callers' exact-zero results and read 0 here)."""
        db = np.zeros(d.shape, dtype=self.dtype)
        interior = (d < 0) & (d > self._sb_floor)
        if interior.any():
            db[interior] = self._interior_codes(d[interior], "db")
        return db

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def sb_cache_size(self) -> int:
        """Size of the exact Gaussian-log store.

        Memo mode: distinct sb *and* db gaps memoized so far (the
        growing prefix of the lookup table the paper's Section VII
        shows cannot be built in full at 64 bits).  Table mode: the
        number of precomputed table entries (0 until the first interior
        gap triggers a lazy build).
        """
        if self._table_mode:
            return sum(len(t) for t in (self._sb_table, self._db_table)
                       if t is not None)
        return len(self._sb_cache) + len(self._db_cache)

    def __repr__(self):
        mode = "table" if self._table_mode else "memo"
        return (f"<BatchLNS {self.name} "
                f"sb_store={mode}:{self.sb_cache_size()}>")
