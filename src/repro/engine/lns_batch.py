"""Vectorized LNS arithmetic on int64 code arrays.

The scalar :class:`repro.formats.lns.LNSEnv` stores a probability as a
signed fixed-point ``log2`` code (a Python int) with a symbolic
:data:`~repro.formats.lns.LNS_ZERO` for probability zero.  This module
mirrors it on whole NumPy arrays, element-exactly:

* codes live in ``int64`` (any practical LNS fits: a 64-bit LNS code
  spans at most 62 bits); probability zero is the sentinel
  ``iinfo(int64).min``, which no clamped code can collide with;
* multiplication is the same saturating fixed-point add, fully
  vectorized;
* addition needs the Gaussian logarithm ``sb(d) = log2(1 + 2**d)`` on
  the code grid.  A batched float64 evaluation cannot certify the final
  rounding at realistic fraction widths (an error of a fraction of a
  code unit at ``frac_bits ~ 50`` straddles rounding boundaries), so
  the exact values come from the scalar environment's oracle-backed
  :meth:`~repro.formats.lns.LNSEnv._sb_exact` — evaluated **once per
  distinct** ``d`` in the batch and memoized across calls.  Two
  vectorized shortcuts are certified exactly: ``d = 0`` gives
  ``sb = 2**frac_bits`` (``log2 2 = 1``), and
  ``d <= -(frac_bits + 2) * 2**frac_bits`` gives ``sb = 0`` (since
  ``sb(d) < 2**d / ln 2`` rounds to zero strictly before that point).

This is the honest vectorization of the paper's Section VII argument:
the *mul* path is free, while the *add* path is bottlenecked by a
transcendental per distinct operand gap — exactly why LNS lookup tables
are impractical at 64 bits.  Element-for-element equality with
``LNSEnv`` is enforced by ``tests/test_engine_lns_batch.py``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from ..arith.backend import Backend
from ..arith.backends import LNSBackend
from ..bigfloat import BigFloat
from ..formats.lns import LNS_ZERO, LNSEnv
from .batch import BatchBackend

#: Probability-zero sentinel: far outside any clamped code range.
ZERO_CODE = np.iinfo(np.int64).min


class BatchLNS(BatchBackend):
    """Batched LNS arithmetic, element-exact against ``LNSEnv``.

    Values are arrays of fixed-point log2 codes in ``int64``;
    probability zero is :data:`ZERO_CODE`.
    """

    dtype = np.dtype(np.int64)

    def __init__(self, env: Optional[LNSEnv] = None,
                 scalar: Optional[LNSBackend] = None):
        if scalar is not None:
            if env is not None and env is not scalar.env:
                raise ValueError("env contradicts the scalar backend's env")
            env = scalar.env
        elif env is None:
            env = LNSEnv(12, 50)
        if env.max_code.bit_length() >= 63:
            raise ValueError("BatchLNS needs codes (and their sums) to "
                             "fit in int64; use total_bits <= 64")
        self.env = env
        self.name = env.name
        self._scalar = scalar if scalar is not None else LNSBackend(env)
        self._min_code = np.int64(env.min_code)
        self._max_code = np.int64(env.max_code)
        #: sb(d) rounds to exactly 0 at or below this gap (see module
        #: docstring for the certification).
        self._sb_floor = np.int64(-(env.frac_bits + 2) << env.frac_bits)
        self._sb_one = np.int64(1 << env.frac_bits)
        #: Memoized exact sb values: {d_code: sb_code}.
        self._sb_cache: Dict[int, int] = {0: 1 << env.frac_bits}

    @property
    def scalar(self) -> Backend:
        return self._scalar

    # ------------------------------------------------------------------
    # Protocol plumbing
    # ------------------------------------------------------------------
    def from_bigfloats(self, values: Iterable[BigFloat]) -> np.ndarray:
        return np.array([self._to_code(self.env.encode_bigfloat(v))
                         for v in values], dtype=self.dtype)

    def from_floats(self, values) -> np.ndarray:
        arr = np.asarray(values)
        flat = [self._to_code(self.env.from_float(float(v)))
                for v in arr.ravel()]
        return np.array(flat, dtype=self.dtype).reshape(arr.shape)

    def to_bigfloats(self, arr: np.ndarray) -> List[BigFloat]:
        return [self.env.decode_bigfloat(self.item(np.asarray(arr), (i,)))
                for i in range(np.asarray(arr).size)]

    def item(self, arr: np.ndarray, index=()):
        code = int(np.asarray(arr)[index])
        return LNS_ZERO if code == ZERO_CODE else code

    @staticmethod
    def _to_code(value) -> int:
        return ZERO_CODE if value == LNS_ZERO else int(value)

    def from_items(self, values, shape=None) -> np.ndarray:
        arr = np.array([self._to_code(v) for v in values], dtype=self.dtype)
        return arr if shape is None else arr.reshape(shape)

    def zeros(self, shape) -> np.ndarray:
        return np.full(shape, ZERO_CODE, dtype=self.dtype)

    def ones(self, shape) -> np.ndarray:
        return np.zeros(shape, dtype=self.dtype)

    def is_zero(self, arr) -> np.ndarray:
        return np.asarray(arr) == ZERO_CODE

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def mul(self, a, b) -> np.ndarray:
        """Saturating fixed-point add of the log codes (exact)."""
        a = np.asarray(a, dtype=self.dtype)
        b = np.asarray(b, dtype=self.dtype)
        zero = (a == ZERO_CODE) | (b == ZERO_CODE)
        # Sentinels would overflow the sum; compute on neutralized lanes.
        safe_a = np.where(zero, np.int64(0), a)
        safe_b = np.where(zero, np.int64(0), b)
        out = np.clip(safe_a + safe_b, self._min_code, self._max_code)
        return np.where(zero, np.int64(ZERO_CODE), out)

    def add(self, a, b) -> np.ndarray:
        """LNS addition: ``hi + sb(lo - hi)``, saturating (exact sb)."""
        a = np.asarray(a, dtype=self.dtype)
        b = np.asarray(b, dtype=self.dtype)
        a, b = np.broadcast_arrays(a, b)
        za = a == ZERO_CODE
        zb = b == ZERO_CODE
        safe_a = np.where(za, np.int64(0), a)
        safe_b = np.where(zb, np.int64(0), b)
        hi = np.maximum(safe_a, safe_b)
        lo = np.minimum(safe_a, safe_b)
        d = lo - hi  # <= 0, in code units
        sb = self._sb_codes(d)
        out = np.clip(hi + sb, self._min_code, self._max_code)
        out = np.where(za & zb, np.int64(ZERO_CODE), out)
        out = np.where(za & ~zb, b, out)
        return np.where(zb & ~za, a, out)

    def _sb_codes(self, d: np.ndarray) -> np.ndarray:
        """Exact ``sb`` on the code grid for an array of gaps ``d <= 0``.

        Vectorized shortcuts handle ``d == 0`` and the certified
        rounds-to-zero region; the remainder is evaluated once per
        distinct gap through the scalar environment and memoized.
        """
        sb = np.zeros(d.shape, dtype=self.dtype)
        sb[d == 0] = self._sb_one
        interior = (d < 0) & (d > self._sb_floor)
        if interior.any():
            gaps = d[interior]
            uniques, inverse = np.unique(gaps, return_inverse=True)
            cache = self._sb_cache
            exact = self.env._sb_exact
            table = np.empty(uniques.shape, dtype=self.dtype)
            for i, u in enumerate(uniques):
                key = int(u)
                value = cache.get(key)
                if value is None:
                    value = cache[key] = exact(key)
                table[i] = value
            sb[interior] = table[inverse]
        return sb

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def sb_cache_size(self) -> int:
        """Distinct gaps memoized so far (the would-be lookup table the
        paper's Section VII shows cannot be built in full)."""
        return len(self._sb_cache)

    def __repr__(self):
        return (f"<BatchLNS {self.name} "
                f"sb_cache={len(self._sb_cache)}>")
