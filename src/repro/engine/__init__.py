"""``repro.engine`` — vectorized batch arithmetic and parallel sweeps.

The scalar backends in :mod:`repro.arith` are the reference semantics;
this package is the throughput layer on top of them:

* :class:`BatchBinary64`, :class:`BatchLogSpace` — array backends over
  float64 values/logs, bit-identical to the scalar backends (log-space
  in matching ``sum_mode``);
* :class:`BatchPosit` — posit(N<=64, ES) on uint64 bit-pattern arrays,
  element-exact against :class:`~repro.formats.posit.PositEnv`;
* :class:`BatchLNS` — LNS codes on int64 arrays, element-exact against
  :class:`~repro.formats.lns.LNSEnv` (exact memoized Gaussian log);
* :class:`BatchQuire` — exact posit accumulators as uint64 limb
  arrays, element-exact against :class:`~repro.formats.quire.Quire`;
* :mod:`~repro.engine.kernels` — forward/backward algorithms over
  batches of sequences *and* batches of models, Poisson-binomial
  p-values over batches of sites;
* :mod:`~repro.engine.runner` — the chunked multi-process sweep runner.

NumPy is a hard install requirement of the distribution (setup.py), so
the ``HAVE_NUMPY`` gate below is defensive: it keeps this module
importable if the engine + format/arith core are ever vendored into a
NumPy-less interpreter, with every batch entry point degrading to
``None``/scalar.  Formats without an array implementation (the
BigFloat oracle) always take the callers' per-format scalar fallback
loops, NumPy or not.
"""

from __future__ import annotations

from typing import Optional

try:  # pragma: no cover - exercised only on numpy-less installs
    import numpy  # noqa: F401
    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    HAVE_NUMPY = False

if HAVE_NUMPY:
    from .batch import (
        SUM_NARY,
        SUM_SEQUENTIAL,
        BatchBackend,
        BatchBinary64,
        BatchLogSpace,
    )
    from .posit_batch import BatchPosit
    from .lns_batch import BatchLNS
    from .quire_batch import (
        BatchQuire,
        fused_dot_product_batch,
        fused_sum_batch,
    )
    from .kernels import (
        backward_batch,
        forward_batch,
        forward_alpha_trace_batch,
        forward_multi_batch,
        pbd_pvalue_batch,
    )
    from ..core.accuracy import measure_pairs
    from .runner import run_sweep_parallel
else:  # pragma: no cover
    BatchBackend = BatchBinary64 = BatchLogSpace = BatchPosit = None
    BatchLNS = BatchQuire = None
    fused_dot_product_batch = fused_sum_batch = None
    forward_batch = forward_alpha_trace_batch = pbd_pvalue_batch = None
    backward_batch = forward_multi_batch = None
    measure_pairs = run_sweep_parallel = None
    SUM_NARY, SUM_SEQUENTIAL = "nary", "sequential"


def batch_backend_for(backend) -> Optional["BatchBackend"]:
    """The batch backend mirroring a scalar backend, or None.

    Formats without an array implementation (the BigFloat oracle)
    return None; callers keep the scalar loop for those.
    """
    if not HAVE_NUMPY:
        return None
    from ..arith.backends import (
        Binary64Backend,
        LNSBackend,
        LogSpaceBackend,
        PositBackend,
    )
    if isinstance(backend, Binary64Backend):
        return BatchBinary64(scalar=backend)
    if isinstance(backend, LogSpaceBackend):
        return BatchLogSpace(scalar=backend)
    if isinstance(backend, PositBackend):
        return BatchPosit(backend.env, scalar=backend)
    if isinstance(backend, LNSBackend):
        return BatchLNS(scalar=backend)
    return None


def standard_batch_backends(underflow: str = "saturate") -> dict:
    """Batch backends for the five Figure 3 formats."""
    from ..arith.backends import standard_backends
    return {name: batch_backend_for(b)
            for name, b in standard_backends(underflow).items()}


__all__ = [
    "HAVE_NUMPY",
    "SUM_NARY",
    "SUM_SEQUENTIAL",
    "BatchBackend",
    "BatchBinary64",
    "BatchLNS",
    "BatchLogSpace",
    "BatchPosit",
    "BatchQuire",
    "batch_backend_for",
    "standard_batch_backends",
    "backward_batch",
    "forward_batch",
    "forward_alpha_trace_batch",
    "forward_multi_batch",
    "fused_dot_product_batch",
    "fused_sum_batch",
    "pbd_pvalue_batch",
    "measure_pairs",
    "run_sweep_parallel",
]
