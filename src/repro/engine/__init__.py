"""``repro.engine`` — vectorized batch arithmetic and parallel sweeps.

The scalar backends in :mod:`repro.arith` define the reference
semantics; this package's kernels are the *canonical implementations*
of the application recurrences wherever the format registry certifies
the batch mirror exact (the scalar app entry points are B=1 views over
them — see :mod:`repro.arith.registry` and
:mod:`repro.engine.plan`):

* :class:`BatchBinary64`, :class:`BatchLogSpace` — array backends over
  float64 values/logs, bit-identical to the scalar backends (log-space
  in matching ``sum_mode``);
* :class:`BatchPosit` — posit(N<=64, ES) on uint64 bit-pattern arrays,
  element-exact against :class:`~repro.formats.posit.PositEnv`;
* :class:`BatchLNS` — LNS codes on int64 arrays, element-exact against
  :class:`~repro.formats.lns.LNSEnv` (exact memoized Gaussian log);
* :class:`BatchQuire` — exact posit accumulators as uint64 limb
  arrays, element-exact against :class:`~repro.formats.quire.Quire`;
* :mod:`~repro.engine.kernels` — forward/backward algorithms over
  batches of sequences *and* batches of models, Poisson-binomial
  p-values over batches of sites;
* :mod:`~repro.engine.compiled` — the opt-in compiled tier
  (:class:`PositPlaneKernels`): whole-recurrence fusion over a
  resident decoded plane, selected by ``ExecPlan(compiled=True)``,
  bit-identical to the batch kernels;
* :mod:`~repro.engine.runner` — the chunked multi-process sweep runner;
* :mod:`~repro.engine.plan` — :class:`ExecPlan`, the one object
  carrying batch toggle, group width, worker fan-out, chunking and
  cache policy through apps and experiments.

NumPy is a hard install requirement of the distribution (setup.py), so
the ``HAVE_NUMPY`` gate below is defensive: it keeps this module
importable if the engine + format/arith core are ever vendored into a
NumPy-less interpreter, with every batch entry point degrading to
``None``/scalar.  Formats without an array implementation (the
BigFloat oracle) always take the callers' per-format scalar fallback
loops, NumPy or not.
"""

from __future__ import annotations

from typing import Optional

from .plan import (
    CACHE_POLICIES,
    DEFAULT_PLAN,
    PLAN_SCHEMA_VERSION,
    ExecPlan,
    current_plan,
    resolve_plan,
    use_plan,
)

try:  # pragma: no cover - exercised only on numpy-less installs
    import numpy  # noqa: F401
    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    HAVE_NUMPY = False

if HAVE_NUMPY:
    from .batch import (
        SUM_NARY,
        SUM_SEQUENTIAL,
        BatchBackend,
        BatchBinary64,
        BatchLogSpace,
    )
    from .posit_batch import BatchPosit
    from .compiled import (
        HAVE_NUMBA,
        PositPlaneKernels,
        numba_available,
        plan_compiled_kernels,
    )
    from .lns_batch import BatchLNS
    from .quire_batch import (
        BatchQuire,
        fused_dot_product_batch,
        fused_sum_batch,
    )
    from .kernels import (
        backward_batch,
        forward_batch,
        forward_alpha_trace_batch,
        forward_multi_batch,
        pbd_pvalue_batch,
    )
    from ..core.accuracy import measure_pairs
    from .runner import run_sweep_parallel
else:  # pragma: no cover
    BatchBackend = BatchBinary64 = BatchLogSpace = BatchPosit = None
    BatchLNS = BatchQuire = None
    HAVE_NUMBA = False
    PositPlaneKernels = None
    numba_available = plan_compiled_kernels = None
    fused_dot_product_batch = fused_sum_batch = None
    forward_batch = forward_alpha_trace_batch = pbd_pvalue_batch = None
    backward_batch = forward_multi_batch = None
    measure_pairs = run_sweep_parallel = None
    SUM_NARY, SUM_SEQUENTIAL = "nary", "sequential"


def batch_backend_for(backend, *,
                      reductions: bool = False) -> Optional["BatchBackend"]:
    """The batch backend mirroring a scalar backend, or None.

    Thin view over the format registry
    (:meth:`repro.arith.registry.FormatRegistry.batch_for`), which owns
    the pairing table.  Formats without an array implementation (the
    BigFloat oracle) return None; callers keep the scalar loop for
    those.  ``reductions=True`` additionally requires the mirror's
    ``sum`` fold to be certified exact against the scalar backend —
    what kernels with reductions (the forward algorithm) need.
    """
    from ..arith.registry import REGISTRY
    return REGISTRY.batch_for(backend, reductions=reductions)


def standard_batch_backends(underflow: str = "saturate") -> dict:
    """Batch backends for the five Figure 3 formats."""
    from ..arith.registry import REGISTRY
    return REGISTRY.standard_batch(underflow)


def plan_batch_backend(backend, plan: "ExecPlan", *,
                       certified: bool = True
                       ) -> Optional["BatchBackend"]:
    """The batch mirror an :class:`ExecPlan` selects for a kernel, or
    None for the scalar path (the plan says so, or no acceptable mirror
    exists).

    This is the one place the apps decide scalar-vs-vectorized.  With
    ``certified=True`` (the B=1 scalar views: ``forward``, ``backward``,
    ``pbd_pvalue``) the mirror must be reduction-certified, so the
    scalar entry points never change results.  Explicitly-batched APIs
    (``forward_batch``, ``forward_models_batch``, ``backward_batch``)
    pass ``certified=False``: their documented contract tolerates
    n-ary log-space's ulp-close batched LSE, and elementwise-only
    kernels (the PBD recurrence) are exact under every pairing anyway.
    """
    if not plan.batch:
        return None
    return batch_backend_for(backend, reductions=certified)


__all__ = [
    "HAVE_NUMPY",
    "HAVE_NUMBA",
    "PositPlaneKernels",
    "numba_available",
    "plan_compiled_kernels",
    "CACHE_POLICIES",
    "DEFAULT_PLAN",
    "PLAN_SCHEMA_VERSION",
    "ExecPlan",
    "current_plan",
    "resolve_plan",
    "use_plan",
    "SUM_NARY",
    "SUM_SEQUENTIAL",
    "BatchBackend",
    "BatchBinary64",
    "BatchLNS",
    "BatchLogSpace",
    "BatchPosit",
    "BatchQuire",
    "batch_backend_for",
    "plan_batch_backend",
    "standard_batch_backends",
    "backward_batch",
    "forward_batch",
    "forward_alpha_trace_batch",
    "forward_multi_batch",
    "fused_dot_product_batch",
    "fused_sum_batch",
    "pbd_pvalue_batch",
    "measure_pairs",
    "run_sweep_parallel",
]
