"""Vectorized posit(N, ES) arithmetic on uint64 arrays (N <= 64).

The scalar :class:`repro.formats.posit.PositEnv` decodes operands to
exact big-integer rationals, combines them exactly, and re-encodes with a
single round-to-nearest-even on the encoding string.  This module
reproduces that *element-exactly* on whole arrays of bit patterns using
only fixed-width integer array operations:

* significands are kept left-aligned in one 64-bit limb (a decoded posit
  has at most ``nbits - 2`` significant bits);
* products and aligned sums are held in a 128-bit (two-limb) window with
  a sticky bit for everything below the window — sufficient because the
  final rounding position is always within ``nbits - 1`` bits of the
  result's leading bit, and alignment can only discard bits when the
  operands are too far apart to cancel;
* quotients are produced by a restoring long division, one exact bit per
  step, with the remainder as the sticky;
* the encoding string (regime + exponent + fraction) is reassembled in a
  128-bit window and rounded exactly as the scalar ``_round_pattern``.

Beyond the packed bit-pattern API (``add``/``mul``/``sub``/``div``),
the backend exposes a **decoded plane** representation
(:class:`Unpacked`: ``zero``/``nar``/``sign``/``frac64``/``scale``
arrays) with ``decode_once``/``encode_once`` entry points and fused
kernels (``mul_unpacked``/``add_unpacked``/``mul_acc``/``axpy``/
``dot_unpacked``).  Chained kernels — the forward recurrence's
mul-then-fold, the PBD update — decode each operand *once* and keep
intermediates in the plane form, paying one re-parse of the rounded
magnitude per op instead of two full pattern decodes.  Every
intermediate is still rounded to the posit grid exactly as the scalar
chain rounds it, so the fused kernels remain element-exact.

Element-for-element equality with ``PositEnv`` is enforced by
``tests/test_engine_posit_batch.py`` (exhaustively at 8 bits, for all
four operations and the plane round-trip).
"""

from __future__ import annotations

from typing import Iterable, List, NamedTuple, Optional

import numpy as np

from .. import telemetry as _tele
from ..arith.backend import Backend
from ..arith.backends import PositBackend
from ..bigfloat import BigFloat
from ..formats.posit import FLUSH, PositEnv
from .batch import BatchBackend

_U64 = np.uint64
_I64 = np.int64
_FULL64 = np.uint64(0xFFFFFFFFFFFFFFFF)
_TOP64 = np.uint64(1) << np.uint64(63)
_BELOW_TOP = _TOP64 - _U64(1)
_M32 = np.uint64(0xFFFFFFFF)
_ONE = np.uint64(1)
_SIXTY_THREE = np.uint64(63)


def _u64(x) -> np.ndarray:
    return np.asarray(x, dtype=np.uint64)


def _i64(x) -> np.ndarray:
    return np.asarray(x).astype(np.int64)


def _bit_length64_portable(x: np.ndarray) -> np.ndarray:
    """Per-element bit length of uint64 values (0 -> 0), as int64.

    Binary-search shift cascade; works on any NumPy."""
    x = _u64(x).copy()
    n = np.zeros(x.shape, dtype=np.int64)
    for s in (32, 16, 8, 4, 2, 1):
        big = x >= (_U64(1) << _U64(s))
        n += big.astype(np.int64) * s
        x = np.where(big, x >> _U64(s), x)
    return n + (x != 0).astype(np.int64)


def _bit_length64(x: np.ndarray) -> np.ndarray:
    """Per-element bit length of uint64 values (0 -> 0), as int64.

    Split at 32 bits so each half converts to float64 exactly, then read
    the bit length off ``frexp``'s exponent — a handful of cheap ufunc
    passes instead of a shift cascade, on any NumPy version.
    """
    x = _u64(x)
    hi = x >> _U64(32)
    big = hi != 0
    _, e = np.frexp(np.where(big, hi, x).astype(np.float64))
    return np.where(big, e + 32, e).astype(np.int64)


_I63 = np.int64(63)
_I0 = np.int64(0)


def _clamp63(n: np.ndarray) -> np.ndarray:
    """``n`` clamped to [0, 63] as uint64 (shift-count domain).

    minimum/maximum instead of np.clip: the hot kernels call this on
    small arrays where np.clip's dispatch overhead dominates.
    """
    return np.minimum(np.maximum(n, _I0), _I63).astype(np.uint64)


def _shl64(x: np.ndarray, n: np.ndarray) -> np.ndarray:
    """``x << n`` with per-element ``n``; 0 once ``n >= 64``.

    Out-of-range counts (including negatives on dead lanes that a
    ``where`` discards) are clamped so the shift itself stays defined.
    """
    n = _i64(n)
    return np.where(n >= 64, _U64(0), _u64(x) << _clamp63(n))


def _shr64(x: np.ndarray, n: np.ndarray) -> np.ndarray:
    """``x >> n`` with per-element ``n``; 0 once ``n >= 64``."""
    n = _i64(n)
    return np.where(n >= 64, _U64(0), _u64(x) >> _clamp63(n))


def _low_mask(n: np.ndarray) -> np.ndarray:
    """``(1 << n) - 1`` per element; all-ones once ``n >= 64``."""
    n = _i64(n)
    return np.where(n >= 64, _FULL64,
                    (_U64(1) << _clamp63(n)) - _U64(1))


def _shr128_sticky(hi, lo, n):
    """Right-shift the 128-bit pair ``(hi, lo)`` by ``n >= 0``.

    Returns ``(hi', lo', sticky)`` where ``sticky`` flags any 1-bits
    shifted out below the window.  Any ``n`` (including >= 128) is
    handled through the clamped shift helpers.
    """
    hi, lo, n = _u64(hi), _u64(lo), _i64(n)
    small = n < 64
    hi2 = _shr64(hi, n)
    lo2 = np.where(small, _shr64(lo, n) | _shl64(hi, 64 - n),
                   _shr64(hi, n - 64))
    sticky = ((lo & _low_mask(n)) != 0) | ((hi & _low_mask(n - 64)) != 0)
    return hi2, lo2, sticky


def _shl128(hi, lo, n):
    """Left-shift the 128-bit pair by ``0 <= n < 128`` (no overflow
    tracking; callers guarantee the top bits are clear)."""
    hi, lo, n = _u64(hi), _u64(lo), _i64(n)
    small = n < 64
    hi2 = np.where(small, _shl64(hi, n) | _shr64(lo, 64 - n),
                   _shl64(lo, n - 64))
    lo2 = np.where(small, _shl64(lo, n), _U64(0))
    return hi2, lo2


def _sub128(ahi, alo, bhi, blo, extra):
    """128-bit ``A - B - extra`` with ``A >= B + extra``; ``extra`` in
    {0, 1} per element."""
    lo1 = alo - blo
    b0 = (alo < blo).astype(np.uint64)
    hi1 = ahi - bhi - b0
    e = _u64(extra)
    lo = lo1 - e
    b1 = (lo1 < e).astype(np.uint64)
    return hi1 - b1, lo


def _umul64(a, b):
    """Full 64x64 -> 128-bit product as ``(hi, lo)``."""
    a, b = _u64(a), _u64(b)
    a0, a1 = a & _M32, a >> _U64(32)
    b0, b1 = b & _M32, b >> _U64(32)
    t = a0 * b0
    w0 = t & _M32
    k = t >> _U64(32)
    t = a1 * b0 + k
    w1 = t & _M32
    w2 = t >> _U64(32)
    t = a0 * b1 + w1
    k = t >> _U64(32)
    hi = a1 * b1 + w2 + k
    lo = (t << _U64(32)) | w0
    return hi, lo


class Unpacked(NamedTuple):
    """A posit array in the decoded plane: per-element flags plus a
    left-aligned significand and base-2 scale.

    The element value is ``(-1)**sign * frac64 * 2**(scale - 63)`` with
    ``frac64``'s leading 1 at bit 63; ``zero``/``nar`` lanes carry
    well-defined but meaningless ``sign``/``frac64``/``scale`` planes —
    every consumer must (and every kernel here does) honor the flags.
    """

    zero: np.ndarray
    nar: np.ndarray
    sign: np.ndarray
    frac64: np.ndarray
    scale: np.ndarray

    @property
    def shape(self):
        return np.broadcast_shapes(*(np.shape(p) for p in self))

    def broadcast_to(self, shape) -> "Unpacked":
        return Unpacked(*(np.broadcast_to(p, shape) for p in self))

    def moveaxis(self, src, dst) -> "Unpacked":
        return Unpacked(*(np.moveaxis(p, src, dst) for p in self))

    def take(self, index) -> "Unpacked":
        """The planes at ``[..., index]`` (for fold kernels)."""
        return Unpacked(*(p[..., index] for p in self))


class BatchPosit(BatchBackend):
    """Batched posit arithmetic, element-exact against ``PositEnv``.

    Values are arrays of raw bit patterns in ``uint64`` (two's-complement
    within the low ``nbits`` bits, like the scalar environment's ints).
    """

    dtype = np.dtype(np.uint64)

    def __init__(self, env: PositEnv, scalar: Optional[PositBackend] = None,
                 *, xp=None):
        if env.nbits > 64:
            raise ValueError("BatchPosit supports nbits <= 64")
        if env.es > 59:
            raise ValueError("BatchPosit supports es <= 59")
        if xp is not None:
            self.xp = xp
        self.env = env
        self.name = env.name
        self._scalar = scalar if scalar is not None else PositBackend(env)
        self._mask = _U64(env.mask)
        self._sign_bit = _U64(env.sign_bit)
        self._body_mask = _U64(env.sign_bit - 1)
        self._nar = _U64(env.nar)
        self._maxpos = _U64(env.maxpos)
        self._minpos = _U64(env.minpos)
        self._body_len = env.nbits - 1
        self._one = _U64(env.from_float(1.0))
        # Hoisted per-environment constants (regime/exponent masks and
        # shift counts are fixed by the configuration, so no kernel
        # recomputes them per element).
        self._top_shift = _U64(self._body_len - 1)
        self._e_mask = _U64((1 << env.es) - 1)
        self._kept_shift = _U64(64 - self._body_len)
        self._guard_shift = _U64(63 - self._body_len)
        self._below_mask = _U64((1 << (63 - self._body_len)) - 1)
        self._max_scale = np.int64(env.max_scale)
        self._useed_log2 = np.int64(env.useed_log2)
        self._es_u = _U64(env.es)
        self._body_len_u = _U64(self._body_len)

    @property
    def scalar(self) -> Backend:
        return self._scalar

    # ------------------------------------------------------------------
    # Protocol plumbing
    # ------------------------------------------------------------------
    def from_bigfloats(self, values: Iterable[BigFloat]) -> np.ndarray:
        return np.array([self.env.encode_bigfloat(v) for v in values],
                        dtype=self.dtype)

    def to_bigfloats(self, arr: np.ndarray) -> List[BigFloat]:
        return [self.env.to_bigfloat(int(v)) for v in
                np.asarray(arr).ravel()]

    def item(self, arr: np.ndarray, index=()):
        return int(np.asarray(arr)[index])

    def zeros(self, shape) -> np.ndarray:
        return np.zeros(shape, dtype=self.dtype)

    def ones(self, shape) -> np.ndarray:
        return np.full(shape, self._one, dtype=self.dtype)

    def is_zero(self, arr) -> np.ndarray:
        return (_u64(arr) & self._mask) == 0

    def is_nar(self, arr) -> np.ndarray:
        return (_u64(arr) & self._mask) == self._nar

    def _order_key(self, arr) -> np.ndarray:
        """Posit patterns as two's-complement integers — the standard's
        total order (NaR = the sign-bit pattern sorts below every
        real), matching the scalar backend's ``gt`` exactly."""
        codes = _u64(arr)
        if self.env.nbits == 64:
            return codes.view(np.int64) if codes.dtype == np.uint64 \
                else codes.astype(np.int64)
        signed = codes.astype(np.int64)
        return np.where(signed >= np.int64(self.env.sign_bit),
                        signed - np.int64(1 << self.env.nbits), signed)

    # ------------------------------------------------------------------
    # Decode: bit patterns -> (zero, nar, sign, frac64, scale)
    # ------------------------------------------------------------------
    def _parse_body(self, body: np.ndarray):
        """``(frac64, scale)`` of a magnitude body (sign bit clear).

        ``body == 0`` lanes produce well-defined garbage; callers mask
        them with their own zero flags.
        """
        es = self.env.es
        body_len_u = self._body_len_u
        r1 = (body >> self._top_shift) != 0
        val = np.where(r1, body ^ self._body_mask, body)
        bl = _bit_length64(val)
        run_u = body_len_u - _u64(bl)
        rem_u = body_len_u - np.minimum(run_u + _ONE, body_len_u)
        run_i = run_u.astype(np.int64)
        k = np.where(r1, run_i - _I64(1), -run_i)
        if es:
            e_bits = np.minimum(self._es_u, rem_u)
            f_bits = rem_u - e_bits
            e = ((body >> f_bits) << (self._es_u - e_bits)) & self._e_mask
            scale = k * self._useed_log2 + e.astype(np.int64)
        else:
            f_bits = rem_u
            scale = k
        frac64 = _TOP64 | ((body << (_SIXTY_THREE - f_bits)) & _BELOW_TOP)
        return frac64, scale

    def _decode(self, bits):
        """Decode patterns to left-aligned exact significands.

        Returns ``(zero, nar, sign, frac64, scale)`` where the element
        value is ``(-1)**sign * frac64 * 2**(scale - 63)`` and ``frac64``
        has its leading 1 at bit 63.
        """
        with _tele.span("posit.decode"):
            bits = _u64(bits)
            if self._mask != _FULL64:
                bits = bits & self._mask
            zero = bits == 0
            nar = bits == self._nar
            sign = bits >= self._sign_bit
            mag = np.where(sign, _U64(0) - bits, bits)
            body = mag & self._body_mask
            frac64, scale = self._parse_body(body)
            return zero, nar, sign, frac64, scale

    def decode_once(self, bits) -> Unpacked:
        """The decoded-plane form of a pattern array (see
        :class:`Unpacked`) — decode each operand once, then chain fused
        kernels on the planes."""
        with np.errstate(over="ignore"):
            return Unpacked(*self._decode(bits))

    # ------------------------------------------------------------------
    # Encode: (sign, scale, frac64, sticky) -> rounded bit patterns
    # ------------------------------------------------------------------
    def _encode_mag(self, scale, frac64, sticky, live=None):
        """Round-to-nearest-even on the encoding string, vectorized;
        returns the *magnitude* pattern (sign not yet applied).

        Mirrors ``PositEnv.encode_real``/``_round_pattern``: the string
        is regime + exponent + fraction; we materialize its top 128 bits
        with a sticky for the rest, keep ``nbits - 1`` bits, and round
        on the guard bit + below-mask.

        ``live``, when given, masks the finite-nonzero result lanes and
        enables the ``posit.saturate``/``posit.flush`` event tallies
        (callers only build it while a telemetry collector is active).
        """
        with _tele.span("posit.encode"):
            env = self.env
            es = env.es
            scale = _i64(scale)
            frac64 = _u64(frac64)
            sticky = np.asarray(sticky, dtype=bool)
            sat = scale > self._max_scale

            k = scale >> np.int64(es)  # arithmetic shift = floor division
            e = _u64(scale - (k << np.int64(es)))
            pos_k = k >= 0
            # Ones (k >= 0) or zeros (k < 0) then the terminator; clamp
            # the run so every shift below stays defined (lanes needing a
            # longer run are saturation/underflow lanes whose value the
            # final clamps and the sticky already determine).
            run = np.minimum(np.where(pos_k, k + _I64(1), -k), _I64(192))
            full = np.broadcast_to(_FULL64, run.shape)
            top = np.broadcast_to(_TOP64, run.shape)
            e_hi = np.where(pos_k, _shl64(full, 64 - run), _shr64(top, run))
            e_lo = np.where(pos_k | (run < 64), _U64(0),
                            _shr64(top, run - 64))
            st_r = ~pos_k & (run >= 128)
            # Exponent + fraction tail: es + 63 bits, top-aligned
            # (constant shifts — es is fixed per environment) then
            # dropped below the regime.
            fraction = frac64 & _BELOW_TOP
            if es == 0:
                t_hi = fraction << _ONE
                t_lo = np.zeros_like(t_hi)
            elif es == 1:
                t_hi = (e << _SIXTY_THREE) | fraction
                t_lo = np.zeros_like(t_hi)
            else:
                t_hi = (e << _U64(64 - es)) | (fraction >> _U64(es - 1))
                t_lo = fraction << _U64(65 - es)
            t_hi, t_lo, st_t = _shr128_sticky(t_hi, t_lo, run + _I64(1))
            e_hi = e_hi | t_hi
            e_lo = e_lo | t_lo

            kept = e_hi >> self._kept_shift
            guard = (e_hi >> self._guard_shift) & _ONE
            below = (((e_hi & self._below_mask) != 0) | (e_lo != 0)
                     | sticky | st_r | st_t)
            round_up = (guard != 0) & (below | ((kept & _ONE) != 0))
            pattern = kept + round_up
            pattern = np.minimum(pattern, self._maxpos)
            if live is not None:
                self._tally_rounding(live, sat, scale, frac64, sticky,
                                     pattern)
            if env.underflow != FLUSH:
                # Saturate mode: a nonzero real never rounds to zero.  In
                # flush mode a rounded-to-zero pattern simply stays zero.
                pattern = np.where(pattern == 0, self._minpos, pattern)
            return np.where(sat, self._maxpos, pattern)

    def _tally_rounding(self, live, sat, scale, frac64, sticky, pattern):
        """Tally ``posit.saturate``/``posit.flush`` on live result lanes.

        Only reached when the caller built a ``live`` mask, i.e. while a
        collector was active; re-checks in case the scope closed."""
        c = _tele.current()
        if c is None:
            return
        # |exact| > maxpos == 2**max_scale: either the scale overflows
        # outright, or it sits exactly at max_scale with anything below
        # the leading significand bit set (frac64's leading 1 is bit 63,
        # so the value is frac64 * 2**(scale-63) plus the sticky tail).
        over = live & (sat | ((scale == self._max_scale)
                              & ((frac64 != _TOP64) | sticky)))
        n = int(np.count_nonzero(over))
        if n:
            c.event("posit.saturate", n)
        # Magnitude rounded to zero (kept in flush mode, clamped back to
        # minpos in saturate mode — the rounding event is the same).
        under = live & ~sat & (pattern == 0)
        n = int(np.count_nonzero(under))
        if n:
            c.event("posit.flush", n)

    def _tally_nar(self, nar, dead):
        """Tally ``posit.nar`` result lanes and return the live mask
        (neither NaR nor an exact-zero passthrough lane) for the
        rounding-event tallies.  Only called while a collector is
        active."""
        n = int(np.count_nonzero(nar))
        if n:
            _tele.event("posit.nar", n)
        return ~(nar | dead)

    def _encode(self, sign, scale, frac64, sticky, live=None):
        pattern = self._encode_mag(scale, frac64, sticky, live)
        return np.where(sign, (_U64(0) - pattern) & self._mask, pattern)

    def encode_once(self, u: Unpacked) -> np.ndarray:
        """Decoded planes back to rounded bit patterns (the inverse of
        :meth:`decode_once`; exact — rounding happened when the planes
        were produced)."""
        with np.errstate(over="ignore"):
            pattern = self._encode(u.sign, u.scale, u.frac64, False)
            pattern = np.where(u.zero, _U64(0), pattern)
            return np.where(u.nar, self._nar, pattern)

    def _round_to_planes(self, sign, scale, frac64, sticky, live=None):
        """Round an exact (sign, scale, frac64, sticky) result and
        return it re-decoded: ``(mag_pattern, frac64', scale')``.
        The one extra magnitude parse replaces the two full pattern
        decodes the next op in a chain would otherwise pay."""
        pm = self._encode_mag(scale, frac64, sticky, live)
        f2, s2 = self._parse_body(pm)
        return pm, f2, s2

    # ------------------------------------------------------------------
    # Arithmetic cores (decoded-plane in, exact pre-rounding result out)
    # ------------------------------------------------------------------
    def _mul_core(self, ua: Unpacked, ub: Unpacked):
        """Exact product: ``(sign, scale, frac64, sticky)``."""
        with _tele.span("posit.core.mul"):
            hi, lo = _umul64(ua.frac64, ub.frac64)
            top = (hi >> _SIXTY_THREE) & _ONE
            top1 = top != 0
            frac = np.where(top1, hi, (hi << _ONE) | (lo >> _SIXTY_THREE))
            low = np.where(top1, lo, lo << _ONE)
            scale = ua.scale + ub.scale + top.astype(np.int64)
            return ua.sign ^ ub.sign, scale, frac, low != 0

    def _add_core(self, ua: Unpacked, ub: Unpacked):
        """Exact sum: ``(sign, scale, frac64, sticky, cancelled,
        same)`` — ``cancelled`` flags exact zero results of
        opposite-sign adds, ``same`` whether the signs agreed."""
        with _tele.span("posit.core.add"):
            sa, fa, ea = ua.sign, ua.frac64, ua.scale
            sb, fb, eb = ub.sign, ub.frac64, ub.scale
            # Dominant operand first (larger magnitude).
            a_small = (ea < eb) | ((ea == eb) & (fa < fb))
            s1 = np.where(a_small, sb, sa)
            f1 = np.where(a_small, fb, fa)
            e1 = np.where(a_small, eb, ea)
            s2 = np.where(a_small, sa, sb)
            f2 = np.where(a_small, fa, fb)
            gap = e1 - np.where(a_small, ea, eb)
            # Align the small operand: (f2, 0) >> gap with a sticky.
            b_hi = _shr64(f2, gap)
            b_lo = np.where(gap < 64, _shl64(f2, 64 - gap),
                            _shr64(f2, gap - 64))
            st_b = (f2 & _low_mask(gap - 64)) != 0
            same = s1 == s2
            # Operand-dependent gating: probability workloads are almost
            # always sign-uniform (all positive), so compute each branch
            # only where some lane needs it.  Results are identical
            # either way (the merge selects per lane); the exhaustive
            # suites cover mixed batches.
            any_diff = not bool(same.all())
            # The same-sign path also serves the empty-array case (both
            # ``any`` flags false), where every op below is a no-op
            # anyway.
            any_same = bool(same.any()) or not any_diff

            if any_same:
                # Same sign: (f1, 0) + aligned B, renormalizing one
                # carry bit.
                lo_s = b_lo
                hi_s = f1 + b_hi
                carry = hi_s < f1
                st_s = st_b | (carry & ((lo_s & _ONE) != 0))
                lo_s = np.where(carry,
                                (lo_s >> _ONE) | (hi_s << _SIXTY_THREE),
                                lo_s)
                hi_s = np.where(carry, (hi_s >> _ONE) | _TOP64, hi_s)
                scale_s = e1 + carry.astype(np.int64)

            if any_diff:
                # Opposite sign: (f1, 0) - aligned B, minus a borrow
                # when the alignment lost bits (true B is larger than
                # its truncation; the lost fraction survives as the
                # sticky).
                hi_d, lo_d = _sub128(f1, np.zeros_like(f1), b_hi, b_lo,
                                     st_b.astype(np.uint64))
                cancelled = (hi_d == 0) & (lo_d == 0) & ~st_b
                msb = np.where(hi_d != 0, 64 + _bit_length64(hi_d),
                               _bit_length64(lo_d)) - 1
                shift_up = np.where(cancelled, 0, 127 - msb)
                hi_d, lo_d = _shl128(hi_d, lo_d, shift_up)
                scale_d = e1 - shift_up
            else:
                cancelled = np.zeros_like(same)

            if not any_diff:
                frac, low, sticky, scale = hi_s, lo_s, st_s, scale_s
            elif not any_same:
                frac, low, sticky, scale = hi_d, lo_d, st_b, scale_d
            else:
                frac = np.where(same, hi_s, hi_d)
                low = np.where(same, lo_s, lo_d)
                sticky = np.where(same, st_s, st_b)
                scale = np.where(same, scale_s, scale_d)
            sticky = sticky | (low != 0)
            return s1, scale, frac, sticky, cancelled, same

    def _divide_frac(self, fa: np.ndarray, fb: np.ndarray):
        """Normalized exact quotient of two left-aligned significands:
        ``(frac64, sticky, dec)`` with value ``frac64 * 2**-63 *
        2**-dec`` and a sticky for the (possibly infinite) tail.

        Restoring long division, one exact quotient bit per step; the
        invariant ``rem < fb`` keeps every intermediate in one limb
        (the shifted-out top bit is folded into the compare/subtract).
        """
        with _tele.span("posit.core.div"):
            ge0 = fa >= fb
            rem = np.where(ge0, fa - fb, fa)
            q = ge0.astype(np.uint64)
            for _ in range(63):
                top = rem >> _SIXTY_THREE
                rem = rem << _ONE
                bit = (top != 0) | (rem >= fb)
                rem = np.where(bit, rem - fb, rem)
                q = (q << _ONE) | bit
            # One more bit for quotients in (1/2, 1).
            top = rem >> _SIXTY_THREE
            rem2 = rem << _ONE
            bit = (top != 0) | (rem2 >= fb)
            rem2 = np.where(bit, rem2 - fb, rem2)
            q2 = (q << _ONE) | bit
            frac = np.where(ge0, q, q2)
            sticky = np.where(ge0, rem, rem2) != 0
            dec = (~ge0).astype(np.int64)
            return frac, sticky, dec

    # ------------------------------------------------------------------
    # Packed-pattern arithmetic
    # ------------------------------------------------------------------
    def mul(self, a, b) -> np.ndarray:
        with np.errstate(over="ignore"):
            a, b = _u64(a), _u64(b)
            za, na, sa, fa, ea = self._decode(a)
            zb, nb, sb, fb, eb = self._decode(b)
            ua = Unpacked(za, na, sa, fa, ea)
            ub = Unpacked(zb, nb, sb, fb, eb)
            sign, scale, frac, sticky = self._mul_core(ua, ub)
            live = None
            if _tele.current() is not None:
                live = self._tally_nar(na | nb, za | zb)
            pattern = self._encode(sign, scale, frac, sticky, live)
            pattern = np.where(za | zb, _U64(0), pattern)
            return np.where(na | nb, self._nar, pattern)

    def add(self, a, b) -> np.ndarray:
        with np.errstate(over="ignore"):
            a, b = _u64(a), _u64(b)
            am = a & self._mask
            bm = b & self._mask
            za, na, sa, fa, ea = self._decode(am)
            zb, nb, sb, fb, eb = self._decode(bm)
            ua = Unpacked(za, na, sa, fa, ea)
            ub = Unpacked(zb, nb, sb, fb, eb)
            s1, scale, frac, sticky, cancelled, same = \
                self._add_core(ua, ub)
            live = None
            if _tele.current() is not None:
                live = self._tally_nar(na | nb,
                                       za | zb | (~same & cancelled))
            pattern = self._encode(s1, scale, frac, sticky, live)
            pattern = np.where(~same & cancelled, _U64(0), pattern)
            pattern = np.where(za, bm, pattern)
            pattern = np.where(zb & ~za, am, pattern)
            return np.where(na | nb, self._nar, pattern)

    def neg(self, a) -> np.ndarray:
        """Pattern negation (exact; zero and NaR are fixed points)."""
        with np.errstate(over="ignore"):
            return (_U64(0) - _u64(a)) & self._mask

    def sub(self, a, b) -> np.ndarray:
        """``a - b`` — exactly the scalar environment's
        ``add(a, neg(b))``."""
        return self.add(a, self.neg(b))

    def div(self, a, b) -> np.ndarray:
        """Correctly rounded quotient (exact long division + one
        rounding), element-exact against ``PositEnv.div``."""
        with np.errstate(over="ignore"):
            a, b = _u64(a), _u64(b)
            za, na, sa, fa, ea = self._decode(a)
            zb, nb, sb, fb, eb = self._decode(b)
            fa, fb = np.broadcast_arrays(fa, fb)
            frac, sticky, dec = self._divide_frac(fa, fb)
            scale = ea - eb - dec
            live = None
            if _tele.current() is not None:
                live = self._tally_nar(na | nb | zb, np.asarray(za))
            pattern = self._encode(sa ^ sb, scale, frac, sticky, live)
            pattern = np.where(za, _U64(0), pattern)
            return np.where(na | nb | zb, self._nar, pattern)

    # ------------------------------------------------------------------
    # Decoded-plane fused kernels
    # ------------------------------------------------------------------
    def zeros_unpacked(self, shape) -> Unpacked:
        """Probability-0 planes (the fold identity)."""
        shape = (shape,) if isinstance(shape, int) else tuple(shape)
        return Unpacked(np.ones(shape, dtype=bool),
                        np.zeros(shape, dtype=bool),
                        np.zeros(shape, dtype=bool),
                        np.full(shape, _TOP64, dtype=np.uint64),
                        np.zeros(shape, dtype=np.int64))

    def mul_unpacked(self, ua: Unpacked, ub: Unpacked) -> Unpacked:
        """Rounded product in the decoded plane (element-exact)."""
        sign, scale, frac, sticky = self._mul_core(ua, ub)
        live = None
        if _tele.current() is not None:
            live = self._tally_nar(ua.nar | ub.nar, ua.zero | ub.zero)
        pm, f2, s2 = self._round_to_planes(sign, scale, frac, sticky,
                                           live)
        zero = ua.zero | ub.zero | (pm == 0)
        return Unpacked(zero, ua.nar | ub.nar, sign, f2, s2)

    def add_unpacked(self, ua: Unpacked, ub: Unpacked) -> Unpacked:
        """Rounded sum in the decoded plane (element-exact)."""
        za, zb = ua.zero, ub.zero
        s1, scale, frac, sticky, cancelled, same = self._add_core(ua, ub)
        live = None
        if _tele.current() is not None:
            live = self._tally_nar(ua.nar | ub.nar,
                                   za | zb | (~same & cancelled))
        pm, f2, s2 = self._round_to_planes(s1, scale, frac, sticky, live)
        live = ~za & ~zb
        zero = (za & zb) | (live & ((~same & cancelled) | (pm == 0)))
        sign = np.where(za, ub.sign, np.where(zb, ua.sign, s1))
        frac64 = np.where(za, ub.frac64, np.where(zb, ua.frac64, f2))
        sc = np.where(za, ub.scale, np.where(zb, ua.scale, s2))
        return Unpacked(zero, ua.nar | ub.nar, sign, frac64, sc)

    def mul_acc(self, acc: Unpacked, x: Unpacked, y: Unpacked) -> Unpacked:
        """``acc + x*y`` with both roundings, all in the decoded plane
        (the forward recurrence's inner step)."""
        return self.add_unpacked(acc, self.mul_unpacked(x, y))

    def dot_unpacked(self, ua: Unpacked, ub: Unpacked,
                     axis: int = -1) -> Unpacked:
        """Sum of products along ``axis``, op-for-op the base
        ``sum(mul(a, b))`` fold — but each operand is decoded once and
        every intermediate stays in the plane form."""
        shape = np.broadcast_shapes(ua.shape, ub.shape)
        # One rounding pass over the whole broadcast product (identical
        # per-element roundings, far better ufunc amortization than one
        # pass per fold slice), then the index-order add fold.
        prod = self.mul_unpacked(ua.broadcast_to(shape),
                                 ub.broadcast_to(shape)).moveaxis(axis, -1)
        acc = self.zeros_unpacked(prod.frac64.shape[:-1])
        for i in range(prod.frac64.shape[-1]):
            acc = self.add_unpacked(acc, prod.take(i))
        return acc

    def dot(self, a, b, axis: int = -1) -> np.ndarray:
        """Fused decoded-plane dot product (element-exact against the
        base mul-then-fold, enforced by the engine tests)."""
        with np.errstate(over="ignore"):
            ua = Unpacked(*self._decode(_u64(a)))
            ub = Unpacked(*self._decode(_u64(b)))
            return self.encode_once(self.dot_unpacked(ua, ub, axis=axis))

    def sum(self, arr: np.ndarray, axis: int = -1) -> np.ndarray:
        """Index-order fold through the decoded plane (one decode for
        the whole array; op-for-op the base ``add`` fold)."""
        with np.errstate(over="ignore"):
            u = Unpacked(*self._decode(_u64(arr))).moveaxis(axis, -1)
            acc = self.zeros_unpacked(u.frac64.shape[:-1])
            for i in range(u.frac64.shape[-1]):
                acc = self.add_unpacked(acc, u.take(i))
            return self.encode_once(acc)

    def axpy(self, a, x, y) -> np.ndarray:
        """``a*x + y`` with one decode per operand (both intermediate
        roundings preserved — element-exact against ``add(mul(a, x),
        y)``)."""
        with np.errstate(over="ignore"):
            ua = Unpacked(*self._decode(_u64(a)))
            ux = Unpacked(*self._decode(_u64(x)))
            uy = Unpacked(*self._decode(_u64(y)))
            prod = self.mul_unpacked(ua, ux)
            return self.encode_once(self.add_unpacked(prod, uy))

    # ------------------------------------------------------------------
    # Float conversions (convenience; encode side is exact)
    # ------------------------------------------------------------------
    def from_floats(self, values) -> np.ndarray:
        """Exact float64 -> posit conversion (vectorized encode)."""
        with np.errstate(over="ignore"):
            x = np.asarray(values, dtype=np.float64)
            m, e = np.frexp(np.where(np.isfinite(x), x, 0.0))
            mant = np.abs(m * 9007199254740992.0).astype(np.uint64)  # 2**53
            bl = _bit_length64(mant)
            frac64 = _shl64(mant, 64 - bl)
            scale = e.astype(np.int64) - 54 + bl
            pattern = self._encode(np.signbit(x), scale, frac64,
                                   np.zeros(x.shape, dtype=bool))
            pattern = np.where(x == 0.0, _U64(0), pattern)
            return np.where(~np.isfinite(x), self._nar, pattern)

    def to_floats(self, arr) -> np.ndarray:
        """Posit -> float64, rounding the (up to 62-bit) significand to
        double precision.  Values beyond double range overflow/underflow
        as IEEE does; unlike the scalar ``to_float`` this path may
        double-round in the subnormal range."""
        with np.errstate(over="ignore"):
            zero, nar, sign, frac64, scale = self._decode(arr)
            x = np.ldexp(frac64.astype(np.float64),
                         (scale - 63).astype(np.int32))
            x = np.where(sign, -x, x)
            x = np.where(zero, 0.0, x)
            return np.where(nar, np.nan, x)
