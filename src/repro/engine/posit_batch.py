"""Vectorized posit(N, ES) arithmetic on uint64 arrays (N <= 64).

The scalar :class:`repro.formats.posit.PositEnv` decodes operands to
exact big-integer rationals, combines them exactly, and re-encodes with a
single round-to-nearest-even on the encoding string.  This module
reproduces that *element-exactly* on whole arrays of bit patterns using
only fixed-width integer array operations:

* significands are kept left-aligned in one 64-bit limb (a decoded posit
  has at most ``nbits - 2`` significant bits);
* products and aligned sums are held in a 128-bit (two-limb) window with
  a sticky bit for everything below the window — sufficient because the
  final rounding position is always within ``nbits - 1`` bits of the
  result's leading bit, and alignment can only discard bits when the
  operands are too far apart to cancel;
* the encoding string (regime + exponent + fraction) is reassembled in a
  128-bit window and rounded exactly as the scalar ``_round_pattern``.

Element-for-element equality with ``PositEnv`` is enforced by
``tests/test_engine_posit_batch.py``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from ..arith.backend import Backend
from ..arith.backends import PositBackend
from ..bigfloat import BigFloat
from ..formats.posit import FLUSH, PositEnv
from .batch import BatchBackend

_U64 = np.uint64
_FULL64 = np.uint64(0xFFFFFFFFFFFFFFFF)
_TOP64 = np.uint64(1) << np.uint64(63)
_M32 = np.uint64(0xFFFFFFFF)


def _u64(x) -> np.ndarray:
    return np.asarray(x, dtype=np.uint64)


def _i64(x) -> np.ndarray:
    return np.asarray(x).astype(np.int64)


def _bit_length64_portable(x: np.ndarray) -> np.ndarray:
    """Per-element bit length of uint64 values (0 -> 0), as int64.

    Binary-search shift cascade; works on any NumPy."""
    x = _u64(x).copy()
    n = np.zeros(x.shape, dtype=np.int64)
    for s in (32, 16, 8, 4, 2, 1):
        big = x >= (_U64(1) << _U64(s))
        n += big.astype(np.int64) * s
        x = np.where(big, x >> _U64(s), x)
    return n + (x != 0).astype(np.int64)


if hasattr(np, "bitwise_count"):  # NumPy >= 2.0: popcount of a smear
    def _bit_length64(x: np.ndarray) -> np.ndarray:
        """Per-element bit length of uint64 values (0 -> 0), as int64."""
        x = _u64(x).copy()
        for s in (1, 2, 4, 8, 16, 32):
            x |= x >> _U64(s)
        return np.bitwise_count(x).astype(np.int64)
else:  # pragma: no cover - exercised on NumPy 1.x installs
    _bit_length64 = _bit_length64_portable


def _shl64(x: np.ndarray, n: np.ndarray) -> np.ndarray:
    """``x << n`` with per-element ``n``; 0 once ``n >= 64``.

    Out-of-range counts (including negatives on dead lanes that a
    ``where`` discards) are clamped so the shift itself stays defined.
    """
    n = _i64(n)
    safe = np.clip(n, 0, 63).astype(np.uint64)
    return np.where(n >= 64, _U64(0), _u64(x) << safe)


def _shr64(x: np.ndarray, n: np.ndarray) -> np.ndarray:
    """``x >> n`` with per-element ``n``; 0 once ``n >= 64``."""
    n = _i64(n)
    safe = np.clip(n, 0, 63).astype(np.uint64)
    return np.where(n >= 64, _U64(0), _u64(x) >> safe)


def _low_mask(n: np.ndarray) -> np.ndarray:
    """``(1 << n) - 1`` per element; all-ones once ``n >= 64``."""
    n = _i64(n)
    safe = np.clip(n, 0, 63).astype(np.uint64)
    return np.where(n >= 64, _FULL64, (_U64(1) << safe) - _U64(1))


def _shr128_sticky(hi, lo, n):
    """Right-shift the 128-bit pair ``(hi, lo)`` by ``n >= 0``.

    Returns ``(hi', lo', sticky)`` where ``sticky`` flags any 1-bits
    shifted out below the window.
    """
    hi, lo, n = _u64(hi), _u64(lo), _i64(n)
    hi, lo, n = np.broadcast_arrays(hi, lo, n)
    # n < 64 branch
    lo_a = _shr64(lo, n) | _shl64(hi, 64 - n)
    hi_a = _shr64(hi, n)
    st_a = (lo & _low_mask(n)) != 0
    # 64 <= n < 128 branch
    m = n - 64
    lo_b = _shr64(hi, m)
    hi_b = np.zeros_like(hi)
    st_b = (lo != 0) | ((hi & _low_mask(m)) != 0)
    # n >= 128 branch
    st_c = (hi != 0) | (lo != 0)
    small = n < 64
    mid = (n >= 64) & (n < 128)
    hi2 = np.where(small, hi_a, np.where(mid, hi_b, _U64(0)))
    lo2 = np.where(small, lo_a, np.where(mid, lo_b, _U64(0)))
    sticky = np.where(small, st_a, np.where(mid, st_b, st_c))
    return hi2, lo2, sticky


def _shl128(hi, lo, n):
    """Left-shift the 128-bit pair by ``0 <= n < 128`` (no overflow
    tracking; callers guarantee the top bits are clear)."""
    hi, lo, n = _u64(hi), _u64(lo), _i64(n)
    hi, lo, n = np.broadcast_arrays(hi, lo, n)
    hi_a = _shl64(hi, n) | _shr64(lo, 64 - n)
    lo_a = _shl64(lo, n)
    hi_b = _shl64(lo, n - 64)
    small = n < 64
    return (np.where(small, hi_a, hi_b),
            np.where(small, lo_a, np.zeros_like(lo)))


def _add128(ahi, alo, bhi, blo):
    """128-bit add; returns ``(hi, lo, carry_out)``."""
    lo = alo + blo
    c0 = (lo < alo).astype(np.uint64)
    hi1 = ahi + bhi
    c1 = hi1 < ahi
    hi = hi1 + c0
    c2 = hi < hi1
    return hi, lo, c1 | c2


def _sub128(ahi, alo, bhi, blo, extra):
    """128-bit ``A - B - extra`` with ``A >= B + extra``; ``extra`` in
    {0, 1} per element."""
    lo1 = alo - blo
    b0 = (alo < blo).astype(np.uint64)
    hi1 = ahi - bhi - b0
    e = _u64(extra)
    lo = lo1 - e
    b1 = (lo1 < e).astype(np.uint64)
    return hi1 - b1, lo


def _umul64(a, b):
    """Full 64x64 -> 128-bit product as ``(hi, lo)``."""
    a, b = _u64(a), _u64(b)
    a0, a1 = a & _M32, a >> _U64(32)
    b0, b1 = b & _M32, b >> _U64(32)
    t = a0 * b0
    w0 = t & _M32
    k = t >> _U64(32)
    t = a1 * b0 + k
    w1 = t & _M32
    w2 = t >> _U64(32)
    t = a0 * b1 + w1
    k = t >> _U64(32)
    hi = a1 * b1 + w2 + k
    lo = (t << _U64(32)) | w0
    return hi, lo


class BatchPosit(BatchBackend):
    """Batched posit arithmetic, element-exact against ``PositEnv``.

    Values are arrays of raw bit patterns in ``uint64`` (two's-complement
    within the low ``nbits`` bits, like the scalar environment's ints).
    """

    dtype = np.dtype(np.uint64)

    def __init__(self, env: PositEnv, scalar: Optional[PositBackend] = None):
        if env.nbits > 64:
            raise ValueError("BatchPosit supports nbits <= 64")
        if env.es > 59:
            raise ValueError("BatchPosit supports es <= 59")
        self.env = env
        self.name = env.name
        self._scalar = scalar if scalar is not None else PositBackend(env)
        self._mask = _U64(env.mask)
        self._sign_bit = _U64(env.sign_bit)
        self._nar = _U64(env.nar)
        self._maxpos = _U64(env.maxpos)
        self._minpos = _U64(env.minpos)
        self._body_len = env.nbits - 1
        self._one = _U64(env.from_float(1.0))

    @property
    def scalar(self) -> Backend:
        return self._scalar

    # ------------------------------------------------------------------
    # Protocol plumbing
    # ------------------------------------------------------------------
    def from_bigfloats(self, values: Iterable[BigFloat]) -> np.ndarray:
        return np.array([self.env.encode_bigfloat(v) for v in values],
                        dtype=self.dtype)

    def to_bigfloats(self, arr: np.ndarray) -> List[BigFloat]:
        return [self.env.to_bigfloat(int(v)) for v in
                np.asarray(arr).ravel()]

    def item(self, arr: np.ndarray, index=()):
        return int(np.asarray(arr)[index])

    def zeros(self, shape) -> np.ndarray:
        return np.zeros(shape, dtype=self.dtype)

    def ones(self, shape) -> np.ndarray:
        return np.full(shape, self._one, dtype=self.dtype)

    def is_zero(self, arr) -> np.ndarray:
        return (_u64(arr) & self._mask) == 0

    def is_nar(self, arr) -> np.ndarray:
        return (_u64(arr) & self._mask) == self._nar

    # ------------------------------------------------------------------
    # Decode: bit patterns -> (zero, nar, sign, frac64, scale)
    # ------------------------------------------------------------------
    def _decode(self, bits):
        """Decode patterns to left-aligned exact significands.

        Returns ``(zero, nar, sign, frac64, scale)`` where the element
        value is ``(-1)**sign * frac64 * 2**(scale - 63)`` and ``frac64``
        has its leading 1 at bit 63.
        """
        env = self.env
        bits = _u64(bits) & self._mask
        zero = bits == 0
        nar = bits == self._nar
        sign = (bits & self._sign_bit) != 0
        mag = np.where(sign, (_U64(0) - bits) & self._mask, bits)
        body_len = self._body_len
        body = mag & (self._sign_bit - _U64(1))
        body_mask = self._sign_bit - _U64(1)
        top = _U64(body_len - 1)
        r = (body >> top) & _U64(1)
        val = np.where(r == 1, ~body & body_mask, body)
        run = body_len - _bit_length64(val)  # int64; val==0 -> body_len
        k = np.where(r == 1, run - 1, -run)
        consumed = np.minimum(run + 1, body_len)
        rem = body_len - consumed
        e_bits = np.minimum(env.es, rem)
        e_field = _shr64(body, rem - e_bits) & _low_mask(e_bits)
        e = _shl64(e_field, env.es - e_bits).astype(np.int64)
        f_bits = rem - e_bits
        f_field = body & _low_mask(f_bits)
        scale = k * env.useed_log2 + e
        mantissa = _shl64(np.ones_like(body), f_bits) | f_field
        frac64 = _shl64(mantissa, 63 - f_bits)
        return zero, nar, sign, frac64, scale

    # ------------------------------------------------------------------
    # Encode: (sign, scale, frac64, sticky) -> rounded bit patterns
    # ------------------------------------------------------------------
    def _encode(self, sign, scale, frac64, sticky):
        """Round-to-nearest-even on the encoding string, vectorized.

        Mirrors ``PositEnv.encode_real``/``_round_pattern``: the string
        is regime + exponent + fraction; we materialize its top 128 bits
        with a sticky for the rest, keep ``nbits - 1`` bits, and round
        on the guard bit + below-mask.
        """
        env = self.env
        es = env.es
        body_len = self._body_len
        scale = _i64(scale)
        frac64 = _u64(frac64)
        sticky = np.asarray(sticky, dtype=bool)
        sat = scale > env.max_scale

        k = scale >> np.int64(es)  # arithmetic shift = floor division
        e = _u64(scale - (k << np.int64(es)))
        pos_k = k >= 0
        run = np.where(pos_k, k + 1, -k)
        regime_len = run + 1
        # Regime, top-aligned in a 128-bit window.
        #   k >= 0: run ones then a zero  -> value 2**(run+1) - 2
        #   k <  0: run zeros then a one  -> a single 1 at depth ``run``
        r_pos_hi = _shl64((_shl64(np.ones_like(frac64), run + 1)
                           - _U64(2)) & _FULL64, 64 - regime_len)
        one_hi, one_lo, st_r = _shr128_sticky(
            np.full_like(frac64, _TOP64), np.zeros_like(frac64),
            np.where(pos_k, 0, run))
        e_hi = np.where(pos_k, r_pos_hi, one_hi)
        e_lo = np.where(pos_k, np.zeros_like(frac64), one_lo)
        st_r = np.where(pos_k, False, st_r)
        # Exponent + fraction tail: es + 63 bits, top-aligned then
        # dropped below the regime.
        fraction = frac64 & ~_TOP64
        t_hi = e >> _U64(1)
        t_lo = ((e & _U64(1)) << _U64(63)) | fraction
        t_hi, t_lo = _shl128(t_hi, t_lo, 128 - (es + 63))
        t_hi, t_lo, st_t = _shr128_sticky(t_hi, t_lo, regime_len)
        e_hi = e_hi | t_hi
        e_lo = e_lo | t_lo
        sticky_all = sticky | st_r | st_t

        kept = e_hi >> _U64(64 - body_len)
        guard = (e_hi >> _U64(63 - body_len)) & _U64(1)
        below_hi = (e_hi & _low_mask(np.full_like(run, 63 - body_len))) != 0
        below = below_hi | (e_lo != 0) | sticky_all
        round_up = (guard == 1) & (below | ((kept & _U64(1)) == 1))
        pattern = kept + round_up.astype(np.uint64)

        pattern = np.where(pattern > self._maxpos, self._maxpos, pattern)
        if env.underflow != FLUSH:
            # Saturate mode: a nonzero real never rounds to zero.  In
            # flush mode a rounded-to-zero pattern simply stays zero.
            pattern = np.where(pattern == 0, self._minpos, pattern)
        pattern = np.where(sat, self._maxpos, pattern)
        pattern = np.where(sign, (_U64(0) - pattern) & self._mask, pattern)
        return pattern

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def mul(self, a, b) -> np.ndarray:
        a, b = np.broadcast_arrays(_u64(a), _u64(b))
        if a.ndim == 0:
            # 0-d lanes run as length-1 vectors: NumPy warns on the
            # intended two's-complement wraparound for *scalar* uint64
            # ops only.
            return self.mul(a[None], b[None]).reshape(())
        za, na, sa, fa, ea = self._decode(a)
        zb, nb, sb, fb, eb = self._decode(b)
        hi, lo = _umul64(fa, fb)  # product of [2**63, 2**64)^2
        top = ((hi >> _U64(63)) & _U64(1)).astype(np.int64)
        frac = np.where(top == 1, hi, (hi << _U64(1)) | (lo >> _U64(63)))
        low = np.where(top == 1, lo, lo << _U64(1))
        scale = ea + eb + top
        pattern = self._encode(sa ^ sb, scale, frac, low != 0)
        pattern = np.where(za | zb, _U64(0), pattern)
        return np.where(na | nb, self._nar, pattern)

    def add(self, a, b) -> np.ndarray:
        a, b = np.broadcast_arrays(_u64(a), _u64(b))
        if a.ndim == 0:
            return self.add(a[None], b[None]).reshape(())
        za, na, sa, fa, ea = self._decode(a)
        zb, nb, sb, fb, eb = self._decode(b)
        # Dominant operand first (larger magnitude).
        a_small = (ea < eb) | ((ea == eb) & (fa < fb))
        s1 = np.where(a_small, sb, sa)
        f1 = np.where(a_small, fb, fa)
        e1 = np.where(a_small, eb, ea)
        s2 = np.where(a_small, sa, sb)
        f2 = np.where(a_small, fa, fb)
        e2 = np.where(a_small, ea, eb)
        gap = e1 - e2
        b_hi, b_lo, st_b = _shr128_sticky(f2, np.zeros_like(f2), gap)
        same = s1 == s2
        zero_lo = np.zeros_like(f1)

        # Same sign: (f1, 0) + aligned B, renormalizing one carry bit.
        hi_s, lo_s, carry = _add128(f1, zero_lo, b_hi, b_lo)
        carry_on = carry != 0
        st_s = st_b | (carry_on & ((lo_s & _U64(1)) != 0))
        lo_s = np.where(carry_on, (lo_s >> _U64(1)) | (hi_s << _U64(63)),
                        lo_s)
        hi_s = np.where(carry_on, (hi_s >> _U64(1)) | _TOP64, hi_s)
        scale_s = e1 + carry.astype(np.int64)

        # Opposite sign: (f1, 0) - aligned B, minus a borrow when the
        # alignment lost bits (true B is larger than its truncation; the
        # lost fraction survives as the sticky).
        hi_d, lo_d = _sub128(f1, zero_lo, b_hi, b_lo,
                             st_b.astype(np.uint64))
        cancelled = (hi_d == 0) & (lo_d == 0) & ~st_b
        msb = np.where(hi_d != 0, 64 + _bit_length64(hi_d),
                       _bit_length64(lo_d)) - 1
        shift_up = np.where(cancelled, 0, 127 - msb)
        hi_d, lo_d = _shl128(hi_d, lo_d, shift_up)
        scale_d = e1 - shift_up

        frac = np.where(same, hi_s, hi_d)
        low = np.where(same, lo_s, lo_d)
        sticky = np.where(same, st_s, st_b) | (low != 0)
        scale = np.where(same, scale_s, scale_d)
        pattern = self._encode(s1, scale, frac, sticky)
        pattern = np.where(~same & cancelled, _U64(0), pattern)
        pattern = np.where(za, b & self._mask, pattern)
        pattern = np.where(zb & ~za, a & self._mask, pattern)
        return np.where(na | nb, self._nar, pattern)

    # ------------------------------------------------------------------
    # Float conversions (convenience; encode side is exact)
    # ------------------------------------------------------------------
    def from_floats(self, values) -> np.ndarray:
        """Exact float64 -> posit conversion (vectorized encode)."""
        x = np.asarray(values, dtype=np.float64)
        m, e = np.frexp(np.where(np.isfinite(x), x, 0.0))
        mant = np.abs(m * 9007199254740992.0).astype(np.uint64)  # 2**53
        bl = _bit_length64(mant)
        frac64 = _shl64(mant, 64 - bl)
        scale = e.astype(np.int64) - 54 + bl
        pattern = self._encode(np.signbit(x), scale, frac64,
                               np.zeros(x.shape, dtype=bool))
        pattern = np.where(x == 0.0, _U64(0), pattern)
        return np.where(~np.isfinite(x), self._nar, pattern)

    def to_floats(self, arr) -> np.ndarray:
        """Posit -> float64, rounding the (up to 62-bit) significand to
        double precision.  Values beyond double range overflow/underflow
        as IEEE does; unlike the scalar ``to_float`` this path may
        double-round in the subnormal range."""
        zero, nar, sign, frac64, scale = self._decode(arr)
        x = np.ldexp(frac64.astype(np.float64), (scale - 63).astype(np.int32))
        x = np.where(sign, -x, x)
        x = np.where(zero, 0.0, x)
        return np.where(nar, np.nan, x)
