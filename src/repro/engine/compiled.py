"""The compiled kernel tier: whole-recurrence fusion over the posit
decoded plane, with an optional Numba JIT and an array-namespace
(``xp=``) escape hatch.

The batch tier (:mod:`repro.engine.posit_batch`) already fuses chains
inside one op (decode each operand once, round once), but the
*recurrences* still re-encode every intermediate: the forward
algorithm's per-step ``nd.dot`` re-decodes alpha and the loop-invariant
model arrays T times, and ``benchmarks/profile_posit.py`` shows the
decode/encode stages dominating.  This module adds the third tier of
ROADMAP item 1 (scalar -> batch -> compiled):

* **whole-recurrence fusion** — :class:`PositPlaneKernels` decodes the
  model arrays (A, B, pi / the PBD trial probabilities) exactly once
  per kernel call, keeps the :class:`~repro.engine.posit_batch.Unpacked`
  decoded plane resident across all T timesteps, and encodes only the
  outputs that escape (the final likelihoods / the alpha trace).  Every
  intermediate is still rounded to the posit grid exactly where the
  batch path rounds it, so results are **bit-identical** to the PR 5
  path (pinned by the exhaustive 8-bit suites in
  ``tests/test_engine_compiled.py``);
* **lean rounding** — the fold's hot stages (:meth:`_round`,
  :meth:`_add_core`) replace the generic 128-bit string machinery with
  direct top-limb arithmetic: the kept + guard bits of the encoding
  string always fit the top 64 bits, and everything below only matters
  as a boolean sticky, so the per-element shift helpers collapse into a
  handful of ufunc passes;
* **optional Numba JIT** — when ``numba`` is importable, the hottest
  per-element stages (posit decode, the round-to-nearest-even encode,
  and the fused mul/add plane steps the forward fold chains) compile
  lazily to native loops.  Absent numba, the NumPy lean kernels serve
  the same contract (graceful fallback, never an error).  Install with
  ``pip install -e .[compiled]``;
* **array namespace** — ``xp=`` (array-API style) on
  :class:`~repro.engine.batch.BatchBackend` and these kernels names the
  array library the vectorized passes run on.  NumPy is the default and
  the only namespace the exactness suites certify; the parameter exists
  so a CuPy-like namespace can be dropped in later without another
  refactor (the contract: NumPy-compatible broadcasting ufuncs,
  ``where``/``minimum``/``concatenate``, and 64-bit integer dtypes).

Selection is by :attr:`ExecPlan.compiled
<repro.engine.plan.ExecPlan.compiled>`: the nd expressions
(``_forward_nd``/``_forward_trace_nd``/``_pbd_nd``) route through
:func:`plan_compiled_kernels`, which silently returns ``None`` — and
the caller keeps the batch/scalar path — whenever the plan does not ask
for the tier, the arrays are not in a vectorized representation, or the
format has no compiled tier (``FormatCapabilities.compiled``).  Because
the tier is bit-identical, the fallback never changes results.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import faults as _faults
from .. import telemetry as _tele
from ..formats.posit import FLUSH
from .posit_batch import (
    _BELOW_TOP,
    _FULL64,
    _ONE,
    _SIXTY_THREE,
    _TOP64,
    _U64,
    BatchPosit,
    Unpacked,
    _bit_length64,
    _shl128,
    _sub128,
)

try:  # pragma: no cover - exercised only where numba is installed
    import numba  # noqa: F401
    HAVE_NUMBA = True
except ImportError:
    numba = None
    HAVE_NUMBA = False

_I0 = np.int64(0)
_I1 = np.int64(1)
_I63 = np.int64(63)
_I64C = np.int64(64)
_U0 = np.uint64(0)
_U64C = np.uint64(64)


def numba_available() -> bool:
    """Whether the optional Numba JIT tier can be used in this
    process (the ``[compiled]`` extra is installed)."""
    return HAVE_NUMBA


class PositPlaneKernels:
    """Whole-recurrence fused kernels over one :class:`BatchPosit`.

    Each kernel decodes its operand arrays once, chains the lean plane
    ops across every timestep with the decoded plane resident, and
    encodes only the escaping outputs.  ``xp=`` selects the array
    namespace (default: the backend's, i.e. NumPy); ``use_numba=None``
    auto-enables the JIT tier when numba is importable, ``False``
    forces the NumPy lean kernels, ``True`` requires numba.

    Everything here is bit-identical to the batch tier — that is the
    compiled tier's contract, and what lets ``ExecPlan.compiled``
    fall back silently.
    """

    #: Kernels this tier offers (mirrored by
    #: ``FormatCapabilities.compiled_ops``).
    ops = ("forward", "forward_trace", "pbd")

    def __init__(self, bb: BatchPosit, *, xp=None,
                 use_numba: Optional[bool] = None):
        self._bp = bb
        self.xp = xp if xp is not None else getattr(bb, "xp", np)
        env = bb.env
        self._es = env.es
        self._flush = env.underflow == FLUSH
        # Hoisted per-environment constants (shared with the batch
        # mirror, which already derived them from the env).
        self._kept_shift = bb._kept_shift
        self._guard_shift = bb._guard_shift
        self._below_mask = bb._below_mask
        self._has_below = int(bb._below_mask) != 0
        self._maxpos = bb._maxpos
        self._minpos = bb._minpos
        self._max_scale = bb._max_scale
        self._es_i = np.int64(env.es)
        if env.es >= 2:
            self._e_top_shift = _U64(64 - env.es)
            self._f_hi_shift = _U64(env.es - 1)
            self._f_lo_shift = _U64(65 - env.es)
        if use_numba is None:
            use_numba = HAVE_NUMBA
        elif use_numba and not HAVE_NUMBA:
            raise RuntimeError(
                "use_numba=True but numba is not installed; install the "
                "[compiled] extra or pass use_numba=None for the "
                "graceful-fallback default")
        self._jit = _jit_kernels(env) if use_numba else None

    @property
    def backend(self) -> BatchPosit:
        """The batch mirror whose numerics these kernels reproduce."""
        return self._bp

    def __repr__(self):
        tier = "numba" if self._jit is not None else "numpy"
        return (f"<PositPlaneKernels {self._bp.name} {tier} "
                f"ops={','.join(self.ops)}>")

    # ------------------------------------------------------------------
    # Lean rounding: round-to-nearest-even on the encoding string
    # ------------------------------------------------------------------
    def _round(self, scale, frac64, sticky, live=None):
        """Round an exact ``(scale, frac64, sticky)`` magnitude and
        re-parse it: ``(mag_pattern, frac64', scale')``.

        Bit-identical to ``BatchPosit._encode_mag`` + ``_parse_body``
        (the exhaustive 8-bit suites assert so), but computed on the
        top 64 bits of the encoding string directly: the kept + guard
        window always fits one limb, and every lower string bit only
        matters as a boolean, so the 128-bit shift-with-sticky
        machinery reduces to clamped shifts plus any-bits-below masks.
        """
        xp = self.xp
        with _tele.span("posit.encode"):
            k = scale >> self._es_i  # arithmetic shift = floor division
            pos = k >= _I0
            run = xp.where(pos, k + _I1, -k)  # regime length, >= 1
            big = run >= _I64C  # regime fills the top limb
            rs = xp.minimum(run, _I63).view(_U64)
            # Regime in the top limb: `run` ones (k >= 0) or the
            # terminator one at position `run` (k < 0).  Non-saturating
            # positive regimes always fit (run <= nbits - 1 <= 63);
            # oversized positive runs are saturation lanes whose value
            # the final clamp overrides.
            reg = xp.where(pos, _FULL64 << (_U64C - rs), _TOP64 >> rs)
            # Exponent + fraction tail: es + 63 bits, top-aligned
            # (constant shifts — es is fixed per environment).
            fraction = frac64 & _BELOW_TOP
            es = self._es
            if es == 0:
                t_hi = fraction << _ONE
                t_lo = None
            elif es == 1:
                e = (scale - (k << self._es_i)).view(_U64)
                t_hi = (e << _SIXTY_THREE) | fraction
                t_lo = None
            else:
                e = (scale - (k << self._es_i)).view(_U64)
                t_hi = (e << self._e_top_shift) | \
                    (fraction >> self._f_hi_shift)
                t_lo = fraction << self._f_lo_shift
            # Drop the tail below the regime: bits landing in the top
            # limb join the window, everything lower is a sticky.
            r1 = run + _I1
            r1_small = r1 < _I64C
            r1c = xp.minimum(r1, _I63).view(_U64)
            below = sticky | ((t_hi & xp.where(
                r1_small, (_ONE << r1c) - _ONE, _FULL64)) != 0)
            if t_lo is not None:
                below = below | (t_lo != 0)
            if bool(big.any()):
                # A terminator (k < 0) beyond the limb is a dropped
                # 1-bit; oversized positive regimes are saturation
                # lanes (value overridden below).
                reg = xp.where(big, _U0, reg)
                below = below | (big & ~pos)
            e_hi = reg | xp.where(r1_small, t_hi >> r1c, _U0)

            kept = e_hi >> self._kept_shift
            guard = (e_hi >> self._guard_shift) & _ONE
            if self._has_below:
                below = below | ((e_hi & self._below_mask) != 0)
            round_up = (guard != 0) & (below | ((kept & _ONE) != 0))
            pattern = xp.minimum(kept + round_up, self._maxpos)
            sat = scale > self._max_scale
            if live is not None:
                self._bp._tally_rounding(live, sat, scale, frac64,
                                         sticky, pattern)
            if not self._flush:
                # Saturate mode: a nonzero real never rounds to zero.
                pattern = xp.where(pattern == 0, self._minpos, pattern)
            pattern = xp.where(sat, self._maxpos, pattern)
            f2, s2 = self._bp._parse_body(pattern)
            return pattern, f2, s2

    # ------------------------------------------------------------------
    # Lean exact add core (the fold's other hot stage)
    # ------------------------------------------------------------------
    def _add_core(self, ua: Unpacked, ub: Unpacked):
        """Exact sum, mirroring ``BatchPosit._add_core`` with the
        per-element shift helpers inlined as clamped shifts."""
        xp = self.xp
        with _tele.span("posit.core.add"):
            sa, fa, ea = ua.sign, ua.frac64, ua.scale
            sb, fb, eb = ub.sign, ub.frac64, ub.scale
            a_small = (ea < eb) | ((ea == eb) & (fa < fb))
            s1 = xp.where(a_small, sb, sa)
            f1 = xp.where(a_small, fb, fa)
            e1 = xp.where(a_small, eb, ea)
            s2 = xp.where(a_small, sa, sb)
            f2 = xp.where(a_small, fa, fb)
            gap = e1 - xp.where(a_small, ea, eb)
            # Align the small operand into a 128-bit window: the
            # clamped-shift identity (f2 << (63-gap)) << 1 equals
            # f2 << (64-gap) for gap in [1, 63] and 0 at gap == 0.
            gbig = gap >= _I64C
            gc = xp.minimum(gap, _I63).view(_U64)
            b_hi = f2 >> gc
            b_lo = (f2 << (_SIXTY_THREE - gc)) << _ONE
            if bool(gbig.any()):
                g2 = gap - _I64C
                g2big = g2 >= _I64C
                g2c = xp.minimum(g2, _I63).view(_U64)
                b_hi = xp.where(gbig, _U0, b_hi)
                b_lo = xp.where(gbig,
                                xp.where(g2big, _U0, f2 >> g2c), b_lo)
                st_b = gbig & ((f2 & xp.where(
                    g2big, _FULL64, (_ONE << g2c) - _ONE)) != 0)
            else:
                st_b = gbig  # all-False, correctly shaped
            same = s1 == s2
            # Operand-dependent gating, exactly as the batch tier:
            # probability workloads are sign-uniform, so each branch
            # runs only where some lane needs it.
            any_diff = not bool(same.all())
            any_same = bool(same.any()) or not any_diff

            if any_same:
                lo_s = b_lo
                hi_s = f1 + b_hi
                carry = hi_s < f1
                st_s = st_b | (carry & ((lo_s & _ONE) != 0))
                lo_s = xp.where(carry,
                                (lo_s >> _ONE) | (hi_s << _SIXTY_THREE),
                                lo_s)
                hi_s = xp.where(carry, (hi_s >> _ONE) | _TOP64, hi_s)
                scale_s = e1 + carry.astype(np.int64)

            if any_diff:
                hi_d, lo_d = _sub128(f1, np.zeros_like(f1), b_hi, b_lo,
                                     st_b.astype(np.uint64))
                cancelled = (hi_d == 0) & (lo_d == 0) & ~st_b
                msb = xp.where(hi_d != 0, 64 + _bit_length64(hi_d),
                               _bit_length64(lo_d)) - 1
                shift_up = xp.where(cancelled, 0, 127 - msb)
                hi_d, lo_d = _shl128(hi_d, lo_d, shift_up)
                scale_d = e1 - shift_up
            else:
                cancelled = np.zeros_like(same)

            if not any_diff:
                frac, low, sticky, scale = hi_s, lo_s, st_s, scale_s
            elif not any_same:
                frac, low, sticky, scale = hi_d, lo_d, st_b, scale_d
            else:
                frac = xp.where(same, hi_s, hi_d)
                low = xp.where(same, lo_s, lo_d)
                sticky = xp.where(same, st_s, st_b)
                scale = xp.where(same, scale_s, scale_d)
            sticky = sticky | (low != 0)
            return s1, scale, frac, sticky, cancelled, same

    # ------------------------------------------------------------------
    # Plane ops (lean NumPy or JIT loops; identical results)
    # ------------------------------------------------------------------
    def _mul_u(self, ua: Unpacked, ub: Unpacked) -> Unpacked:
        """Rounded product in the decoded plane — ``mul_unpacked``
        through the lean round (or the JIT loop)."""
        if self._jit is not None and _tele.current() is None:
            return self._jit_binary(self._jit.mul_loop, ua, ub)
        sign, scale, frac, sticky = self._bp._mul_core(ua, ub)
        live = None
        if _tele.current() is not None:
            live = self._bp._tally_nar(ua.nar | ub.nar,
                                       ua.zero | ub.zero)
        pm, f2, s2 = self._round(scale, frac, sticky, live)
        zero = ua.zero | ub.zero | (pm == 0)
        return Unpacked(zero, ua.nar | ub.nar, sign, f2, s2)

    def _add_u(self, ua: Unpacked, ub: Unpacked) -> Unpacked:
        """Rounded sum in the decoded plane — ``add_unpacked`` through
        the lean core + round (or the JIT loop), with the zero merges
        gated off when no operand lane is zero."""
        if self._jit is not None and _tele.current() is None:
            return self._jit_binary(self._jit.add_loop, ua, ub)
        xp = self.xp
        za, zb = ua.zero, ub.zero
        s1, scale, frac, sticky, cancelled, same = self._add_core(ua, ub)
        mixed = ~same & cancelled
        live = None
        if _tele.current() is not None:
            live = self._bp._tally_nar(ua.nar | ub.nar, za | zb | mixed)
        pm, f2, s2 = self._round(scale, frac, sticky, live)
        nar = ua.nar | ub.nar
        if bool(za.any()) or bool(zb.any()):
            alive = ~za & ~zb
            zero = (za & zb) | (alive & (mixed | (pm == 0)))
            sign = xp.where(za, ub.sign, xp.where(zb, ua.sign, s1))
            frac64 = xp.where(za, ub.frac64, xp.where(zb, ua.frac64, f2))
            sc = xp.where(za, ub.scale, xp.where(zb, ua.scale, s2))
            return Unpacked(zero, nar, sign, frac64, sc)
        return Unpacked(mixed | (pm == 0), nar, s1, f2, s2)

    def _jit_binary(self, loop, ua: Unpacked, ub: Unpacked) -> Unpacked:
        """Run one JIT plane loop over broadcast, contiguous planes."""
        shape = np.broadcast_shapes(ua.shape, ub.shape)
        planes = [np.ascontiguousarray(np.broadcast_to(p, shape)).ravel()
                  for u in (ua, ub) for p in u]
        n = planes[0].size
        out = (np.empty(n, dtype=bool), np.empty(n, dtype=bool),
               np.empty(n, dtype=bool), np.empty(n, dtype=np.uint64),
               np.empty(n, dtype=np.int64))
        loop(*planes, *out)
        return Unpacked(*(o.reshape(shape) for o in out))

    # ------------------------------------------------------------------
    # Whole-recurrence kernels
    # ------------------------------------------------------------------
    def _emission(self, ub: Unpacked, obs: np.ndarray, t: int) -> Unpacked:
        """``B[q, o_t]`` planes per sequence, shape ``(B, H)`` — a
        gather on the resident decoded plane (no decode)."""
        col = obs[:, t]
        return Unpacked(*(p[:, col].T for p in ub))

    def _fold(self, planes: Unpacked) -> Unpacked:
        """Index-order add fold over the last axis.  The batch tier
        folds from explicit zero planes; ``add(0, x)`` is an exact
        passthrough, so starting from the first slice is identical."""
        acc = planes.take(0)
        for i in range(1, planes.frac64.shape[-1]):
            acc = self._add_u(acc, planes.take(i))
        return acc

    def _check_forward_shapes(self, a, b, pi, obs):
        obs = np.asarray(obs)
        if obs.ndim != 2:
            raise ValueError("obs must have shape (batch, T)")
        if np.ndim(a) != 2 or np.ndim(b) != 2 or np.ndim(pi) != 1:
            raise ValueError("fused forward needs a shared model: "
                             "a (H, H), b (H, M), pi (H,)")
        return obs

    def _forward_planes(self, a, b, pi, obs):
        """The shared forward-step generator: decode the model once,
        yield the resident alpha plane after every step."""
        bp = self._bp
        ua = bp.decode_once(np.asarray(a, dtype=bp.dtype))
        ub = bp.decode_once(np.asarray(b, dtype=bp.dtype))
        upi = bp.decode_once(np.asarray(pi, dtype=bp.dtype))
        alpha = self._mul_u(upi, self._emission(ub, obs, 0))
        yield alpha
        for t in range(1, obs.shape[1]):
            # path_sum[s, q] = sum_p(alpha[s, p] * A[p, q]): one
            # rounding pass over the whole (B, H, H) product, then the
            # index-order fold over p — op-for-op the batch tier's
            # dot_unpacked, on planes that never left residence.
            prod = self._mul_u(
                Unpacked(*(p[:, :, None] for p in alpha)), ua)
            path_sum = self._fold(prod.moveaxis(1, -1))
            alpha = self._mul_u(path_sum, self._emission(ub, obs, t))
            yield alpha

    def forward(self, a, b, pi, obs) -> np.ndarray:
        """Fused forward likelihoods for a batch of sequences sharing
        one model; packed parameter arrays in (``a (H, H)``,
        ``b (H, M)``, ``pi (H,)``, integer ``obs (B, T)``), packed
        ``(B,)`` likelihoods out.  Bit-identical to
        :func:`repro.engine.kernels.forward_batch`."""
        obs = self._check_forward_shapes(a, b, pi, obs)
        _faults.fire("compiled.forward")
        with np.errstate(over="ignore"), _tele.span("kernel.forward_fused"):
            for alpha in self._forward_planes(a, b, pi, obs):
                pass
            return self._bp.encode_once(self._fold(alpha))

    def forward_trace(self, a, b, pi, obs) -> np.ndarray:
        """Fused per-step total alpha mass, shape ``(B, T)`` —
        bit-identical to ``forward_alpha_trace_batch`` (only the
        per-step totals are encoded; alpha itself stays resident)."""
        obs = self._check_forward_shapes(a, b, pi, obs)
        _faults.fire("compiled.forward_trace")
        with np.errstate(over="ignore"), _tele.span("kernel.forward_fused"):
            cols = [self._bp.encode_once(self._fold(alpha))
                    for alpha in self._forward_planes(a, b, pi, obs)]
            return np.stack(cols, axis=1)

    def pbd(self, pn, qn, k: int) -> np.ndarray:
        """Fused Poisson-binomial ``P(X >= k)`` over a batch of sites:
        packed ``(S, N)`` probability/complement arrays in, packed
        ``(S,)`` p-values out.  The trial probabilities decode once;
        the PMF rows stay resident across all N trials.  Bit-identical
        to :func:`repro.engine.kernels.pbd_pvalue_batch`."""
        if k < 1:
            raise ValueError("k must be >= 1 (a variant needs a success)")
        bp = self._bp
        pn = np.asarray(pn, dtype=bp.dtype)
        qn = np.asarray(qn, dtype=bp.dtype)
        n_sites, n_trials = pn.shape
        if n_trials < k:
            raise ValueError("need at least k trials")
        _faults.fire("compiled.pbd")
        with np.errstate(over="ignore"), _tele.span("kernel.pbd_fused"):
            upn = bp.decode_once(pn)
            uqn = bp.decode_once(qn)
            ones = Unpacked(
                np.zeros((n_sites, 1), dtype=bool),
                np.zeros((n_sites, 1), dtype=bool),
                np.zeros((n_sites, 1), dtype=bool),
                np.full((n_sites, 1), _TOP64, dtype=np.uint64),
                np.zeros((n_sites, 1), dtype=np.int64))
            zero_col = bp.zeros_unpacked((n_sites, 1))
            pr = Unpacked(*(np.concatenate([o, np.broadcast_to(
                z, (n_sites, k - 1))], axis=1)
                for o, z in zip(ones, zero_col)))
            pvalue = bp.zeros_unpacked((n_sites,))
            for n in range(n_trials):
                pn_n = Unpacked(*(p[:, n] for p in upn))
                if n >= k - 1:
                    pvalue = self._add_u(
                        self._mul_u(pr.take(k - 1), pn_n), pvalue)
                shifted = Unpacked(*(np.concatenate(
                    [z, p[:, :-1]], axis=1)
                    for z, p in zip(zero_col, pr)))
                prq = self._mul_u(
                    pr, Unpacked(*(p[:, n:n + 1] for p in uqn)))
                pr = self._add_u(self._mul_u(
                    shifted, Unpacked(*(p[:, n:n + 1] for p in upn))), prq)
            return bp.encode_once(pvalue)


# ----------------------------------------------------------------------
# Plan routing (the nd/dispatch layer's entry point)
# ----------------------------------------------------------------------
def plan_compiled_kernels(plan, *farrays):
    """The compiled kernels an :class:`ExecPlan` selects for an nd
    expression, or ``None`` for the batch/scalar path.

    Silent-fallback contract: ``None`` (never an error) whenever the
    plan does not set ``compiled``, any operand is in the scalar
    representation, the operands disagree on their batch mirror, the
    mirror's format has no compiled tier, or the tier is quarantined by
    the degradation ladder (:mod:`repro.faults.degrade` — a fused
    kernel raised at runtime earlier in this process).  The tier is
    bit-identical, so falling back never changes results.
    """
    if plan is None or not getattr(plan, "compiled", False):
        return None
    if _faults.quarantined("compiled"):
        return None
    if not farrays:
        return None
    bb = getattr(farrays[0], "_bb", None)
    if bb is None:
        return None
    for fa in farrays[1:]:
        if getattr(fa, "_bb", None) is not bb:
            return None
    from ..arith.registry import REGISTRY
    return REGISTRY.compiled_for(bb)


# ----------------------------------------------------------------------
# Numba JIT tier (lazy; graceful fallback when numba is absent)
# ----------------------------------------------------------------------
class _JitKernels:
    """Compiled per-element loops for one posit environment."""

    __slots__ = ("decode_loop", "round_loop", "mul_loop", "add_loop")

    def __init__(self, decode_loop, round_loop, mul_loop, add_loop):
        self.decode_loop = decode_loop
        self.round_loop = round_loop
        self.mul_loop = mul_loop
        self.add_loop = add_loop


_JIT_CACHE: dict = {}


def _jit_kernels(env) -> Optional[_JitKernels]:
    """The lazily-built JIT kernels for one environment, or ``None``
    when numba is absent (callers keep the NumPy lean kernels)."""
    if not HAVE_NUMBA:
        return None
    key = (env.nbits, env.es, env.underflow)
    kernels = _JIT_CACHE.get(key)
    if kernels is None:
        kernels = _build_jit(env)
        _JIT_CACHE[key] = kernels
    return kernels


def _build_jit(env) -> "_JitKernels":  # pragma: no cover - needs numba
    """Compile the per-element posit stages for ``env``.

    The loops mirror the NumPy lean kernels op for op (the
    numba-marked tests assert bit-identity); every shift count is
    branch-guarded below 64 so the native shifts stay defined.
    """
    njit = numba.njit(cache=False)
    u64 = np.uint64
    i64 = np.int64
    M64 = u64(0xFFFFFFFFFFFFFFFF)
    TOP = u64(1) << u64(63)
    BELOW_TOP = TOP - u64(1)
    U1 = u64(1)
    U0 = u64(0)
    es = int(env.es)
    body_len = int(env.nbits - 1)
    kept_shift = u64(64 - body_len)
    guard_shift = u64(63 - body_len)
    below_mask = u64((1 << (63 - body_len)) - 1)
    top_shift = u64(body_len - 1)
    body_mask = u64(env.sign_bit - 1)
    e_mask = u64((1 << es) - 1)
    useed_log2 = i64(env.useed_log2)
    max_scale = i64(env.max_scale)
    maxpos = u64(env.maxpos)
    minpos = u64(env.minpos)
    nar = u64(env.nar)
    mask = u64(env.mask)
    flush = env.underflow == FLUSH
    es_i = i64(es)
    zero_i = i64(0)

    @njit
    def _bl64(x):
        n = i64(0)
        while x != U0:
            x = x >> U1
            n += i64(1)
        return n

    @njit
    def _parse1(body):
        # _parse_body, one element (body != 0).
        r1 = (body >> top_shift) != U0
        val = body ^ body_mask if r1 else body
        bl = _bl64(val)
        run = i64(body_len) - bl
        rem_full = run + i64(1)
        if rem_full > i64(body_len):
            rem_full = i64(body_len)
        rem = i64(body_len) - rem_full
        k = run - i64(1) if r1 else -run
        if es:
            e_bits = i64(es) if i64(es) < rem else rem
            f_bits = rem - e_bits
            e = ((body >> u64(f_bits)) << u64(es_i - e_bits)) & e_mask
            scale = k * useed_log2 + i64(e)
        else:
            f_bits = rem
            scale = k
        frac = TOP | ((body << u64(63 - f_bits)) & BELOW_TOP)
        return frac, scale

    @njit
    def _round1(scale, frac, sticky):
        # The lean round, one element: top-limb string + any-below.
        sat = scale > max_scale
        k = scale >> es_i
        if k >= zero_i:
            pos = True
            run = k + i64(1)
        else:
            pos = False
            run = -k
        below = sticky
        if run >= i64(64):
            e_hi = M64 if pos else U0
            below = True  # dropped terminator / saturation lane
        else:
            e_hi = (M64 << u64(64 - run)) if pos else (TOP >> u64(run))
        fraction = frac & BELOW_TOP
        e = u64(scale - (k << es_i))
        if es == 0:
            t_hi = fraction << U1
            t_lo = U0
        elif es == 1:
            t_hi = (e << u64(63)) | fraction
            t_lo = U0
        else:
            t_hi = (e << u64(64 - es)) | (fraction >> u64(es - 1))
            t_lo = fraction << u64(65 - es)
        r1 = run + i64(1)
        if r1 < i64(64):
            e_hi = e_hi | (t_hi >> u64(r1))
            if (t_hi & ((U1 << u64(r1)) - U1)) != U0:
                below = True
        elif t_hi != U0:
            below = True
        if t_lo != U0:
            below = True
        kept = e_hi >> kept_shift
        guard = (e_hi >> guard_shift) & U1
        if (e_hi & below_mask) != U0:
            below = True
        if guard != U0 and (below or (kept & U1) != U0):
            kept = kept + U1
        if kept > maxpos:
            kept = maxpos
        if (not flush) and kept == U0:
            kept = minpos
        if sat:
            kept = maxpos
        return kept

    @njit
    def _round_parse1(scale, frac, sticky):
        pat = _round1(scale, frac, sticky)
        if pat == U0:
            return pat, TOP, zero_i  # zero lane; flags carry meaning
        f2, s2 = _parse1(pat)
        return pat, f2, s2

    @njit
    def decode_loop(bits, oz, on, os, of, oe):
        for i in range(bits.size):
            v = bits[i] & mask
            zero = v == U0
            is_nar = v == nar
            sign = v > nar if nar != U0 else False
            oz[i] = zero
            on[i] = is_nar
            os[i] = sign
            if zero or is_nar:
                of[i] = TOP
                oe[i] = zero_i
            else:
                body = ((U0 - v) if sign else v) & body_mask
                f, s = _parse1(body)
                of[i] = f
                oe[i] = s
        return 0

    @njit
    def round_loop(scale, frac, sticky, op, of, oe):
        for i in range(scale.size):
            pat, f2, s2 = _round_parse1(scale[i], frac[i], sticky[i])
            op[i] = pat
            of[i] = f2
            oe[i] = s2
        return 0

    @njit
    def mul_loop(za, na, sa, fa, ea, zb, nb, sb, fb, eb,
                 oz, on, os, of, oe):
        for i in range(za.size):
            is_nar = na[i] or nb[i]
            sign = sa[i] != sb[i]
            on[i] = is_nar
            os[i] = sign
            if is_nar or za[i] or zb[i]:
                oz[i] = (not is_nar) and (za[i] or zb[i])
                of[i] = TOP
                oe[i] = zero_i
                continue
            # Exact 64x64 product of the left-aligned significands.
            x, y = fa[i], fb[i]
            x0 = x & u64(0xFFFFFFFF)
            x1 = x >> u64(32)
            y0 = y & u64(0xFFFFFFFF)
            y1 = y >> u64(32)
            t = x0 * y0
            w0 = t & u64(0xFFFFFFFF)
            kk = t >> u64(32)
            t = x1 * y0 + kk
            w1 = t & u64(0xFFFFFFFF)
            w2 = t >> u64(32)
            t = x0 * y1 + w1
            kk = t >> u64(32)
            hi = x1 * y1 + w2 + kk
            lo = (t << u64(32)) | w0
            scale = ea[i] + eb[i]
            if (hi >> u64(63)) != U0:
                scale += i64(1)
            else:
                hi = (hi << U1) | (lo >> u64(63))
                lo = lo << U1
            pat, f2, s2 = _round_parse1(scale, hi, lo != U0)
            oz[i] = pat == U0
            of[i] = f2
            oe[i] = s2
        return 0

    @njit
    def add_loop(za, na, sa, fa, ea, zb, nb, sb, fb, eb,
                 oz, on, os, of, oe):
        for i in range(za.size):
            is_nar = na[i] or nb[i]
            on[i] = is_nar
            if is_nar:
                oz[i] = False
                os[i] = sa[i]
                of[i] = TOP
                oe[i] = zero_i
                continue
            if za[i]:
                oz[i] = zb[i]
                os[i] = sb[i]
                of[i] = fb[i]
                oe[i] = eb[i]
                continue
            if zb[i]:
                oz[i] = False
                os[i] = sa[i]
                of[i] = fa[i]
                oe[i] = ea[i]
                continue
            # Dominant operand first (larger magnitude).
            if (ea[i] < eb[i]) or (ea[i] == eb[i] and fa[i] < fb[i]):
                s1, f1, e1 = sb[i], fb[i], eb[i]
                s2, f2, e2 = sa[i], fa[i], ea[i]
            else:
                s1, f1, e1 = sa[i], fa[i], ea[i]
                s2, f2, e2 = sb[i], fb[i], eb[i]
            gap = e1 - e2
            st = False
            if gap >= i64(128):
                b_hi = U0
                b_lo = U0
                st = f2 != U0
            elif gap >= i64(64):
                b_hi = U0
                b_lo = f2 >> u64(gap - i64(64))
                if gap > i64(64) and \
                        (f2 & ((U1 << u64(gap - i64(64))) - U1)) != U0:
                    st = True
            elif gap == zero_i:
                b_hi = f2
                b_lo = U0
            else:
                b_hi = f2 >> u64(gap)
                b_lo = f2 << u64(i64(64) - gap)
            if s1 == s2:
                hi = f1 + b_hi
                lo = b_lo
                scale = e1
                if hi < f1:  # carry: renormalize one bit
                    if (lo & U1) != U0:
                        st = True
                    lo = (lo >> U1) | (hi << u64(63))
                    hi = (hi >> U1) | TOP
                    scale += i64(1)
                pat, f3, s3 = _round_parse1(scale, hi, st or lo != U0)
                oz[i] = pat == U0
                os[i] = s1
                of[i] = f3
                oe[i] = s3
            else:
                # 128-bit (f1, 0) - (b_hi, b_lo) - sticky borrow.
                lo1 = U0 - b_lo
                borrow = U1 if b_lo != U0 else U0
                hi1 = f1 - b_hi - borrow
                extra = U1 if st else U0
                lo = lo1 - extra
                if lo1 < extra:
                    hi1 = hi1 - U1
                if hi1 == U0 and lo == U0 and not st:
                    oz[i] = True
                    os[i] = s1
                    of[i] = TOP
                    oe[i] = zero_i
                    continue
                if hi1 != U0:
                    msb = i64(64) + _bl64(hi1) - i64(1)
                else:
                    msb = _bl64(lo) - i64(1)
                shift_up = i64(127) - msb
                if shift_up >= i64(64):
                    hi1 = lo << u64(shift_up - i64(64)) \
                        if shift_up > i64(64) else lo
                    lo = U0
                elif shift_up > zero_i:
                    hi1 = (hi1 << u64(shift_up)) | \
                        (lo >> u64(i64(64) - shift_up))
                    lo = lo << u64(shift_up)
                scale = e1 - shift_up
                pat, f3, s3 = _round_parse1(scale, hi1, st or lo != U0)
                oz[i] = pat == U0
                os[i] = s1
                of[i] = f3
                oe[i] = s3
        return 0

    return _JitKernels(decode_loop, round_loop, mul_loop, add_loop)


__all__ = [
    "HAVE_NUMBA",
    "PositPlaneKernels",
    "numba_available",
    "plan_compiled_kernels",
]
