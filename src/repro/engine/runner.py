"""Chunked parallel sweep runner.

The Figure 3 sweep is embarrassingly parallel — (op, bin) cells are
independent — but the seed code ran every pair through the scalar
backends in one Python loop.  This runner partitions each bin into
:class:`~repro.core.sweep.SweepChunk` units (deterministic per-chunk
seeds that survive process boundaries), measures chunks across worker
processes, and merges per-chunk tallies into the same
:class:`~repro.core.analysis.SweepResult` shape the serial driver
produces.  Within each worker the measured operation itself runs through
the batched backends of :mod:`repro.engine.batch` when the format has
one (binary64, log, posit), falling back to the scalar loop otherwise
(BigFloat oracle, LNS).

Determinism: the merge is ordered by ``(bin, chunk_index)``, and chunk
seeds come from :func:`~repro.core.sweep.stable_chunk_seed`, so results
are identical for any worker count — ``n_workers=0`` (inline, no
subprocess) is the reference the tests compare against.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from .. import telemetry
from ..arith.backend import Backend
from ..core.accuracy import measure_pairs
from ..core.sweep import FIG3_BINS, SweepChunk, binary64_skipped, plan_chunks

#: Formats measured per chunk return (errors, underflow, overflow).
ChunkTally = Dict[str, Tuple[List[float], int, int]]


def _measure_chunk(task):
    """Worker entry: regenerate one chunk's pairs and measure every
    backend on them.  Must stay module-level (pickled by the pool).

    When the parent had an active collector (the ``collect`` flag in
    the task tuple), the chunk runs inside a fresh child collector —
    picklable, shipped back as the fourth element for the parent to
    merge — wrapped in a ``runner.chunk`` span so per-chunk worker
    timings survive the process boundary."""
    chunk, backends, batch, collect = task
    child = None
    scope = telemetry.collect() if collect else None
    try:
        if scope is not None:
            child = scope.__enter__()
        with telemetry.span("runner.chunk"):
            pairs = chunk.generate()
            tally: ChunkTally = {}
            for fmt, backend in backends.items():
                if binary64_skipped(fmt, chunk.bin_range):
                    continue
                tally[fmt] = measure_pairs(backend, chunk.op, pairs,
                                           batch=batch)
    finally:
        if scope is not None:
            scope.__exit__(None, None, None)
    return chunk.bin_range, chunk.chunk_index, tally, child


def default_workers() -> int:
    cpus = os.cpu_count() or 1
    return max(1, min(4, cpus - 1))


def run_sweep_parallel(op: str, backends: Dict[str, Backend],
                       per_bin: int = 100,
                       bins: Sequence[tuple] = FIG3_BINS,
                       seed: int = 0,
                       n_workers: Optional[int] = None,
                       chunk_size: int = 250,
                       batch: bool = True):
    """Parallel, chunked replacement for the serial ``run_op_sweep``.

    Returns a :class:`~repro.core.analysis.SweepResult`.  ``n_workers``
    of 0 or 1 measures inline (deterministic reference; no subprocess
    overhead for small sweeps).
    """
    from ..core.analysis import BoxStats, SweepResult

    if n_workers is None:
        n_workers = default_workers()
    collector = telemetry.current()
    with telemetry.span("runner.sweep"):
        chunks = plan_chunks(op, bins, per_bin, seed, chunk_size)
        tasks = [(chunk, backends, batch, collector is not None)
                 for chunk in chunks]
        if n_workers <= 1:
            outcomes = [_measure_chunk(t) for t in tasks]
        else:
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # platforms without fork
                ctx = multiprocessing.get_context("spawn")
            with ProcessPoolExecutor(max_workers=n_workers,
                                     mp_context=ctx) as pool:
                outcomes = list(pool.map(_measure_chunk, tasks,
                                         chunksize=1))

    # pool.map preserves task order, and the per-cell tallies commute,
    # so the merge is deterministic without re-sorting — including the
    # per-chunk child collectors folded back into the parent scope.
    merged: Dict[tuple, Dict[str, List]] = {b: {} for b in bins}
    for bin_range, _index, tally, child in outcomes:
        if collector is not None and child is not None:
            collector.merge(child)
        cell = merged[bin_range]
        for fmt, (errors, n_uf, n_of) in tally.items():
            acc = cell.setdefault(fmt, [[], 0, 0])
            acc[0].extend(errors)
            acc[1] += n_uf
            acc[2] += n_of
    result = SweepResult(op)
    for bin_range in bins:
        cell = {}
        for fmt in backends:
            if binary64_skipped(fmt, bin_range):
                continue
            errors, n_uf, n_of = merged[bin_range].get(fmt, ([], 0, 0))
            cell[fmt] = BoxStats.from_errors(fmt, bin_range, errors,
                                             n_uf, n_of)
        result.boxes[bin_range] = cell
    return result
