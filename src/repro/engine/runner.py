"""Chunked parallel sweep runner.

The Figure 3 sweep is embarrassingly parallel — (op, bin) cells are
independent — but the seed code ran every pair through the scalar
backends in one Python loop.  This runner partitions each bin into
:class:`~repro.core.sweep.SweepChunk` units (deterministic per-chunk
seeds that survive process boundaries), measures chunks across worker
processes, and merges per-chunk tallies into the same
:class:`~repro.core.analysis.SweepResult` shape the serial driver
produces.  Within each worker the measured operation itself runs through
the batched backends of :mod:`repro.engine.batch` when the format has
one (binary64, log, posit), falling back to the scalar loop otherwise
(BigFloat oracle, LNS).

Determinism: the merge is ordered by ``(bin, chunk_index)``, and chunk
seeds come from :func:`~repro.core.sweep.stable_chunk_seed`, so results
are identical for any worker count — ``n_workers=0`` (inline, no
subprocess) is the reference the tests compare against.

**Crash recovery** (PR 10): a chunk whose worker dies (or whose
measurement raises) no longer kills the sweep.  Failed chunks are
resubmitted — on a *fresh* executor when the pool broke — up to
``max_chunk_retries`` times, and because every chunk regenerates its
pairs from its process-stable seed, a chunk measured on attempt 3
produces bit-identical tallies to one measured on attempt 0.  The
``runner.chunk`` fault site (:mod:`repro.faults`) exercises exactly
this path: ``kill`` mode hard-exits the worker process, ``error`` mode
fails the chunk in place; either way retried attempts draw fresh
injection decisions (the site key carries the attempt number), so an
injected crash is transient unless the plan says otherwise.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Sequence, Tuple

from .. import faults as _faults
from .. import telemetry
from ..arith.backend import Backend
from ..core.accuracy import measure_pairs
from ..core.sweep import FIG3_BINS, SweepChunk, binary64_skipped, plan_chunks

#: Formats measured per chunk return (errors, underflow, overflow).
ChunkTally = Dict[str, Tuple[List[float], int, int]]

#: Default resubmission budget per chunk before the sweep gives up.
DEFAULT_CHUNK_RETRIES = 2


def _measure_chunk(task):
    """Worker entry: regenerate one chunk's pairs and measure every
    backend on them.  Must stay module-level (pickled by the pool).

    ``task`` is ``(chunk, backends, batch, collect, fault_plan,
    attempt, kill_ok)``.  When the parent had an active collector (the
    ``collect`` flag), the chunk runs inside a fresh child collector —
    picklable, shipped back as the fourth element for the parent to
    merge — wrapped in a ``runner.chunk`` span so per-chunk worker
    timings survive the process boundary.  A shipped fault plan is
    entered the same way; the ``runner.chunk`` site key is the chunk
    identity plus the attempt number, so the schedule is process- and
    worker-count-independent while retries draw fresh decisions."""
    chunk, backends, batch, collect, fault_plan, attempt, kill_ok = task
    child = None
    scope = telemetry.collect() if collect else None
    fscope = _faults.inject(fault_plan) if fault_plan is not None else None
    try:
        if scope is not None:
            child = scope.__enter__()
        if fscope is not None:
            fscope.__enter__()
        with telemetry.span("runner.chunk"):
            _faults.fire("runner.chunk",
                         key=(chunk.op, chunk.bin_range,
                              chunk.chunk_index, attempt),
                         kill_ok=kill_ok)
            pairs = chunk.generate()
            tally: ChunkTally = {}
            for fmt, backend in backends.items():
                if binary64_skipped(fmt, chunk.bin_range):
                    continue
                tally[fmt] = measure_pairs(backend, chunk.op, pairs,
                                           batch=batch)
    finally:
        if fscope is not None:
            fscope.__exit__(None, None, None)
        if scope is not None:
            scope.__exit__(None, None, None)
    return chunk.bin_range, chunk.chunk_index, tally, child


def default_workers() -> int:
    cpus = os.cpu_count() or 1
    return max(1, min(4, cpus - 1))


def _pool_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # platforms without fork
        return multiprocessing.get_context("spawn")


def _run_tasks_inline(tasks, max_retries: int) -> list:
    """The deterministic single-process reference, with the same
    retry budget (``kill`` injections degrade to in-place errors —
    exiting the only process would defeat the exercise)."""
    outcomes = []
    for base in tasks:
        attempt = 0
        while True:
            try:
                outcomes.append(_measure_chunk(base + (attempt, False)))
                break
            except Exception:
                if attempt >= max_retries:
                    raise
                attempt += 1
                telemetry.event("runner.chunk_retry")
    return outcomes


def _run_tasks_pool(tasks, n_workers: int, max_retries: int) -> list:
    """Measure every chunk across worker processes, resubmitting
    failures on a fresh executor.

    A dead worker breaks the whole :class:`ProcessPoolExecutor` —
    every in-flight future raises ``BrokenProcessPool``, casualty and
    bystander alike — so the retry loop is round-based: collect this
    round's failures, tear the pool down, stand up a new one, resubmit
    only the failed chunks.  Two separate budgets keep that fair:

    * a chunk's *own* exception (one malformed measurement, an
      injected ``error``) counts against its ``max_retries`` budget —
      a chunk that keeps failing on its own re-raises;
    * ``BrokenProcessPool`` casualties don't (a crash would otherwise
      burn one retry from every in-flight bystander); instead pool
      *restarts* are bounded at ``max(1, max_retries) * len(tasks)``,
      so a worker that dies on every round still terminates the sweep.

    Every resubmission advances the chunk's attempt number (fresh
    fault-site draws); chunk seeds make resubmission bit-identical;
    ``outcomes`` keeps original task order so the merge stays
    deterministic.
    """
    ctx = _pool_context()
    outcomes: list = [None] * len(tasks)
    pending = {i: 0 for i in range(len(tasks))}  # task index -> attempt
    genuine: Dict[int, int] = {}                 # task index -> failures
    restarts = 0
    max_restarts = max(1, max_retries) * len(tasks)
    while pending:
        failed: Dict[int, int] = {}
        broke = False
        with ProcessPoolExecutor(max_workers=n_workers,
                                 mp_context=ctx) as pool:
            futures = {
                i: pool.submit(_measure_chunk, tasks[i] + (attempt, True))
                for i, attempt in pending.items()}
            for i, future in futures.items():
                try:
                    outcomes[i] = future.result()
                except BrokenProcessPool:
                    broke = True
                    failed[i] = pending[i] + 1
                    telemetry.event("runner.chunk_retry")
                except Exception:
                    count = genuine.get(i, 0) + 1
                    if count > max_retries:
                        raise
                    genuine[i] = count
                    failed[i] = pending[i] + 1
                    telemetry.event("runner.chunk_retry")
        if broke:
            restarts += 1
            if restarts > max_restarts:
                raise BrokenProcessPool(
                    f"sweep workers kept dying: gave up after "
                    f"{restarts} pool restarts")
            telemetry.event("runner.pool_restart")
        pending = failed
    return outcomes


def run_sweep_parallel(op: str, backends: Dict[str, Backend],
                       per_bin: int = 100,
                       bins: Sequence[tuple] = FIG3_BINS,
                       seed: int = 0,
                       n_workers: Optional[int] = None,
                       chunk_size: int = 250,
                       batch: bool = True,
                       max_chunk_retries: int = DEFAULT_CHUNK_RETRIES):
    """Parallel, chunked replacement for the serial ``run_op_sweep``.

    Returns a :class:`~repro.core.analysis.SweepResult`.  ``n_workers``
    of 0 or 1 measures inline (deterministic reference; no subprocess
    overhead for small sweeps).  ``max_chunk_retries`` bounds how many
    times one chunk may be resubmitted after a worker crash or an
    in-chunk exception before the sweep re-raises.
    """
    from ..core.analysis import BoxStats, SweepResult

    if n_workers is None:
        n_workers = default_workers()
    collector = telemetry.current()
    fault_plan = _faults.active()
    with telemetry.span("runner.sweep"):
        chunks = plan_chunks(op, bins, per_bin, seed, chunk_size)
        tasks = [(chunk, backends, batch, collector is not None,
                  fault_plan)
                 for chunk in chunks]
        if n_workers <= 1:
            outcomes = _run_tasks_inline(tasks, max_chunk_retries)
        else:
            outcomes = _run_tasks_pool(tasks, n_workers,
                                       max_chunk_retries)

    # Outcomes are indexed by task order, and the per-cell tallies
    # commute, so the merge is deterministic without re-sorting —
    # including the per-chunk child collectors folded back into the
    # parent scope.
    merged: Dict[tuple, Dict[str, List]] = {b: {} for b in bins}
    for bin_range, _index, tally, child in outcomes:
        if collector is not None and child is not None:
            collector.merge(child)
        cell = merged[bin_range]
        for fmt, (errors, n_uf, n_of) in tally.items():
            acc = cell.setdefault(fmt, [[], 0, 0])
            acc[0].extend(errors)
            acc[1] += n_uf
            acc[2] += n_of
    result = SweepResult(op)
    for bin_range in bins:
        cell = {}
        for fmt in backends:
            if binary64_skipped(fmt, bin_range):
                continue
            errors, n_uf, n_of = merged[bin_range].get(fmt, ([], 0, 0))
            cell[fmt] = BoxStats.from_errors(fmt, bin_range, errors,
                                             n_uf, n_of)
        result.boxes[bin_range] = cell
    return result
