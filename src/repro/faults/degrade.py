"""The graceful-degradation ladder: quarantine a faulting kernel tier.

The execution plane offers the same math at three tiers — compiled
(:mod:`repro.engine.compiled`), batch (the certified mirrors), serial
(the scalar backends) — and PR 8's *capability* fallback already picks
the best tier a format supports.  This module extends that into a
*runtime* fallback: when a tier raises mid-call, the caller reports it
with :func:`degrade`, the tier is quarantined **process-wide**, and
every subsequent selection keeps the next tier down.  Because the
tiers are exact mirrors of one another (bit-identical / element-exact,
pinned by the equivalence suites), degrading never changes results —
it only changes speed.

Rungs wired into the tree:

* ``compiled`` — consulted by
  :func:`repro.engine.compiled.plan_compiled_kernels`; reported by the
  nd expressions in :mod:`repro.apps.hmm` / :mod:`repro.apps.pbd`
  when a fused kernel raises (they recompute on the batch path);
* ``batch`` — consulted and reported by
  :func:`repro.core.accuracy.measure_pairs`, which re-measures the
  chunk through the scalar loop.

Each first quarantine emits a ``faults.degraded.<tier>`` telemetry
event; every avoided selection afterwards counts
``faults.fallback.<tier>``.  :func:`reset_quarantine` restores all
tiers (tests; long-lived servers that want to re-probe).
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Set

from .. import telemetry as _tele

#: Tiers the degradation ladder knows, fastest first.
TIERS = ("compiled", "batch", "serial")

_quarantined: Set[str] = set()


def quarantined(tier: str) -> bool:
    """Whether a tier is quarantined in this process.

    Tier-selection points call this; when it answers True they count a
    ``faults.fallback.<tier>`` and pick the next rung down.
    """
    if tier in _quarantined:
        _tele.count(f"faults.fallback.{tier}")
        return True
    return False


def quarantine(tier: str) -> None:
    """Quarantine a tier for the rest of the process (idempotent)."""
    if tier not in _quarantined:
        _quarantined.add(tier)
        _tele.event(f"faults.degraded.{tier}")


def degrade(tier: str, exc: Optional[BaseException] = None) -> None:
    """Report a runtime failure inside a tier and quarantine it.

    Called from the except-clause of a tier invocation right before
    the caller falls through to the next rung; ``exc`` is accepted for
    call-site readability (the telemetry event is the record).
    """
    quarantine(tier)


def quarantined_tiers() -> FrozenSet[str]:
    """The currently quarantined tiers (inspection/tests)."""
    return frozenset(_quarantined)


def reset_quarantine() -> None:
    """Lift every quarantine (tests; deliberate re-probing)."""
    _quarantined.clear()


__all__ = ["TIERS", "degrade", "quarantine", "quarantined",
           "quarantined_tiers", "reset_quarantine"]
