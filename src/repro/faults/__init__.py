"""``repro.faults`` — deterministic fault injection for the execution
plane.

The ROADMAP's north star is a service that survives real production
weather: worker processes die mid-sweep, cache entries tear, batches
poison, connections drop.  The recovery paths for all of those live in
this PR — and none of them would be trustworthy without a way to
*cause* the failures on purpose.  This package is that way: a
contextvar-scoped :class:`FaultPlan` naming **injection sites** threaded
through the stack, each firing deterministically from a seeded stream.

Sites shipped with the tree (the glossary in README "Resilience"):

=========================  ==========================================
``kernel.<name>``          entry of each batched kernel wrapper in
                           :mod:`repro.engine.kernels`
``compiled.<op>``          entry of each fused kernel in
                           :mod:`repro.engine.compiled` (the
                           degradation ladder's top rung)
``batch.measure``          the batch branch of
                           :func:`repro.core.accuracy.measure_pairs`
                           (the batch -> serial rung)
``runner.chunk``           one sweep chunk in a worker process
                           (``kill`` mode exits the worker: the
                           crash-recovery path)
``cache.read``             one ``.repro-cache`` entry read (``corrupt``
                           mode truncates the bytes: the checksum path)
``service.batch``          one microbatch execution in the scheduler
                           (``delay`` mode stalls it past deadlines)
``service.connection``     one HTTP response about to be written
                           (``error`` mode drops the connection)
=========================  ==========================================

Design mirrors :mod:`repro.telemetry` exactly:

* **zero-cost when disabled** — :func:`fire` returns after one
  module-level integer check; no ContextVar touch, no allocation
  (gated < 3% on the batched forward by
  ``benchmarks/test_faults_overhead.py`` / ``BENCH_faults.json``);
* **scoped** — ``with faults.inject(plan):`` installs a plan for the
  current context; ``globally=True`` installs it process-wide (the
  chaos harness needs the server's connection tasks and executor
  threads, which do not inherit the harness coroutine's context);
* **deterministic** — every probabilistic draw comes from a blake2b
  stream over ``(seed, site, key-or-call-index)`` (the same
  process-stable idiom as :func:`repro.core.sweep.stable_chunk_seed`),
  so the same seed and plan replay the same fault schedule in any
  process, with any worker count.  Sites that retry pass an
  attempt-bearing ``key`` so a retried unit draws a fresh decision.

Triggers compose per rule: ``at``/``every`` (nth-call, on the per-site
call counter) AND ``p`` (probability, on the seeded stream).  Modes:
``error`` raises :class:`InjectedFault`; ``delay`` sleeps ``delay_s``;
``kill`` hard-exits the process where the site allows it (worker
chunks) and degrades to ``error`` elsewhere; ``corrupt`` returns the
mode string for the site to mangle its own data.

The **degradation ladder** (:mod:`repro.faults.degrade`) rides on top:
a tier that faults at runtime — compiled, then batch — is quarantined
for the process with a ``faults.degraded.<tier>`` telemetry event, and
every later call keeps the next tier down (compiled -> batch ->
serial).  Tiers are exact mirrors of each other, so degrading never
changes results.

Usage::

    from repro import faults

    plan = faults.FaultPlan([
        faults.FaultRule("runner.chunk", mode="kill", p=0.25),
        faults.FaultRule("cache.read", mode="corrupt", at=(0,)),
    ], seed=7)
    with faults.inject(plan):
        run_sweep_parallel(...)     # crashes injected AND survived
    print(plan.fired)               # the reproducible schedule
"""

from __future__ import annotations

import hashlib
import os
import time
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .. import telemetry as _tele
from .degrade import (
    degrade,
    quarantine,
    quarantined,
    quarantined_tiers,
    reset_quarantine,
)

__all__ = [
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "MODES",
    "active",
    "degrade",
    "fire",
    "inject",
    "quarantine",
    "quarantined",
    "quarantined_tiers",
    "reset_quarantine",
]

#: Supported rule modes.
MODES = ("error", "delay", "kill", "corrupt")

#: Worker-process exit status for ``kill`` mode (distinctive in
#: BrokenProcessPool postmortems).
KILL_EXIT_CODE = 86


class InjectedFault(RuntimeError):
    """A failure raised on purpose by an injection site.

    Recovery layers treat it like any other runtime failure — that is
    the point — but tests can assert on :attr:`site` to pin *which*
    injection produced an observed recovery.
    """

    def __init__(self, site: str, message: Optional[str] = None):
        super().__init__(message or f"injected fault at site {site!r}")
        self.site = site


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: where, what, and when.

    ``site`` matches an injection-site name exactly, or by prefix when
    it ends with ``*`` (``"kernel.*"`` covers every kernel wrapper).
    ``at`` fires on those 0-based call indices of the site; ``every``
    fires on each Nth call; ``p`` draws from the plan's seeded stream.
    All given conditions must hold.  ``max_fires`` retires the rule
    after N injections (0 = never).
    """

    site: str
    mode: str = "error"
    p: float = 1.0
    at: Tuple[int, ...] = ()
    every: int = 0
    max_fires: int = 0
    delay_s: float = 0.0

    def __post_init__(self):
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, "
                             f"got {self.mode!r}")
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {self.p}")
        if self.every < 0 or self.max_fires < 0 or self.delay_s < 0:
            raise ValueError("every/max_fires/delay_s must be >= 0")
        object.__setattr__(self, "at", tuple(self.at))

    def matches(self, site: str) -> bool:
        if self.site.endswith("*"):
            return site.startswith(self.site[:-1])
        return site == self.site


@dataclass
class FaultPlan:
    """A seeded set of :class:`FaultRule`\\ s plus per-process state.

    The rules and seed define the schedule; the mutable counters are
    per-process bookkeeping (pickling a plan into a sweep worker ships
    rules + seed only, and the worker's decisions stay deterministic
    because its sites pass process-independent ``key``\\ s).
    :attr:`fired` records every injection as ``(site, token, mode)``
    for schedule-determinism assertions.
    """

    rules: Tuple[FaultRule, ...] = ()
    seed: int = 0
    fired: List[tuple] = field(default_factory=list)

    def __init__(self, rules=(), seed: int = 0):
        self.rules = tuple(rules)
        self.seed = seed
        self._reset_state()

    def _reset_state(self) -> None:
        self.fired = []
        self._calls: Dict[str, int] = {}
        self._rule_fires: Dict[int, int] = {}

    # Ship rules + seed across process boundaries; counters restart.
    def __getstate__(self):
        return {"rules": self.rules, "seed": self.seed}

    def __setstate__(self, state):
        self.rules = state["rules"]
        self.seed = state["seed"]
        self._reset_state()

    def _unit(self, site: str, token) -> float:
        """Deterministic uniform draw in [0, 1) for one decision."""
        payload = f"{self.seed}:{site}:{token!r}"
        digest = hashlib.blake2b(payload.encode(), digest_size=8).digest()
        return int.from_bytes(digest, "big") / 2.0 ** 64

    def check(self, site: str, key=None, *,
              kill_ok: bool = False) -> Optional[str]:
        """One site hit: count the call, evaluate the rules, act.

        Returns the triggered rule's mode for non-raising modes
        (``delay`` after sleeping, ``corrupt`` for the caller to apply)
        or ``None``; raises :class:`InjectedFault` for ``error`` (and
        for ``kill`` where the site does not allow a hard exit).
        """
        count = self._calls.get(site, 0)
        self._calls[site] = count + 1
        token = key if key is not None else count
        for index, rule in enumerate(self.rules):
            if not rule.matches(site):
                continue
            if rule.max_fires and \
                    self._rule_fires.get(index, 0) >= rule.max_fires:
                continue
            if rule.at and count not in rule.at:
                continue
            if rule.every and (count + 1) % rule.every != 0:
                continue
            if rule.p < 1.0 and self._unit(site, token) >= rule.p:
                continue
            self._rule_fires[index] = self._rule_fires.get(index, 0) + 1
            self.fired.append((site, token, rule.mode))
            _tele.event(f"faults.injected.{site}")
            if rule.mode == "delay":
                time.sleep(rule.delay_s)
                return "delay"
            if rule.mode == "corrupt":
                return "corrupt"
            if rule.mode == "kill" and kill_ok:
                os._exit(KILL_EXIT_CODE)
            raise InjectedFault(site)
        return None


#: The active plan for the current context (None outside any
#: ``inject()`` scope).
_plan_var: ContextVar[Optional[FaultPlan]] = ContextVar(
    "repro_fault_plan", default=None)

#: Process-wide plan stack for ``inject(..., globally=True)`` — server
#: connection tasks and executor threads do not inherit the injecting
#: coroutine's context, so the chaos harness installs globally.
_global_plans: List[FaultPlan] = []

#: Module-level fast check, exactly like ``telemetry._active_scopes``:
#: zero means no scope of either kind exists, so the disabled path is
#: one integer comparison.
_active_plans = 0


def active() -> Optional[FaultPlan]:
    """The installed :class:`FaultPlan`, or None (the fast path).

    Sites that must build a ``key`` before firing check this first so
    the disabled path allocates nothing.
    """
    if _active_plans == 0:
        return None
    plan = _plan_var.get()
    if plan is not None:
        return plan
    return _global_plans[-1] if _global_plans else None


def fire(site: str, key=None, *, kill_ok: bool = False) -> Optional[str]:
    """Hit one injection site (no-op without an installed plan).

    Returns the mode of a non-raising injection (``"delay"`` /
    ``"corrupt"``) or ``None``; raises :class:`InjectedFault` when an
    ``error`` (or inline ``kill``) rule triggers.
    """
    if _active_plans == 0:
        return None
    plan = _plan_var.get()
    if plan is None:
        plan = _global_plans[-1] if _global_plans else None
        if plan is None:
            return None
    return plan.check(site, key, kill_ok=kill_ok)


class inject:
    """Context manager installing a :class:`FaultPlan`.

    Default is contextvar-scoped (mirrors ``telemetry.collect``);
    ``globally=True`` pushes the plan on a process-wide stack instead,
    visible to every task and thread — what the service chaos harness
    needs, since asyncio connection handlers and executor threads run
    outside the installing context.
    """

    __slots__ = ("_plan", "_globally", "_token")

    def __init__(self, plan: FaultPlan, *, globally: bool = False):
        self._plan = plan
        self._globally = globally
        self._token = None

    def __enter__(self) -> FaultPlan:
        global _active_plans
        if self._globally:
            _global_plans.append(self._plan)
        else:
            self._token = _plan_var.set(self._plan)
        _active_plans += 1
        return self._plan

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _active_plans
        _active_plans -= 1
        if self._globally:
            _global_plans.remove(self._plan)
        else:
            _plan_var.reset(self._token)
        return False
