"""The LoFreq column-unit accelerator (Section V.B, Table IV, Figs. 7-8).

Mirrors :mod:`repro.hw.forward_unit`: analytic timing at paper-scale
dataset shapes, a structural resource model validated against Table IV,
and a functional simulator running Listing 2's dataflow in the unit's
number format.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..arith.backends import LogSpaceBackend, PositBackend
from ..data.genome import Column
from ..formats.posit import PositEnv
from .pe import LOG, POSIT, column_pe_latency, column_pe_structure
from .resources import Resources
from .timeline import CLOCK_MHZ, DRAIN_CYCLES, column_timing
from .units import TABLE2

#: Fitted control/prefetcher base overhead, calibrated on Table IV.
_BASE_OVERHEAD = {
    LOG: Resources(lut=19_346, register=24_000, dsp=34, sram=236),
    POSIT: Resources(lut=7_800, register=11_500, dsp=23, sram=258),
}

#: Table IV, verbatim: (CLB, LUT, Register, DSP, SRAM, fmax).
PAPER_TABLE4: Dict[str, tuple] = {
    LOG: (15_476, 75_894, 76_300, 386, 236, 341),
    POSIT: (8_619, 27_270, 37_963, 153, 258, 330),
}


@dataclass(frozen=True)
class DatasetShape:
    """Paper-scale description of one dataset: per-column (N, K) only —
    all the timing model needs.  The accuracy experiments use the small
    value-carrying columns from :mod:`repro.data.genome` instead."""

    name: str
    depths: np.ndarray  # N per column
    ks: np.ndarray  # K per column

    @property
    def n_columns(self) -> int:
        return len(self.depths)

    @property
    def total_ops(self) -> int:
        """Multiply-and-adds (Listing 2 line 4): sum of N*K."""
        return int(np.sum(self.depths.astype(np.int64) * self.ks))

    @property
    def mean_depth(self) -> float:
        return float(np.mean(self.depths))

    @property
    def mean_k(self) -> float:
        return float(np.mean(self.ks))


def paper_scale_shapes(seed: int = 0, n_datasets: int = 8) -> List[DatasetShape]:
    """Eight dataset shapes in the paper's regime: 222,131 columns total,
    mean depth ~309,189, mean K varying widely across datasets (that
    variation is what spreads Fig. 7's improvements from ~5% to ~25%)."""
    rng = np.random.default_rng(seed)
    total_columns = 222_131
    per = total_columns // n_datasets
    mean_ks = np.geomspace(700, 7_000, n_datasets)
    shapes = []
    for i in range(n_datasets):
        n_cols = per + (total_columns % n_datasets if i == n_datasets - 1 else 0)
        depths = rng.lognormal(mean=np.log(309_189.0), sigma=0.25, size=n_cols)
        ks = rng.lognormal(mean=np.log(mean_ks[i]), sigma=0.4, size=n_cols)
        shapes.append(DatasetShape(f"D{i}", depths.astype(np.int64),
                                   np.maximum(1, ks.astype(np.int64))))
    return shapes


@dataclass
class ColumnUnit:
    """One LoFreq column-unit accelerator (8 PEs, Section VI.A)."""

    style: str
    n_pes: int = 8
    posit_es: int = 12
    clock_mhz: float = CLOCK_MHZ

    def __post_init__(self):
        if self.style not in (LOG, POSIT):
            raise ValueError(f"unknown style {self.style!r}")
        if self.n_pes < 1:
            raise ValueError("need at least one PE")

    # -- timing --------------------------------------------------------
    @property
    def pe_latency(self) -> int:
        return column_pe_latency(self.style)

    def column_cycles(self, k: int, n: int) -> int:
        return column_timing(k, n, self.pe_latency, self.n_pes).total_cycles

    def dataset_cycles(self, shape: DatasetShape) -> int:
        """Vectorized Fig. 5 model over every column of a dataset."""
        issue = np.maximum(1, -(-shape.ks // self.n_pes))
        per_outer = issue + self.pe_latency + DRAIN_CYCLES
        return int(np.sum(shape.depths.astype(np.int64) * per_outer))

    def dataset_seconds(self, shape: DatasetShape) -> float:
        return self.dataset_cycles(shape) / (self.clock_mhz * 1e6)

    def mmaps(self, shape: DatasetShape) -> float:
        """Million Multiply-and-Adds Per Second (Section VI.C)."""
        return shape.total_ops / self.dataset_seconds(shape) / 1e6

    def mmaps_per_clb(self, shape: DatasetShape) -> float:
        return self.mmaps(shape) / self.clb()

    def clb(self) -> int:
        """CLB count: the paper-reported post-routing number when this
        configuration appears in Table IV (packing ratios are design-
        specific), else the model estimate."""
        reported = self.paper_reported()
        if reported is not None:
            return reported["CLB"]
        return self.resources().clb_estimate()

    # -- resources -----------------------------------------------------
    def resources(self) -> Resources:
        pe = column_pe_structure(self.style, self.posit_es)
        acc = TABLE2["log_add" if self.style == LOG else
                     f"posit(64,{self.posit_es})_add"]
        r = pe.resources.scale(self.n_pes)
        r = r + Resources(acc.lut, acc.register, acc.dsp)  # p-value accum
        return r + _BASE_OVERHEAD[self.style]

    def paper_reported(self) -> Optional[dict]:
        row = PAPER_TABLE4.get(self.style)
        if row is None or self.n_pes != 8:
            return None
        clb, lut, reg, dsp, sram, fmax = row
        return {"CLB": clb, "LUT": lut, "Register": reg, "DSP": dsp,
                "SRAM": sram, "fmax": fmax}

    # -- functional simulation -----------------------------------------
    def backend(self):
        if self.style == LOG:
            return LogSpaceBackend()
        return PositBackend(PositEnv(64, self.posit_es))

    def simulate(self, column: Column):
        """Run Listing 2 in the unit's format; return (p-value backend
        value, TimingBreakdown)."""
        from ..apps.pbd import pbd_pvalue
        backend = self.backend()
        value = pbd_pvalue(column.success_probs, column.k, backend)
        timing = column_timing(column.k, column.depth, self.pe_latency,
                               self.n_pes)
        return value, timing


def single_unit_improvement(shape: DatasetShape, posit_es: int = 12,
                            n_pes: int = 8) -> float:
    """Fig. 7(b)'s metric: (log_time - posit_time) / log_time."""
    log_time = ColumnUnit(LOG, n_pes).dataset_seconds(shape)
    posit_time = ColumnUnit(POSIT, n_pes, posit_es).dataset_seconds(shape)
    return (log_time - posit_time) / log_time
