"""FPGA accelerator substrate: unit cost database (Table II), PE latency
models (Fig. 4), the Fig. 5 timing model, accelerator resource/timing
models (Tables III-IV, Figs. 6-8) and SLR floor-planning."""

from .units import (
    COMPARE,
    EXP_UNIT,
    LOG_UNIT,
    SUBTRACT,
    TABLE2,
    UnitCost,
    lse_component_check,
    software_op_cost_model,
    table2_rows,
    unit,
)
from .resources import Resources, reduction_pct, reduction_row
from .pe import (
    COLUMN_PE_LATENCY,
    LOG,
    POSIT,
    column_pe_latency,
    column_pe_structure,
    forward_pe_latency,
    forward_pe_latency_reduction,
    forward_pe_structure,
    tree_levels,
)
from .timeline import (
    CLOCK_MHZ,
    DRAIN_CYCLES,
    TimingBreakdown,
    column_timing,
    forward_unit_timing,
    initiation_interval,
)
from .forward_unit import (
    PAPER_FIG6_SECONDS,
    PAPER_TABLE3,
    ForwardUnit,
    software_forward_log,
    software_forward_posit,
    speedup_over_cpu,
)
from .column_unit import (
    PAPER_TABLE4,
    ColumnUnit,
    DatasetShape,
    paper_scale_shapes,
    single_unit_improvement,
)
from .sim import (
    SimConfig,
    SimResult,
    prefetch_sensitivity,
    simulate,
    simulate_column,
    simulate_forward_unit,
)
from .pareto import (
    DesignPoint,
    column_design_space,
    dominated_count,
    forward_design_space,
    pareto_frontier,
)
from .floorplan import (
    U250_SLR,
    U250_SLR_COUNT,
    FloorplanResult,
    replication_speedup,
    units_per_slr,
)

__all__ = [
    "UnitCost", "TABLE2", "unit", "table2_rows", "lse_component_check",
    "software_op_cost_model", "COMPARE", "SUBTRACT", "EXP_UNIT", "LOG_UNIT",
    "Resources", "reduction_pct", "reduction_row",
    "LOG", "POSIT", "forward_pe_latency", "forward_pe_latency_reduction",
    "column_pe_latency", "COLUMN_PE_LATENCY", "tree_levels",
    "forward_pe_structure", "column_pe_structure",
    "TimingBreakdown", "forward_unit_timing", "column_timing",
    "initiation_interval", "CLOCK_MHZ", "DRAIN_CYCLES",
    "ForwardUnit", "PAPER_TABLE3", "PAPER_FIG6_SECONDS",
    "software_forward_log", "software_forward_posit", "speedup_over_cpu",
    "ColumnUnit", "DatasetShape", "PAPER_TABLE4", "paper_scale_shapes",
    "single_unit_improvement",
    "units_per_slr", "replication_speedup", "FloorplanResult",
    "U250_SLR", "U250_SLR_COUNT",
    "DesignPoint", "forward_design_space", "column_design_space",
    "pareto_frontier", "dominated_count",
    "SimConfig", "SimResult", "simulate", "simulate_forward_unit",
    "simulate_column", "prefetch_sensitivity",
]
