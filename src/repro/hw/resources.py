"""FPGA resource accounting: vectors of LUT/Register/DSP/SRAM, CLB
estimation, and the reduction percentages the paper reports."""

from __future__ import annotations

from dataclasses import dataclass

#: Xilinx UltraScale+ CLB geometry: 8 LUTs and 16 flip-flops per CLB
#: slice (paper reference [84]).
LUTS_PER_CLB = 8
REGS_PER_CLB = 16

#: Typical post-routing packing efficiency: designs do not fill every
#: LUT/FF of the CLBs they occupy.  Calibrated against Table III/IV
#: (the log forward unit at H=13 occupies 14,308 CLBs for 68,966 LUTs:
#: ~60% LUT packing).
DEFAULT_PACKING = 0.60


@dataclass(frozen=True)
class Resources:
    """One design's resource usage."""

    lut: int = 0
    register: int = 0
    dsp: int = 0
    sram: int = 0

    def __add__(self, other: "Resources") -> "Resources":
        return Resources(self.lut + other.lut, self.register + other.register,
                         self.dsp + other.dsp, self.sram + other.sram)

    def scale(self, factor: int) -> "Resources":
        return Resources(self.lut * factor, self.register * factor,
                         self.dsp * factor, self.sram * factor)

    def clb_estimate(self, packing: float = DEFAULT_PACKING) -> int:
        """CLBs occupied, limited by whichever of LUTs or registers packs
        worse at the given efficiency."""
        by_lut = self.lut / (LUTS_PER_CLB * packing)
        by_reg = self.register / (REGS_PER_CLB * packing)
        return int(round(max(by_lut, by_reg)))

    def as_row(self, **extra) -> dict:
        row = {"CLB": self.clb_estimate(), "LUT": self.lut,
               "Register": self.register, "DSP": self.dsp, "SRAM": self.sram}
        row.update(extra)
        return row


def reduction_pct(baseline: float, improved: float) -> float:
    """The paper's 'Reduction %' rows: (baseline - improved)/baseline."""
    if baseline == 0:
        return 0.0
    return 100.0 * (baseline - improved) / baseline


def reduction_row(baseline: Resources, improved: Resources) -> dict:
    return {
        "CLB": reduction_pct(baseline.clb_estimate(), improved.clb_estimate()),
        "LUT": reduction_pct(baseline.lut, improved.lut),
        "Register": reduction_pct(baseline.register, improved.register),
        "DSP": reduction_pct(baseline.dsp, improved.dsp),
        "SRAM": reduction_pct(baseline.sram, improved.sram),
    }
