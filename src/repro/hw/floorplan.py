"""SLR floor-planning (Section VI.C): how many accelerator units fit per
die slice of an Alveo U250, and the resulting whole-FPGA speedup from
replicating units.

The paper's observation: one SLR fits at most 4 log-based column units
but easily 10 posit-based ones, so the 60% resource reduction compounds
into additional parallel speedup beyond the single-unit 15-33%.
"""

from __future__ import annotations

from dataclasses import dataclass

from .resources import Resources

#: Alveo U250 per-SLR capacities (4 SLRs total).  LUT/FF counts from the
#: UltraScale+ XCU250 datasheet divided by four; DSP likewise.
U250_SLR = Resources(lut=432_000, register=864_000, dsp=3_072, sram=1_440)
U250_SLR_COUNT = 4

#: Achievable utilization before routing congestion stops placement.
DEFAULT_UTILIZATION = 0.75


@dataclass(frozen=True)
class FloorplanResult:
    units_per_slr: int
    limiting_resource: str
    total_units: int


def units_per_slr(unit: Resources, slr: Resources = U250_SLR,
                  utilization: float = DEFAULT_UTILIZATION,
                  include_sram: bool = False) -> FloorplanResult:
    """How many copies of ``unit`` fit in one SLR, and what limits it.

    SRAM is excluded by default: when units are replicated the prefetch
    buffers retarget URAM and shrink per-unit (the paper fits 10 posit
    column units per SLR even though a standalone unit reports 258
    blocks — logic, not memory, is the binding constraint).
    """
    fields = (("lut", "register", "dsp", "sram") if include_sram
              else ("lut", "register", "dsp"))
    limits = {}
    for field in fields:
        usage = getattr(unit, field)
        if usage <= 0:
            continue
        capacity = getattr(slr, field) * utilization
        limits[field] = int(capacity // usage)
    limiting = min(limits, key=lambda k: limits[k])
    per_slr = limits[limiting]
    return FloorplanResult(per_slr, limiting, per_slr * U250_SLR_COUNT)


def replication_speedup(log_unit: Resources, posit_unit: Resources,
                        single_unit_speedup: float,
                        utilization: float = DEFAULT_UTILIZATION) -> dict:
    """Whole-FPGA speedup when both designs replicate units to fill an
    SLR: single-unit gain x unit-count gain."""
    log_fp = units_per_slr(log_unit, utilization=utilization)
    posit_fp = units_per_slr(posit_unit, utilization=utilization)
    count_ratio = posit_fp.units_per_slr / max(1, log_fp.units_per_slr)
    return {
        "log_units_per_slr": log_fp.units_per_slr,
        "posit_units_per_slr": posit_fp.units_per_slr,
        "unit_count_ratio": count_ratio,
        "whole_fpga_speedup": single_unit_speedup * count_ratio,
    }
