"""The forward-algorithm accelerator (Sections V.B-V.C, Fig. 4, Table III).

A :class:`ForwardUnit` bundles three views of the accelerator:

* an **analytic timing model** (Fig. 5's cycle formula with the PE
  latencies of Section V.C) that runs at the paper's full T = 500,000,
* a **structural resource model** composed from Table II unit costs plus
  a fitted control/prefetcher base, validated against Table III,
* a **functional simulator** that executes the PE dataflow (tree-order
  reduction, per Fig. 4) with the unit's actual number format, counts
  cycles with the same formula, and is checked for bit-equivalence
  against the software implementation (the paper's accelerators are
  bit-equivalent to their CPU baselines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..arith.backend import Backend
from ..arith.backends import LogSpaceBackend, PositBackend
from ..data.dirichlet import HMMData
from ..formats.logspace import log_mul, lse_n
from ..formats.posit import PositEnv
from .pe import LOG, POSIT, forward_pe_latency, forward_pe_structure
from .resources import Resources
from .timeline import CLOCK_MHZ, TimingBreakdown, forward_unit_timing

#: Fitted control/prefetcher/AXI base overhead (LUT, Register, DSP),
#: calibrated on Table III's H=13 rows and validated on the others.
_BASE_OVERHEAD = {
    LOG: Resources(lut=15_400, register=23_100, dsp=80),
    POSIT: Resources(lut=6_100, register=7_000, dsp=13),
}

#: Fully parallel PEs are replicated per state lane, but the physical
#: array saturates at 64 lanes (H=128 shares lanes at II=2 — the SRAM
#: jump in Table III).
_MAX_LANES = 64

#: Table III, verbatim (paper-reported post-routing numbers), keyed by
#: (style, H): (CLB, LUT, Register, DSP, SRAM, fmax).
PAPER_TABLE3: Dict[tuple, tuple] = {
    (LOG, 13): (14_308, 68_966, 61_720, 275, 43, 345),
    (POSIT, 13): (6_272, 26_093, 32_271, 143, 43, 330),
    (LOG, 32): (27_264, 145_300, 119_435, 560, 98, 345),
    (POSIT, 32): (12_090, 55_910, 67_906, 314, 102, 330),
    (LOG, 64): (47_058, 273_525, 216_083, 1_021, 250, 332),
    (POSIT, 64): (23_187, 103_948, 125_875, 602, 258, 330),
    (LOG, 128): (50_690, 308_719, 258_834, 1_040, 1_406, 308),
    (POSIT, 128): (23_775, 123_011, 157_696, 602, 1_410, 300),
}

#: Figure 6(a)'s wall-clock seconds at T = 500,000 (paper-reported).
PAPER_FIG6_SECONDS: Dict[tuple, float] = {
    (POSIT, 13): 0.14, (POSIT, 32): 0.17, (POSIT, 64): 0.25, (POSIT, 128): 0.55,
    (LOG, 13): 0.21, (LOG, 32): 0.25, (LOG, 64): 0.32, (LOG, 128): 0.66,
}


def _sram_blocks(h: int) -> int:
    """SRAM block model: measured points from Table III, quadratic-ish
    growth in between (the state, transition and observation buffers all
    scale with H or H^2; H=128 additionally quadruples banking)."""
    measured = {13: 43, 32: 100, 64: 254, 128: 1_408}
    if h in measured:
        return measured[h]
    return int(30 + 0.08 * h * h) if h <= 64 else int(0.086 * h * h)


@dataclass
class ForwardUnit:
    """One forward-algorithm accelerator instance."""

    style: str  # LOG or POSIT
    h: int
    posit_es: int = 18
    clock_mhz: float = CLOCK_MHZ

    def __post_init__(self):
        if self.style not in (LOG, POSIT):
            raise ValueError(f"unknown style {self.style!r}")
        if self.h < 2:
            raise ValueError("need at least 2 states")

    # -- timing --------------------------------------------------------
    @property
    def pe_latency(self) -> int:
        return forward_pe_latency(self.style, self.h)

    def timing(self, t: int) -> TimingBreakdown:
        return forward_unit_timing(self.h, t, self.pe_latency)

    def seconds(self, t: int) -> float:
        return self.timing(t).seconds(self.clock_mhz)

    # -- resources -----------------------------------------------------
    def resources(self) -> Resources:
        lanes = min(self.h, _MAX_LANES)
        pe = forward_pe_structure(self.style, lanes, self.posit_es)
        base = _BASE_OVERHEAD[self.style]
        r = pe.resources + base
        return Resources(r.lut, r.register, r.dsp, _sram_blocks(self.h))

    def paper_reported(self) -> Optional[dict]:
        row = PAPER_TABLE3.get((self.style, self.h))
        if row is None:
            return None
        clb, lut, reg, dsp, sram, fmax = row
        return {"CLB": clb, "LUT": lut, "Register": reg, "DSP": dsp,
                "SRAM": sram, "fmax": fmax}

    def clb(self) -> int:
        """Paper-reported CLBs for Table III configurations (packing is
        design-specific), else the model estimate."""
        reported = self.paper_reported()
        if reported is not None:
            return reported["CLB"]
        return self.resources().clb_estimate()

    def paper_seconds(self, t: int = 500_000) -> Optional[float]:
        base = PAPER_FIG6_SECONDS.get((self.style, self.h))
        if base is None:
            return None
        return base * t / 500_000

    # -- functional simulation -----------------------------------------
    def backend(self) -> Backend:
        if self.style == LOG:
            return LogSpaceBackend()
        return PositBackend(PositEnv(64, self.posit_es))

    def simulate(self, hmm: HMMData):
        """Execute the PE dataflow with the unit's number format.

        Returns ``(likelihood_value, TimingBreakdown)``.  The reduction
        over states is done in *tree order* (Fig. 4's parallel reduction
        tree); for log-space the H-nary LSE of Equation (3) matches the
        max/exp/accumulate/log pipeline exactly.
        """
        if hmm.n_states != self.h:
            raise ValueError(f"unit is hardwired for H={self.h}, "
                             f"got H={hmm.n_states} (Section V.B)")
        backend = self.backend()
        if self.style == LOG:
            value = _simulate_log(hmm)
        else:
            value = _simulate_posit(hmm, PositEnv(64, self.posit_es))
        return value, self.timing(hmm.length)


def _simulate_log(hmm: HMMData) -> float:
    """Listing 3 with the PE's n-ary LSE reduction."""
    h = hmm.n_states
    from ..formats.logspace import LogSpace
    codec = LogSpace()
    ln_a = [[codec.encode_bigfloat(x) for x in row] for row in hmm.transition]
    ln_b = [[codec.encode_bigfloat(x) for x in row] for row in hmm.emission]
    ln_pi = [codec.encode_bigfloat(x) for x in hmm.initial]
    o0 = hmm.observations[0]
    alpha = [log_mul(ln_pi[q], ln_b[q][o0]) for q in range(h)]
    for t in range(1, hmm.length):
        ot = hmm.observations[t]
        nxt = []
        for q in range(h):
            terms = [alpha[p] + ln_a[p][q] for p in range(h)]
            nxt.append(lse_n(terms) + ln_b[q][ot])
        alpha = nxt
    return lse_n(alpha)


def _tree_sum(env: PositEnv, values: list) -> int:
    """Balanced binary-tree posit accumulation (Fig. 4b)."""
    work = list(values)
    while len(work) > 1:
        nxt = [env.add(work[i], work[i + 1]) for i in range(0, len(work) - 1, 2)]
        if len(work) % 2:
            nxt.append(work[-1])
        work = nxt
    return work[0]


def _simulate_posit(hmm: HMMData, env: PositEnv) -> int:
    h = hmm.n_states
    a = [[env.encode_bigfloat(x) for x in row] for row in hmm.transition]
    b = [[env.encode_bigfloat(x) for x in row] for row in hmm.emission]
    pi = [env.encode_bigfloat(x) for x in hmm.initial]
    o0 = hmm.observations[0]
    alpha = [env.mul(pi[q], b[q][o0]) for q in range(h)]
    for t in range(1, hmm.length):
        ot = hmm.observations[t]
        nxt = []
        for q in range(h):
            terms = [env.mul(alpha[p], a[p][q]) for p in range(h)]
            nxt.append(env.mul(_tree_sum(env, terms), b[q][ot]))
        alpha = nxt
    return _tree_sum(env, alpha)


def software_forward_log(hmm: HMMData) -> float:
    """The CPU software the accelerator must be bit-equivalent to
    (same n-ary LSE order)."""
    return _simulate_log(hmm)


def software_forward_posit(hmm: HMMData, es: int = 18) -> int:
    """Posit CPU software with the same tree reduction order."""
    return _simulate_posit(hmm, PositEnv(64, es))


def speedup_over_cpu(h: int, cpu_ns_per_op: float = 10.0) -> float:
    """Section V.B quotes 66x (H=64) and 115x (H=128) speedup of the
    log-based unit over the C software.

    Model: the CPU executes the H^2 inner (add + LSE) operations
    sequentially at ~``cpu_ns_per_op`` each (a software exp+log1p pair on
    a ~3 GHz core), while the unit's pipelined PE covers one outer
    iteration in ``cycles_per_outer`` FPGA cycles at 300 MHz.
    """
    cpu_ns_per_outer = h * h * cpu_ns_per_op
    unit = ForwardUnit(LOG, h)
    hw_ns_per_outer = unit.timing(1).cycles_per_outer / CLOCK_MHZ * 1e3
    return cpu_ns_per_outer / hw_ns_per_outer
