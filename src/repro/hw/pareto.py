"""Design-space enumeration and Pareto analysis for the accelerators.

Extends the paper's fixed design points: enumerate (style, H) forward
units or (style, n_PEs) column units, attach the timing and resource
models, and extract the time-vs-LUT Pareto frontier plus a first-order
energy estimate.  Used by the design-space example and the ablation
benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .column_unit import ColumnUnit, DatasetShape
from .forward_unit import ForwardUnit
from .pe import LOG, POSIT

#: First-order dynamic power model: watts per active LUT and per DSP at
#: 300 MHz on UltraScale+ (order-of-magnitude coefficients; used only
#: for *relative* comparisons between the two styles).
WATTS_PER_KLUT = 0.015
WATTS_PER_DSP = 0.0025
STATIC_WATTS = 2.0


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated accelerator configuration.

    ``workload`` identifies the problem size (H for forward units, PE
    count for column units): comparing time across different workloads
    is meaningless — an H=128 unit does more work per outer iteration
    than an H=8 unit — so domination is only defined within a workload.
    """

    label: str
    style: str
    workload: int
    seconds: float
    luts: int
    dsps: int

    @property
    def watts(self) -> float:
        return (STATIC_WATTS + self.luts / 1000 * WATTS_PER_KLUT
                + self.dsps * WATTS_PER_DSP)

    @property
    def joules(self) -> float:
        return self.watts * self.seconds


def forward_design_space(t: int = 500_000,
                         h_values: Sequence[int] = (8, 13, 16, 24, 32, 48,
                                                    64, 96, 128)) -> List[DesignPoint]:
    points = []
    for h in h_values:
        for style in (LOG, POSIT):
            unit = ForwardUnit(style, h)
            r = unit.resources()
            points.append(DesignPoint(f"{style}/H={h}", style, h,
                                      unit.seconds(t), r.lut, r.dsp))
    return points


def column_design_space(shape: DatasetShape,
                        pe_counts: Sequence[int] = (2, 4, 8, 16, 32)) -> List[DesignPoint]:
    points = []
    for n_pes in pe_counts:
        for style in (LOG, POSIT):
            unit = ColumnUnit(style, n_pes=n_pes)
            r = unit.resources()
            points.append(DesignPoint(f"{style}/{n_pes}PE", style, n_pes,
                                      unit.dataset_seconds(shape), r.lut,
                                      r.dsp))
    return points


def _dominates(a: DesignPoint, b: DesignPoint) -> bool:
    """a dominates b: same workload, no worse on both axes, better on one."""
    return (a.workload == b.workload
            and a.seconds <= b.seconds and a.luts <= b.luts
            and (a.seconds < b.seconds or a.luts < b.luts))


def pareto_frontier(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """Non-dominated points (within-workload domination), sorted by
    time.  With the paper's two styles this selects, per workload, the
    style that is both faster and smaller."""
    frontier = [p for p in points
                if not any(_dominates(o, p) for o in points)]
    return sorted(frontier, key=lambda p: (p.workload, p.seconds))


def dominated_count(points: Sequence[DesignPoint], style: str) -> int:
    """How many points of ``style`` are dominated by the *other* style
    at the same workload — the quantitative form of 'posit designs
    dominate'."""
    others = [p for p in points if p.style != style]
    mine = [p for p in points if p.style == style]
    return sum(1 for p in mine if any(_dominates(o, p) for o in others))
