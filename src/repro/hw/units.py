"""Arithmetic-unit cost database (Table II) and component derivation.

We cannot place-and-route RTL in this environment, so the per-unit
post-routing costs published in the paper's Table II serve as *calibration
data*: binary64 units from Xilinx LogiCORE IP v7.1, posit units from
MArTo, all on an Alveo U250 with Vivado 2020.2.  Everything the
accelerator models report is *derived* from these unit costs plus the
structural composition of Figures 4-5 — the same reasoning the paper uses
in Section V.C — with small fitted base overheads validated against
Tables III/IV in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class UnitCost:
    """Post-routing cost of one fully pipelined arithmetic unit."""

    name: str
    lut: int
    register: int
    dsp: int
    cycles: int  # pipeline latency
    fmax_mhz: int  # maximum clock frequency

    def scaled(self, count: int) -> "UnitCost":
        return UnitCost(f"{count}x {self.name}", self.lut * count,
                        self.register * count, self.dsp * count,
                        self.cycles, self.fmax_mhz)


#: Table II, verbatim.  "log add" is the two-input binary64 LSE unit;
#: "log mul" is a binary64 adder.
TABLE2: dict = {
    "binary64_add": UnitCost("binary64 add", 679, 587, 0, 6, 480),
    "log_add": UnitCost("Log add (binary64 LSE)", 5_076, 5_287, 34, 64, 346),
    "posit(64,12)_add": UnitCost("posit(64,12) add", 1_064, 1_005, 0, 8, 354),
    "posit(64,18)_add": UnitCost("posit(64,18) add", 1_012, 974, 0, 8, 358),
    "binary64_mul": UnitCost("binary64 mul", 213, 484, 6, 8, 480),
    "log_mul": UnitCost("Log mul (binary64 add)", 679, 587, 0, 6, 480),
    "posit(64,12)_mul": UnitCost("posit(64,12) mul", 618, 1_004, 9, 12, 336),
    "posit(64,18)_mul": UnitCost("posit(64,18) mul", 558, 969, 10, 12, 336),
}


def unit(key: str) -> UnitCost:
    return TABLE2[key]


# ----------------------------------------------------------------------
# Derived sub-components of the binary64 LSE unit.
#
# A two-input LSE (Equation 2) = max + subtract + exp + add + log.  Using
# the LogiCORE adder for the subtract/add stages and a small comparator
# for max, the exponential and logarithm operators absorb the remainder
# of Table II's LSE cost.  The 20/6/30-cycle stage latencies come from
# Figure 4(a).
# ----------------------------------------------------------------------
COMPARE = UnitCost("binary64 compare (max)", 110, 110, 0, 3, 480)
SUBTRACT = UnitCost("binary64 subtract", 679, 587, 0, 6, 480)
EXP_UNIT = UnitCost(
    "binary64 exp",
    TABLE2["log_add"].lut - COMPARE.lut - SUBTRACT.lut
    - TABLE2["binary64_add"].lut - 1_758,
    1_100, 15, 20, 346)
LOG_UNIT = UnitCost("binary64 log", 1_758, 1_800, 19, 24, 346)


def lse_component_check() -> dict:
    """Self-check: the derived components must re-compose into Table II's
    LSE unit (exercised by tests)."""
    lut = (COMPARE.lut + SUBTRACT.lut + EXP_UNIT.lut
           + TABLE2["binary64_add"].lut + LOG_UNIT.lut)
    dsp = COMPARE.dsp + SUBTRACT.dsp + EXP_UNIT.dsp + LOG_UNIT.dsp
    return {"lut": lut, "lut_expected": TABLE2["log_add"].lut,
            "dsp": dsp, "dsp_expected": TABLE2["log_add"].dsp}


def table2_rows() -> list:
    """Render Table II for the benchmark harness."""
    order = ["binary64_add", "log_add", "posit(64,12)_add", "posit(64,18)_add",
             "binary64_mul", "log_mul", "posit(64,12)_mul", "posit(64,18)_mul"]
    return [{
        "Arithmetic Unit": TABLE2[k].name,
        "LUT": TABLE2[k].lut,
        "Register": TABLE2[k].register,
        "DSP": TABLE2[k].dsp,
        "Clock Cycle": TABLE2[k].cycles,
        "Max Clock Frequency (MHz)": TABLE2[k].fmax_mhz,
    } for k in order]


def software_op_cost_model() -> dict:
    """Relative software cost of ops (used by the paper's '10x slower'
    claim for log-space addition): cycle counts of the hardware units
    double as a first-order software cost proxy."""
    return {
        "binary64_add": TABLE2["binary64_add"].cycles,
        "log_add": TABLE2["log_add"].cycles,
        "ratio": TABLE2["log_add"].cycles / TABLE2["binary64_add"].cycles,
        "lut_ratio": TABLE2["log_add"].lut / TABLE2["binary64_add"].lut,
        "register_ratio": TABLE2["log_add"].register / TABLE2["binary64_add"].register,
    }
