"""Discrete-event pipeline simulator for the accelerators.

The analytic model in :mod:`repro.hw.timeline` is a closed form; this
module *simulates* the same microarchitecture cycle by cycle — a
prefetcher stream, an issue stage with an initiation interval, a deep
PE pipeline, and an end-of-iteration drain — and the tests check that
the simulation reproduces the closed form exactly under deterministic
DRAM latency.  The simulator additionally supports randomized DRAM
latency, which the closed form cannot express, enabling sensitivity
studies of the paper's 'prefetcher becomes the bottleneck' observation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from .timeline import DRAIN_CYCLES


@dataclass
class SimConfig:
    """One accelerator pipeline to simulate."""

    inner_iterations: int  # H (forward unit) or K (column)
    pe_latency: int  # pipeline depth of one inner iteration
    initiation_interval: int = 1  # cycles between inner issues
    drain_cycles: int = DRAIN_CYCLES
    #: Cycles for the prefetcher to deliver the next outer element; it
    #: runs concurrently with the PE pipeline (Fig. 5).
    prefetch_latency: int = 40
    #: Optional jitter: DRAM latency uniform in [latency, latency+jitter].
    prefetch_jitter: int = 0


@dataclass
class SimResult:
    total_cycles: int
    outer_iterations: int
    prefetch_stall_cycles: int
    per_outer_cycles: List[int] = field(default_factory=list)

    @property
    def mean_cycles_per_outer(self) -> float:
        return self.total_cycles / self.outer_iterations


def simulate(config: SimConfig, outer_iterations: int,
             seed: Optional[int] = None) -> SimResult:
    """Run the pipeline for ``outer_iterations`` outer-loop iterations.

    Cycle accounting per outer iteration t:

    * at iteration start, the prefetcher begins fetching element t+1 and
      the issue stage begins dispatching the ``inner_iterations`` inner
      ops, one every ``initiation_interval`` cycles;
    * the iteration's compute finishes ``pe_latency`` cycles after the
      last issue, plus the drain;
    * the next iteration cannot start before the prefetch of its element
      completes — if compute finished first, the gap is a prefetch stall.
    """
    rng = random.Random(seed)
    clock = 0
    stalls = 0
    per_outer = []
    for _ in range(outer_iterations):
        start = clock
        # Issue phase occupies inner_iterations * II cycles; the last
        # result lands pe_latency cycles later; drain closes the
        # iteration (this is exactly the Fig. 5 accounting).
        issue_done = start + config.inner_iterations * config.initiation_interval
        compute_done = issue_done + config.pe_latency + config.drain_cycles
        jitter = rng.randint(0, config.prefetch_jitter) if config.prefetch_jitter else 0
        prefetch_done = start + config.prefetch_latency + jitter
        next_start = max(compute_done, prefetch_done)
        if prefetch_done > compute_done:
            stalls += prefetch_done - compute_done
        per_outer.append(next_start - start)
        clock = next_start
    return SimResult(clock, outer_iterations, stalls, per_outer)


def simulate_forward_unit(style: str, h: int, t: int,
                          prefetch_latency: int = 40,
                          prefetch_jitter: int = 0,
                          seed: Optional[int] = None) -> SimResult:
    """Simulate a forward-algorithm unit (matches
    :meth:`repro.hw.ForwardUnit.timing` when the prefetcher keeps up)."""
    from .pe import forward_pe_latency
    from .timeline import initiation_interval
    config = SimConfig(
        inner_iterations=h,
        pe_latency=forward_pe_latency(style, h),
        initiation_interval=initiation_interval(h),
        prefetch_latency=prefetch_latency,
        prefetch_jitter=prefetch_jitter,
    )
    return simulate(config, t, seed=seed)


def simulate_column(style: str, k: int, n: int, n_pes: int = 8,
                    prefetch_latency: int = 40,
                    prefetch_jitter: int = 0,
                    seed: Optional[int] = None) -> SimResult:
    """Simulate one column on a column unit."""
    from .pe import column_pe_latency
    config = SimConfig(
        inner_iterations=max(1, -(-k // n_pes)),
        pe_latency=column_pe_latency(style),
        initiation_interval=1,
        prefetch_latency=prefetch_latency,
        prefetch_jitter=prefetch_jitter,
    )
    return simulate(config, n, seed=seed)


def prefetch_sensitivity(style: str, h: int, t: int,
                         latencies) -> List[dict]:
    """Sweep DRAM latency and report where the unit flips from compute-
    bound to prefetch-bound — Section V.C's 'opportunities for further
    speedup by reducing DRAM access latency'."""
    rows = []
    for latency in latencies:
        sim = simulate_forward_unit(style, h, t, prefetch_latency=latency)
        rows.append({
            "prefetch_latency": latency,
            "cycles_per_outer": sim.mean_cycles_per_outer,
            "stall_fraction": sim.prefetch_stall_cycles / sim.total_cycles,
        })
    return rows
