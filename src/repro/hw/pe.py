"""Processing-element latency and resource models (Figure 4 / Section V.C).

The paper gives closed forms for the forward-algorithm PE:

* log-based:   ``62 + 9 * log2(H)`` cycles
  (6-cycle term adds; a max reduction tree and an exp-accumulation
  reduction tree contributing 9 cycles per level; 20-cycle fully parallel
  exponentials; 6-cycle subtractions; 30 cycles of logarithm + final add)
* posit-based: ``24 + 8 * log2(H)`` cycles
  (12-cycle multiplies at entry and exit; an 8-cycle-per-level posit
  adder reduction tree)

and for the LoFreq column-unit PE: 73 cycles log-based (64-cycle LSE +
6-cycle add + 3 cycles of conditional logic) vs 30 cycles posit-based.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .resources import Resources
from .units import COMPARE, EXP_UNIT, LOG_UNIT, SUBTRACT, TABLE2

LOG = "log"
POSIT = "posit"

#: Fixed portion of the forward-PE latency (cycles).
_FWD_FIXED = {LOG: 62, POSIT: 24}
#: Per-reduction-tree-level cycles.
_FWD_PER_LEVEL = {LOG: 9, POSIT: 8}

#: Column-unit PE latency (cycles): LSE 64 + add 6 + conditionals 3,
#: vs posit mul 12 + two chained adds + conditionals.
COLUMN_PE_LATENCY = {LOG: 73, POSIT: 30}


def tree_levels(h: int) -> int:
    """Depth of a binary reduction tree over h inputs."""
    if h < 1:
        raise ValueError("h must be positive")
    return max(1, math.ceil(math.log2(h)))


def forward_pe_latency(style: str, h: int) -> int:
    """PE latency in cycles for an H-state forward-algorithm unit."""
    _check(style)
    return _FWD_FIXED[style] + _FWD_PER_LEVEL[style] * tree_levels(h)


def forward_pe_latency_reduction(h: int) -> int:
    """The paper's quoted saving: ``38 + log2(H)`` cycles."""
    return forward_pe_latency(LOG, h) - forward_pe_latency(POSIT, h)


def column_pe_latency(style: str) -> int:
    _check(style)
    return COLUMN_PE_LATENCY[style]


def _check(style: str) -> None:
    if style not in (LOG, POSIT):
        raise ValueError(f"unknown PE style {style!r}")


# ----------------------------------------------------------------------
# Structural resource composition (Figure 4's block diagrams)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PEStructure:
    """Component inventory of one PE, resolvable to resources."""

    description: str
    resources: Resources


def forward_pe_structure(style: str, h: int, posit_es: int = 18) -> PEStructure:
    """Resources of one fully-parallel forward-algorithm PE.

    Log-based (Fig. 4a): H term adders (binary64), an (H-1)-comparator max
    tree, H subtractors, H exponential units, an (H-1)-adder accumulation
    tree, one logarithm unit and one final adder.

    Posit-based (Fig. 4b): H multipliers, an (H-1)-adder reduction tree,
    and one final multiplier.
    """
    _check(style)
    if style == LOG:
        add = TABLE2["binary64_add"]
        r = Resources()
        r = r + Resources(add.lut, add.register, add.dsp).scale(h)  # terms
        r = r + Resources(COMPARE.lut, COMPARE.register, COMPARE.dsp).scale(h - 1)
        r = r + Resources(SUBTRACT.lut, SUBTRACT.register, SUBTRACT.dsp).scale(h)
        r = r + Resources(EXP_UNIT.lut, EXP_UNIT.register, EXP_UNIT.dsp).scale(h)
        r = r + Resources(add.lut, add.register, add.dsp).scale(h - 1)  # acc tree
        r = r + Resources(LOG_UNIT.lut, LOG_UNIT.register, LOG_UNIT.dsp)
        r = r + Resources(add.lut, add.register, add.dsp)  # + ln_B
        return PEStructure(f"log forward PE (H={h})", r)
    mul = TABLE2[f"posit(64,{posit_es})_mul"]
    padd = TABLE2[f"posit(64,{posit_es})_add"]
    r = Resources(mul.lut, mul.register, mul.dsp).scale(h)  # terms
    r = r + Resources(padd.lut, padd.register, padd.dsp).scale(h - 1)  # tree
    r = r + Resources(mul.lut, mul.register, mul.dsp)  # * B[q][ot]
    return PEStructure(f"posit forward PE (H={h})", r)


def column_pe_structure(style: str, posit_es: int = 12) -> PEStructure:
    """Resources of one column-unit PE (Listing 2's line-4 kernel).

    Log-based: two log-multiplies (binary64 adders) feeding a two-input
    LSE.  Posit-based: two multipliers feeding one adder.
    """
    _check(style)
    if style == LOG:
        add = TABLE2["binary64_add"]
        lse = TABLE2["log_add"]
        r = Resources(add.lut, add.register, add.dsp).scale(2)
        r = r + Resources(lse.lut, lse.register, lse.dsp)
        return PEStructure("log column PE", r)
    mul = TABLE2[f"posit(64,{posit_es})_mul"]
    padd = TABLE2[f"posit(64,{posit_es})_add"]
    r = Resources(mul.lut, mul.register, mul.dsp).scale(2)
    r = r + Resources(padd.lut, padd.register, padd.dsp)
    return PEStructure("posit column PE", r)
