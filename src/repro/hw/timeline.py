"""Accelerator execution-time model (Figure 5).

Both accelerators interleave a fully pipelined PE array with a DRAM
prefetcher.  The paper's cycle model is

    ``total = outer_loop_bound * (pipeline_latency + PE_latency)``

where the pipeline latency is the number of cycles spent *issuing* inner
iterations (H for the forward unit, K for a column) and the PE latency is
the depth of one iteration's pipeline.  On top of that we model two
effects visible in the paper's measurements:

* a small per-outer-iteration drain/control overhead (fitted constant),
* an initiation-interval increase when the state vector outgrows the
  SRAM banking (the H=128 forward unit jumps from 250 to 1,406 SRAM
  blocks in Table III and its runtime grows superlinearly in Fig. 6 —
  consistent with issuing one inner iteration every ``II=2`` cycles),
* a prefetcher floor: issue can never outpace the DRAM stream
  (Section V.C notes posit shifts the bottleneck to the prefetcher for
  small H).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Evaluation clock (Section VI.A: all accelerators run at 300 MHz).
CLOCK_MHZ = 300.0

#: Fitted per-outer-iteration drain/control overhead, cycles.
DRAIN_CYCLES = 15

#: Inner-iteration issue takes II cycles once the state vector exceeds
#: this many elements (SRAM banking limit on the U250).
II_BREAKPOINT = 64

#: Minimum cycles per outer iteration imposed by the DRAM prefetcher.
PREFETCH_FLOOR_CYCLES = 40


@dataclass(frozen=True)
class TimingBreakdown:
    """Cycle accounting for one accelerator run."""

    outer_iterations: int
    issue_cycles: int  # pipeline latency per outer iteration
    pe_latency: int
    drain_cycles: int
    prefetch_bound: bool

    @property
    def cycles_per_outer(self) -> int:
        return self.issue_cycles + self.pe_latency + self.drain_cycles

    @property
    def total_cycles(self) -> int:
        return self.outer_iterations * self.cycles_per_outer

    def seconds(self, clock_mhz: float = CLOCK_MHZ) -> float:
        return self.total_cycles / (clock_mhz * 1e6)


def initiation_interval(inner_size: int, breakpoint: int = II_BREAKPOINT) -> int:
    """Issue interval per inner iteration: 1 until the banking limit,
    then 2."""
    return 1 if inner_size <= breakpoint else 2


def forward_unit_timing(h: int, t: int, pe_latency: int,
                        drain: int = DRAIN_CYCLES,
                        prefetch_floor: int = PREFETCH_FLOOR_CYCLES) -> TimingBreakdown:
    """Per Figure 5 with outer bound T and pipeline latency H * II.

    Prefetching overlaps the PE pipeline (Fig. 5), so a short issue phase
    does not inflate the cycle count; ``prefetch_bound`` merely flags the
    regime where the DRAM stream, not the PEs, limits further speedup
    (Section V.C's observation for small H).
    """
    issue = h * initiation_interval(h)
    prefetch_bound = issue < prefetch_floor
    return TimingBreakdown(t, issue, pe_latency, drain, prefetch_bound)


def column_timing(k: int, n: int, pe_latency: int, n_pes: int = 8,
                  drain: int = DRAIN_CYCLES) -> TimingBreakdown:
    """One column on a unit whose ``n_pes`` PEs jointly sweep the K-long
    inner loop (each issues one inner iteration per cycle, so the
    pipeline latency is ceil(K / n_pes)); the outer bound is the depth N.

    This calibration reproduces the paper's single-unit improvement band
    (5-25% across datasets whose mean K varies widely) and its MMAPS/CLB
    magnitudes.
    """
    issue = max(1, -(-k // n_pes))  # ceil(k / n_pes)
    return TimingBreakdown(n, issue, pe_latency, drain, False)
