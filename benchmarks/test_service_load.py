"""Cross-request coalescing throughput on the evaluation server.

The serving tier's contract is that same-shape forward requests arriving
from concurrent clients are coalesced into one batched kernel call, and
that the coalescing configuration beats the no-coalescing one
(``max_batch=1``) by a wide margin: the synthetic closed-loop load
harness (:mod:`repro.service.loadgen`) must measure a >= 3x throughput
speedup end to end — real HTTP framing, JSON codec, scheduler, executor
hop and all.

The measurement lands in ``BENCH_service.json`` at the repo root
(``service_load.forward_coalescing.speedup``), and
``benchmarks/check_bench_regression.py`` enforces the same floor on the
committed artifact (override with ``$REPRO_SERVICE_SPEEDUP_FLOOR``; CI's
shared runners lower it, the committed JSON is checked at the full
floor by ``tests/test_bench_gate.py``).  ``$REPRO_SERVICE_LOAD_SCALE``
scales the client/request counts (CI smoke uses 0.5).
"""

import json
import os
import time

import pytest

from repro.service.loadgen import compare_coalescing

_RESULTS = {}
_PARAMS = {}
_JSON_PATH = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "BENCH_service.json")

#: Acceptance floor: the coalescing server must beat the no-coalescing
#: configuration by at least this factor on same-shape forward traffic.
SPEEDUP_FLOOR = float(
    os.environ.get("REPRO_SERVICE_SPEEDUP_FLOOR", "3.0"))

#: Load-harness scale knob (client count and requests per client scale
#: linearly; 1.0 is the recorded configuration).
LOAD_SCALE = float(os.environ.get("REPRO_SERVICE_LOAD_SCALE", "1.0"))


@pytest.fixture(scope="module", autouse=True)
def _emit_json():
    """Collect the measurements, then write BENCH_service.json."""
    yield
    if _RESULTS:
        payload = {
            "benchmark": "service_load",
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "params": _PARAMS,
            "results": _RESULTS,
        }
        with open(_JSON_PATH, "w") as f:
            json.dump(payload, f, indent=1)


def test_forward_coalescing_speedup(report):
    payload = compare_coalescing(scale=LOAD_SCALE)
    _PARAMS.update(payload["params"])
    entry = payload["results"]["forward_coalescing"]
    _RESULTS["forward_coalescing"] = entry

    solo, coalesced = entry["solo"], entry["coalesced"]
    report("Service coalescing throughput",
           f"forward over HTTP, {payload['params']['clients']} clients x "
           f"{payload['params']['requests_per_client']} requests "
           f"(scale {LOAD_SCALE:g}):\n"
           f"  solo (max_batch=1): {solo['throughput_rps']:.1f} req/s, "
           f"p99 {solo['p99_ms']:.1f} ms\n"
           f"  coalesced:          {coalesced['throughput_rps']:.1f} req/s, "
           f"p99 {coalesced['p99_ms']:.1f} ms "
           f"(factor {coalesced['coalescing_factor']:.1f})\n"
           f"  speedup: {entry['speedup']:.2f}x "
           f"(floor {SPEEDUP_FLOOR:g}x)")

    assert solo["errors"] == 0 and coalesced["errors"] == 0
    # The coalesced run must actually have batched across requests —
    # a factor of ~1 would make the speedup gate measure nothing.
    assert coalesced["coalescing_factor"] > 1.5
    assert entry["speedup"] >= SPEEDUP_FLOOR
