"""Batched vs serial throughput for the registered workloads:
Viterbi decoding, pair-HMM read alignment, and the Kalman filter.

Measurements land in ``BENCH_workloads.json`` at the repo root.  The
acceptance gates are batched Viterbi and batched pair-HMM at >= 5x
over per-item serial plans, decision- (and where the format allows,
bit-) identical; shared CI runners can lower the floor via
``REPRO_WORKLOADS_SPEEDUP_FLOOR``.  The Kalman filter is recorded but
only sanity-gated (> 1x) — its recurrence is short enough that the
conversion cost, not the arithmetic, can dominate at small T.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.arith import Binary64Backend, LogSpaceBackend
from repro.data.dirichlet import sample_hmm
from repro.engine import ExecPlan
from repro.workloads.kalman import kalman_batch, sample_tracks
from repro.workloads.pairhmm import PairHMMParams, pairhmm_batch
from repro.workloads.viterbi import viterbi_batch

_RESULTS = {}
_JSON_PATH = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "BENCH_workloads.json")

#: Acceptance floor for the batched Viterbi / pair-HMM speedups (the
#: recorded dedicated-hardware results are far above it; CI lowers this
#: because shared runners make wall-clock asserts flaky).
WORKLOADS_SPEEDUP_FLOOR = float(
    os.environ.get("REPRO_WORKLOADS_SPEEDUP_FLOOR", "5.0"))


@pytest.fixture(scope="module", autouse=True)
def _emit_json():
    yield
    if _RESULTS:
        payload = {
            "benchmark": "workloads_throughput",
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "results": _RESULTS,
        }
        with open(_JSON_PATH, "w") as f:
            json.dump(payload, f, indent=1)


def test_viterbi_batch_speedup(report):
    """Batched log-space Viterbi over 32 sequences >= 5x the serial
    plan, path-for-path and score-for-score identical (mul and max are
    both exact in log space, so there is no rounding split to absorb)."""
    backend = LogSpaceBackend(sum_mode="sequential")
    n_seqs, t_len = 128, 64
    hmm = sample_hmm(8, 6, t_len, seed=7)
    rng = np.random.default_rng(8)
    obs = rng.integers(0, 6, size=(n_seqs, t_len))

    start = time.perf_counter()
    batched = viterbi_batch(hmm, backend, obs)
    batch_per_seq = (time.perf_counter() - start) / n_seqs

    serial_subset = 2
    start = time.perf_counter()
    serial = viterbi_batch(hmm, backend, obs[:serial_subset],
                           plan=ExecPlan.serial())
    serial_per_seq = (time.perf_counter() - start) / serial_subset

    speedup = serial_per_seq / batch_per_seq
    _RESULTS[f"viterbi_log_batch{n_seqs}"] = {
        "sequences": n_seqs, "t": t_len, "h": 8,
        "serial_s_per_seq": serial_per_seq,
        "batch_s_per_seq": batch_per_seq,
        "speedup": speedup,
    }
    report("Batched Viterbi",
           f"log-space decode, {n_seqs} seqs H=8 T={t_len}: serial "
           f"{serial_per_seq * 1e3:.0f} ms/seq, batched "
           f"{batch_per_seq * 1e3:.2f} ms/seq -> {speedup:.1f}x")
    for got, want in zip(batched, serial):
        assert got.states() == want.states()
        assert got.score == want.score
    assert speedup >= WORKLOADS_SPEEDUP_FLOOR


def test_pairhmm_batch_speedup(report):
    """Batched binary64 pair-HMM over 32 reads >= 5x the serial plan,
    bit-identical (same float64 ops in the same order)."""
    backend = Binary64Backend()
    n_reads, read_len, hap_len = 256, 12, 40
    rng = np.random.default_rng(9)
    hap = rng.integers(0, 4, hap_len)
    reads = rng.integers(0, 4, (n_reads, read_len))
    params = PairHMMParams()

    start = time.perf_counter()
    batched = pairhmm_batch(hap, reads, backend, params=params)
    batch_per_read = (time.perf_counter() - start) / n_reads

    serial_subset = 2
    start = time.perf_counter()
    serial = pairhmm_batch(hap, reads[:serial_subset], backend,
                           params=params, plan=ExecPlan.serial())
    serial_per_read = (time.perf_counter() - start) / serial_subset

    speedup = serial_per_read / batch_per_read
    _RESULTS[f"pairhmm_binary64_batch{n_reads}"] = {
        "reads": n_reads, "read_len": read_len, "hap_len": hap_len,
        "serial_s_per_read": serial_per_read,
        "batch_s_per_read": batch_per_read,
        "speedup": speedup,
    }
    report("Batched pair-HMM",
           f"binary64 alignment, {n_reads} reads R={read_len} "
           f"L={hap_len}: serial {serial_per_read * 1e3:.0f} ms/read, "
           f"batched {batch_per_read * 1e3:.2f} ms/read -> "
           f"{speedup:.1f}x")
    assert batched[:serial_subset] == serial
    assert speedup >= WORKLOADS_SPEEDUP_FLOOR


def test_kalman_batch_speedup(report):
    """Batched binary64 Kalman filtering vs the serial plan,
    bit-identical; recorded for the artifact, sanity-gated only."""
    backend = Binary64Backend()
    n_tracks, t_len = 64, 200
    zs, _ = sample_tracks(n_tracks, t_len, seed=11)

    start = time.perf_counter()
    batched = kalman_batch(zs, backend)
    batch_per_track = (time.perf_counter() - start) / n_tracks

    serial_subset = 4
    start = time.perf_counter()
    serial = kalman_batch(zs[:serial_subset], backend,
                          plan=ExecPlan.serial())
    serial_per_track = (time.perf_counter() - start) / serial_subset

    speedup = serial_per_track / batch_per_track
    _RESULTS[f"kalman_binary64_batch{n_tracks}"] = {
        "tracks": n_tracks, "t": t_len,
        "serial_s_per_track": serial_per_track,
        "batch_s_per_track": batch_per_track,
        "speedup": speedup,
    }
    report("Batched Kalman filter",
           f"binary64 filter, {n_tracks} tracks T={t_len}: "
           f"{speedup:.1f}x over the serial plan")
    for got, want in zip(batched, serial):
        assert (got.x, got.p) == (want.x, want.p)
    assert speedup > 1.0
