"""Benchmark + reproduction of Figure 9 (p-value accuracy by magnitude)."""

from repro.experiments import fig9_pvalue_accuracy


def test_fig9(benchmark, report):
    result = benchmark.pedantic(fig9_pvalue_accuracy.run, args=("bench",),
                                rounds=1, iterations=1)
    report("Figure 9", fig9_pvalue_accuracy.render(result))
    rows = result.median_rows()
    deepest, shallowest = rows[0], rows[-1]
    # posit(64,9) underflows out of the deepest bins (paper: absent in
    # the two leftmost ranges); posit(64,18) never underflows.
    assert deepest["posit(64,9)"] is None
    assert deepest["posit(64,18)"] is not None
    assert result.lofreq.underflow_count("posit(64,9)") > 0
    assert result.lofreq.underflow_count("posit(64,18)") == 0
    # posit(64,18) beats log on the extreme magnitudes...
    assert deepest["posit(64,18)"] < deepest["log"]
    # ...while posit(64,9) is the most accurate near the threshold.
    assert shallowest["posit(64,9)"] <= shallowest["log"]
