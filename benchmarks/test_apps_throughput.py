"""Scalar vs batched throughput for the newly vectorized workloads:
multi-model ViCAR forward, multi-chain MCMC, batched quire
accumulation, and batched LNS multiplication.

Measurements land in ``BENCH_apps.json`` at the repo root (the
companion of ``BENCH_batch.json``).  The acceptance gate is the
multi-model log-space forward — the ViCAR/Figure 10 shape — at >= 5x
over the per-model scalar loop with bit-identical likelihoods; shared
CI runners can lower the floor via ``REPRO_APPS_SPEEDUP_FLOOR``.
"""

import json
import math
import os
import time

import numpy as np
import pytest

from repro.apps.hmm import forward, forward_models_batch
from repro.apps.mcmc import run_chain, run_chains
from repro.arith import LogSpaceBackend
from repro.arith.backends import LNSBackend
from repro.data.dirichlet import sample_hcg_like_hmm
from repro.engine import BatchLNS, BatchQuire, ExecPlan
from repro.formats.posit import PositEnv
from repro.formats.quire import Quire

_RESULTS = {}
_JSON_PATH = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "BENCH_apps.json")

#: Acceptance floor for the batched multi-model forward speedup (the
#: recorded dedicated-hardware result is far above it; CI lowers this
#: because shared runners make wall-clock asserts flaky).
APPS_SPEEDUP_FLOOR = float(
    os.environ.get("REPRO_APPS_SPEEDUP_FLOOR", "5.0"))


@pytest.fixture(scope="module", autouse=True)
def _emit_json():
    yield
    if _RESULTS:
        payload = {
            "benchmark": "apps_throughput",
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "results": _RESULTS,
        }
        with open(_JSON_PATH, "w") as f:
            json.dump(payload, f, indent=1)


def test_vicar_multi_model_forward_speedup(report):
    """The tentpole acceptance gate: batched multi-model log-space
    forward on 16 fig10-shaped instances (H=13) >= 5x the scalar
    per-model loop, bit-identical."""
    backend = LogSpaceBackend(sum_mode="sequential")
    n_models, t_len = 48, 800
    models = [sample_hcg_like_hmm(13, t_len, seed=s, bits_per_step=20.0)
              for s in range(n_models)]

    start = time.perf_counter()
    batch_values = forward_models_batch(models, backend)
    batch_per_model = (time.perf_counter() - start) / n_models

    scalar_subset = 2
    start = time.perf_counter()
    # Pin the legacy scalar recurrence: the default forward() is now
    # itself the batched kernel (B=1).
    scalar_values = [forward(m, backend, plan=ExecPlan.serial())
                     for m in models[:scalar_subset]]
    scalar_per_model = (time.perf_counter() - start) / scalar_subset

    speedup = scalar_per_model / batch_per_model
    _RESULTS[f"vicar_forward_multi{n_models}_h13"] = {
        "models": n_models, "t": t_len, "h": 13,
        "scalar_s_per_model": scalar_per_model,
        "batch_s_per_model": batch_per_model,
        "speedup": speedup,
    }
    report("Batched ViCAR forward",
           f"log-space multi-model forward, {n_models} models H=13 "
           f"T={t_len}: scalar {scalar_per_model * 1e3:.0f} ms/model, "
           f"batched {batch_per_model * 1e3:.2f} ms/model -> "
           f"{speedup:.1f}x")
    assert batch_values[:scalar_subset] == scalar_values
    assert speedup >= APPS_SPEEDUP_FLOOR


def test_mcmc_chains_speedup(report):
    """Multi-chain MH through the batched forward vs per-chain scalar
    runs, decision-for-decision identical."""
    backend = LogSpaceBackend(sum_mode="sequential")
    n_chains, steps = 16, 5
    seeds = list(range(n_chains))
    # Chains over fig10-shaped models (H=8, T=200): big enough that the
    # vectorized T-loop, not the per-proposal conversion, dominates.
    bases = [sample_hcg_like_hmm(8, 200, seed=s, bits_per_step=25.0)
             for s in seeds]

    start = time.perf_counter()
    batched = run_chains(backend, n_chains, bases=bases, steps=steps,
                         seeds=seeds)
    batch_per_chain = (time.perf_counter() - start) / n_chains

    scalar_subset = 2
    start = time.perf_counter()
    scalar = [run_chain(backend, bases[i], steps, seeds[i],
                        plan=ExecPlan.serial())
              for i in range(scalar_subset)]
    scalar_per_chain = (time.perf_counter() - start) / scalar_subset

    speedup = scalar_per_chain / batch_per_chain
    _RESULTS[f"mcmc_chains{n_chains}"] = {
        "chains": n_chains, "steps": steps,
        "scalar_s_per_chain": scalar_per_chain,
        "batch_s_per_chain": batch_per_chain,
        "speedup": speedup,
    }
    report("Batched MCMC chains",
           f"{n_chains} MH chains x {steps} steps: {speedup:.1f}x over "
           f"per-chain scalar runs")
    for got, want in zip(batched, scalar):
        assert (got.accepted, got.rejected, got.stuck, got.samples) == \
            (want.accepted, want.rejected, want.stuck, want.samples)
    assert speedup > 1.0


def test_quire_accumulation_speedup(report):
    """Batched limb-array quire accumulation vs per-element scalar
    Quire objects, element-exact."""
    env = PositEnv(16, 1)
    rng = np.random.default_rng(3)
    n_quires, terms = 8_000, 12
    bits = rng.integers(0, env.nar, size=(n_quires, terms)).astype(np.uint64)

    q = BatchQuire(env, (n_quires,))

    def accumulate():
        q.clear()
        for k in range(terms):
            q.add_posit(bits[:, k])
        return q.to_posit()

    # Best-of-3 steady state, like the batch-throughput suite: the
    # accumulator (and its scratch addend) is reused across chains.
    batch_rate, batch_out = -math.inf, None
    for _ in range(3):
        start = time.perf_counter()
        out = accumulate()
        rate = n_quires * terms / (time.perf_counter() - start)
        if rate > batch_rate:
            batch_rate, batch_out = rate, out

    subset = 150
    start = time.perf_counter()
    scalar_out = []
    for i in range(subset):
        sq = Quire(env)
        for k in range(terms):
            sq.add_posit(int(bits[i, k]))
        scalar_out.append(sq.to_posit())
    scalar_rate = subset * terms / (time.perf_counter() - start)

    speedup = batch_rate / scalar_rate
    _RESULTS["quire_accumulate_posit16_1"] = {
        "quires": n_quires, "terms": terms,
        "scalar_ops_per_s": scalar_rate, "batch_ops_per_s": batch_rate,
        "speedup": speedup,
    }
    report("Batched quire accumulation",
           f"posit(16,1) quire, {terms}-term sums: {speedup:.1f}x")
    assert [int(v) for v in batch_out[:subset]] == scalar_out
    assert speedup > 1.0


def test_lns_mul_speedup(report):
    """Batched LNS multiplication (pure fixed-point array math) vs the
    scalar env; the add path is measured but not gated (its exact
    Gaussian-log is memoized per distinct gap by design)."""
    backend = LNSBackend()
    batch = BatchLNS(scalar=backend)
    rng = np.random.default_rng(4)
    env = backend.env
    codes = rng.integers(env.min_code // 2, env.max_code // 2,
                         size=20_000).astype(np.int64)
    a, b = codes, codes[::-1].copy()

    subset = 2_000
    start = time.perf_counter()
    for x, y in zip(a[:subset].tolist(), b[:subset].tolist()):
        backend.mul(x, y)
    scalar_rate = subset / (time.perf_counter() - start)

    start = time.perf_counter()
    out = batch.mul(a, b)
    batch_rate = a.size / (time.perf_counter() - start)

    speedup = batch_rate / scalar_rate
    _RESULTS["lns_mul"] = {
        "scalar_ops_per_s": scalar_rate, "batch_ops_per_s": batch_rate,
        "speedup": speedup,
    }
    report("Batched LNS mul", f"lns(12,50) mul: {speedup:.1f}x")
    for i in range(0, subset, 97):
        assert batch.item(out, i) == backend.mul(int(a[i]), int(b[i]))
    assert not math.isinf(speedup)
    assert speedup > 1.0
