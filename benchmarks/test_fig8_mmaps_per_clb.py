"""Benchmark + reproduction of Figure 8 (performance per resource)."""

from repro.experiments import fig8_mmaps_per_clb


def test_fig8(benchmark, report):
    rows = benchmark(fig8_mmaps_per_clb.run)
    report("Figure 8", fig8_mmaps_per_clb.render(rows))
    for r in rows:
        # Paper: posit column units do ~2x MMAPS per CLB on all datasets.
        assert 1.7 < r.ratio < 2.6
        # Absolute magnitudes match the figure's axis (~0.1-0.3).
        assert 0.03 < r.log_mmaps_per_clb < 0.2
        assert 0.1 < r.posit_mmaps_per_clb < 0.45
