"""Benchmark + reproduction of Table IV (column unit resources + SLR)."""

import pytest

from repro.experiments import table4_column_resources


def test_table4(benchmark, report):
    result = benchmark(table4_column_resources.run)
    report("Table IV", table4_column_resources.render(result))
    for row in result["rows"]:
        assert row["model LUT"] == pytest.approx(row["paper LUT"], rel=0.05)
    red = result["reduction"]
    assert red["LUT"] == pytest.approx(64.1, abs=4.0)
    fp = result["floorplan"]
    assert fp["log_per_slr"].units_per_slr == 4  # paper: at most 4
    assert fp["posit_per_slr"].units_per_slr >= 10  # paper: easily 10
    assert fp["replication"]["whole_fpga_speedup"] > 2.0  # the 2x claim
