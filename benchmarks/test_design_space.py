"""Benchmarks for the extended hardware analyses: Pareto dominance,
the discrete-event simulator vs the closed form, and DRAM sensitivity."""

from repro.hw import (
    LOG,
    POSIT,
    ForwardUnit,
    dominated_count,
    forward_design_space,
    pareto_frontier,
    prefetch_sensitivity,
    simulate_forward_unit,
)
from repro.report import render_table


def test_pareto_dominance(benchmark, report):
    points = benchmark(forward_design_space)
    rows = [{"design": p.label, "seconds": p.seconds, "kLUT": p.luts / 1000,
             "watts": p.watts} for p in points]
    report("Design space: forward units (T=500k)", render_table(rows))
    n_log = sum(1 for p in points if p.style == LOG)
    assert dominated_count(points, LOG) == n_log  # posit dominates at every H
    assert dominated_count(points, POSIT) == 0
    assert all(p.style == POSIT for p in pareto_frontier(points))


def test_sim_validates_closed_form(benchmark, report):
    """The cycle-by-cycle simulator must agree with the analytic model
    on every paper configuration."""

    def run():
        rows = []
        for h in (13, 32, 64, 128):
            for style in (LOG, POSIT):
                sim = simulate_forward_unit(style, h, 200, prefetch_latency=1)
                analytic = ForwardUnit(style, h).timing(200)
                rows.append({"style": style, "H": h,
                             "sim cycles": sim.total_cycles,
                             "analytic cycles": analytic.total_cycles})
        return rows

    rows = benchmark(run)
    report("Simulator vs closed form", render_table(rows))
    for row in rows:
        assert row["sim cycles"] == row["analytic cycles"]


def test_prefetch_sensitivity(benchmark, report):
    """Section V.C: with posit's short PE, DRAM latency becomes the
    bottleneck at small H — quantified."""
    rows = benchmark.pedantic(
        lambda: prefetch_sensitivity(POSIT, 13, 100,
                                     latencies=(1, 40, 80, 120, 200, 400)),
        rounds=1, iterations=1)
    report("DRAM prefetch sensitivity (posit, H=13)", render_table(rows))
    assert rows[0]["stall_fraction"] == 0.0
    assert rows[-1]["stall_fraction"] > 0.5
