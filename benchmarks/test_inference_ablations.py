"""Benchmarks for the inference-level consequences of underflow (the
paper's motivating sentence) and the extended-format comparison."""

from repro.apps import baum_welch, run_chain
from repro.arith import (
    Binary64Backend,
    LNSBackend,
    LogSpaceBackend,
    PositBackend,
)
from repro.core import measure_op
from repro.data import sample_hcg_like_hmm
from repro.formats import PositEnv, Real, lns64_for_range
from repro.report import render_table


def test_baum_welch_convergence(benchmark, report):
    """EM training across formats on a deep-magnitude workload."""
    hmm = sample_hcg_like_hmm(3, 25, seed=17, bits_per_step=200.0)

    def run():
        rows = []
        for name, backend in (("binary64", Binary64Backend()),
                              ("log", LogSpaceBackend()),
                              ("posit(64,18)",
                               PositBackend(PositEnv(64, 18)))):
            trace = baum_welch(hmm, backend, iterations=3)
            rows.append({"format": name,
                         "degenerate": trace.degenerate,
                         "iterations": trace.iterations,
                         "monotone": None if trace.degenerate
                         else trace.monotone_increasing(tol=1e-3)})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Baum-Welch convergence by format", render_table(rows))
    by = {r["format"]: r for r in rows}
    assert by["binary64"]["degenerate"]
    assert not by["log"]["degenerate"] and by["log"]["monotone"]
    assert not by["posit(64,18)"]["degenerate"]


def test_mcmc_mixing(benchmark, report):
    """Metropolis-Hastings acceptance statistics by format."""

    def run():
        rows = []
        for name, backend in (("binary64", Binary64Backend()),
                              ("log", LogSpaceBackend()),
                              ("posit(64,18)",
                               PositBackend(PositEnv(64, 18)))):
            chain = run_chain(backend, steps=30, seed=5)
            rows.append({"format": name, "accepted": chain.accepted,
                         "rejected": chain.rejected, "stuck": chain.stuck})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("MCMC chain health by format", render_table(rows))
    by = {r["format"]: r for r in rows}
    assert by["binary64"]["stuck"] == 30  # the paper's broken chain
    assert by["log"]["stuck"] == 0
    assert by["posit(64,18)"]["stuck"] == 0


def test_lns_comparison(benchmark, report):
    """Section VII quantified: LNS vs the paper's formats at three
    magnitudes, plus the lookup-table cost that rules it out at 64 bits."""
    points = [(-100, "in range"), (-1_800, "near LNS edge"),
              (-9_000, "beyond LNS range")]
    backends = {
        "log": LogSpaceBackend(),
        "lns(12,50)": LNSBackend(),
        "posit(64,12)": PositBackend(PositEnv(64, 12)),
    }

    def run():
        rows = []
        for scale, label in points:
            x = Real(0, (1 << 60) + 987_654_321, scale - 60)
            y = Real(0, (1 << 60) + 123_456_789, scale - 61)
            row = {"magnitude": f"2^{scale} ({label})"}
            for name, backend in backends.items():
                res = measure_op(backend, "add", x, y)
                row[name] = res.log10_error if res.ok else "fail"
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Ablation: LNS vs log-space vs posit", render_table(rows))
    # Flat LNS accuracy in range; catastrophic outside.
    assert rows[0]["lns(12,50)"] < -14.5
    assert rows[1]["lns(12,50)"] < -14.0
    assert rows[2]["lns(12,50)"] == "fail" or rows[2]["lns(12,50)"] > 0
    # The table-size argument.
    table_bytes = LNSBackend().env.sb_table_bytes()
    lofreq_env = lns64_for_range(-434_916)
    report("LNS sb-table cost",
           f"lns(12,50) ideal sb table: {table_bytes:.2e} bytes; "
           f"covering LoFreq's range needs lns({lofreq_env.int_bits},"
           f"{lofreq_env.frac_bits}) with {lofreq_env.sb_table_bytes():.2e} "
           f"bytes — the paper's impracticality claim.")
    assert table_bytes > 1e15
