"""Benchmark + reproduction of Figure 6 (forward unit performance)."""

import pytest

from repro.experiments import fig6_forward_perf


def test_fig6(benchmark, report):
    rows = benchmark(fig6_forward_perf.run)
    report("Figure 6", fig6_forward_perf.render(rows))
    for r in rows:
        # Model within 10% of every paper wall-clock time.
        assert r.posit_seconds == pytest.approx(r.paper_posit, rel=0.10)
        assert r.log_seconds == pytest.approx(r.paper_log, rel=0.10)
    # Improvement shrinks with H (paper Fig. 6b), peaking ~33% at H=13.
    assert rows[0].improvement_pct == pytest.approx(33.3, abs=3.0)
    assert rows[0].improvement_pct > rows[1].improvement_pct > \
        rows[2].improvement_pct > rows[3].improvement_pct
