"""Shared benchmark fixtures: every benchmark prints its reproduced
table/figure through ``report`` so the rows appear in the pytest output
(and in bench_output.txt) despite output capture."""

import pytest


@pytest.fixture
def report(capsys):
    """Print a rendered experiment report, bypassing pytest capture."""

    def _report(title: str, text: str):
        with capsys.disabled():
            print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")
            print(text)

    return _report
