"""Benchmark + reproduction of Figure 10 (VICAR likelihood CDFs)."""

from repro.experiments import fig10_vicar_cdf
from repro.report import dominance, orders_of_magnitude_gap


def test_fig10(benchmark, report):
    result = benchmark.pedantic(fig10_vicar_cdf.run, args=("bench",),
                                rounds=1, iterations=1)
    report("Figure 10", fig10_vicar_cdf.render(result))
    for panel in ("T=100k", "T=500k"):
        cdfs = result.cdfs(panel)
        posit, log = cdfs["posit(64,18)"], cdfs["log"]
        # The posit curve lies left of the log curve (higher accuracy).
        assert dominance(posit, log)
        # Paper: ~2 orders of magnitude higher accuracy; at scaled op
        # counts the gap is >= 1 order and grows with workload size.
        assert orders_of_magnitude_gap(posit, log) > 1.0
        # Paper readout: 100% of posit results below 1e-8.
        assert posit.fraction_below(-8.0) == 1.0
