"""Scalar vs batched throughput for the repro.engine subsystem.

Quantifies the batching win for each primitive (add / mul / LSE
accumulation) and for the forward algorithm, and asserts the engine's
headline guarantee: the batched log-space forward algorithm on a batch
of 64 sequences (T=1000, H=16) is at least 10x faster than the scalar
``LogSpaceBackend`` loop, with bit-identical results.

All measurements land in ``BENCH_batch.json`` at the repo root, the
seed point of the performance trajectory for later scaling PRs.
"""

import json
import math
import os
import time

import numpy as np
import pytest

from repro.apps.hmm import forward, forward_batch
from repro.arith import Binary64Backend, LogSpaceBackend, PositBackend
from repro.arith.backends import LNSBackend
from repro.data.dirichlet import sample_hmm
from repro.engine import (
    BatchLNS,
    BatchLogSpace,
    BatchPosit,
    ExecPlan,
    batch_backend_for,
)
from repro.formats import PositEnv
from repro.formats.logspace import lse2, lse_sequential

_RESULTS = {}
_JSON_PATH = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "BENCH_batch.json")

#: Acceptance floor for the batched log-space forward speedup.  10x on
#: an unloaded machine (the recorded result is ~18x); CI sets the env
#: var to a lower floor because shared runners make wall-clock asserts
#: flaky.
FORWARD_SPEEDUP_FLOOR = float(
    os.environ.get("REPRO_FORWARD_SPEEDUP_FLOOR", "10.0"))

#: Acceptance floor for the compiled (fused resident-plane) posit
#: forward over the PR 5 batch path.  2x on an unloaded machine (the
#: recorded result is ~2.3x); CI relaxes it the same way.
FUSED_SPEEDUP_FLOOR = float(
    os.environ.get("REPRO_POSIT_FUSED_SPEEDUP_FLOOR", "2.0"))


@pytest.fixture(scope="module", autouse=True)
def _emit_json():
    """Collect every test's measurements, then write BENCH_batch.json."""
    yield
    if _RESULTS:
        payload = {
            "benchmark": "batch_throughput",
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "results": _RESULTS,
        }
        with open(_JSON_PATH, "w") as f:
            json.dump(payload, f, indent=1)


def _rate(fn, n_ops, min_time=0.05):
    """Best-of-3 ops/second for fn() covering n_ops operations."""
    best = math.inf
    for _ in range(3):
        t0 = time.perf_counter()
        fn()
        dt = time.perf_counter() - t0
        best = min(best, dt)
        if dt > min_time * 10:
            break
    return n_ops / best


@pytest.fixture(scope="module")
def log_operands():
    rng = np.random.default_rng(0)
    a = rng.uniform(-2000.0, 0.0, 20_000)
    b = a + rng.uniform(-50.0, 50.0, 20_000)
    return a, b


def test_logspace_add_scalar_vs_batch(log_operands):
    a, b = log_operands
    sub_a, sub_b = list(a[:2_000]), list(b[:2_000])

    def scalar():
        total = 0.0
        for x, y in zip(sub_a, sub_b):
            total += lse2(x, y)
        return total

    bb = BatchLogSpace()
    scalar_rate = _rate(scalar, len(sub_a))
    batch_rate = _rate(lambda: bb.add(a, b), a.size)
    _RESULTS["logspace_add"] = {
        "scalar_ops_per_s": scalar_rate, "batch_ops_per_s": batch_rate,
        "speedup": batch_rate / scalar_rate,
    }
    assert batch_rate > scalar_rate


def test_logspace_lse_reduction_scalar_vs_batch(log_operands):
    a, _ = log_operands
    rows = a.reshape(-1, 16)
    sub = rows[:200]
    bb = BatchLogSpace(sum_mode="sequential")

    def scalar():
        out = 0.0
        for row in sub:
            out += lse_sequential(list(row))
        return out

    scalar_rate = _rate(scalar, sub.size)
    batch_rate = _rate(lambda: bb.sum(rows, axis=1), rows.size)
    _RESULTS["logspace_lse_reduce"] = {
        "scalar_ops_per_s": scalar_rate, "batch_ops_per_s": batch_rate,
        "speedup": batch_rate / scalar_rate,
    }
    assert batch_rate > scalar_rate


def test_binary64_mul_scalar_vs_batch():
    rng = np.random.default_rng(1)
    a = rng.uniform(0.0, 1.0, 50_000)
    b = rng.uniform(0.0, 1.0, 50_000)
    backend = Binary64Backend()
    sub_a, sub_b = list(a[:5_000]), list(b[:5_000])

    def scalar():
        total = 0.0
        for x, y in zip(sub_a, sub_b):
            total += backend.mul(x, y)
        return total

    bb = batch_backend_for(backend)
    scalar_rate = _rate(scalar, len(sub_a))
    batch_rate = _rate(lambda: bb.mul(a, b), a.size)
    _RESULTS["binary64_mul"] = {
        "scalar_ops_per_s": scalar_rate, "batch_ops_per_s": batch_rate,
        "speedup": batch_rate / scalar_rate,
    }
    assert batch_rate > scalar_rate


@pytest.mark.parametrize("op", ["add", "mul"])
def test_posit_scalar_vs_batch(op):
    env = PositEnv(64, 12)
    bp = BatchPosit(env)
    rng = np.random.default_rng(2)
    # Probability-magnitude operands (the workload regime).
    floats = 2.0 ** rng.uniform(-600, 0, 16_000)
    a = bp.from_floats(floats)
    b = bp.from_floats(floats[::-1])
    sub_a = [int(x) for x in a[:150]]
    sub_b = [int(x) for x in b[:150]]
    scalar_fn = env.add if op == "add" else env.mul
    batch_fn = bp.add if op == "add" else bp.mul

    def scalar():
        out = 0
        for x, y in zip(sub_a, sub_b):
            out ^= scalar_fn(x, y)
        return out

    scalar_rate = _rate(scalar, len(sub_a))
    batch_rate = _rate(lambda: batch_fn(a, b), a.size)
    _RESULTS[f"posit64_12_{op}"] = {
        "scalar_ops_per_s": scalar_rate, "batch_ops_per_s": batch_rate,
        "speedup": batch_rate / scalar_rate,
    }
    assert batch_rate > scalar_rate


def _op_entry(key, scalar_fn, scalar_pairs, batch_fn, a, b):
    """One (scalar loop vs batch kernel) measurement -> _RESULTS[key]."""
    def scalar():
        out = None
        for x, y in scalar_pairs:
            out = scalar_fn(x, y)
        return out

    scalar_rate = _rate(scalar, len(scalar_pairs))
    batch_rate = _rate(lambda: batch_fn(a, b), np.asarray(a).size)
    _RESULTS[key] = {
        "scalar_ops_per_s": scalar_rate, "batch_ops_per_s": batch_rate,
        "speedup": batch_rate / scalar_rate,
    }
    assert batch_rate > scalar_rate, key


def test_binary64_sub_div_scalar_vs_batch():
    rng = np.random.default_rng(21)
    a = rng.uniform(0.5, 1.0, 50_000)
    b = rng.uniform(0.0, 0.5, 50_000)
    backend = Binary64Backend()
    bb = batch_backend_for(backend)
    pairs = list(zip(a[:5_000].tolist(), b[:5_000].tolist()))
    _op_entry("binary64_sub", backend.sub, pairs, bb.sub, a, b)
    divisors = b + 0.25  # bounded away from the zero-divisor error
    pairs_div = list(zip(a[:5_000].tolist(), divisors[:5_000].tolist()))
    _op_entry("binary64_div", backend.div, pairs_div, bb.div, a, divisors)


def test_logspace_sub_div_scalar_vs_batch(log_operands):
    a, b = log_operands
    hi = np.maximum(a, b)
    lo = np.minimum(a, b) - 1e-6
    backend = LogSpaceBackend()
    bb = batch_backend_for(backend)
    pairs = list(zip(hi[:2_000].tolist(), lo[:2_000].tolist()))
    _op_entry("logspace_sub", backend.sub, pairs, bb.sub, hi, lo)
    _op_entry("logspace_div", backend.div, pairs, bb.div, hi, lo)


@pytest.mark.parametrize("es", [9, 12])
def test_posit_sub_div_scalar_vs_batch(es):
    """Native batch posit subtraction (decoded-plane add of the
    negation) and division (vectorized exact long division) vs the
    scalar environment's big-int/BigFloat paths."""
    env = PositEnv(64, es)
    bp = BatchPosit(env)
    rng = np.random.default_rng(22 + es)
    floats = 2.0 ** rng.uniform(-600, 0, 16_000)
    a = bp.from_floats(floats)
    b = bp.from_floats(floats[::-1])
    pairs_sub = [(int(x), int(y)) for x, y in zip(a[:150], b[:150])]
    pairs_div = [(int(x), int(y)) for x, y in zip(a[:60], b[:60])]
    _op_entry(f"posit64_{es}_sub", env.sub, pairs_sub, bp.sub, a, b)
    _op_entry(f"posit64_{es}_div", env.div, pairs_div, bp.div, a, b)


def test_lns_sub_div_scalar_vs_batch():
    """LNS subtraction through the *full-table* mode (the lookup table
    the paper's Section VII rules out at 64 bits — affordable in
    software at lns(6,8)'s 2.5k entries) and lns(12,50) division
    (pure saturating fixed-point subtract)."""
    from repro.formats.lns import LNSEnv

    small = LNSBackend(LNSEnv(6, 8))
    bb_small = BatchLNS(scalar=small, sb_table=True)
    env = small.env
    rng = np.random.default_rng(24)
    hi = rng.integers(env.min_code // 2, env.max_code, 20_000,
                      dtype=np.int64)
    gap = rng.integers(0, -int(bb_small._sb_floor), 20_000, dtype=np.int64)
    lo = np.maximum(hi - gap, np.int64(env.min_code))
    pairs = list(zip(hi[:100].tolist(), lo[:100].tolist()))
    _op_entry("lns6_8_sub", small.sub, pairs, bb_small.sub, hi, lo)

    wide = LNSBackend()
    bb_wide = batch_backend_for(wide)
    env_w = wide.env
    a = rng.integers(env_w.min_code // 2, env_w.max_code // 2, 20_000
                     ).astype(np.int64)
    b = a[::-1].copy()
    pairs = list(zip(a[:2_000].tolist(), b[:2_000].tolist()))
    _op_entry("lns12_50_div", wide.div, pairs, bb_wide.div, a, b)


class TestForwardAcceptance:
    """The tentpole acceptance criterion: batched log-space forward on
    64 sequences (T=1000, H=16) >= 10x the scalar backend loop, with
    bit-identical likelihoods."""

    B, T, H, M = 64, 1000, 16, 16
    SCALAR_SEQS = 2  # scalar loop is timed on a subset, per-sequence

    @pytest.fixture(scope="class")
    def workload(self):
        hmm = sample_hmm(self.H, self.M, self.T, seed=5)
        rng = np.random.default_rng(6)
        obs = rng.integers(0, self.M, size=(self.B, self.T))
        return hmm, obs

    def test_forward_log_speedup_10x(self, workload, report):
        hmm, obs = workload
        backend = LogSpaceBackend(sum_mode="sequential")

        t0 = time.perf_counter()
        batch_values = forward_batch(hmm, backend, obs)
        batch_per_seq = (time.perf_counter() - t0) / self.B

        scalar_values = []
        t0 = time.perf_counter()
        for i in range(self.SCALAR_SEQS):
            scalar_values.append(forward(
                hmm, backend,
                observations=tuple(int(o) for o in obs[i]),
                plan=ExecPlan.serial()))
        scalar_per_seq = (time.perf_counter() - t0) / self.SCALAR_SEQS

        speedup = scalar_per_seq / batch_per_seq
        _RESULTS["forward_log_batch64"] = {
            "batch": self.B, "t": self.T, "h": self.H,
            "scalar_s_per_seq": scalar_per_seq,
            "batch_s_per_seq": batch_per_seq,
            "speedup": speedup,
        }
        report("Batched forward throughput",
               f"log-space forward, B={self.B} T={self.T} H={self.H}: "
               f"scalar {scalar_per_seq * 1e3:.1f} ms/seq, batched "
               f"{batch_per_seq * 1e3:.2f} ms/seq -> {speedup:.1f}x")
        # Bit-identical results on the sequences both paths computed.
        assert batch_values[:self.SCALAR_SEQS] == scalar_values
        assert speedup >= FORWARD_SPEEDUP_FLOOR

    def test_forward_binary64_batch_matches_and_speeds_up(self, workload):
        hmm, obs = workload
        backend = Binary64Backend()
        t0 = time.perf_counter()
        batch_values = forward_batch(hmm, backend, obs)
        batch_per_seq = (time.perf_counter() - t0) / self.B
        t0 = time.perf_counter()
        want = forward(hmm, backend,
                       observations=tuple(int(o) for o in obs[0]),
                       plan=ExecPlan.serial())
        scalar_per_seq = time.perf_counter() - t0
        _RESULTS["forward_binary64_batch64"] = {
            "scalar_s_per_seq": scalar_per_seq,
            "batch_s_per_seq": batch_per_seq,
            "speedup": scalar_per_seq / batch_per_seq,
        }
        assert batch_values[0] == want
        assert scalar_per_seq / batch_per_seq > 1.0


def test_forward_posit_batch_speedup(report):
    """Posit batches amortize the ~150 array-kernel launches per op
    across the whole batch; the scalar path pays big-int decode/encode
    per element.  Timed at reduced T to keep CI fast."""
    b_sz, t_len, h, m = 64, 40, 8, 8
    hmm = sample_hmm(h, m, t_len, seed=7)
    rng = np.random.default_rng(8)
    obs = rng.integers(0, m, size=(b_sz, t_len))
    backend = PositBackend(PositEnv(64, 12))
    t0 = time.perf_counter()
    batch_values = forward_batch(hmm, backend, obs)
    batch_per_seq = (time.perf_counter() - t0) / b_sz
    t0 = time.perf_counter()
    want = forward(hmm, backend, observations=tuple(int(o) for o in obs[0]),
                   plan=ExecPlan.serial())
    scalar_per_seq = time.perf_counter() - t0
    speedup = scalar_per_seq / batch_per_seq
    _RESULTS[f"forward_posit64_12_batch{b_sz}"] = {
        "batch": b_sz, "t": t_len, "h": h,
        "scalar_s_per_seq": scalar_per_seq,
        "batch_s_per_seq": batch_per_seq,
        "speedup": speedup,
    }
    report("Batched posit forward",
           f"posit(64,12) forward, B={b_sz} T={t_len} H={h}: "
           f"{speedup:.1f}x over the scalar loop")
    assert batch_values[0] == want
    assert speedup > 1.0


def test_forward_posit_fused_speedup(report):
    """The PR 8 tentpole acceptance: the compiled tier's fused
    resident-plane forward (``ExecPlan(compiled=True)``) beats the PR 5
    batch path by >= 2x on the same posit(64,12) workload, with
    bit-identical likelihood codes.  The fused kernels decode the model
    arrays once for all T timesteps and encode only the final fold."""
    from repro.engine import kernels

    b_sz, t_len, h, m = 64, 40, 8, 8
    env = PositEnv(64, 12)
    bp = BatchPosit(env)
    rng = np.random.default_rng(7)

    def rows(shape):
        vals = rng.uniform(0.05, 1.0, size=shape)
        return bp.from_floats(vals / vals.sum(axis=-1, keepdims=True))

    a, b, pi = rows((h, h)), rows((h, m)), rows((h,))
    obs = np.random.default_rng(8).integers(0, m, size=(b_sz, t_len))
    fused_plan = ExecPlan(compiled=True)

    def batch_path():
        return kernels.forward_batch(bp, a, b, pi, obs)

    def fused_path():
        return kernels.forward_batch(bp, a, b, pi, obs, plan=fused_plan)

    assert np.array_equal(batch_path(), fused_path())  # and warm caches

    def best_of(fn, n=3):
        best = math.inf
        for _ in range(n):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    batch_s = best_of(batch_path)
    fused_s = best_of(fused_path)
    speedup = batch_s / fused_s
    _RESULTS["posit_forward_fused"] = {
        "batch": b_sz, "t": t_len, "h": h,
        "batch_path_s": batch_s,
        "fused_path_s": fused_s,
        "speedup": speedup,
    }
    report("Fused posit forward",
           f"posit(64,12) forward, B={b_sz} T={t_len} H={h}: compiled "
           f"tier {fused_s * 1e3:.1f} ms vs batch {batch_s * 1e3:.1f} ms "
           f"-> {speedup:.2f}x")
    assert speedup >= FUSED_SPEEDUP_FLOOR
