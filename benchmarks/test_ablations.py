"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each one isolates a claim the paper makes in passing and measures it:

1. LSE stability: Equation (2) vs the naive Equation (1).
2. Posit rounding policy: saturate vs flush on deep-tail p-values.
3. ES sweep: accuracy vs ES beyond the paper's three configs.
4. n-ary LSE vs sequential fold accumulation error.
5. Rescaling (the related-work alternative) vs log-space.
6. Quire-style fused accumulation vs per-add rounding.
"""

import math

import numpy as np

from repro.apps import forward_float, forward_log, forward_rescaled, pbd_pvalue
from repro.arith import BigFloatBackend, PositBackend
from repro.bigfloat import BigFloat, log10_relative_error
from repro.core import measure_op
from repro.data import sample_hmm
from repro.formats import PositEnv, Real, lse2, lse2_naive, lse_n, lse_sequential
from repro.report import render_table


def test_lse_stability_ablation(benchmark, report):
    """Equation (2) never overflows/underflows where Equation (1) does."""
    pairs = [(-1000.0, -999.0), (-5000.0, -5001.0), (800.0, 801.0)]

    def run():
        return [(lse2(a, b), lse2_naive(a, b)) for a, b in pairs]

    results = benchmark(run)
    rows = []
    for (a, b), (stable, naive) in zip(pairs, results):
        rows.append({"lx": a, "ly": b, "LSE (eq 2)": stable,
                     "naive (eq 1)": naive,
                     "naive failed": not math.isfinite(naive)})
    report("Ablation: LSE vs naive log(exp+exp)", render_table(rows))
    for (_, _), (stable, naive) in zip(pairs, results):
        assert math.isfinite(stable)
    assert sum(1 for _, n in results if not math.isfinite(n)) == 3


def test_underflow_policy_ablation(benchmark, report):
    """Saturate yields huge-but-finite errors; flush yields underflow.
    Both behaviours appear in the paper's Section VI.D discussion."""
    probs = [BigFloat.exp2(-2_000)] * 24
    k = 20

    def run():
        out = {}
        for mode in ("saturate", "flush"):
            backend = PositBackend(PositEnv(64, 9, underflow=mode))
            out[mode] = pbd_pvalue(probs, k, backend)
        return out

    values = benchmark.pedantic(run, rounds=1, iterations=1)
    ref = pbd_pvalue(probs, k, BigFloatBackend())
    sat_backend = PositBackend(PositEnv(64, 9, underflow="saturate"))
    sat_err = log10_relative_error(ref, sat_backend.to_bigfloat(values["saturate"]))
    report("Ablation: posit underflow policy", render_table([
        {"mode": "saturate", "result": "minpos-clamped",
         "log10 rel err": sat_err},
        {"mode": "flush", "result": "underflowed to 0",
         "log10 rel err": None},
    ]))
    assert sat_backend.is_zero(values["flush"]) is False or True
    flush_backend = PositBackend(PositEnv(64, 9, underflow="flush"))
    assert flush_backend.is_zero(values["flush"])
    assert not sat_backend.is_zero(values["saturate"])
    assert sat_err > 10.0  # saturation error is enormous, not silent


def test_es_sweep_ablation(benchmark, report):
    """Accuracy vs ES at two magnitudes: small ES wins near 1.0, large
    ES wins at extreme magnitudes — Table I's trade-off measured."""
    es_values = (6, 9, 12, 15, 18, 21)
    shallow = Real(0, (1 << 60) + 12345, -64 - 60)  # scale ~ -64
    deep = Real(0, (1 << 60) + 54321, -200_000 - 60)  # scale ~ -200k

    def run():
        rows = []
        for es in es_values:
            backend = PositBackend(PositEnv(64, es))
            row = {"ES": es}
            row["err @2^-64"] = measure_op(backend, "add", shallow,
                                           shallow).log10_error
            res = measure_op(backend, "mul", deep, shallow)
            row["err @2^-200k"] = res.log10_error if res.ok else None
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Ablation: ES sweep", render_table(rows))
    assert rows[0]["err @2^-64"] < rows[-1]["err @2^-64"]  # small ES wins
    deep_errs = [(r["ES"], r["err @2^-200k"]) for r in rows
                 if r["err @2^-200k"] is not None and r["err @2^-200k"] < 0]
    assert all(es >= 12 for es, _ in deep_errs)  # only large ES survives


def test_lse_tree_vs_sequential(benchmark, report):
    """The n-ary LSE (Equation 3 / the accelerator's reduction) vs a
    sequential fold of binary LSEs: both accurate, n-ary slightly
    better-conditioned and cheaper in ops."""
    rng = np.random.default_rng(7)
    batches = [list(rng.uniform(-2_000.0, -1.0, size=64)) for _ in range(20)]

    def run():
        return [(lse_n(b), lse_sequential(b)) for b in batches]

    results = benchmark(run)
    diffs = [abs(a - b) for a, b in results]
    report("Ablation: n-ary vs sequential LSE", render_table([
        {"batches": len(batches), "max |n-ary - sequential|": max(diffs)}]))
    assert max(diffs) < 1e-9


def test_rescaling_baseline(benchmark, report):
    """Section VII dismisses rescaling for wide ranges; for an HMM it
    works and agrees with log-space — included as the extra baseline."""
    hmm = sample_hmm(6, 64, 150, seed=11)
    a, b, pi, obs = hmm.as_float_arrays()

    def run():
        return forward_rescaled(a, b, pi, obs), forward_log(a, b, pi, obs)

    (scale, mant), ll = benchmark(run)
    log2_from_log = ll / math.log(2)
    log2_from_rescale = scale + math.log2(mant)
    report("Ablation: rescaling baseline", render_table([
        {"method": "log-space", "log2(likelihood)": log2_from_log},
        {"method": "rescaling", "log2(likelihood)": log2_from_rescale},
        {"method": "binary64", "log2(likelihood)":
            "underflow" if forward_float(a, b, pi, obs) == 0.0 else "ok"},
    ]))
    assert abs(log2_from_log - log2_from_rescale) < 1e-6 * abs(log2_from_log)


def test_dft_cf_baseline_ablation(benchmark, report):
    """DFT-CF (Hong 2013, the paper's ref [32]) agrees with the
    Listing-2 recurrence in the bulk but cannot resolve the deep tails
    the paper targets — the quantitative reason the recurrence (and its
    underflow problem) is the method of record."""
    from repro.apps import pbd_pvalue_dft, reference_pvalue

    rng = np.random.default_rng(5)
    bulk_probs = rng.uniform(0.05, 0.5, size=30)
    deep_probs = np.full(40, 1e-6)

    def run():
        return (pbd_pvalue_dft(bulk_probs, 10),
                pbd_pvalue_dft(deep_probs, 35))

    bulk_dft, deep_dft = benchmark(run)
    from repro.apps import pbd_pvalue_float
    bulk_rec = pbd_pvalue_float(bulk_probs, 10)
    deep_ref = reference_pvalue([BigFloat.from_float(1e-6)] * 40, 35)
    report("Ablation: DFT-CF baseline", render_table([
        {"regime": "bulk (p~1e-1)", "DFT-CF": bulk_dft,
         "recurrence": bulk_rec,
         "agree": abs(bulk_dft - bulk_rec) < 1e-9 * bulk_rec},
        {"regime": f"tail (p~2^{deep_ref.scale})", "DFT-CF": deep_dft,
         "recurrence": "needs wide-range arithmetic",
         "agree": False},
    ]))
    assert abs(bulk_dft - bulk_rec) < 1e-9 * bulk_rec
    assert deep_ref.scale < -600
    assert deep_dft < 1e-14  # noise floor: the tail is unresolvable


def test_viterbi_needs_no_lse_ablation(benchmark, report):
    """Viterbi in log-space uses only adds and compares — its op mix is
    immune to the LSE cost penalty, unlike the forward algorithm.  This
    bounds the paper's argument: log-space hurts *sum-product* kernels,
    not max-product ones."""
    from repro.apps import viterbi, forward
    from repro.arith import LogSpaceBackend
    from repro.data import sample_hmm as _sample

    hmm = _sample(6, 8, 40, seed=13)
    backend = LogSpaceBackend()

    def run():
        return viterbi(hmm, backend)

    path, prob = benchmark(run)
    lse_ops_forward = hmm.length * hmm.n_states  # one n-ary LSE per state/step
    report("Ablation: Viterbi vs forward op mix", render_table([
        {"kernel": "forward", "LSE ops": lse_ops_forward,
         "max/add ops": hmm.length * hmm.n_states ** 2},
        {"kernel": "viterbi", "LSE ops": 0,
         "max/add ops": hmm.length * hmm.n_states ** 2},
    ]))
    assert len(path) == hmm.length
    assert math.isfinite(prob)


def test_quire_fused_sum_ablation(benchmark, report):
    """Posit-standard fused (quire) accumulation vs per-add rounding."""
    env = PositEnv(64, 12)
    rng = np.random.default_rng(3)
    values = [env.from_float(float(v))
              for v in rng.uniform(1e-8, 1.0, size=256)]

    def run():
        seq = 0
        for v in values:
            seq = env.add(seq, v)
        return seq, env.fused_sum(values)

    seq, fused = benchmark(run)
    exact = BigFloat.zero()
    for v in values:
        exact = exact.add(env.to_bigfloat(v), 512)
    seq_err = log10_relative_error(exact, env.to_bigfloat(seq))
    fused_err = log10_relative_error(exact, env.to_bigfloat(fused))
    report("Ablation: quire fused accumulation", render_table([
        {"method": "sequential adds", "log10 rel err": seq_err},
        {"method": "fused (quire)", "log10 rel err": fused_err},
    ]))
    assert fused_err <= seq_err
