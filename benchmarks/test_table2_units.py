"""Benchmark + reproduction of Table II (arithmetic unit costs)."""

from repro.experiments import table2_units


def test_table2(benchmark, report):
    result = benchmark(table2_units.run)
    report("Table II", table2_units.render(result))
    model = result["cost_model"]
    # Section I: log-space addition ~10x slower, ~8x LUTs/FFs.
    assert 10.0 < model["ratio"] < 11.0
    assert 7.0 < model["lut_ratio"] < 8.0
    check = result["lse_check"]
    assert check["lut"] == check["lut_expected"]
