"""Benchmark + reproduction of Table III (forward unit resources)."""

import pytest

from repro.experiments import table3_forward_resources


def test_table3(benchmark, report):
    rows = benchmark(table3_forward_resources.run)
    report("Table III", table3_forward_resources.render(rows))
    for r in rows:
        if r.paper is None:
            continue
        tol = 0.20 if r.h == 128 else 0.05  # lane sharing at H=128
        assert r.model["LUT"] == pytest.approx(r.paper["LUT"], rel=tol), \
            (r.style, r.h)
    reductions = table3_forward_resources.reduction_rows(rows)
    for row in reductions:
        # Paper: ~60-62% LUT reduction at every H.
        assert 55.0 < row["LUT reduction %"] < 67.0
