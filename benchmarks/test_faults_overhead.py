"""Disabled-fault-plane overhead on the batched forward benchmark.

The fault subsystem's contract mirrors telemetry's: with no plan
injected, every ``faults.fire`` site is a guarded no-op (one integer
compare), and the batched forward benchmark must regress by less than
3%.  As with the telemetry gate, wall-clock A/B differencing cannot
resolve a sub-3% delta on shared machines, so the gate is the same
*call census*: monkeypatch ``faults.fire`` / ``faults.active`` with
counting pass-throughs, run the B=64 T=1000 H=16 log-space forward once
to count the site calls it issues, measure the disabled per-call cost
in a tight loop, and assert (calls x per-call cost) stays under 3% of
the forward wall-clock.

The measurement lands in ``BENCH_faults.json`` at the repo root
(``faults_overhead.forward_disabled_overhead.overhead_frac``), and
``benchmarks/check_bench_regression.py`` enforces the same ceiling on
the committed artifact (override with
``$REPRO_FAULTS_OVERHEAD_CEILING``).
"""

import json
import os
import time

import numpy as np
import pytest

import repro.faults as faults
from repro.data.dirichlet import sample_hmm
from repro.engine import kernels
from repro.engine.batch import BatchLogSpace

_RESULTS = {}
_JSON_PATH = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "BENCH_faults.json")

#: Acceptance ceiling: the disabled fault plane may cost at most this
#: fraction of the batched forward run it is threaded through.
OVERHEAD_CEILING = float(
    os.environ.get("REPRO_FAULTS_OVERHEAD_CEILING", "0.03"))

#: The tentpole forward shape (matches the telemetry overhead gate).
B, T, H, M = 64, 1000, 16, 16


@pytest.fixture(scope="module", autouse=True)
def _emit_json():
    """Collect the measurements, then write BENCH_faults.json."""
    yield
    if _RESULTS:
        payload = {
            "benchmark": "faults_overhead",
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "results": _RESULTS,
        }
        with open(_JSON_PATH, "w") as f:
            json.dump(payload, f, indent=1)


@pytest.fixture(scope="module")
def workload():
    """The B=64 batched forward through the engine kernel layer — the
    path the injection sites are threaded through (the service's
    execution path)."""
    hmm = sample_hmm(H, M, T, seed=5)
    rng = np.random.default_rng(6)
    obs = rng.integers(0, M, size=(B, T))
    bb = BatchLogSpace()
    fa, fb, fpi, _obs = hmm.as_float_arrays()
    return (bb, bb.from_floats(fa), bb.from_floats(fb),
            bb.from_floats(fpi), obs)


def _census(fn):
    """Run ``fn`` with the fault entry points replaced by counting
    pass-throughs; returns {entry point: calls issued}.

    Call sites bind the *module* (``from .. import faults as _faults``)
    and look the functions up per call, so swapping the module
    attributes intercepts every site without touching the instrumented
    code.
    """
    calls = {"fire": 0, "active": 0}
    real = {kind: getattr(faults, kind) for kind in calls}

    def _counting(kind):
        inner = real[kind]

        def stub(*args, **kwargs):
            calls[kind] += 1
            return inner(*args, **kwargs)
        return stub

    try:
        for kind in calls:
            setattr(faults, kind, _counting(kind))
        fn()
    finally:
        for kind, inner in real.items():
            setattr(faults, kind, inner)
    return calls


def _per_call_seconds(fn, n=100_000):
    """Average disabled cost of one entry-point call (best of 3 loops)."""
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        for _ in range(n):
            fn()
        best = min(best, time.perf_counter() - t0)
    return best / n


def test_forward_disabled_overhead(workload, report):
    bb, a, b, pi, obs = workload
    assert faults.active() is None, "fault plan leaked into benchmark"

    def run():
        return kernels.forward_batch(bb, a, b, pi, obs)

    run()  # warm
    forward_s = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        run()
        forward_s = min(forward_s, time.perf_counter() - t0)

    calls = _census(run)
    # The sites must actually be threaded through this path — a zero
    # census would make the gate vacuous.
    assert calls["fire"] > 0

    per_call = {
        "fire": _per_call_seconds(
            lambda: faults.fire("kernel.forward_batch")),
        "active": _per_call_seconds(faults.active),
    }
    overhead_s = sum(calls[kind] * per_call[kind] for kind in calls)
    overhead_frac = overhead_s / forward_s

    _RESULTS["forward_disabled_overhead"] = {
        "batch": B, "t": T, "h": H,
        "forward_s": forward_s,
        "calls": calls,
        "per_call_s": per_call,
        "overhead_s": overhead_s,
        "overhead_frac": overhead_frac,
    }
    report("Disabled-fault-plane overhead",
           f"log-space forward, B={B} T={T} H={H}: "
           f"{sum(calls.values())} site calls x disabled cost = "
           f"{overhead_s * 1e6:.1f} us over a {forward_s * 1e3:.1f} ms "
           f"run -> {overhead_frac * 100:.4f}% (ceiling "
           f"{OVERHEAD_CEILING * 100:.0f}%)")
    assert overhead_frac < OVERHEAD_CEILING
