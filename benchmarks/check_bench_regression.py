#!/usr/bin/env python
"""Benchmark-regression gate: fail when a recorded speedup drops below
its gate.

Reads every ``BENCH_*.json`` found in the given files/directories
(default: the repo root's committed artifacts) and enforces the
execution plane's standing performance guarantees:

* ``batch_throughput.forward_log_batch64`` — the batched log-space
  forward algorithm must stay >= 10x the scalar loop;
* ``apps_throughput.vicar_forward_multi*`` — the multi-model forward
  (the ViCAR/Figure 10 shape) must stay >= 5x;
* ``telemetry_overhead.forward_disabled_overhead`` — disabled
  telemetry hooks must cost < 3% of the batched forward run (a
  *ceiling* gate on ``overhead_frac`` rather than a speedup floor).

CI points this script at the current run's bench artifacts *and* the
previous successful run's (downloaded by the ``bench-gate`` job), so a
regression in either fails the build.  Shared runners make wall-clock
flaky, so the job lowers the floors through the same
``REPRO_FORWARD_SPEEDUP_FLOOR`` / ``REPRO_APPS_SPEEDUP_FLOOR``
environment variables the smoke suite uses; the committed repo-root
JSONs (recorded on dedicated hardware) are checked at the full floors
by ``tests/test_bench_gate.py``.

Usage::

    python benchmarks/check_bench_regression.py [path ...]

Paths may be ``BENCH_*.json`` files or directories to scan; missing
paths are skipped with a note (the first CI run has no previous
artifact), but a below-gate speedup in any file that *does* exist exits
nonzero.
"""

from __future__ import annotations

import glob
import json
import os
import sys
from typing import Dict, Iterable, List, Optional, Tuple

#: (benchmark name, result-key prefix) -> (env var, default floor).
GATES: Dict[Tuple[str, str], Tuple[str, float]] = {
    ("batch_throughput", "forward_log_batch"):
        ("REPRO_FORWARD_SPEEDUP_FLOOR", 10.0),
    ("apps_throughput", "vicar_forward_multi"):
        ("REPRO_APPS_SPEEDUP_FLOOR", 5.0),
    # The posit-gap gates: decoded-plane kernels must keep the batch
    # posit path fast (add/mul microbench and the fused forward).
    ("batch_throughput", "posit64_12_add"):
        ("REPRO_POSIT_SPEEDUP_FLOOR", 15.0),
    ("batch_throughput", "posit64_12_mul"):
        ("REPRO_POSIT_SPEEDUP_FLOOR", 15.0),
    ("batch_throughput", "forward_posit64_12_batch"):
        ("REPRO_POSIT_FORWARD_SPEEDUP_FLOOR", 7.0),
    # The compiled tier (PR 8): the fused resident-plane forward must
    # stay >= 2x the PR 5 batch path it fuses.
    ("batch_throughput", "posit_forward_fused"):
        ("REPRO_POSIT_FUSED_SPEEDUP_FLOOR", 2.0),
    ("apps_throughput", "quire_accumulate"):
        ("REPRO_QUIRE_SPEEDUP_FLOOR", 10.0),
    # Native batch sub/div coverage: every recorded entry must beat the
    # scalar loop by a healthy margin (they measure far above this).
    ("batch_throughput", "binary64_sub"):
        ("REPRO_BATCH_OP_SPEEDUP_FLOOR", 3.0),
    ("batch_throughput", "binary64_div"):
        ("REPRO_BATCH_OP_SPEEDUP_FLOOR", 3.0),
    ("batch_throughput", "logspace_sub"):
        ("REPRO_BATCH_OP_SPEEDUP_FLOOR", 3.0),
    ("batch_throughput", "logspace_div"):
        ("REPRO_BATCH_OP_SPEEDUP_FLOOR", 3.0),
    ("batch_throughput", "posit64_9_sub"):
        ("REPRO_BATCH_OP_SPEEDUP_FLOOR", 3.0),
    ("batch_throughput", "posit64_9_div"):
        ("REPRO_BATCH_OP_SPEEDUP_FLOOR", 3.0),
    ("batch_throughput", "posit64_12_sub"):
        ("REPRO_BATCH_OP_SPEEDUP_FLOOR", 3.0),
    ("batch_throughput", "posit64_12_div"):
        ("REPRO_BATCH_OP_SPEEDUP_FLOOR", 3.0),
    ("batch_throughput", "lns6_8_sub"):
        ("REPRO_BATCH_OP_SPEEDUP_FLOOR", 3.0),
    ("batch_throughput", "lns12_50_div"):
        ("REPRO_BATCH_OP_SPEEDUP_FLOOR", 3.0),
    # The serving tier: cross-request microbatching must keep the
    # coalescing server >= 3x the no-coalescing configuration on
    # same-shape forward traffic (measured end to end over HTTP by
    # benchmarks/test_service_load.py).
    ("service_load", "forward_coalescing"):
        ("REPRO_SERVICE_SPEEDUP_FLOOR", 3.0),
    # The workload subsystem (PR 9): batched Viterbi decoding and
    # pair-HMM alignment must stay >= 5x their serial plans.
    ("workloads_throughput", "viterbi"):
        ("REPRO_WORKLOADS_SPEEDUP_FLOOR", 5.0),
    ("workloads_throughput", "pairhmm"):
        ("REPRO_WORKLOADS_SPEEDUP_FLOOR", 5.0),
}

#: (benchmark name, result-key prefix) -> (env var, default ceiling).
#: Ceiling gates bound a recorded *cost fraction* (the entry's
#: ``overhead_frac``) from above instead of a speedup from below.
CEILINGS: Dict[Tuple[str, str], Tuple[str, float]] = {
    # The telemetry layer's zero-cost-when-disabled guarantee.
    ("telemetry_overhead", "forward_disabled_overhead"):
        ("REPRO_TELEMETRY_OVERHEAD_CEILING", 0.03),
    # The fault plane's matching guarantee (PR 10): with no plan
    # injected, every ``faults.fire`` site is one integer compare.
    ("faults_overhead", "forward_disabled_overhead"):
        ("REPRO_FAULTS_OVERHEAD_CEILING", 0.03),
}

#: Result keys (by prefix) the *committed* repo-root artifacts must
#: contain — prefix matching tolerates parameterized suffixes.  CI's
#: freshly measured / previous-run artifacts are exempt (older runs
#: predate newer entries); ``tests/test_bench_gate.py`` enforces this
#: on the committed JSONs.
REQUIRED_RESULTS: Dict[str, Tuple[str, ...]] = {
    "batch_throughput": (
        "forward_log_batch", "forward_posit64_12_batch",
        "posit_forward_fused", "posit64_12_add", "posit64_12_mul",
        "binary64_sub", "binary64_div", "logspace_sub", "logspace_div",
        "posit64_9_sub", "posit64_9_div", "posit64_12_sub",
        "posit64_12_div", "lns6_8_sub", "lns12_50_div",
    ),
    "apps_throughput": ("vicar_forward_multi", "quire_accumulate"),
    "telemetry_overhead": ("forward_disabled_overhead",),
    "faults_overhead": ("forward_disabled_overhead",),
    "service_load": ("forward_coalescing",),
    "workloads_throughput": ("viterbi", "pairhmm", "kalman"),
}


def missing_required(payload: dict) -> List[str]:
    """Required result prefixes absent from a committed payload."""
    bench = payload.get("benchmark", "")
    results = payload.get("results", {})
    return [prefix for prefix in REQUIRED_RESULTS.get(bench, ())
            if not any(key.startswith(prefix) for key in results)]


def gate_floors(env: Dict[str, str]) -> Dict[Tuple[str, str], float]:
    """The effective floor per gate, honoring the env overrides."""
    return {key: float(env.get(var, default))
            for key, (var, default) in GATES.items()}


def gate_ceilings(env: Dict[str, str]) -> Dict[Tuple[str, str], float]:
    """The effective ceiling per cost gate, honoring env overrides."""
    return {key: float(env.get(var, default))
            for key, (var, default) in CEILINGS.items()}


def check_payload(payload: dict,
                  floors: Dict[Tuple[str, str], float],
                  ceilings: Optional[Dict[Tuple[str, str], float]] = None,
                  ) -> List[str]:
    """Violation messages for one parsed ``BENCH_*.json`` payload."""
    bench = payload.get("benchmark", "")
    results = payload.get("results", {})
    violations = []
    for (gated_bench, prefix), floor in floors.items():
        if bench != gated_bench:
            continue
        for key, record in results.items():
            if not key.startswith(prefix):
                continue
            speedup = record.get("speedup")
            if speedup is None or speedup < floor:
                violations.append(
                    f"{bench}.{key}: speedup {speedup} below the "
                    f">={floor}x gate")
    for (gated_bench, prefix), ceiling in (ceilings or {}).items():
        if bench != gated_bench:
            continue
        for key, record in results.items():
            if not key.startswith(prefix):
                continue
            frac = record.get("overhead_frac")
            if frac is None or frac >= ceiling:
                violations.append(
                    f"{bench}.{key}: overhead_frac {frac} at or above "
                    f"the <{ceiling} ceiling")
    return violations


def collect_files(paths: Iterable[str]) -> List[str]:
    """Every BENCH_*.json under the given files/directories."""
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            files.extend(sorted(glob.glob(os.path.join(path, "**",
                                                       "BENCH_*.json"),
                                          recursive=True)))
        elif os.path.isfile(path):
            files.append(path)
        else:
            print(f"note: {path} does not exist; skipping "
                  f"(first run has no previous artifacts)")
    return files


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args:
        args = [os.path.dirname(os.path.dirname(os.path.abspath(__file__)))]
    files = collect_files(args)
    if not files:
        print("no BENCH_*.json artifacts found; nothing to gate")
        return 0
    floors = gate_floors(os.environ)
    ceilings = gate_ceilings(os.environ)
    failures = []
    for path in files:
        try:
            with open(path) as f:
                payload = json.load(f)
        except (OSError, ValueError) as exc:
            failures.append(f"{path}: unreadable ({exc})")
            continue
        for violation in check_payload(payload, floors, ceilings):
            failures.append(f"{path}: {violation}")
        print(f"checked {path} ({payload.get('benchmark', '?')})")
    if failures:
        print("\nbenchmark regression gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nall gates met across {len(files)} artifact(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
