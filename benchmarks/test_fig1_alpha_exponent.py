"""Benchmark + reproduction of Figure 1 (alpha exponent trajectory)."""

from repro.experiments import fig1_alpha_exponent


def test_fig1(benchmark, report):
    result = benchmark.pedantic(fig1_alpha_exponent.run, args=("bench",),
                                rounds=1, iterations=1)
    report("Figure 1", fig1_alpha_exponent.render(result))
    # Shape: linear decrease ~6 bits/iteration; binary64 floor crossed
    # within the first few hundred iterations (paper Figure 1).
    assert -8.0 < result.slope_bits_per_iter < -4.0
    assert result.underflow_iteration < 400
    assert result.scales[-1] < -10_000
