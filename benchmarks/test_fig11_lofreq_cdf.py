"""Benchmark + reproduction of Figure 11 (LoFreq p-value CDFs)."""

from repro.experiments import fig11_lofreq_cdf
from repro.report import dominance


def test_fig11(benchmark, report):
    result = benchmark.pedantic(fig11_lofreq_cdf.run, args=("bench",),
                                rounds=1, iterations=1)
    report("Figure 11", fig11_lofreq_cdf.render(result))
    crit = result.cdfs(critical=True)
    noncrit = result.cdfs(critical=False)
    # Critical columns: posit(64,12) dominates log (paper Fig. 11a).
    assert dominance(crit["posit(64,12)"], crit["log"])
    # Non-critical columns: posit(64,9) achieves the highest accuracy
    # (paper Fig. 11b).
    assert noncrit["posit(64,9)"].median <= noncrit["log"].median
    assert noncrit["posit(64,9)"].median <= noncrit["posit(64,18)"].median
