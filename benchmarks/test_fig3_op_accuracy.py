"""Benchmark + reproduction of Figure 3 (per-op accuracy by magnitude)."""

from repro.core import FIG3_BINS
from repro.experiments import fig3_op_accuracy


def test_fig3(benchmark, report):
    result = benchmark.pedantic(fig3_op_accuracy.run, args=("bench",),
                                rounds=1, iterations=1)
    report("Figure 3", fig3_op_accuracy.render(result))
    for sweep in (result.add, result.mul):
        deepest = sweep.boxes[FIG3_BINS[0]]
        near_one = sweep.boxes[FIG3_BINS[-1]]
        # Takeaway 1: log degrades with magnitude and loses to binary64
        # inside the normal range.
        assert deepest["log"].median > near_one["log"].median + 2.0
        assert near_one["log"].median > near_one["binary64"].median
        # Takeaway 2: posit(64,12)/(64,18) beat log outside the range;
        # posit(64,9) is the noted exception in the deepest bin.
        assert deepest["posit(64,12)"].median < deepest["log"].median
        assert deepest["posit(64,18)"].median < deepest["log"].median
        assert deepest["posit(64,9)"].median > deepest["log"].median
