"""Software micro-benchmarks of the arithmetic backends.

Not a paper figure, but the software analogue of Table II: relative op
costs of native binary64, log-space LSE, and (software-emulated) posit.
The paper notes 'software-emulated posit is too slow for practical use' —
these numbers quantify that for this implementation.
"""

import math
import random

import pytest

from repro.formats import PositEnv, lse2


@pytest.fixture(scope="module")
def operands():
    rng = random.Random(1)
    return [(rng.uniform(0.01, 0.99), rng.uniform(0.01, 0.99))
            for _ in range(200)]


def test_native_binary64_add(benchmark, operands):
    def run():
        total = 0.0
        for a, b in operands:
            total += a + b
        return total
    benchmark(run)


def test_logspace_lse_add(benchmark, operands):
    logs = [(math.log(a), math.log(b)) for a, b in operands]

    def run():
        total = 0.0
        for la, lb in logs:
            total += lse2(la, lb)
        return total
    benchmark(run)


@pytest.mark.parametrize("es", [9, 18])
def test_posit_add(benchmark, operands, es):
    env = PositEnv(64, es)
    bits = [(env.from_float(a), env.from_float(b)) for a, b in operands]

    def run():
        out = 0
        for pa, pb in bits:
            out ^= env.add(pa, pb)
        return out
    benchmark(run)


@pytest.mark.parametrize("es", [9, 18])
def test_posit_mul(benchmark, operands, es):
    env = PositEnv(64, es)
    bits = [(env.from_float(a), env.from_float(b)) for a, b in operands]

    def run():
        out = 0
        for pa, pb in bits:
            out ^= env.mul(pa, pb)
        return out
    benchmark(run)
