"""Disabled-telemetry overhead on the batched forward benchmark.

The telemetry layer's contract is that with no active collector every
instrumentation hook is a guarded no-op — the batched forward benchmark
must regress by less than 3%.  Wall-clock A/B differencing cannot
resolve a sub-3% delta reliably (run-to-run noise on shared machines is
larger than the signal), so the gate is a *call census*: monkeypatch
the telemetry entry points with counting pass-throughs, run the B=64
T=1000 H=16 log-space forward once to count exactly how many
``span`` / ``current`` / ``count`` / ``event`` calls it issues, measure
the per-call disabled cost of each entry point in a tight loop, and
assert that (calls x per-call cost) stays under 3% of the measured
forward wall-clock.

The measurement lands in ``BENCH_telemetry.json`` at the repo root
(``telemetry_overhead.forward_disabled_overhead.overhead_frac``), and
``benchmarks/check_bench_regression.py`` enforces the same ceiling on
the committed artifact (override with
``$REPRO_TELEMETRY_OVERHEAD_CEILING``).
"""

import json
import os
import time

import numpy as np
import pytest

import repro.telemetry as telemetry
from repro.apps.hmm import forward_batch
from repro.arith import LogSpaceBackend
from repro.data.dirichlet import sample_hmm

_RESULTS = {}
_JSON_PATH = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "BENCH_telemetry.json")

#: Acceptance ceiling: disabled instrumentation may cost at most this
#: fraction of the batched forward run it is threaded through.
OVERHEAD_CEILING = float(
    os.environ.get("REPRO_TELEMETRY_OVERHEAD_CEILING", "0.03"))

#: The tentpole forward shape (matches test_batch_throughput's
#: acceptance workload).
B, T, H, M = 64, 1000, 16, 16


@pytest.fixture(scope="module", autouse=True)
def _emit_json():
    """Collect the measurements, then write BENCH_telemetry.json."""
    yield
    if _RESULTS:
        payload = {
            "benchmark": "telemetry_overhead",
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "results": _RESULTS,
        }
        with open(_JSON_PATH, "w") as f:
            json.dump(payload, f, indent=1)


@pytest.fixture(scope="module")
def workload():
    hmm = sample_hmm(H, M, T, seed=5)
    rng = np.random.default_rng(6)
    obs = rng.integers(0, M, size=(B, T))
    return hmm, obs


def _census(fn):
    """Run ``fn`` with the telemetry entry points replaced by counting
    pass-throughs; returns {entry point: calls issued}.

    Call sites bind the *module* (``from .. import telemetry``) and look
    the functions up per call, so swapping the module attributes
    intercepts every hook without touching the instrumented code.
    """
    calls = {"span": 0, "current": 0, "count": 0, "event": 0}
    real = {kind: getattr(telemetry, kind) for kind in calls}

    def _counting(kind):
        inner = real[kind]

        def stub(*args, **kwargs):
            calls[kind] += 1
            return inner(*args, **kwargs)
        return stub

    try:
        for kind in calls:
            setattr(telemetry, kind, _counting(kind))
        fn()
    finally:
        for kind, inner in real.items():
            setattr(telemetry, kind, inner)
    return calls


def _per_call_seconds(fn, n=100_000):
    """Average disabled cost of one entry-point call (best of 3 loops)."""
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        for _ in range(n):
            fn()
        best = min(best, time.perf_counter() - t0)
    return best / n


def _span_site():
    with telemetry.span("bench.probe"):
        pass


def test_forward_disabled_overhead(workload, report):
    hmm, obs = workload
    backend = LogSpaceBackend(sum_mode="sequential")
    assert telemetry.current() is None, "collector leaked into benchmark"

    forward_batch(hmm, backend, obs)  # warm
    forward_s = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        forward_batch(hmm, backend, obs)
        forward_s = min(forward_s, time.perf_counter() - t0)

    calls = _census(lambda: forward_batch(hmm, backend, obs))
    # The instrumentation must actually be threaded through this path —
    # a zero census would make the gate vacuous.
    assert calls["span"] > 0 and calls["current"] > 0

    per_call = {
        "span": _per_call_seconds(_span_site),
        "current": _per_call_seconds(telemetry.current),
        "count": _per_call_seconds(lambda: telemetry.count("bench.probe")),
        "event": _per_call_seconds(lambda: telemetry.event("bench.probe")),
    }
    overhead_s = sum(calls[kind] * per_call[kind] for kind in calls)
    overhead_frac = overhead_s / forward_s

    _RESULTS["forward_disabled_overhead"] = {
        "batch": B, "t": T, "h": H,
        "forward_s": forward_s,
        "calls": calls,
        "per_call_s": per_call,
        "overhead_s": overhead_s,
        "overhead_frac": overhead_frac,
    }
    report("Disabled-telemetry overhead",
           f"log-space forward, B={B} T={T} H={H}: "
           f"{sum(calls.values())} hook calls x disabled cost = "
           f"{overhead_s * 1e6:.0f} us over a {forward_s * 1e3:.1f} ms "
           f"run -> {overhead_frac * 100:.3f}% (ceiling "
           f"{OVERHEAD_CEILING * 100:.0f}%)")
    assert overhead_frac < OVERHEAD_CEILING
