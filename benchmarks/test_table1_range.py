"""Benchmark + reproduction of Table I (range/precision table)."""

from repro.experiments import table1_range


def test_table1(benchmark, report):
    rows = benchmark(table1_range.run)
    report("Table I", table1_range.render(rows))
    # Golden values from the paper.
    by_name = {r.format: r for r in rows}
    assert by_name["posit(64,9)"].smallest_scale == -31_744
    assert by_name["posit(64,18)"].smallest_scale == -16_252_928
    assert by_name["binary64"].smallest_scale == -1_074
