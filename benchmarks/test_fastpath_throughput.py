"""Throughput benchmarks for the vectorized application fast paths.

These are the library's production code paths for binary64/log-space
users (the per-op backends exist for accuracy measurement).  Included so
regressions in the numpy kernels are caught, and to quantify the
software LSE penalty at application scale.
"""

import numpy as np
import pytest

from repro.apps import (
    forward_float,
    forward_log,
    forward_rescaled,
    pbd_pvalue_float,
    pbd_pvalue_log,
)
from repro.data import sample_hmm


@pytest.fixture(scope="module")
def hmm_arrays():
    hmm = sample_hmm(16, 16, 400, seed=2)
    return hmm.as_float_arrays()


@pytest.fixture(scope="module")
def pbd_inputs():
    rng = np.random.default_rng(0)
    return rng.uniform(1e-4, 5e-2, size=2_000), 24


def test_forward_float_throughput(benchmark, hmm_arrays):
    a, b, pi, obs = hmm_arrays
    benchmark(forward_float, a, b, pi, obs)


def test_forward_log_throughput(benchmark, hmm_arrays):
    a, b, pi, obs = hmm_arrays
    result = benchmark(forward_log, a, b, pi, obs)
    assert np.isfinite(result)


def test_forward_rescaled_throughput(benchmark, hmm_arrays):
    a, b, pi, obs = hmm_arrays
    scale, mant = benchmark(forward_rescaled, a, b, pi, obs)
    assert mant > 0


def test_pbd_float_throughput(benchmark, pbd_inputs):
    probs, k = pbd_inputs
    benchmark(pbd_pvalue_float, probs, k)


def test_pbd_log_throughput(benchmark, pbd_inputs):
    probs, k = pbd_inputs
    result = benchmark(pbd_pvalue_log, probs, k)
    assert np.isfinite(result)


def test_log_penalty_at_app_scale(benchmark, hmm_arrays, report):
    """The software analogue of the paper's log-space cost claim: the
    log-space forward pass is many times slower than the linear one."""
    import time
    a, b, pi, obs = hmm_arrays

    def run_both():
        t0 = time.perf_counter()
        forward_float(a, b, pi, obs)
        float_t = time.perf_counter() - t0
        t0 = time.perf_counter()
        forward_log(a, b, pi, obs)
        return float_t, time.perf_counter() - t0

    float_t, log_t = benchmark.pedantic(run_both, rounds=3, iterations=1)
    report("Software log-space penalty (forward pass)",
           f"binary64: {float_t * 1e3:.2f} ms/run, "
           f"log-space: {log_t * 1e3:.2f} ms/run, "
           f"ratio {log_t / float_t:.1f}x")
    assert log_t > float_t
