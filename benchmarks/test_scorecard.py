"""Benchmark + gate: the one-page reproduction scorecard.  If any
headline claim stops reproducing, this is the bench that goes red."""

from repro.experiments import scorecard


def test_scorecard(benchmark, report):
    claims = benchmark.pedantic(scorecard.run, rounds=1, iterations=1)
    report("Reproduction scorecard", scorecard.render(claims))
    failing = [c.claim_id for c in claims if not c.holds]
    assert not failing, failing
