"""Benchmark + reproduction of Figure 7 (column unit performance)."""

from repro.experiments import fig7_column_perf


def test_fig7(benchmark, report):
    rows = benchmark(fig7_column_perf.run)
    report("Figure 7", fig7_column_perf.render(rows))
    assert len(rows) == 8
    # Posit wins everywhere; improvement spread ~5-25% (paper Fig. 7b).
    imps = [r.improvement_pct for r in rows]
    assert all(i > 0 for i in imps)
    assert max(imps) > 15.0
    assert min(imps) < 10.0
    # Wall-clock magnitudes in the paper's band (~2.3k-25k seconds).
    secs = [r.log_seconds for r in rows]
    assert 1_500 < min(secs) and max(secs) < 40_000
