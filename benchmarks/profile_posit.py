#!/usr/bin/env python
"""Per-stage timing of the batched posit datapath.

Splits one posit op into its pipeline stages — pattern **decode**
(regime/exponent parse to the unpacked plane), the exact **core**
arithmetic, and the rounding **encode** back to patterns — and times
each on a realistic probability-magnitude operand array.  This is the
tool that located the PR 5 posit gap (decode/encode dominated every
op), and the CI artifact that keeps the stage balance visible.

The numbers come from :mod:`repro.telemetry`: the engine's built-in
stage spans (``posit.decode`` / ``posit.core.*`` / ``posit.encode``)
time the stage rows, and explicit ``posit.op.*`` spans time the packed
ops; ``seconds_per_call`` is the best (minimum) span duration over the
repeats.  Whole-op rows therefore include the active collector's small
tally overhead — the stage balance, which is what this profile is for,
is unaffected.

``--compare`` switches to the *path* profile: it runs the HMM forward
workload through the PR 5 batch path and through the compiled tier
(``ExecPlan(compiled=True)`` — whole-recurrence fusion over a resident
decoded plane, :mod:`repro.engine.compiled`) and prints each stage's
telemetry **totals** side by side, with call counts.  The decode row is
the headline: the batch path re-decodes the model every op, the fused
path decodes it once per kernel call.  Note the compiled tier bypasses
its Numba loops whenever a telemetry collector is active (events and
spans stay exact), so ``--compare`` always profiles the lean NumPy
kernels — the stage balance, not the JIT.

Usage::

    PYTHONPATH=src python benchmarks/profile_posit.py
    PYTHONPATH=src python benchmarks/profile_posit.py --json PROFILE.json
    PYTHONPATH=src python benchmarks/profile_posit.py --nbits 32 --es 2 \
        --size 100000 --repeats 30
    PYTHONPATH=src python benchmarks/profile_posit.py --compare

The ``--json`` payload maps stage names to ``{seconds_per_call,
ops_per_s}`` plus the configuration (or, with ``--compare``, per-stage
``{batch, fused}`` second/call totals), ready for artifact upload.
"""

from __future__ import annotations

import argparse
import json
import sys

#: Stage rows read the engine's own telemetry spans; the remaining rows
#: (whole packed ops) get an explicit ``posit.op.*`` span per call.
SPAN_FOR = {
    "decode": "posit.decode",
    "encode": "posit.encode",
    "add_core": "posit.core.add",
    "mul_core": "posit.core.mul",
    "div_core": "posit.core.div",
}


def _span_best(telemetry, fn, name: str, repeats: int) -> float:
    """Best (min) duration of span ``name`` over ``repeats`` runs of
    ``fn`` inside a fresh collector.

    Stage callables fire exactly one engine span per call; whole ops
    are wrapped in their own span here.  The warm call runs outside
    the scope so only steady-state durations reach the aggregate.
    """
    fn()  # warm ufunc/loop caches once; we time steady state
    explicit = name not in SPAN_FOR.values()
    with telemetry.collect() as t:
        for _ in range(repeats):
            if explicit:
                with telemetry.span(name):
                    fn()
            else:
                fn()
    return t.spans[name][2]


def profile(nbits: int, es: int, size: int, repeats: int) -> dict:
    import numpy as np

    from repro import telemetry
    from repro.engine.posit_batch import BatchPosit
    from repro.formats.posit import PositEnv

    env = PositEnv(nbits, es)
    bp = BatchPosit(env)
    rng = np.random.default_rng(0)
    lo = max(-600, 2 * env.min_scale // 3)
    floats = 2.0 ** rng.uniform(lo, 0, size)
    a = bp.from_floats(floats)
    b = bp.from_floats(floats[::-1])
    ua = bp.decode_once(a)
    ub = bp.decode_once(b)
    zeros_sticky = np.zeros(a.shape, dtype=bool)

    stages = {
        "decode": lambda: bp._decode(a),
        "encode": lambda: bp._encode(ua.sign, ua.scale, ua.frac64,
                                     zeros_sticky),
        "add_core": lambda: bp._add_core(ua, ub),
        "mul_core": lambda: bp._mul_core(ua, ub),
        "div_core": lambda: bp._divide_frac(ua.frac64, ub.frac64),
        "add": lambda: bp.add(a, b),
        "mul": lambda: bp.mul(a, b),
        "sub": lambda: bp.sub(a, b),
        "div": lambda: bp.div(a, b),
        "axpy": lambda: bp.axpy(a, b, a),
    }
    results = {}
    for name, fn in stages.items():
        span_name = SPAN_FOR.get(name, f"posit.op.{name}")
        seconds = _span_best(telemetry, fn, span_name, repeats)
        results[name] = {
            "seconds_per_call": seconds,
            "ops_per_s": size / seconds,
        }
    return {
        "benchmark": "posit_stage_profile",
        "config": {"nbits": nbits, "es": es, "size": size,
                   "repeats": repeats},
        "results": results,
    }


#: Stage spans shared by the PR 5 batch path and the fused tier — the
#: rows of the ``--compare`` report, plus the whole-op kernel span.
COMPARE_STAGES = {
    "decode": "posit.decode",
    "mul_core": "posit.core.mul",
    "add_core": "posit.core.add",
    "encode": "posit.encode",
    "forward": "kernel.forward_batch",
}


def compare(nbits: int, es: int, batch: int, steps: int, hidden: int,
            symbols: int, repeats: int) -> dict:
    """Per-stage totals for the batch vs fused forward paths.

    Runs the same HMM forward workload through
    :func:`repro.engine.kernels.forward_batch` twice — default plan
    (the PR 5 batch path) and ``ExecPlan(compiled=True)`` (the fused
    resident-plane path) — each inside its own fresh collector, and
    reports every shared stage span's call count and total seconds.
    The two result arrays are asserted bit-identical first.
    """
    import numpy as np

    from repro import telemetry
    from repro.engine import kernels
    from repro.engine.plan import ExecPlan
    from repro.engine.posit_batch import BatchPosit
    from repro.formats.posit import PositEnv

    env = PositEnv(nbits, es)
    bp = BatchPosit(env)
    rng = np.random.default_rng(7)

    def rows(shape):
        m = rng.uniform(0.05, 1.0, size=shape)
        return bp.from_floats(m / m.sum(axis=-1, keepdims=True))

    a, b, pi = rows((hidden, hidden)), rows((hidden, symbols)), rows((hidden,))
    obs = rng.integers(0, symbols, size=(batch, steps))
    paths = {
        "batch": lambda: kernels.forward_batch(bp, a, b, pi, obs),
        "fused": lambda: kernels.forward_batch(
            bp, a, b, pi, obs, plan=ExecPlan(compiled=True)),
    }
    if not np.array_equal(paths["batch"](), paths["fused"]()):
        raise AssertionError("fused forward diverged from the batch path")

    spans = {}
    for label, fn in paths.items():
        fn()  # warm ufunc/loop caches; time steady state only
        with telemetry.collect() as t:
            for _ in range(repeats):
                fn()
        spans[label] = {k: (v[0], v[1]) for k, v in t.spans.items()}

    results = {}
    for stage, span in COMPARE_STAGES.items():
        rec = {}
        for label in paths:
            count, total = spans[label].get(span, (0, 0.0))
            rec[label] = {"calls": count, "seconds": total}
        results[stage] = rec
    return {
        "benchmark": "posit_path_compare",
        "config": {"nbits": nbits, "es": es, "batch": batch,
                   "steps": steps, "hidden": hidden, "symbols": symbols,
                   "repeats": repeats},
        "results": results,
    }


def _print_compare(payload: dict) -> None:
    cfg = payload["config"]
    print(f"posit({cfg['nbits']},{cfg['es']}) forward path compare, "
          f"B={cfg['batch']} T={cfg['steps']} H={cfg['hidden']} "
          f"M={cfg['symbols']} (totals over {cfg['repeats']} runs):")
    print(f"  {'stage':<10}  {'batch calls':>11} {'batch ms':>9}"
          f"  {'fused calls':>11} {'fused ms':>9}  {'speedup':>7}")
    for stage, rec in payload["results"].items():
        bt, ft = rec["batch"]["seconds"], rec["fused"]["seconds"]
        ratio = f"{bt / ft:6.2f}x" if ft > 0 else "      -"
        print(f"  {stage:<10}  {rec['batch']['calls']:>11}"
              f" {bt * 1e3:9.2f}  {rec['fused']['calls']:>11}"
              f" {ft * 1e3:9.2f}  {ratio}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Per-stage (decode/core/encode) batched-posit timings")
    parser.add_argument("--nbits", type=int, default=64)
    parser.add_argument("--es", type=int, default=12)
    parser.add_argument("--size", type=int, default=16_000,
                        help="operand array length (default 16000)")
    parser.add_argument("--repeats", type=int, default=10,
                        help="best-of-N repetitions per stage")
    parser.add_argument("--json", metavar="PATH",
                        help="also dump the payload as JSON (use '-' "
                             "for stdout)")
    parser.add_argument("--compare", action="store_true",
                        help="profile the HMM forward workload through "
                             "the batch path and the compiled tier "
                             "side by side (per-stage span totals)")
    parser.add_argument("--batch", type=int, default=64,
                        help="[--compare] sequences per forward call")
    parser.add_argument("--steps", type=int, default=40,
                        help="[--compare] timesteps per sequence")
    parser.add_argument("--hidden", type=int, default=8,
                        help="[--compare] hidden states")
    parser.add_argument("--symbols", type=int, default=8,
                        help="[--compare] emission symbols")
    args = parser.parse_args(argv)

    if args.compare:
        payload = compare(args.nbits, args.es, args.batch, args.steps,
                          args.hidden, args.symbols, args.repeats)
        _print_compare(payload)
        if args.json == "-":
            json.dump(payload, sys.stdout, indent=1)
            print()
        elif args.json:
            with open(args.json, "w") as f:
                json.dump(payload, f, indent=1)
            print(f"wrote {args.json}")
        return 0

    payload = profile(args.nbits, args.es, args.size, args.repeats)
    width = max(len(k) for k in payload["results"])
    print(f"posit({args.nbits},{args.es}) stage profile, "
          f"n={args.size} (best of {args.repeats}):")
    for name, rec in payload["results"].items():
        print(f"  {name:<{width}}  {rec['seconds_per_call'] * 1e3:8.3f} ms"
              f"  {rec['ops_per_s'] / 1e6:8.2f} Mops/s")
    if args.json == "-":
        json.dump(payload, sys.stdout, indent=1)
        print()
    elif args.json:
        with open(args.json, "w") as f:
            json.dump(payload, f, indent=1)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
