"""Tests for the BigFloat exp/log family against math-module oracles and
algebraic identities (which also hold far outside double range)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import bigfloat as bfm
from repro.bigfloat import BigFloat


def close_rel(x: float, y: float, tol: float = 1e-14) -> bool:
    if y == 0.0:
        return abs(x) < tol
    return abs(x - y) <= tol * abs(y)


class TestLog:
    def test_log_one_is_zero(self):
        assert bfm.log(BigFloat.from_int(1)).is_zero()

    def test_log_e_range(self):
        x = BigFloat.from_float(math.e)
        assert close_rel(bfm.log(x).to_float(), 1.0, 1e-15)

    def test_log_matches_math(self):
        for v in (0.5, 2.0, 10.0, 1e-300, 1e300, 3.141592653589793):
            assert close_rel(bfm.log(BigFloat.from_float(v)).to_float(), math.log(v))

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            bfm.log(BigFloat.zero())
        with pytest.raises(ValueError):
            bfm.log(BigFloat.from_int(-1))

    def test_log_extreme_magnitude(self):
        # ln(2**-2_900_000) = -2_900_000 * ln 2 ~ -2_010_126.82; the paper
        # quotes exactly this example in the introduction.
        x = BigFloat.exp2(-2_900_000)
        got = bfm.log(x).to_float()
        assert close_rel(got, -2_900_000 * math.log(2), 1e-12)

    def test_log2_exact_on_powers(self):
        for k in (-31744, -1074, -1, 0, 1, 52, 300000):
            assert bfm.log2(BigFloat.exp2(k)) == BigFloat.from_int(k)

    def test_log2_matches_math(self):
        for v in (0.3, 7.0, 1e10):
            assert close_rel(bfm.log2(BigFloat.from_float(v)).to_float(), math.log2(v))

    def test_log10_matches_math(self):
        for v in (0.3, 7.0, 1e10, 1e-250):
            assert close_rel(bfm.log10(BigFloat.from_float(v)).to_float(), math.log10(v))

    def test_log10_of_power_of_ten(self):
        x = BigFloat.from_int(10**20)
        assert close_rel(bfm.log10(x).to_float(), 20.0, 1e-15)


class TestExp:
    def test_exp_zero_is_one(self):
        assert bfm.exp(BigFloat.zero()) == BigFloat.from_int(1)

    def test_exp_matches_math(self):
        for v in (-700.0, -1.0, -1e-8, 0.5, 1.0, 700.0):
            assert close_rel(bfm.exp(BigFloat.from_float(v)).to_float(), math.exp(v))

    def test_exp_log_roundtrip_in_range(self):
        for v in (1e-10, 0.25, 3.0, 1e100):
            x = BigFloat.from_float(v)
            back = bfm.exp(bfm.log(x, 128), 128)
            assert close_rel(back.to_float(), v, 1e-30)

    def test_exp_extreme_negative(self):
        # exp(-2_010_126.824...) ~ 2**-2_900_000: far below double range,
        # exactly the regime the paper cares about.  The 256-bit rounding
        # of the log value dominates the roundtrip error (~2**-235 rel),
        # so assert tight relative accuracy rather than bit equality.
        ref = BigFloat.exp2(-2_900_000)
        y = bfm.exp(bfm.log(ref))
        assert bfm.relative_error(ref, y).to_float() < 2 ** -220

    def test_exp_max_scale_rail(self):
        with pytest.raises(OverflowError):
            bfm.exp(BigFloat.from_int(10**7), max_scale=10**6)


class TestExpm1Log1p:
    def test_expm1_zero(self):
        assert bfm.expm1(BigFloat.zero()).is_zero()

    def test_expm1_tiny_no_cancellation(self):
        x = BigFloat.exp2(-80)
        got = bfm.expm1(x)
        # expm1(eps) ~ eps + eps^2/2; relative deviation from eps is ~eps/2.
        ratio = got.div(x).to_float()
        assert abs(ratio - 1.0) < 2 ** -78

    def test_expm1_matches_math(self):
        for v in (-0.5, -1e-12, 1e-12, 0.5, 5.0, -30.0):
            assert close_rel(bfm.expm1(BigFloat.from_float(v)).to_float(), math.expm1(v), 1e-13)

    def test_log1p_zero(self):
        assert bfm.log1p(BigFloat.zero()).is_zero()

    def test_log1p_matches_math(self):
        for v in (-0.9, -1e-12, 1e-12, 0.5, 5.0):
            assert close_rel(bfm.log1p(BigFloat.from_float(v)).to_float(), math.log1p(v), 1e-13)

    def test_log1p_tiny_negative(self):
        x = BigFloat.exp2(-90).neg()
        got = bfm.log1p(x)
        ratio = got.div(x).to_float()
        assert abs(ratio - 1.0) < 2 ** -88

    def test_log1p_rejects_below_minus_one(self):
        with pytest.raises(ValueError):
            bfm.log1p(BigFloat.from_int(-2))

    def test_expm1_log1p_inverse(self):
        for v in (-0.3, 1e-20, 0.7):
            x = BigFloat.from_float(v)
            back = bfm.log1p(bfm.expm1(x, 160), 160)
            assert close_rel(back.to_float(), v, 1e-30)


class TestConstants:
    def test_ln2(self):
        assert close_rel(bfm.ln2().to_float(), math.log(2), 1e-15)

    def test_ln10(self):
        assert close_rel(bfm.ln10().to_float(), math.log(10), 1e-15)

    def test_ln2_high_precision_consistency(self):
        # Computing at two precisions must agree to the coarser one.
        a = bfm.ln2(128)
        b = bfm.ln2(512).round(128)
        assert a == b


class TestPowInt:
    def test_pow_zero(self):
        assert bfm.pow_int(BigFloat.from_float(0.3), 0) == BigFloat.from_int(1)

    def test_pow_small(self):
        assert bfm.pow_int(BigFloat.from_int(3), 5) == BigFloat.from_int(243)

    def test_pow_negative_exponent(self):
        got = bfm.pow_int(BigFloat.from_int(2), -3)
        assert got == BigFloat.from_float(0.125)

    def test_pow_underflow_scale(self):
        # The paper's binomial example: 0.3**619 underflows binary64 but
        # must be representable by the oracle.
        got = bfm.pow_int(BigFloat.from_float(0.3), 619)
        assert got.scale < -1074
        expected_scale = math.floor(619 * math.log2(0.3))
        assert abs(got.scale - expected_scale) <= 1

    def test_pow_identity_product(self):
        x = BigFloat.from_float(0.7)
        lhs = bfm.pow_int(x, 7, 192)
        rhs = bfm.pow_int(x, 3, 192).mul(bfm.pow_int(x, 4, 192), 192)
        assert bfm.relative_error(lhs, rhs).to_float() < 2 ** -180


class TestRelativeError:
    def test_exact_is_zero(self):
        x = BigFloat.from_float(0.25)
        assert bfm.relative_error(x, x).is_zero()

    def test_simple(self):
        ref = BigFloat.from_int(100)
        got = BigFloat.from_int(101)
        assert close_rel(bfm.relative_error(ref, got).to_float(), 0.01, 1e-15)

    def test_zero_reference_raises(self):
        with pytest.raises(ValueError):
            bfm.relative_error(BigFloat.zero(), BigFloat.from_int(1))

    def test_log10_relative_error(self):
        ref = BigFloat.from_int(10**6)
        got = BigFloat.from_int(10**6 + 1)
        assert abs(bfm.log10_relative_error(ref, got) + 6.0) < 1e-9

    def test_log10_relative_error_floor(self):
        x = BigFloat.from_float(0.5)
        assert bfm.log10_relative_error(x, x) == -400.0

    def test_error_far_outside_double_range(self):
        ref = BigFloat.exp2(-500_000)
        got = ref.mul(BigFloat.from_float(1.0 + 1e-10), 256)
        assert abs(bfm.log10_relative_error(ref, got) + 10.0) < 1e-3


@settings(max_examples=60, deadline=None)
@given(st.floats(min_value=1e-200, max_value=1e200))
def test_log_identity_product(v):
    """log(x*x) == 2 log(x) to working accuracy."""
    x = BigFloat.from_float(v)
    lhs = bfm.log(x.mul(x, 256))
    rhs = bfm.log(x).mul(BigFloat.from_int(2), 256)
    if lhs.is_zero():
        assert abs(rhs.to_float()) < 1e-60
    else:
        assert bfm.relative_error(lhs, rhs).to_float() < 2 ** -200


@settings(max_examples=60, deadline=None)
@given(st.floats(min_value=-600.0, max_value=600.0))
def test_exp_identity_sum(v):
    """exp(a+a) == exp(a)**2."""
    a = BigFloat.from_float(v)
    lhs = bfm.exp(a.add(a, 256))
    rhs = bfm.exp(a)
    rhs = rhs.mul(rhs, 256)
    assert bfm.relative_error(lhs, rhs).to_float() < 2 ** -200


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=-3_000_000, max_value=-1))
def test_exp_log_roundtrip_extreme(k):
    """exp(log(2**k)) recovers 2**k to far better than 64-bit-format
    accuracy for arbitrarily extreme magnitudes."""
    x = BigFloat.exp2(k)
    back = bfm.exp(bfm.log(x))
    assert abs(back.scale - k) <= 1
    assert bfm.relative_error(x, back).to_float() < 2 ** -220
