"""Golden results for the workload accuracy experiments: the rendered
rows of each experiment at ``--scale test`` are pinned under
``tests/goldens/``, so a change in any format's numerics (or in a
kernel's op order) shows up as an explicit, reviewable diff.

The rows are already rounded (2 decimals) by each experiment's
``rows()``, which absorbs harmless platform jitter while still
catching real rounding-path changes.  To accept an intentional
change, regenerate::

    PYTHONPATH=src python tests/test_workload_goldens.py --regen
"""

import json
import os

import pytest

GOLDENS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "goldens")

#: workload name -> the experiment module computing its golden rows.
EXPERIMENTS = ("viterbi", "pairhmm", "kalman")


def _rows(name: str) -> list:
    import importlib
    mod = importlib.import_module(f"repro.experiments.fig_{name}_accuracy")
    return mod.run(scale="test", seed=0).rows()


def _golden_path(name: str) -> str:
    return os.path.join(GOLDENS_DIR, f"{name}.json")


def load_golden(name: str) -> list:
    with open(_golden_path(name)) as f:
        return json.load(f)


@pytest.mark.parametrize("name", EXPERIMENTS)
def test_golden_exists(name):
    assert os.path.exists(_golden_path(name)), (
        f"missing golden for {name}; generate with: "
        f"PYTHONPATH=src python tests/test_workload_goldens.py --regen")


@pytest.mark.parametrize("name", EXPERIMENTS)
def test_rows_match_golden(name):
    expected = load_golden(name)
    actual = _rows(name)
    assert actual == expected, (
        f"{name} accuracy rows drifted from tests/goldens/{name}.json. "
        f"If intentional, regenerate with: "
        f"PYTHONPATH=src python tests/test_workload_goldens.py --regen")


def test_goldens_cover_every_format():
    """Each golden carries one row per experiment format — a thinned
    golden would silently skip formats."""
    import importlib
    for name in EXPERIMENTS:
        mod = importlib.import_module(
            f"repro.experiments.fig_{name}_accuracy")
        golden = load_golden(name)
        assert [row["format"] for row in golden] == list(mod.FORMATS), name


def _regen():
    os.makedirs(GOLDENS_DIR, exist_ok=True)
    for name in EXPERIMENTS:
        path = _golden_path(name)
        with open(path, "w") as f:
            json.dump(_rows(name), f, indent=1, sort_keys=True)
            f.write("\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    import sys
    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
