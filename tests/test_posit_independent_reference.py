"""Double-blind posit verification: a second, string-based decoder
written independently of the production codec, cross-checked
exhaustively.  If both implementations share a bug, it must have been
made twice in completely different idioms."""

import pytest

from repro.bigfloat import BigFloat
from repro.formats import NAR, PositEnv, Real, ZERO


def naive_decode(bits: int, nbits: int, es: int):
    """Textbook posit decode via literal bit-string manipulation."""
    pattern = format(bits % (1 << nbits), f"0{nbits}b")
    if pattern == "0" * nbits:
        return "zero"
    if pattern == "1" + "0" * (nbits - 1):
        return "nar"
    sign = pattern[0] == "1"
    if sign:
        # Two's complement: invert and add one, as a bit string.
        mag = (1 << nbits) - int(pattern, 2)
        pattern = format(mag, f"0{nbits}b")
    body = pattern[1:]
    # Regime: run of identical leading bits.
    r = body[0]
    run = len(body) - len(body.lstrip(r))
    k = run - 1 if r == "1" else -run
    rest = body[run + 1:] if run < len(body) else ""
    exp_bits = rest[:es]
    # Truncated exponent fields are left-aligned (missing low bits = 0).
    e = int(exp_bits, 2) << (es - len(exp_bits)) if exp_bits else 0
    frac_bits = rest[len(exp_bits):]
    frac = int(frac_bits, 2) if frac_bits else 0
    scale = k * (1 << es) + e
    # value = (1 + frac/2^len) * 2^scale
    numerator = (1 << len(frac_bits)) + frac
    value = BigFloat(1 if sign else 0, numerator,
                     scale - len(frac_bits))
    return value


@pytest.mark.parametrize("nbits,es", [(6, 0), (6, 1), (6, 2), (8, 0),
                                      (8, 1), (8, 2), (8, 3), (9, 1)])
def test_exhaustive_against_naive_decoder(nbits, es):
    env = PositEnv(nbits, es)
    for bits in range(1 << nbits):
        fast = env.decode(bits)
        naive = naive_decode(bits, nbits, es)
        if naive == "zero":
            assert fast is ZERO, bits
        elif naive == "nar":
            assert fast is NAR, bits
        else:
            assert isinstance(fast, Real), bits
            assert fast.to_bigfloat() == naive, \
                f"pattern {bits:#0{nbits + 2}b}"


def test_spot_check_posit16(subtests=None):
    """Random spot checks at a width where exhaustive would be slow."""
    import random
    env = PositEnv(16, 1)
    rng = random.Random(99)
    for _ in range(2_000):
        bits = rng.randrange(1 << 16)
        fast = env.decode(bits)
        naive = naive_decode(bits, 16, 1)
        if naive == "zero":
            assert fast is ZERO
        elif naive == "nar":
            assert fast is NAR
        else:
            assert fast.to_bigfloat() == naive


def test_spot_check_posit64_paper_configs():
    import random
    rng = random.Random(7)
    for es in (9, 12, 18):
        env = PositEnv(64, es)
        for _ in range(300):
            bits = rng.randrange(1 << 64)
            fast = env.decode(bits)
            naive = naive_decode(bits, 64, es)
            if isinstance(fast, Real):
                assert fast.to_bigfloat() == naive
            else:
                assert naive in ("zero", "nar")


def test_known_vectors():
    """Hand-computed golden patterns (independent of both decoders)."""
    cases = [
        # (nbits, es, pattern, value)
        (8, 2, 0b0_0001_10_1, 1.5 * 2.0 ** -10),  # the paper's example
        (8, 0, 0b0_10_00000, 1.0),
        (8, 0, 0b0_110_0000, 2.0),
        (8, 0, 0b0_01_00000, 0.5),
        (8, 1, 0b0_10_0_1000, 1.5),
        (16, 1, 0b0_10_0_000000000000, 1.0),
        (8, 2, 0b0_10_00_000, 1.0),
        (8, 2, 0b0_10_01_000, 2.0),
        (8, 2, 0b0_10_10_000, 4.0),
    ]
    for nbits, es, pattern, value in cases:
        env = PositEnv(nbits, es)
        assert env.to_float(pattern) == value, (nbits, es, bin(pattern))
        # Negation via two's complement gives the negated value.
        assert env.to_float(env.neg(pattern)) == -value
