"""Accelerator model tests: Tables III/IV and Figures 6-8 validation,
plus functional-simulation bit-equivalence."""

import numpy as np
import pytest

from repro.data import sample_hmm, synth_column
from repro.hw import (
    LOG,
    POSIT,
    ColumnUnit,
    ForwardUnit,
    PAPER_FIG6_SECONDS,
    PAPER_TABLE3,
    PAPER_TABLE4,
    paper_scale_shapes,
    reduction_row,
    replication_speedup,
    single_unit_improvement,
    software_forward_log,
    software_forward_posit,
    speedup_over_cpu,
    units_per_slr,
)


class TestForwardUnitTiming:
    """Figure 6 validation: model within 10% of every paper time."""

    @pytest.mark.parametrize("style,h", list(PAPER_FIG6_SECONDS))
    def test_seconds_close_to_paper(self, style, h):
        unit = ForwardUnit(style, h)
        model = unit.seconds(500_000)
        paper = unit.paper_seconds()
        assert model == pytest.approx(paper, rel=0.10), (style, h)

    @pytest.mark.parametrize("h", [13, 32, 64, 128])
    def test_posit_always_faster(self, h):
        assert ForwardUnit(POSIT, h).seconds(500_000) < \
            ForwardUnit(LOG, h).seconds(500_000)

    def test_improvement_shrinks_with_h(self):
        """Fig. 6(b): relative improvement decreases as H grows (the PE
        saving is fixed relative to a growing pipeline latency)."""
        imps = []
        for h in (13, 32, 64):
            log_t = ForwardUnit(LOG, h).seconds(500_000)
            posit_t = ForwardUnit(POSIT, h).seconds(500_000)
            imps.append((log_t - posit_t) / log_t)
        assert imps[0] > imps[1] > imps[2]
        assert 0.25 < imps[0] < 0.40  # ~33% at H=13
        assert 0.15 < imps[2] < 0.30

    def test_time_scales_linearly_in_t(self):
        u = ForwardUnit(LOG, 32)
        assert u.seconds(1_000_000) == pytest.approx(2 * u.seconds(500_000))

    def test_h128_superlinear_jump(self):
        """II=2 at H=128 produces the superlinear runtime jump of
        Fig. 6(a)."""
        t64 = ForwardUnit(POSIT, 64).seconds(500_000)
        t128 = ForwardUnit(POSIT, 128).seconds(500_000)
        assert t128 > 2.0 * t64

    def test_validation(self):
        with pytest.raises(ValueError):
            ForwardUnit("ieee", 13)
        with pytest.raises(ValueError):
            ForwardUnit(LOG, 1)


class TestForwardUnitResources:
    """Table III validation."""

    @pytest.mark.parametrize("style,h", [(s, h) for s in (LOG, POSIT)
                                         for h in (13, 32, 64)])
    def test_lut_within_5pct(self, style, h):
        unit = ForwardUnit(style, h)
        model = unit.resources().lut
        paper = unit.paper_reported()["LUT"]
        assert model == pytest.approx(paper, rel=0.05), (style, h)

    @pytest.mark.parametrize("style,h", [(s, h) for s in (LOG, POSIT)
                                         for h in (13, 32, 64)])
    def test_register_within_10pct(self, style, h):
        unit = ForwardUnit(style, h)
        model = unit.resources().register
        paper = unit.paper_reported()["Register"]
        assert model == pytest.approx(paper, rel=0.10), (style, h)

    @pytest.mark.parametrize("style", [LOG, POSIT])
    def test_h128_lane_sharing_within_20pct(self, style):
        unit = ForwardUnit(style, 128)
        model = unit.resources().lut
        paper = unit.paper_reported()["LUT"]
        assert model == pytest.approx(paper, rel=0.20)

    @pytest.mark.parametrize("h", [13, 32, 64, 128])
    def test_posit_reduction_band(self, h):
        """Table III: posit cuts ~60% of LUTs and ~40-48% of registers."""
        log_r = ForwardUnit(LOG, h).resources()
        posit_r = ForwardUnit(POSIT, h, posit_es=18).resources()
        red = reduction_row(log_r, posit_r)
        assert 55.0 < red["LUT"] < 67.0
        assert 35.0 < red["Register"] < 55.0

    def test_paper_reported_passthrough(self):
        row = ForwardUnit(LOG, 13).paper_reported()
        assert row["CLB"] == 14_308
        assert ForwardUnit(LOG, 17).paper_reported() is None

    def test_clb_prefers_paper(self):
        assert ForwardUnit(LOG, 13).clb() == 14_308
        assert ForwardUnit(LOG, 17).clb() > 0

    def test_sram_grows_with_h(self):
        srams = [ForwardUnit(LOG, h).resources().sram for h in (13, 32, 64, 128)]
        assert srams == sorted(srams)
        assert srams[-1] > 4 * srams[-2]  # the H=128 banking jump


class TestForwardUnitSimulation:
    def test_log_sim_bit_equivalent_to_software(self):
        hmm = sample_hmm(8, 16, 25, seed=4)
        unit = ForwardUnit(LOG, 8)
        value, timing = unit.simulate(hmm)
        assert value == software_forward_log(hmm)  # bit-equivalent
        assert timing.total_cycles == 25 * timing.cycles_per_outer

    def test_posit_sim_bit_equivalent_to_software(self):
        hmm = sample_hmm(8, 16, 25, seed=5)
        unit = ForwardUnit(POSIT, 8)
        value, _ = unit.simulate(hmm)
        assert value == software_forward_posit(hmm, es=18)

    def test_hardwired_h_check(self):
        hmm = sample_hmm(8, 16, 10, seed=0)
        with pytest.raises(ValueError):
            ForwardUnit(LOG, 16).simulate(hmm)

    def test_log_and_posit_sims_agree_in_value(self):
        hmm = sample_hmm(6, 8, 15, seed=6)
        lv, _ = ForwardUnit(LOG, 6).simulate(hmm)
        pv, _ = ForwardUnit(POSIT, 6).simulate(hmm)
        from repro.arith import LogSpaceBackend, PositBackend
        from repro.bigfloat import relative_error
        from repro.formats import PositEnv
        lbf = LogSpaceBackend().to_bigfloat(lv)
        pbf = PositBackend(PositEnv(64, 18)).to_bigfloat(pv)
        assert relative_error(lbf, pbf).to_float() < 1e-9

    def test_cpu_speedup_model(self):
        """Section V.B quotes 66x (H=64) and 115x (H=128)."""
        assert speedup_over_cpu(64) == pytest.approx(66, rel=0.15)
        assert speedup_over_cpu(128) == pytest.approx(115, rel=0.15)


class TestColumnUnit:
    def test_resources_match_table4(self):
        for style in (LOG, POSIT):
            unit = ColumnUnit(style)
            paper = unit.paper_reported()
            assert unit.resources().lut == pytest.approx(paper["LUT"], rel=0.05)
            assert unit.resources().register == pytest.approx(paper["Register"], rel=0.10)

    def test_table4_reduction_band(self):
        """Table IV: 64% LUT, 50% register, 60% DSP reductions."""
        red = reduction_row(ColumnUnit(LOG).resources(),
                            ColumnUnit(POSIT).resources())
        assert 58.0 < red["LUT"] < 68.0
        assert 45.0 < red["Register"] < 58.0

    def test_posit_faster_on_every_dataset(self):
        for shape in paper_scale_shapes(seed=1, n_datasets=3):
            assert ColumnUnit(POSIT).dataset_seconds(shape) < \
                ColumnUnit(LOG).dataset_seconds(shape)

    def test_improvement_band_5_to_25pct(self):
        """Fig. 7(b): single-unit improvements spread across ~5-25%
        depending on each dataset's K mix."""
        imps = [single_unit_improvement(s) for s in paper_scale_shapes()]
        assert 0.15 < max(imps) < 0.33
        assert 0.02 < min(imps) < 0.10
        assert max(imps) > 2 * min(imps)

    def test_dataset_seconds_in_paper_band(self):
        """Fig. 7(a)'s wall-clock times run from ~2,269s to ~25,020s."""
        secs = [ColumnUnit(LOG).dataset_seconds(s) for s in paper_scale_shapes()]
        assert 1_500 < min(secs) < 10_000
        assert 15_000 < max(secs) < 40_000

    def test_mmaps_per_clb_2x(self):
        """Fig. 8: posit column units deliver ~2x the MMAPS per CLB."""
        for shape in paper_scale_shapes():
            ratio = ColumnUnit(POSIT).mmaps_per_clb(shape) / \
                ColumnUnit(LOG).mmaps_per_clb(shape)
            assert 1.7 < ratio < 2.6

    def test_simulation_returns_value_and_timing(self):
        rng = np.random.default_rng(0)
        col = synth_column(rng, depth=30, k=3)
        value, timing = ColumnUnit(POSIT).simulate(col)
        assert timing.outer_iterations == 30
        backend = ColumnUnit(POSIT).backend()
        assert not backend.is_zero(value)

    def test_validation(self):
        with pytest.raises(ValueError):
            ColumnUnit("ieee")
        with pytest.raises(ValueError):
            ColumnUnit(LOG, n_pes=0)


class TestFloorplan:
    def test_paper_slr_fit(self):
        """Section VI.C: at most 4 log column units per SLR vs ~10 posit
        units."""
        log_fp = units_per_slr(ColumnUnit(LOG).resources())
        posit_fp = units_per_slr(ColumnUnit(POSIT).resources())
        assert log_fp.units_per_slr == 4
        assert posit_fp.units_per_slr >= 10
        assert log_fp.limiting_resource == "lut"

    def test_replication_speedup_compounds(self):
        out = replication_speedup(ColumnUnit(LOG).resources(),
                                  ColumnUnit(POSIT).resources(),
                                  single_unit_speedup=1.2)
        assert out["whole_fpga_speedup"] > 2.0

    def test_total_units_across_slrs(self):
        fp = units_per_slr(ColumnUnit(LOG).resources())
        assert fp.total_units == 4 * fp.units_per_slr


def test_paper_tables_integrity():
    """The verbatim paper tables must stay internally consistent."""
    assert len(PAPER_TABLE3) == 8
    assert len(PAPER_TABLE4) == 2
    for (style, h), row in PAPER_TABLE3.items():
        assert len(row) == 6
        assert row[1] > row[0]  # LUT > CLB always
