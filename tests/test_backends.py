"""Direct tests of the Backend protocol implementations, including the
default sum/dot helpers and the LNS backend."""

import math

import pytest

from repro.arith import (
    Backend,
    BigFloatBackend,
    Binary64Backend,
    LNSBackend,
    LogSpaceBackend,
    PositBackend,
    standard_backends,
)
from repro.bigfloat import BigFloat, relative_error
from repro.formats import PositEnv


def all_backends():
    return [Binary64Backend(), LogSpaceBackend(),
            PositBackend(PositEnv(64, 12)), BigFloatBackend(),
            LNSBackend()]


@pytest.mark.parametrize("backend", all_backends(), ids=lambda b: b.name)
class TestProtocol:
    def test_identity_elements(self, backend):
        one = backend.one()
        zero = backend.zero()
        assert backend.is_zero(zero)
        assert not backend.is_zero(one)
        half = backend.from_float(0.5)
        assert backend.to_bigfloat(backend.mul(half, one)) == \
            backend.to_bigfloat(half)
        assert backend.to_bigfloat(backend.add(half, zero)) == \
            backend.to_bigfloat(half)

    def test_from_float_roundtrip_value(self, backend):
        # Exact for linear formats; log-domain formats round ln(0.25)
        # once, so allow a binary64-ulp-scale tolerance.
        v = backend.from_float(0.25)
        err = relative_error(BigFloat.from_float(0.25),
                             backend.to_bigfloat(v))
        assert err.to_float() < 1e-15

    def test_default_sum(self, backend):
        values = [backend.from_float(v) for v in (0.1, 0.2, 0.3)]
        total = backend.to_bigfloat(backend.sum(values))
        assert abs(total.to_float() - 0.6) < 1e-9

    def test_dot(self, backend):
        xs = [backend.from_float(v) for v in (0.5, 0.25)]
        ys = [backend.from_float(v) for v in (0.5, 0.5)]
        got = backend.to_bigfloat(backend.dot(xs, ys))
        assert abs(got.to_float() - 0.375) < 1e-9

    def test_repr(self, backend):
        assert backend.name in repr(backend) or type(backend).__name__ in repr(backend)

    def test_mul_commutes_in_value(self, backend):
        a = backend.from_float(0.3)
        b = backend.from_float(0.7)
        ab = backend.to_bigfloat(backend.mul(a, b))
        ba = backend.to_bigfloat(backend.mul(b, a))
        assert ab == ba


class TestLogSpaceSub:
    """Native log-diff-exp subtraction and its probability-domain edges."""

    def setup_method(self):
        self.backend = LogSpaceBackend()

    def test_value(self):
        got = self.backend.sub(self.backend.from_float(0.75),
                               self.backend.from_float(0.5))
        assert self.backend.to_bigfloat(got).to_float() == \
            pytest.approx(0.25, rel=1e-15)

    def test_deep_magnitudes(self):
        # 2**-2000 - 2**-2001 = 2**-2001: far below binary64 range, easy
        # in log-space (to within the one-ulp log rounding).
        a = self.backend.from_bigfloat(BigFloat.exp2(-2000))
        b = self.backend.from_bigfloat(BigFloat.exp2(-2001))
        got = self.backend.to_bigfloat(self.backend.sub(a, b))
        err = relative_error(BigFloat.exp2(-2001), got)
        assert err.to_float() < 1e-12

    def test_subtract_zero_probability(self):
        a = self.backend.from_float(0.25)
        assert self.backend.sub(a, self.backend.zero()) == a

    def test_equal_operands_give_exact_zero(self):
        a = self.backend.from_float(0.3)
        assert self.backend.is_zero(self.backend.sub(a, a))
        zero = self.backend.zero()
        assert self.backend.is_zero(self.backend.sub(zero, zero))

    def test_negative_result_rejected(self):
        with pytest.raises(ValueError):
            self.backend.sub(self.backend.from_float(0.25),
                             self.backend.from_float(0.5))

    def test_zero_minus_positive_rejected(self):
        with pytest.raises(ValueError):
            self.backend.sub(self.backend.zero(),
                             self.backend.from_float(0.5))

    def test_div_by_zero_probability(self):
        with pytest.raises(ZeroDivisionError):
            self.backend.div(self.backend.from_float(0.5),
                             self.backend.zero())

    def test_div_zero_numerator(self):
        assert self.backend.is_zero(
            self.backend.div(self.backend.zero(),
                             self.backend.from_float(0.5)))

    def test_base_class_sub_still_raises_elsewhere(self):
        # Every *registered* backend now implements sub natively; the
        # protocol default still raises for backends that opt out.
        class NoSub(Binary64Backend):
            sub = Backend.sub
            div = Backend.div

        with pytest.raises(NotImplementedError):
            NoSub().sub(0.5, 0.25)
        with pytest.raises(NotImplementedError):
            NoSub().div(0.5, 0.25)


class TestLNSBackend:
    def test_name(self):
        assert LNSBackend().name.startswith("lns(")

    def test_flat_accuracy_inside_range(self):
        """LNS error is magnitude-independent inside its range."""
        backend = LNSBackend()
        errs = []
        for scale in (-10, -900, -1_900):
            x = BigFloat(0, (1 << 60) + 111, scale - 60)
            enc = backend.from_bigfloat(x)
            errs.append(relative_error(x, backend.to_bigfloat(enc)).to_float())
        assert max(errs) < 1e-14
        assert max(errs) / max(min(errs), 1e-30) < 1e3

    def test_saturation_outside_range(self):
        backend = LNSBackend()
        deep = backend.from_bigfloat(BigFloat.exp2(-500_000))
        # Saturates at the range edge -> enormous relative error.
        got = backend.to_bigfloat(deep)
        assert got.scale == -2_048

    def test_div(self):
        backend = LNSBackend()
        q = backend.div(backend.from_float(0.25), backend.from_float(0.5))
        assert abs(backend.to_bigfloat(q).to_float() - 0.5) < 1e-12

    def test_div_by_zero(self):
        backend = LNSBackend()
        with pytest.raises(ZeroDivisionError):
            backend.div(backend.one(), backend.zero())

    def test_zero_absorbs(self):
        backend = LNSBackend()
        assert backend.is_zero(backend.mul(backend.zero(), backend.one()))
        assert backend.is_zero(backend.div(backend.zero(), backend.one()))


class TestStandardBackends:
    def test_names_match_keys(self):
        for key, backend in standard_backends().items():
            assert backend.name == key

    def test_underflow_mode_threads_through(self):
        flush = standard_backends(underflow="flush")
        assert flush["posit(64,9)"].env.underflow == "flush"
        sat = standard_backends()
        assert sat["posit(64,9)"].env.underflow == "saturate"

    def test_posit_is_nar_helper(self):
        backend = PositBackend(PositEnv(16, 1))
        assert backend.is_nar(backend.env.nar)
        assert not backend.is_nar(backend.one())

    def test_binary64_to_bigfloat_rejects_inf(self):
        with pytest.raises(ValueError):
            Binary64Backend().to_bigfloat(math.inf)
