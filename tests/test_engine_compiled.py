"""The compiled kernel tier (:mod:`repro.engine.compiled`).

The tier's whole contract is *bit-identity with the batch path*: the
lean plane ops are pinned exhaustively against :class:`BatchPosit` at
8 bits (every operand pair, both underflow modes), the fused
whole-recurrence kernels against :mod:`repro.engine.kernels` at 8 and
64 bits, and the plan routing is checked for the silent-fallback
guarantee (``ExecPlan(compiled=True)`` never errors and never changes
results on formats without a tier).

Every comparison is on **encoded outputs**: the decoded-plane
representation of zero/NaR lanes is unspecified (the JIT and NumPy
paths legitimately differ there), and only the packed codes are the
tier's contract.

The JIT classes run only where numba is installed (the ``[compiled]``
extra / the CI ``compiled`` job) and are skipped elsewhere.
"""

import numpy as np
import pytest

from repro.arith import Binary64Backend, LogSpaceBackend
from repro.engine import ExecPlan, kernels
from repro.engine.batch import BatchBinary64, BatchLogSpace
from repro.engine.compiled import (
    HAVE_NUMBA,
    PositPlaneKernels,
    numba_available,
    plan_compiled_kernels,
)
from repro.engine.posit_batch import BatchPosit
from repro.formats.posit import FLUSH, SATURATE, PositEnv


def _all_pairs(env):
    """Every (a, b) operand pair of an 8-bit environment, as packed
    uint64 arrays of length 65536."""
    codes = np.arange(1 << env.nbits, dtype=np.uint64)
    a = np.repeat(codes, codes.size)
    b = np.tile(codes, codes.size)
    return a, b


def _hmm_arrays(bp, h, m, b_sz, t_len, seed=0):
    """A normalized shared model + observation batch, packed."""
    rng = np.random.default_rng(seed)

    def rows(shape):
        vals = rng.uniform(0.05, 1.0, size=shape)
        return bp.from_floats(vals / vals.sum(axis=-1, keepdims=True))

    return (rows((h, h)), rows((h, m)), rows((h,)),
            rng.integers(0, m, size=(b_sz, t_len)))


@pytest.mark.parametrize("es", [1, 2])
@pytest.mark.parametrize("underflow", [SATURATE, FLUSH])
class TestLeanOpsExhaustive:
    """The lean ``_mul_u``/``_add_u`` plane ops equal the batch tier's
    packed ``mul``/``add`` on *every* posit(8, es) operand pair, in
    both underflow modes — the foundation of the fused kernels'
    bit-identity claim."""

    def _fixture(self, es, underflow):
        env = PositEnv(8, es, underflow)
        bp = BatchPosit(env)
        ck = PositPlaneKernels(bp, use_numba=False)
        a, b = _all_pairs(env)
        return bp, ck, a, b

    def test_mul_exhaustive(self, es, underflow):
        bp, ck, a, b = self._fixture(es, underflow)
        want = bp.mul(a, b)
        got = bp.encode_once(
            ck._mul_u(bp.decode_once(a), bp.decode_once(b)))
        assert np.array_equal(want, got)

    def test_add_exhaustive(self, es, underflow):
        bp, ck, a, b = self._fixture(es, underflow)
        want = bp.add(a, b)
        got = bp.encode_once(
            ck._add_u(bp.decode_once(a), bp.decode_once(b)))
        assert np.array_equal(want, got)


class TestFusedKernelsBitIdentical:
    """The whole-recurrence kernels equal the batch path's packed
    outputs — the workload widths (64, 12), the exhaustive-prone 8-bit
    environments, zero-heavy operands, and the k=1 PBD edge."""

    ENVS = [PositEnv(8, 1), PositEnv(8, 2, FLUSH), PositEnv(64, 12)]

    @pytest.mark.parametrize("env", ENVS, ids=str)
    def test_forward_and_trace(self, env):
        bp = BatchPosit(env)
        a, b, pi, obs = _hmm_arrays(bp, h=5, m=6, b_sz=9, t_len=11)
        plan = ExecPlan(compiled=True)
        assert np.array_equal(
            kernels.forward_batch(bp, a, b, pi, obs),
            kernels.forward_batch(bp, a, b, pi, obs, plan=plan))
        assert np.array_equal(
            kernels.forward_alpha_trace_batch(bp, a, b, pi, obs),
            kernels.forward_alpha_trace_batch(bp, a, b, pi, obs,
                                              plan=plan))

    @pytest.mark.parametrize("env", ENVS, ids=str)
    @pytest.mark.parametrize("k", [1, 3])
    def test_pbd(self, env, k):
        bp = BatchPosit(env)
        rng = np.random.default_rng(3)
        pf = rng.uniform(0.01, 0.4, size=(7, 12))
        pn, qn = bp.from_floats(pf), bp.from_floats(1.0 - pf)
        assert np.array_equal(
            kernels.pbd_pvalue_batch(bp, pn, qn, k),
            kernels.pbd_pvalue_batch(bp, pn, qn, k,
                                     plan=ExecPlan(compiled=True)))

    def test_zero_heavy_model(self):
        """Zero lanes exercise the merge paths whose decoded-plane
        garbage must never escape into the packed outputs."""
        env = PositEnv(8, 1)
        bp = BatchPosit(env)
        rng = np.random.default_rng(4)
        h, m = 4, 5
        av = rng.uniform(0.0, 1.0, size=(h, h))
        av[av < 0.4] = 0.0
        bv = rng.uniform(0.0, 1.0, size=(h, m))
        bv[bv < 0.4] = 0.0
        a, b = bp.from_floats(av), bp.from_floats(bv)
        pi = bp.from_floats(rng.uniform(0.1, 1.0, size=(h,)))
        obs = rng.integers(0, m, size=(6, 8))
        plan = ExecPlan(compiled=True)
        assert np.array_equal(
            kernels.forward_batch(bp, a, b, pi, obs),
            kernels.forward_batch(bp, a, b, pi, obs, plan=plan))
        pf = rng.uniform(0.0, 0.5, size=(5, 9))
        pf[pf < 0.2] = 0.0
        pn, qn = bp.from_floats(pf), bp.from_floats(1.0 - pf)
        assert np.array_equal(
            kernels.pbd_pvalue_batch(bp, pn, qn, 2),
            kernels.pbd_pvalue_batch(bp, pn, qn, 2, plan=plan))

    def test_fused_shape_validation(self):
        bp = BatchPosit(PositEnv(8, 1))
        ck = PositPlaneKernels(bp, use_numba=False)
        one = bp.ones((3, 3))
        with pytest.raises(ValueError, match="shared model"):
            ck.forward(bp.ones((2, 3, 3)), one, bp.ones((3,)),
                       np.zeros((2, 4), dtype=int))
        with pytest.raises(ValueError, match="obs"):
            ck.forward(one, one, bp.ones((3,)),
                       np.zeros(4, dtype=int))
        with pytest.raises(ValueError, match="k must be"):
            ck.pbd(one, one, 0)


class TestPlanRouting:
    """``ExecPlan(compiled=True)`` selects the tier exactly when one
    exists, and otherwise falls back silently without changing
    results."""

    def test_routes_to_kernels_for_posit(self):
        from repro import nd
        bp = BatchPosit(PositEnv(64, 12))
        fa = nd.wrap(bp.ones((2, 2)), bb=bp)
        ck = plan_compiled_kernels(ExecPlan(compiled=True), fa, fa)
        assert isinstance(ck, PositPlaneKernels)
        assert ck.backend is bp

    def test_none_without_compiled_flag(self):
        from repro import nd
        bp = BatchPosit(PositEnv(64, 12))
        fa = nd.wrap(bp.ones((2, 2)), bb=bp)
        assert plan_compiled_kernels(None, fa) is None
        assert plan_compiled_kernels(ExecPlan(), fa) is None
        assert plan_compiled_kernels(ExecPlan(compiled=True)) is None

    def test_none_for_mixed_or_scalar_operands(self):
        from repro import nd
        bp = BatchPosit(PositEnv(64, 12))
        fa = nd.wrap(bp.ones((2, 2)), bb=bp)
        fb = nd.wrap(np.ones((2, 2)), bb=BatchBinary64())
        plan = ExecPlan(compiled=True)
        assert plan_compiled_kernels(plan, fa, fb) is None
        scalar = nd.asarray([1.0, 2.0], Binary64Backend(),
                            plan=ExecPlan.serial())
        assert plan_compiled_kernels(plan, scalar) is None

    @pytest.mark.parametrize("backend_cls, batch_cls", [
        (Binary64Backend, BatchBinary64),
        (LogSpaceBackend, BatchLogSpace),
    ])
    def test_silent_fallback_formats_without_tier(self, backend_cls,
                                                  batch_cls):
        """compiled=True on a format with no compiled tier never
        errors and never changes results."""
        bb = batch_cls()
        rng = np.random.default_rng(5)
        h, m, b_sz, t_len = 4, 5, 6, 7
        conv = (lambda x: np.log(x)) if batch_cls is BatchLogSpace \
            else (lambda x: x)
        a = conv(rng.uniform(0.1, 1.0, size=(h, h)))
        b = conv(rng.uniform(0.1, 1.0, size=(h, m)))
        pi = conv(rng.uniform(0.1, 1.0, size=(h,)))
        obs = rng.integers(0, m, size=(b_sz, t_len))
        base = kernels.forward_batch(bb, a, b, pi, obs)
        routed = kernels.forward_batch(bb, a, b, pi, obs,
                                       plan=ExecPlan(compiled=True))
        assert np.array_equal(base, routed)

    def test_registry_compiled_for(self):
        from repro.arith.registry import REGISTRY
        bp = BatchPosit(PositEnv(64, 12))
        ck = REGISTRY.compiled_for(bp)
        assert isinstance(ck, PositPlaneKernels)
        assert REGISTRY.compiled_for(bp) is ck  # memoized per mirror
        assert REGISTRY.compiled_for(BatchBinary64()) is None
        assert REGISTRY.compiled_for(None) is None


class TestConstruction:
    def test_xp_defaults_to_numpy(self):
        bp = BatchPosit(PositEnv(8, 1))
        assert PositPlaneKernels(bp, use_numba=False).xp is np
        assert bp.xp is np  # the BatchBackend default namespace

    def test_use_numba_true_requires_numba(self):
        bp = BatchPosit(PositEnv(8, 1))
        if HAVE_NUMBA:
            assert PositPlaneKernels(bp, use_numba=True)._jit is not None
        else:
            with pytest.raises(RuntimeError, match="numba"):
                PositPlaneKernels(bp, use_numba=True)

    def test_numba_available_reports_import_state(self):
        assert numba_available() is HAVE_NUMBA

    def test_repr_names_tier(self):
        bp = BatchPosit(PositEnv(8, 1))
        ck = PositPlaneKernels(bp, use_numba=False)
        assert "numpy" in repr(ck)
        assert set(ck.ops) == {"forward", "forward_trace", "pbd"}


@pytest.mark.skipif(not numba_available(),
                    reason="numba not installed (the [compiled] extra)")
class TestJitBitIdentical:
    """Where numba is present, the JIT loops must match the batch tier
    on the same suites as the NumPy lean kernels — compared on encoded
    outputs only (zero/NaR plane garbage is unspecified)."""

    @pytest.mark.parametrize("es", [1, 2])
    @pytest.mark.parametrize("underflow", [SATURATE, FLUSH])
    def test_jit_ops_exhaustive(self, es, underflow):
        env = PositEnv(8, es, underflow)
        bp = BatchPosit(env)
        ck = PositPlaneKernels(bp, use_numba=True)
        a, b = _all_pairs(env)
        ua, ub = bp.decode_once(a), bp.decode_once(b)
        assert np.array_equal(bp.mul(a, b),
                              bp.encode_once(ck._mul_u(ua, ub)))
        assert np.array_equal(bp.add(a, b),
                              bp.encode_once(ck._add_u(ua, ub)))

    def test_jit_forward_matches_batch(self):
        bp = BatchPosit(PositEnv(64, 12))
        ck = PositPlaneKernels(bp, use_numba=True)
        a, b, pi, obs = _hmm_arrays(bp, h=6, m=7, b_sz=8, t_len=10)
        assert np.array_equal(kernels.forward_batch(bp, a, b, pi, obs),
                              ck.forward(a, b, pi, obs))

    def test_jit_pbd_matches_batch(self):
        bp = BatchPosit(PositEnv(64, 12))
        ck = PositPlaneKernels(bp, use_numba=True)
        rng = np.random.default_rng(9)
        pf = rng.uniform(0.01, 0.4, size=(6, 10))
        pn, qn = bp.from_floats(pf), bp.from_floats(1.0 - pf)
        assert np.array_equal(kernels.pbd_pvalue_batch(bp, pn, qn, 2),
                              ck.pbd(pn, qn, 2))
