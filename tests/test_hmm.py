"""Forward-algorithm tests: correctness against brute-force enumeration,
fast-path equivalence, Figure 1's magnitude trajectory, and operand
tracing."""

import itertools
import math

import pytest

from repro.arith import (
    BigFloatBackend,
    Binary64Backend,
    LogSpaceBackend,
    PositBackend,
    standard_backends,
)
from repro.apps import (
    alpha_scale_series,
    forward,
    forward_alpha_trace,
    forward_float,
    forward_log,
    forward_rescaled,
    trace_operands,
)
from repro.bigfloat import BigFloat, relative_error
from repro.data import sample_hmm, sample_hcg_like_hmm
from repro.formats import PositEnv


def brute_force_likelihood(a, b, pi, obs):
    """Sum over all state paths — exponential, only for tiny cases."""
    h = a.shape[0]
    total = 0.0
    for path in itertools.product(range(h), repeat=len(obs)):
        p = pi[path[0]] * b[path[0], obs[0]]
        for t in range(1, len(obs)):
            p *= a[path[t - 1], path[t]] * b[path[t], obs[t]]
        total += p
    return total


@pytest.fixture(scope="module")
def small_hmm():
    return sample_hmm(3, 4, 6, seed=42)


class TestForwardCorrectness:
    def test_matches_brute_force(self, small_hmm):
        a, b, pi, obs = small_hmm.as_float_arrays()
        expected = brute_force_likelihood(a, b, pi, obs)
        got = forward(small_hmm, Binary64Backend())
        assert math.isclose(got, expected, rel_tol=1e-12)

    def test_oracle_matches_brute_force(self, small_hmm):
        a, b, pi, obs = small_hmm.as_float_arrays()
        expected = brute_force_likelihood(a, b, pi, obs)
        got = forward(small_hmm, BigFloatBackend()).to_float()
        assert math.isclose(got, expected, rel_tol=1e-12)

    def test_all_backends_agree_roughly(self, small_hmm):
        ref = forward(small_hmm, BigFloatBackend())
        for name, backend in standard_backends().items():
            got = backend.to_bigfloat(forward(small_hmm, backend))
            assert relative_error(ref, got).to_float() < 1e-9, name

    def test_likelihood_positive_and_below_one(self, small_hmm):
        got = forward(small_hmm, BigFloatBackend())
        assert BigFloat.zero() < got < BigFloat.from_int(1)

    def test_custom_observation_sequence(self, small_hmm):
        got1 = forward(small_hmm, Binary64Backend(), observations=(0, 1))
        got2 = forward(small_hmm, Binary64Backend(), observations=(1, 0))
        assert got1 != got2  # different sequences, different likelihoods


class TestFastPaths:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_float_fast_path_matches_generic(self, seed):
        hmm = sample_hmm(5, 6, 30, seed=seed)
        a, b, pi, obs = hmm.as_float_arrays()
        generic = forward(hmm, Binary64Backend())
        fast = forward_float(a, b, pi, obs)
        assert math.isclose(generic, fast, rel_tol=1e-12)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_log_fast_path_matches_generic(self, seed):
        hmm = sample_hmm(5, 6, 30, seed=seed)
        a, b, pi, obs = hmm.as_float_arrays()
        generic = forward(hmm, LogSpaceBackend())
        fast = forward_log(a, b, pi, obs)
        assert math.isclose(generic, fast, rel_tol=1e-10)

    def test_float_underflows_where_log_survives(self):
        """The motivating failure: binary64 hits zero, log-space does not."""
        hmm = sample_hmm(4, 64, 250, seed=7)
        a, b, pi, obs = hmm.as_float_arrays()
        assert forward_float(a, b, pi, obs) == 0.0
        assert math.isfinite(forward_log(a, b, pi, obs))

    def test_rescaled_matches_log(self):
        hmm = sample_hmm(4, 64, 120, seed=3)
        a, b, pi, obs = hmm.as_float_arrays()
        log2_scale, mant = forward_rescaled(a, b, pi, obs)
        ll = forward_log(a, b, pi, obs)
        assert math.isclose(log2_scale + math.log2(mant), ll / math.log(2),
                            rel_tol=1e-9)


class TestAlphaTrajectory:
    def test_scale_decreases_linearly(self):
        """Figure 1: alpha's exponent falls roughly linearly with t at
        ~log2(n_symbols) bits per step."""
        hmm = sample_hmm(6, 64, 200, seed=5)
        scales = alpha_scale_series(hmm)
        assert len(scales) == 200
        slope = (scales[-1] - scales[0]) / (len(scales) - 1)
        assert -8.0 < slope < -4.0  # ~6 bits/step for 64 symbols
        assert scales[-1] < -1074  # well past binary64's floor

    def test_trace_monotone_overall(self):
        hmm = sample_hmm(6, 64, 100, seed=6)
        scales = alpha_scale_series(hmm)
        # Not necessarily monotone stepwise, but strongly decreasing.
        assert scales[-1] < scales[0] - 300

    def test_hcg_like_magnitude_compression(self):
        """The scaled VICAR generator reaches a target exponent."""
        hmm = sample_hcg_like_hmm(4, 50, seed=1, bits_per_step=300.0)
        scales = alpha_scale_series(hmm)
        assert scales[-1] == pytest.approx(-300.0 * 50, rel=0.1)

    def test_forward_alpha_trace_backend_values(self):
        hmm = sample_hmm(3, 4, 10, seed=0)
        trace = forward_alpha_trace(hmm, Binary64Backend())
        assert len(trace) == 10
        assert all(v > 0 for v in trace)


class TestOperandTracing:
    def test_trace_produces_records(self):
        hmm = sample_hmm(3, 4, 5, seed=0)
        records = trace_operands(hmm)
        ops = {r[0] for r in records}
        assert ops == {"add", "mul"}
        # T=5, H=3: 1 + (T-1) * H muls for emissions etc.; just sanity.
        assert len(records) > 30

    def test_trace_subsampling(self):
        hmm = sample_hmm(3, 4, 8, seed=0)
        records = trace_operands(hmm, max_records=10)
        assert len(records) <= 10


class TestPositForward:
    def test_posit18_survives_deep_magnitudes(self):
        hmm = sample_hcg_like_hmm(4, 40, seed=2, bits_per_step=400.0)
        backend = PositBackend(PositEnv(64, 18))
        ref = forward(hmm, BigFloatBackend())
        got = backend.to_bigfloat(forward(hmm, backend))
        assert relative_error(ref, got).to_float() < 1e-9
        assert ref.scale < -10_000  # actually deep

    def test_binary64_underflow_on_same_workload(self):
        hmm = sample_hcg_like_hmm(4, 40, seed=2, bits_per_step=400.0)
        assert forward(hmm, Binary64Backend()) == 0.0
