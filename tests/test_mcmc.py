"""MCMC-over-HMM tests: the underflow-breaks-inference motivation."""

from repro.apps.mcmc import ChainResult, run_chain
from repro.arith import BigFloatBackend, Binary64Backend, LogSpaceBackend, PositBackend
from repro.formats import PositEnv


class TestChainHealth:
    def test_binary64_chain_is_stuck(self):
        """Every proposal's likelihood underflows: 0/0 ratios only."""
        result = run_chain(Binary64Backend(), steps=10, seed=1)
        assert result.stuck == 10
        assert result.accepted == 0
        assert not result.mixed

    def test_logspace_chain_mixes(self):
        result = run_chain(LogSpaceBackend(), steps=40, seed=1)
        assert result.stuck == 0
        assert result.accepted > 0
        assert result.rejected > 0
        assert result.mixed

    def test_posit18_chain_mixes(self):
        result = run_chain(PositBackend(PositEnv(64, 18)), steps=40, seed=1)
        assert result.mixed

    def test_oracle_and_log_agree_on_moves(self):
        """With the same seed, log-space and the oracle accept/reject
        identically (ratios are far from the decision boundary)."""
        log = run_chain(LogSpaceBackend(), steps=25, seed=4)
        oracle = run_chain(BigFloatBackend(), steps=25, seed=4)
        assert log.accepted == oracle.accepted
        assert log.rejected == oracle.rejected

    def test_acceptance_rate_reasonable(self):
        result = run_chain(LogSpaceBackend(), steps=60, seed=7)
        assert 0.05 < result.acceptance_rate < 0.98

    def test_shallow_workload_binary64_works(self):
        """Control: with in-range likelihoods binary64's chain is fine —
        the pathology is underflow, not binary64 itself."""
        result = run_chain(Binary64Backend(), steps=30, seed=2,
                           bits_per_step=8.0)
        assert result.stuck == 0
        assert result.mixed

    def test_result_accounting(self):
        result = run_chain(LogSpaceBackend(), steps=15, seed=3)
        assert result.steps == 15
        assert len(result.samples) == result.accepted

    def test_empty_chain_rate(self):
        assert ChainResult(0, 0, 0).acceptance_rate == 0.0
