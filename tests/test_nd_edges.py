"""FArray edge semantics: NaN/±0/rounding-to-zero round-trips per
format, broadcasting against scalars, and astype exactness versus the
registry's exactness-class flags.
"""

import numpy as np
import pytest

import repro.nd as nd
from repro.arith import BIT_IDENTICAL, ELEMENT_EXACT, ORACLE, REGISTRY
from repro.bigfloat import BigFloat
from repro.engine import ExecPlan

ALL_FORMATS = ["binary64", "log", "posit(64,9)", "posit(64,12)",
               "posit(64,18)", "lns(12,50)", "bigfloat256"]


def both_representations(values, fmt, **kwargs):
    """(canonical, serial) FArray pair over the same inputs."""
    return (nd.asarray(values, fmt, **kwargs),
            nd.asarray(values, fmt, plan=ExecPlan.serial(), **kwargs))


class TestNaNAndSignedZero:
    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_nan_inf_rejected_on_entry(self, fmt):
        """Inputs are exact values; NaN/Inf have none, in any format."""
        for bad in (float("nan"), float("inf"), -float("inf")):
            with pytest.raises(ValueError):
                nd.asarray([bad], fmt)

    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_signed_zero_collapses_to_exact_zero(self, fmt):
        """±0.0 both mean 'probability exactly zero' (BigFloat has one
        zero), so both encode to the format's zero and read back 0.0."""
        x = nd.asarray([0.0, -0.0], fmt)
        assert x.is_zero().all()
        assert list(x.to_floats()) == [0.0, 0.0]
        assert all(b.is_zero() for b in x.to_bigfloats())

    def test_posit_nar_has_no_value(self):
        backend = REGISTRY.create("posit(64,9)")
        bb = REGISTRY.batch_for(backend)
        x = nd.wrap(np.array([backend.env.nar], dtype=np.uint64), bb=bb)
        assert not x.is_zero()[0]
        with pytest.raises(ValueError):
            x.to_floats()


class TestRoundsToZero:
    TINY = BigFloat.exp2(-20_000)      # below binary64, inside posit64
    DEEPER = BigFloat.exp2(-40_000)    # below posit(64,9) range too

    def test_binary64_underflows_to_exact_zero(self):
        for x in both_representations([self.TINY], "binary64"):
            assert x.is_zero()[0]
            # The round-trip is the zero round-trip: value is gone.
            assert x.to_bigfloats()[0].is_zero()

    def test_log_represents_it(self):
        for x in both_representations([self.TINY], "log"):
            assert not x.is_zero()[0]
            assert x.to_bigfloats()[0].scale == pytest.approx(-20_000, abs=1)

    def test_posit_saturates_by_default(self):
        """underflow="saturate" clamps to minpos: not zero, value kept
        representable (the posit standard's behaviour)."""
        for x in both_representations([self.DEEPER], "posit(64,9)"):
            assert not x.is_zero()[0]
            assert x.to_bigfloats()[0].cmp(
                REGISTRY.create("posit(64,9)").env.to_bigfloat(
                    REGISTRY.create("posit(64,9)").env.minpos)) == 0

    def test_posit_flush_mode_rounds_to_zero(self):
        for x in both_representations([self.DEEPER], "posit(64,9)",
                                      underflow="flush"):
            assert x.is_zero()[0]
            assert x.to_bigfloats()[0].is_zero()

    def test_lns_saturates_at_range_edge(self):
        backend = REGISTRY.create("lns(12,50)")
        for x in both_representations([self.TINY], backend):
            assert not x.is_zero()[0]
            # Clamped to the most negative code, not flushed to zero.
            assert x.to_bigfloats()[0].scale == \
                backend.to_bigfloat(backend.env.min_code).scale

    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_exact_zero_round_trips_everywhere(self, fmt):
        for x in both_representations([0.0], fmt):
            assert x.is_zero()[0]
            back = nd.asarray(x.to_bigfloats(), fmt)
            assert back.is_zero()[0]


class TestScalarBroadcasting:
    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_python_scalars_broadcast(self, fmt):
        backend = REGISTRY.create(fmt)
        for x in both_representations([[0.5, 0.25], [0.125, 1.0]], backend):
            doubled = x * 2
            assert doubled.shape == x.shape
            two = backend.from_float(2.0)
            expect = [[backend.mul(v, two) for v in row]
                      for row in x.tolist()]
            assert doubled.tolist() == expect
            assert (2 * x).tolist() == doubled.tolist()

    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_bigfloat_scalar_broadcasts(self, fmt):
        half = BigFloat.exp2(-1)
        for x in both_representations([0.5, 0.25], fmt):
            left = (half + x).tolist()
            right = (x + half).tolist()
            assert left == right

    def test_shape_broadcasting_matches_numpy(self):
        x = nd.asarray([[0.5, 0.25, 0.125]] * 2, "binary64")
        row = nd.asarray([0.5, 0.25, 0.125], "binary64")
        col = nd.asarray([[2.0], [4.0]], "binary64")
        np.testing.assert_array_equal(
            (x * row).to_floats(),
            np.asarray(x.data) * np.asarray(row.data))
        np.testing.assert_array_equal(
            (x * col).to_floats(),
            np.asarray(x.data) * np.asarray(col.data))

    def test_broadcasting_identical_across_representations(self):
        canonical, serial = both_representations([0.5, 0.25], "posit(64,9)")
        assert (canonical * 3).tolist() == (serial * 3).tolist()
        assert (1 - canonical).tolist() == (1 - serial).tolist()


class TestAstypeExactness:
    """astype exactness follows the registry's exactness-class flags:
    every format's values survive a trip through the oracle unchanged,
    and the oracle itself is the exact superset."""

    VALUES = [0.5, 0.25, 1.0, 1 / 3, 0.1, 2.0 ** -40]

    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_round_trip_through_oracle_is_identity(self, fmt):
        x = nd.asarray(self.VALUES, fmt)
        assert REGISTRY.capabilities("bigfloat256").exactness == ORACLE
        rt = x.astype("bigfloat256").astype(x.backend)
        assert rt.tolist() == x.tolist()

    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_into_oracle_preserves_values(self, fmt):
        x = nd.asarray(self.VALUES, fmt)
        lifted = x.astype("bigfloat256")
        assert all(a.cmp(b) == 0 for a, b in
                   zip(x.to_bigfloats(), lifted.to_bigfloats()))

    def test_same_backend_astype_is_identity(self):
        x = nd.asarray(self.VALUES, "posit(64,12)")
        assert x.astype(x.backend) is x

    def test_dyadic_values_cross_formats_exactly(self):
        """Values exactly representable in every finite format convert
        between the bit-identical and element-exact classes losslessly."""
        dyadic = [0.5, 0.25, 0.0625, 1.0]
        x64 = nd.asarray(dyadic, "binary64")
        assert REGISTRY.capabilities("binary64").exactness == BIT_IDENTICAL
        for fmt in ["posit(64,9)", "posit(64,18)", "lns(12,50)"]:
            assert REGISTRY.capabilities(fmt).exactness == ELEMENT_EXACT
            there_and_back = x64.astype(fmt).astype("binary64")
            assert there_and_back.tolist() == x64.tolist()

    def test_lossy_conversion_rounds_once(self):
        """A narrower target rounds; coming back shows the rounding
        (1/3 in posit(8,0) is coarse) — one rounding, not an error."""
        x = nd.asarray([1 / 3], "binary64")
        narrowed = x.astype("posit(8,0)")
        widened = narrowed.astype("binary64")
        assert widened.item(0) != x.item(0)
        assert widened.item(0) == pytest.approx(1 / 3, rel=0.05)

    def test_astype_respects_plan(self):
        x = nd.asarray([0.5], "binary64")
        serial = x.astype("posit(64,9)", plan=ExecPlan.serial())
        assert not serial.batch
        assert x.astype("posit(64,9)").batch
