"""Tests for the Table II unit database, PE latency models and the
Fig. 5 timing model."""

import pytest

from repro.hw import (
    CLOCK_MHZ,
    COLUMN_PE_LATENCY,
    DRAIN_CYCLES,
    LOG,
    POSIT,
    TABLE2,
    column_pe_latency,
    column_pe_structure,
    column_timing,
    forward_pe_latency,
    forward_pe_latency_reduction,
    forward_pe_structure,
    forward_unit_timing,
    initiation_interval,
    lse_component_check,
    software_op_cost_model,
    table2_rows,
    tree_levels,
    unit,
)


class TestTable2:
    def test_all_eight_units_present(self):
        assert len(TABLE2) == 8

    def test_log_mul_is_binary64_add(self):
        """In log-space a multiply is an addition: identical unit cost."""
        mul = unit("log_mul")
        add = unit("binary64_add")
        assert (mul.lut, mul.register, mul.dsp, mul.cycles) == \
            (add.lut, add.register, add.dsp, add.cycles)

    def test_paper_headline_ratios(self):
        """Section I: log-space addition is ~10x slower and needs ~8x the
        LUTs/FFs of a binary64 add."""
        model = software_op_cost_model()
        assert model["ratio"] == pytest.approx(64 / 6, rel=0.01)
        assert 7.0 < model["lut_ratio"] < 8.0
        assert 8.5 < model["register_ratio"] < 9.5

    def test_posit_adder_overhead_vs_binary64(self):
        """Section IV.B says a posit(64,12) adder uses '70.3% more LUTs
        and 44.0% more registers' than a binary64 adder; Table II's own
        numbers give 56.7% / 71.2% — the prose and table disagree in the
        paper itself.  We assert the table relationship (posit adder is
        moderately bigger than binary64's, but several times smaller and
        faster than the LSE unit)."""
        p = unit("posit(64,12)_add")
        b = unit("binary64_add")
        lse = unit("log_add")
        assert (p.lut - b.lut) / b.lut == pytest.approx(0.567, abs=0.01)
        assert p.lut > b.lut and p.register > b.register
        assert p.lut < lse.lut / 4
        assert p.cycles < lse.cycles / 4

    def test_lse_components_recompose(self):
        check = lse_component_check()
        assert check["lut"] == check["lut_expected"]
        assert check["dsp"] == check["dsp_expected"]

    def test_table2_rows_render(self):
        rows = table2_rows()
        assert len(rows) == 8
        assert rows[0]["Arithmetic Unit"] == "binary64 add"
        assert rows[1]["Clock Cycle"] == 64

    def test_scaled(self):
        u = unit("binary64_add").scaled(4)
        assert u.lut == 4 * 679


class TestPELatency:
    def test_tree_levels(self):
        assert tree_levels(2) == 1
        assert tree_levels(13) == 4
        assert tree_levels(64) == 6
        assert tree_levels(128) == 7
        with pytest.raises(ValueError):
            tree_levels(0)

    @pytest.mark.parametrize("h,expected", [(13, 62 + 36), (32, 62 + 45),
                                            (64, 62 + 54), (128, 62 + 63)])
    def test_log_forward_pe(self, h, expected):
        assert forward_pe_latency(LOG, h) == expected

    @pytest.mark.parametrize("h,expected", [(13, 24 + 32), (32, 24 + 40),
                                            (64, 24 + 48), (128, 24 + 56)])
    def test_posit_forward_pe(self, h, expected):
        assert forward_pe_latency(POSIT, h) == expected

    def test_reduction_formula(self):
        """Section V.C: the saving is 38 + log2(H) cycles."""
        for h in (16, 64, 128):
            assert forward_pe_latency_reduction(h) == 38 + tree_levels(h)

    def test_column_pe_latencies(self):
        assert column_pe_latency(LOG) == 73
        assert column_pe_latency(POSIT) == 30
        assert COLUMN_PE_LATENCY[LOG] - COLUMN_PE_LATENCY[POSIT] == 43

    def test_unknown_style(self):
        with pytest.raises(ValueError):
            forward_pe_latency("ieee", 8)
        with pytest.raises(ValueError):
            column_pe_latency("ieee")


class TestPEStructure:
    def test_posit_pe_slope_matches_table3(self):
        """The per-state posit cost (mul + tree adder = 1570 LUTs)
        reproduces Table III's measured slope (~1569 LUT/state)."""
        small = forward_pe_structure(POSIT, 13).resources
        big = forward_pe_structure(POSIT, 32).resources
        slope = (big.lut - small.lut) / (32 - 13)
        assert slope == pytest.approx(1570, abs=2)

    def test_log_pe_slope_matches_table3(self):
        small = forward_pe_structure(LOG, 13).resources
        big = forward_pe_structure(LOG, 32).resources
        slope = (big.lut - small.lut) / (32 - 13)
        assert slope == pytest.approx(4007, rel=0.02)

    def test_column_pe_costs(self):
        log_pe = column_pe_structure(LOG).resources
        posit_pe = column_pe_structure(POSIT).resources
        assert log_pe.lut == 2 * 679 + 5076
        assert posit_pe.lut == 2 * 618 + 1064
        assert posit_pe.lut < log_pe.lut / 2


class TestTiming:
    def test_initiation_interval(self):
        assert initiation_interval(64) == 1
        assert initiation_interval(65) == 2
        assert initiation_interval(128) == 2

    def test_fig5_formula(self):
        t = forward_unit_timing(13, 500_000, pe_latency=98)
        assert t.cycles_per_outer == 13 + 98 + DRAIN_CYCLES
        assert t.total_cycles == 500_000 * t.cycles_per_outer

    def test_seconds_at_300mhz(self):
        t = forward_unit_timing(13, 500_000, pe_latency=98)
        assert t.seconds() == pytest.approx(t.total_cycles / 3e8)
        assert CLOCK_MHZ == 300.0

    def test_prefetch_bound_flag_small_h(self):
        small = forward_unit_timing(8, 10, pe_latency=50)
        big = forward_unit_timing(64, 10, pe_latency=50)
        assert small.prefetch_bound
        assert not big.prefetch_bound

    def test_column_timing_ceil_division(self):
        t = column_timing(k=9, n=100, pe_latency=30, n_pes=8)
        assert t.issue_cycles == 2  # ceil(9/8)
        t = column_timing(k=8, n=100, pe_latency=30, n_pes=8)
        assert t.issue_cycles == 1
