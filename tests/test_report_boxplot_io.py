"""Tests for the ASCII box-plot renderer and experiment persistence."""

import json

import pytest

from repro.experiments.io import load_report, save_report
from repro.report import axis_bounds, render_box_line, render_box_panel


class TestBoxLine:
    def test_basic_markers(self):
        line = render_box_line(-16, -14, -12, -10, -8, lo=-18, hi=-6,
                               width=40)
        assert len(line) == 40
        assert line.count("#") == 1
        assert line.count("|") == 2
        assert "=" in line

    def test_median_between_whiskers(self):
        line = render_box_line(-16, -14, -12, -10, -8, lo=-18, hi=-6,
                               width=40)
        left = line.index("|")
        right = line.rindex("|")
        assert left < line.index("#") < right

    def test_clamping_out_of_axis(self):
        line = render_box_line(-100, -50, -12, -10, -8, lo=-18, hi=-6,
                               width=30)
        assert len(line) == 30  # p5 clamps to the left edge

    def test_invalid_axis(self):
        with pytest.raises(ValueError):
            render_box_line(0, 0, 0, 0, 0, lo=1, hi=1)


class TestBoxPanel:
    ROWS = [
        {"label": "log", "p5": -14, "p25": -13.5, "median": -13,
         "p75": -12.5, "p95": -12},
        {"label": "posit", "p5": -16, "p25": -15.5, "median": -15,
         "p75": -14.5, "p95": -14},
        {"label": "binary64", "p5": None, "p25": None, "median": None,
         "p75": None, "p95": None},
    ]

    def test_panel_renders_all_rows(self):
        panel = render_box_panel(self.ROWS, lo=-17, hi=-11, title="T")
        lines = panel.splitlines()
        assert lines[0] == "T"
        assert any("not measured" in l for l in lines)
        assert sum(1 for l in lines if "#" in l and "legend" not in l) == 2

    def test_axis_bounds(self):
        lo, hi = axis_bounds(self.ROWS, pad=1.0)
        assert lo == -17.0
        assert hi == -11.0

    def test_axis_bounds_empty_raises(self):
        with pytest.raises(ValueError):
            axis_bounds([{"p5": None, "p95": None}])

    def test_better_format_renders_left(self):
        panel = render_box_panel(self.ROWS, lo=-17, hi=-11)
        log_line = next(l for l in panel.splitlines() if l.startswith("log"))
        posit_line = next(l for l in panel.splitlines()
                          if l.startswith("posit"))
        assert posit_line.index("#") < log_line.index("#")


class TestIO:
    def test_save_and_load(self, tmp_path):
        paths = save_report(str(tmp_path), "demo", "hello world",
                            result={"rows": [1, 2, 3]}, scale="test")
        assert (tmp_path / "demo.txt").read_text() == "hello world\n"
        loaded = load_report(str(tmp_path), "demo")
        assert loaded["scale"] == "test"
        assert loaded["result"]["rows"] == [1, 2, 3]
        assert set(paths) == {"txt", "json"}

    def test_save_without_result(self, tmp_path):
        paths = save_report(str(tmp_path), "textonly", "report text")
        assert "json" not in paths
        assert (tmp_path / "textonly.txt").exists()

    def test_dataclass_serialization(self, tmp_path):
        from dataclasses import dataclass

        @dataclass
        class Row:
            name: str
            value: float

        save_report(str(tmp_path), "dc", "t", result=[Row("a", 1.5)])
        loaded = load_report(str(tmp_path), "dc")
        assert loaded["result"] == [{"name": "a", "value": 1.5}]

    def test_unserializable_falls_back_to_repr(self, tmp_path):
        class Opaque:
            def __repr__(self):
                return "<opaque>"

        save_report(str(tmp_path), "op", "t", result={"x": Opaque()})
        loaded = load_report(str(tmp_path), "op")
        assert loaded["result"]["x"] == "<opaque>"

    def test_json_is_valid(self, tmp_path):
        save_report(str(tmp_path), "v", "t", result={"a": (1, 2)})
        with open(tmp_path / "v.json") as f:
            assert json.load(f)["result"]["a"] == [1, 2]
